// Ablation for the paper's central design choice (Section 3.4, Theorem 3.2):
// synthesizing over the four candidate hierarchies (a) system,
// (b) column-major factors, (c) row-major factors, (d) reduction-axis
// factors (collapsed and not). For each: alphabet size, instructions tried,
// valid programs found, distinct lowered behaviours, and synthesis time —
// demonstrating that (d) is simultaneously the most expressive and the
// cheapest to search (Result 2).
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/format.h"
#include "core/lowering.h"
#include "core/synthesizer.h"
#include "topology/presets.h"

namespace {

using p2::TextTable;
using p2::core::LowerProgram;
using p2::core::LoweredProgram;
using p2::core::ParallelismMatrix;
using p2::core::SynthesisHierarchy;
using p2::core::SynthesisHierarchyKind;
using p2::core::SynthesizePrograms;

using Behavior =
    std::vector<std::pair<p2::core::Collective,
                          std::set<std::vector<std::int64_t>>>>;

Behavior Canonical(const LoweredProgram& lowered) {
  Behavior b;
  for (const auto& step : lowered.steps) {
    std::set<std::vector<std::int64_t>> groups;
    for (auto g : step.groups) {
      std::sort(g.begin(), g.end());
      groups.insert(std::move(g));
    }
    b.emplace_back(step.op, std::move(groups));
  }
  return b;
}

void RunCase(const char* title, const ParallelismMatrix& matrix,
             const std::vector<int>& reduction_axes, int max_size) {
  std::printf("%s (program size limit %d)\n", title, max_size);
  TextTable table({"Hierarchy", "Levels", "Alphabet", "Tried", "Programs",
                   "Behaviours", "Synth(s)"});

  struct Variant {
    const char* name;
    SynthesisHierarchyKind kind;
    bool collapse;
  };
  const std::vector<Variant> variants = {
      {"(a) system", SynthesisHierarchyKind::kSystem, false},
      {"(b) column-major", SynthesisHierarchyKind::kColumnMajor, false},
      {"(c) row-major", SynthesisHierarchyKind::kRowMajor, false},
      {"(d) reduction-axes", SynthesisHierarchyKind::kReductionAxes, false},
      {"(d) + collapse", SynthesisHierarchyKind::kReductionAxes, true},
  };

  for (const auto& v : variants) {
    const auto sh = SynthesisHierarchy::Build(matrix, reduction_axes, v.kind,
                                              v.collapse);
    p2::core::SynthesisOptions opts;
    opts.max_program_size = max_size;
    const auto result = SynthesizePrograms(sh, opts);
    std::set<Behavior> behaviours;
    for (const auto& p : result.programs) {
      behaviours.insert(Canonical(LowerProgram(sh, p)));
    }
    std::string levels = "[";
    for (std::size_t i = 0; i < sh.levels().size(); ++i) {
      if (i > 0) levels += ' ';
      levels += std::to_string(sh.levels()[i]);
    }
    levels += ']';
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.4f", result.stats.seconds);
    table.AddRow({v.name, levels, std::to_string(result.stats.alphabet_size),
                  std::to_string(result.stats.instructions_tried),
                  std::to_string(result.programs.size()),
                  std::to_string(behaviours.size()), secs});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Synthesis-hierarchy ablation (Theorem 3.2 / Result 2): expressiveness\n"
      "and search cost of hierarchies (a)-(d)\n\n");

  RunCase("Running example [(rack,1),(server,2),(cpu,2),(gpu,4)], axes [4 4], "
          "reduce axis 1",
          ParallelismMatrix({{1, 1, 2, 2}, {1, 2, 1, 2}}), {1}, 3);
  RunCase("A100 2-node [2 16], axes [8 4], placement [[2 4][1 4]], reduce "
          "axis 0",
          ParallelismMatrix({{2, 4}, {1, 4}}), {0}, 3);
  RunCase("Three axes [[2 1][1 2][1 2]] on [2 4], reduce axes {0,2}",
          ParallelismMatrix({{2, 1}, {1, 2}, {1, 2}}), {0, 2}, 3);
  return 0;
}
