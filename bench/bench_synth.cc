// Benchmarks the transposition-table synthesis search (ISSUE 2) against the
// seed's blind DFS (SynthesizeProgramsReference) on hierarchies of growing
// depth. The DFS re-explores every redistribution state once per path
// reaching it and copies the full StateContext per candidate instruction;
// the search interns states, memoizes the transition relation and the goal
// completions, and replays shared subtrees — the deeper the hierarchy, the
// more transpositions there are to collapse.
//
// Reported per case: programs found, both wall-clocks, the speedup, the
// table counters, and whether the program lists are byte-identical (they
// must be — the differential test asserts the same, this reports it under
// bench sizes).
//
//   bench_synth            full grid (depth 2-4, paper-default size 5)
//   bench_synth --smoke    CI-sized grid; exits non-zero when the search
//                          stops beating the DFS by the guard margin or any
//                          program list diverges
//   bench_synth --threads=N  fan the frontier expansion over N workers
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/format.h"
#include "core/synthesizer.h"
#include "engine/report.h"

namespace {

using p2::core::ParallelismMatrix;
using p2::core::SynthesisHierarchy;
using p2::core::SynthesisHierarchyKind;
using p2::core::SynthesisOptions;
using p2::core::SynthesizePrograms;
using p2::core::SynthesizeProgramsReference;

struct BenchCase {
  std::string name;
  ParallelismMatrix matrix;
  std::vector<int> reduction_axes;
  int max_program_size = 5;
  /// --smoke enforces the speedup floor on this case. Only set where the
  /// problem is big enough that the table amortizes AND both engines run
  /// long enough for wall-clock to be signal, not timer noise: the depth-2
  /// case finishes in microseconds and is exempt.
  bool guard = false;
};

std::vector<BenchCase> MakeGrid(bool smoke) {
  std::vector<BenchCase> grid;
  grid.push_back(
      {"depth-2 (Fig 2d, k=4)", ParallelismMatrix({{1, 1, 2, 2}, {1, 2, 1, 2}}),
       {1}});
  grid.push_back({"depth-3 (k=8)", ParallelismMatrix({{2, 2, 2}, {1, 1, 1}}),
                  {0},
                  5,
                  true});
  if (!smoke) {
    grid.push_back({"depth-4 (k=16, size 4)",
                    ParallelismMatrix({{2, 2, 2, 2}, {1, 1, 1, 1}}),
                    {0},
                    4});
  }
  grid.push_back({"depth-4 (k=16)",
                  ParallelismMatrix({{2, 2, 2, 2}, {1, 1, 1, 1}}),
                  {0},
                  5,
                  true});
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::max(1, std::atoi(argv[i] + 10));
    } else {
      std::fprintf(stderr, "usage: bench_synth [--smoke] [--threads=N]\n");
      return 2;
    }
  }

  // The guard margin for --smoke, applied to the cases flagged `guard`.
  // Deliberately far below the observed ~8-12x so CI noise cannot trip it,
  // but any regression to DFS-like behaviour still fails loudly.
  constexpr double kSmokeMinSpeedup = 2.0;

  const auto grid = MakeGrid(smoke);
  std::printf("Synthesis bench (%s): transposition search vs reference DFS, "
              "%d thread%s\n\n",
              smoke ? "smoke" : "full", threads, threads == 1 ? "" : "s");

  p2::TextTable table({"Hierarchy", "Programs", "DFS(s)", "Search(s)",
                       "Speedup", "States", "Transp.", "Replays", "Identical"});
  bool all_identical = true;
  bool fast_enough = true;
  for (const auto& c : grid) {
    const auto sh = SynthesisHierarchy::Build(
        c.matrix, c.reduction_axes, SynthesisHierarchyKind::kReductionAxes);
    SynthesisOptions options;
    options.max_program_size = c.max_program_size;
    const auto reference = SynthesizeProgramsReference(sh, options);
    options.threads = threads;
    const auto search = SynthesizePrograms(sh, options);

    const bool identical = search.programs == reference.programs;
    all_identical = all_identical && identical;
    const double speedup = search.stats.seconds > 0.0
                               ? reference.stats.seconds / search.stats.seconds
                               : 0.0;
    if (smoke && c.guard && speedup < kSmokeMinSpeedup) fast_enough = false;

    table.AddRow({c.name, std::to_string(search.programs.size()),
                  p2::FormatSeconds(reference.stats.seconds),
                  p2::FormatSeconds(search.stats.seconds),
                  p2::engine::FormatSpeedup(speedup),
                  std::to_string(search.stats.states_visited),
                  std::to_string(search.stats.states_deduped),
                  std::to_string(search.stats.branches_pruned),
                  identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.Render().c_str());

  if (!all_identical) {
    std::printf("FAIL: program lists diverge from the reference DFS\n");
    return 1;
  }
  if (smoke && !fast_enough) {
    std::printf("FAIL: search slower than %.1fx the DFS on a guarded case "
                "(perf regression)\n",
                kSmokeMinSpeedup);
    return 1;
  }
  std::printf("program lists byte-identical to the reference DFS: yes\n");
  return 0;
}
