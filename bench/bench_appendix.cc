// Reproduces the paper's appendix Table A: the full sweep over both GPU
// systems, 2 and 4 nodes, every parallelism-axis decomposition of the
// experiment grid and both NCCL algorithms. For each placement: synthesis
// time, programs outperforming AllReduce / total, AllReduce vs optimal
// reduction time (substrate-measured) and speedup, for Ring and Tree.
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/engine.h"
#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace {

using p2::FormatSeconds;
using p2::TextTable;
using p2::engine::Engine;
using p2::engine::EngineOptions;
using p2::engine::ExperimentConfig;
using p2::engine::FormatSpeedup;

void RunCluster(const char* title, const p2::topology::Cluster& cluster) {
  std::printf("%s\n", title);
  TextTable table({"Axes", "Reduce", "Synth(s)", "Outperf(R)", "Outperf(T)",
                   "Parallelism matrix", "AR Ring", "AR Tree", "Opt Ring",
                   "Opt Tree", "Speedup R", "Speedup T"});
  for (const auto& cfg : p2::engine::FullGrid(cluster)) {
    EngineOptions ring_opts, tree_opts;
    ring_opts.algo = p2::core::NcclAlgo::kRing;
    tree_opts.algo = p2::core::NcclAlgo::kTree;
    const Engine ring_eng(cluster, ring_opts);
    const Engine tree_eng(cluster, tree_opts);
    const auto ring = ring_eng.RunExperiment(cfg.axes, cfg.reduction_axes);
    const auto tree = tree_eng.RunExperiment(cfg.axes, cfg.reduction_axes);

    std::string reduce;
    for (int a : cfg.reduction_axes) {
      if (!reduce.empty()) reduce += ' ';
      reduce += std::to_string(a);
    }
    char ring_counts[64], tree_counts[64];
    std::snprintf(ring_counts, sizeof(ring_counts), "%lld/%lld",
                  static_cast<long long>(ring.TotalOutperforming()),
                  static_cast<long long>(ring.TotalPrograms()));
    std::snprintf(tree_counts, sizeof(tree_counts), "%lld/%lld",
                  static_cast<long long>(tree.TotalOutperforming()),
                  static_cast<long long>(tree.TotalPrograms()));

    for (std::size_t i = 0; i < ring.placements.size(); ++i) {
      const auto& pr = ring.placements[i];
      const auto& pt = tree.placements[i];
      const double ar_r = pr.DefaultAllReduce().measured_seconds;
      const double ar_t = pt.DefaultAllReduce().measured_seconds;
      const double opt_r =
          pr.programs[static_cast<std::size_t>(pr.BestMeasuredIndex())]
              .measured_seconds;
      const double opt_t =
          pt.programs[static_cast<std::size_t>(pt.BestMeasuredIndex())]
              .measured_seconds;
      const bool first = i == 0;
      table.AddRow(
          {first ? p2::BracketJoin(std::span<const std::int64_t>(cfg.axes))
                 : "",
           first ? reduce : "",
           first ? FormatSeconds(ring.TotalSynthesisSeconds()) : "",
           first ? ring_counts : "", first ? tree_counts : "",
           pr.matrix.ToString(), FormatSeconds(ar_r), FormatSeconds(ar_t),
           FormatSeconds(opt_r), FormatSeconds(opt_t),
           FormatSpeedup(ar_r / opt_r), FormatSpeedup(ar_t / opt_t)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Appendix Table A: full experiment sweep (substrate measurements)\n\n");
  RunCluster("2 nodes each with 16 A100:", p2::topology::MakeA100Cluster(2));
  RunCluster("4 nodes each with 16 A100:", p2::topology::MakeA100Cluster(4));
  RunCluster("2 nodes each with 8 V100:", p2::topology::MakeV100Cluster(2));
  RunCluster("4 nodes each with 8 V100:", p2::topology::MakeV100Cluster(4));
  return 0;
}
