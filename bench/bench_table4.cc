// Reproduces paper Table 4: synthesis time, programs outperforming
// AllReduce / total programs, AllReduce vs. synthesized-optimal reduction
// time and speedup, for the paper's representative configurations F1-L1.
// Section 2 of the output reproduces the Fig. 10 / Result 5 analysis: which
// program shapes are optimal and how the two canonical hierarchical programs
// compare against each other.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/engine.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace {

using p2::FormatSeconds;
using p2::TextTable;
using p2::core::NcclAlgo;
using p2::engine::Engine;
using p2::engine::EngineOptions;
using p2::engine::FormatSpeedup;
using p2::engine::ProgramShape;

struct Row {
  const char* id;
  const char* system;  // "A100" or "V100"
  int nodes;
  NcclAlgo algo;
  std::vector<std::int64_t> axes;
  std::vector<int> reduce;
};

struct ShapeStats {
  int optimal_count = 0;
  double total_speedup_vs_other = 0.0;
  int speedup_samples = 0;
};

int main_impl() {
  const std::vector<Row> rows = {
      {"F", "A100", 2, NcclAlgo::kRing, {8, 4}, {0}},
      {"G", "A100", 4, NcclAlgo::kTree, {4, 16}, {0}},
      {"H", "A100", 4, NcclAlgo::kRing, {16, 2, 2}, {0, 2}},
      {"I", "A100", 4, NcclAlgo::kRing, {2, 2, 16}, {0, 2}},
      {"J", "A100", 4, NcclAlgo::kTree, {64}, {0}},
      {"K", "V100", 4, NcclAlgo::kRing, {8, 2, 2}, {0, 2}},
      {"L", "V100", 4, NcclAlgo::kRing, {32}, {0}},
  };

  std::printf(
      "Table 4: AllReduce vs synthesized-optimal reduction time (s)\n"
      "(substrate measurement; reduction on axis 0, or axes {0,2} for three "
      "axes)\n\n");

  TextTable table({"Cfg", "System", "Algo", "Axes", "Synth(s)",
                   "Outperf/total", "Parallelism matrix", "AllReduce",
                   "Optimal", "Speedup", "Optimal shape"});

  std::map<std::string, ShapeStats> shape_stats;
  std::int64_t outperform_total = 0;
  std::int64_t placements_total = 0;
  double speedup_sum = 0.0;
  double speedup_max = 0.0;

  for (const auto& row : rows) {
    const auto cluster = row.system == std::string("A100")
                             ? p2::topology::MakeA100Cluster(row.nodes)
                             : p2::topology::MakeV100Cluster(row.nodes);
    EngineOptions opts;
    opts.algo = row.algo;
    const Engine eng(cluster, opts);
    const auto result = eng.RunExperiment(row.axes, row.reduce);

    int outperforming = 0;
    for (const auto& p : result.placements) outperforming += p.NumOutperforming();
    char counts[64];
    std::snprintf(counts, sizeof(counts), "%d/%lld", outperforming,
                  static_cast<long long>(result.TotalPrograms()));

    for (std::size_t i = 0; i < result.placements.size(); ++i) {
      const auto& p = result.placements[i];
      const double t_ar = p.DefaultAllReduce().measured_seconds;
      const auto& best =
          p.programs[static_cast<std::size_t>(p.BestMeasuredIndex())];
      const double speedup = t_ar / best.measured_seconds;
      ++placements_total;
      if (p.NumOutperforming() > 0) ++outperform_total;
      speedup_sum += speedup;
      speedup_max = std::max(speedup_max, speedup);
      shape_stats[ProgramShape(best.program)].optimal_count++;

      const bool first = i == 0;
      table.AddRow({std::string(row.id) + std::to_string(i + 1), row.system,
                    p2::core::ToString(row.algo),
                    p2::BracketJoin(std::span<const std::int64_t>(row.axes)),
                    first ? FormatSeconds(result.TotalSynthesisSeconds()) : "",
                    first ? counts : "", p.matrix.ToString(),
                    FormatSeconds(t_ar), FormatSeconds(best.measured_seconds),
                    FormatSpeedup(speedup), ProgramShape(best.program)});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Result 5 (RQ3): synthesized programs beat AllReduce on %lld of %lld\n"
      "placements (%.0f%%); average best speedup %.2fx, max %.2fx\n"
      "(paper: 69%% of mappings, avg 1.27x, max 2.04x).\n\n",
      static_cast<long long>(outperform_total),
      static_cast<long long>(placements_total),
      100.0 * static_cast<double>(outperform_total) /
          static_cast<double>(placements_total),
      speedup_sum / static_cast<double>(placements_total), speedup_max);

  std::printf("Fig. 10 analysis: optimal program shapes across the configs\n");
  TextTable shapes({"Shape", "Times optimal"});
  for (const auto& [shape, stats] : shape_stats) {
    shapes.AddRow({shape, std::to_string(stats.optimal_count)});
  }
  std::printf("%s\n", shapes.Render().c_str());
  return 0;
}

}  // namespace

int main() { return main_impl(); }
