// Benchmarks the staged evaluation pipeline (ISSUE 1) against the serial
// monolith it replaced, on a Table-3-style grid: one A100 system, several
// axis configurations, every reduction axis of each. Three variants:
//
//   serial      — per-placement re-synthesis, one thread (the seed's
//                 Engine::RunExperiment monolith)
//   cached      — synthesize once per hierarchy signature, one thread
//   cached+par  — signature cache plus a worker pool for evaluation
//   warm(disk)  — second planner process (ISSUE 3): the whole grid served
//                 from a cache file a previous run persisted, so synthesis
//                 wall-clock collapses to the cost of map lookups
//
// Reported per variant: wall-clock, placements evaluated, unique synthesis
// hierarchies, cache hit rate and the re-synthesis time the cache avoided.
// Prediction-only (like the paper's simulator-guided sweep): the grid's cost
// is dominated by syntax-guided synthesis, which is exactly what the cache
// removes. Exits non-zero if any variant's output diverges from serial or if
// the warm run fails to cut synthesis wall-clock by >= 90%.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/pipeline.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace {

using p2::FormatSeconds;
using p2::TextTable;
using p2::engine::Engine;
using p2::engine::EngineOptions;
using p2::engine::ExperimentResult;
using p2::engine::Pipeline;
using p2::engine::PipelineOptions;

struct GridConfig {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

// A Table-3-style grid on the racked (three-level) A100 system: several axis
// configurations, all reducing over a 16-wide axis. Under kReductionAxes the
// synthesis hierarchy of a placement is the reduction axis's factorization
// over the [rack node gpu] levels — the same four signatures recur across
// every experiment of the grid, which is exactly the reuse the cache mines.
std::vector<GridConfig> MakeGrid() {
  return {
      {{16, 4}, {0}},    {{16, 2, 2}, {0}}, {{4, 16}, {1}},
      {{2, 16, 2}, {1}}, {{2, 2, 16}, {2}}, {{8, 4, 2}, {0}},
  };
}

struct VariantResult {
  double seconds = 0.0;
  double synth_seconds = 0.0;  ///< wall-clock actually spent synthesizing
  std::int64_t placements = 0;
  std::int64_t unique = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t disk_hits = 0;
  double saved_seconds = 0.0;
};

VariantResult RunGrid(const Engine& engine, const PipelineOptions& options,
                      const std::vector<GridConfig>& grid,
                      std::vector<ExperimentResult>* results) {
  VariantResult v;
  // One Pipeline for the whole grid: the signature cache also carries
  // synthesis results across experiments (e.g. reduce=0 of [8 2 2 2] and of
  // [16 2 2] can share hierarchies).
  Pipeline pipeline(engine, options);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& cfg : grid) {
    ExperimentResult result = pipeline.Run(cfg.axes, cfg.reduction_axes);
    v.placements += result.pipeline.num_placements;
    v.unique += result.pipeline.unique_hierarchies;
    v.hits += result.pipeline.cache_hits;
    v.misses += result.pipeline.cache_misses;
    v.disk_hits += result.pipeline.cache_disk_hits;
    v.saved_seconds += result.pipeline.synthesis_seconds_saved;
    v.synth_seconds += result.pipeline.synthesis_seconds;
    if (results != nullptr) results->push_back(std::move(result));
  }
  v.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // No-op unless options.cache_file is set (and not readonly): persists the
  // grid's synthesis results for the warm-from-disk variant.
  std::string error;
  if (!pipeline.SaveCache(&error)) {
    std::fprintf(stderr, "cache save failed: %s\n", error.c_str());
  }
  return v;
}

bool SameResults(const std::vector<ExperimentResult>& a,
                 const std::vector<ExperimentResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t e = 0; e < a.size(); ++e) {
    if (a[e].placements.size() != b[e].placements.size()) return false;
    for (std::size_t p = 0; p < a[e].placements.size(); ++p) {
      const auto& pa = a[e].placements[p];
      const auto& pb = b[e].placements[p];
      if (!(pa.matrix == pb.matrix)) return false;
      if (pa.programs.size() != pb.programs.size()) return false;
      for (std::size_t g = 0; g < pa.programs.size(); ++g) {
        if (pa.programs[g].program != pb.programs[g].program) return false;
        if (pa.programs[g].predicted_seconds !=
            pb.programs[g].predicted_seconds) {
          return false;
        }
        if (pa.programs[g].measured_seconds !=
            pb.programs[g].measured_seconds) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  if (argc > 1) threads = std::max(1, std::atoi(argv[1]));

  EngineOptions opts;
  opts.payload_bytes = 1e9;
  opts.measure = false;  // prediction-only sweep (paper Section 5 workflow)
  const Engine engine(p2::topology::MakeRackedA100Cluster(2, 2), opts);
  const auto grid = MakeGrid();

  std::printf(
      "Pipeline bench: %zu experiments on %s\n"
      "(prediction-only; serial = the seed's per-placement re-synthesis)\n\n",
      grid.size(), engine.cluster().ToString().c_str());

  std::vector<ExperimentResult> serial_results;
  const auto serial =
      RunGrid(engine,
              PipelineOptions{.threads = 1, .cache_synthesis = false},
              grid, &serial_results);

  // The cached variant doubles as the warm variant's seeder: its Pipeline
  // persists the grid's synthesis results on exit (load and save both sit
  // outside RunGrid's timed region, so the timing is unaffected).
  const std::string cache_path =
      (std::filesystem::temp_directory_path() /
       ("p2_bench_pipeline_cache_" + std::to_string(::getpid()) + ".bin"))
          .string();
  PipelineOptions cached_options{.threads = 1, .cache_synthesis = true};
  cached_options.cache_file = cache_path;
  std::vector<ExperimentResult> cached_results;
  const auto cached = RunGrid(engine, cached_options, grid, &cached_results);

  std::vector<ExperimentResult> parallel_results;
  const auto parallel =
      RunGrid(engine,
              PipelineOptions{.threads = threads, .cache_synthesis = true},
              grid, &parallel_results);

  // Warm-from-disk: a fresh Pipeline (standing in for a second planner
  // process) replays the grid from the file the cached variant persisted.
  PipelineOptions warm_options = cached_options;
  warm_options.cache_readonly = true;
  std::vector<ExperimentResult> warm_results;
  const auto warm = RunGrid(engine, warm_options, grid, &warm_results);
  std::filesystem::remove(cache_path);

  TextTable table({"Variant", "Wall(s)", "Synth(s)", "Placements", "Unique",
                   "Cache", "Disk", "Saved(s)", "Speedup"});
  auto row = [&](const char* name, const VariantResult& v) {
    char cache[64];
    std::snprintf(cache, sizeof(cache), "%lld/%lld",
                  static_cast<long long>(v.hits),
                  static_cast<long long>(v.hits + v.misses));
    table.AddRow({name, FormatSeconds(v.seconds),
                  FormatSeconds(v.synth_seconds), std::to_string(v.placements),
                  std::to_string(v.unique), cache,
                  std::to_string(v.disk_hits), FormatSeconds(v.saved_seconds),
                  p2::engine::FormatSpeedup(serial.seconds / v.seconds)});
  };
  row("serial", serial);
  row("cached", cached);
  char label[32];
  std::snprintf(label, sizeof(label), "cached+par(%d)", threads);
  row(label, parallel);
  row("warm(disk)", warm);
  std::printf("%s\n", table.Render().c_str());

  const bool identical = SameResults(serial_results, cached_results) &&
                         SameResults(serial_results, parallel_results) &&
                         SameResults(serial_results, warm_results);
  std::printf("outputs identical across variants: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("cached+parallel speedup over serial: %.2fx\n",
              serial.seconds / parallel.seconds);

  // ISSUE 3 acceptance: warm from disk must remove >= 90% of the cached
  // run's synthesis wall-clock (every signature is a disk hit, so nothing is
  // synthesized). The absolute floor guards against flakiness when the cold
  // synthesis time is itself near the clock's resolution.
  const double reduction =
      cached.synth_seconds > 0.0
          ? 1.0 - warm.synth_seconds / cached.synth_seconds
          : 1.0;
  const bool warm_ok =
      warm.misses == 0 &&
      (reduction >= 0.9 || warm.synth_seconds < 5e-3);
  std::printf(
      "warm-from-disk synthesis time: %.4fs vs %.4fs cold (%.1f%% reduction, "
      "%lld disk hits): %s\n",
      warm.synth_seconds, cached.synth_seconds, 100.0 * reduction,
      static_cast<long long>(warm.disk_hits),
      warm_ok ? "ok" : "NO — BUG");
  return identical && warm_ok ? 0 : 1;
}
