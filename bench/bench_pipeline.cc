// Benchmarks the staged evaluation pipeline (ISSUE 1) against the serial
// monolith it replaced, on a Table-3-style grid: one A100 system, several
// axis configurations, every reduction axis of each. Five variants, all
// running through a PlannerService (ISSUE 4) — the process-wide owner of the
// shared synthesis cache, worker pool and persistent store:
//
//   serial        — per-placement re-synthesis, one thread (the seed's
//                   Engine::RunExperiment monolith)
//   cached        — synthesize once per hierarchy signature, one thread
//   cached+par    — signature cache plus a shared worker pool
//   warm(disk)    — second planner process (ISSUE 3): the whole grid served
//                   from a cache file a previous run persisted, so synthesis
//                   wall-clock collapses to the cost of map lookups
//   concurrent(N) — ISSUE 4: N overlapping queries Submit()ted to one shared
//                   service, their work items interleaved on one pool, with
//                   cross-query signature dedup (including in-flight dedup:
//                   two queries racing on one uncached signature synthesize
//                   it once)
//   multi-tenant  — ISSUE 5: the same grid for TWO distinct clusters (a
//                   4-node A100 system and an 8-node V100 system, both 64
//                   devices) through ONE multi-tenant service; their
//                   reduction factorizations overlap, so the shared cache
//                   must synthesize strictly fewer times in total than two
//                   independent single-cluster services — with per-request
//                   results byte-identical to the dedicated services
//
// Plus a cancel-storm smoke (ISSUE 7): the grid submitted concurrently with
// a deterministic ~50% of the handles cancelled mid-flight — survivors must
// stay byte-identical to serial (cancellation never perturbs its neighbors).
//
// And a contended tail-latency A/B (ISSUE 9): every worker starts on a hot
// config whose first synthesis is fault-stalled for a long beat, with
// independent background traffic queued behind, run once under the
// parked-waiter scheduler (defer_inflight=false) and once under the
// deferral-aware one. Parked workers sleep through the stall and the
// background requests inherit it as queueing delay; deferring workers run
// that traffic during the stall. The deferred run must park no pool thread
// (waiter_parks == 0), actually defer (deferred_lookups > 0), stay
// byte-identical to serial, and land a strictly lower exact client-side p99
// than the parked baseline. Exact per-request latencies (sorted, rank-based)
// feed the gate — histogram buckets are too coarse for a strict comparison.
//
// And a sharded scale-out gate (ISSUE 10): the grid split by index across 2
// worker services behind an in-process cache plane (a PlannerServer in
// cache-server mode, each worker consulting it over the framed-TCP
// RemoteCacheBackend). The workers' combined synthesis-run total must stay
// strictly below 2 independent full-grid runs, at least one signature must
// be served off the plane, and the shard blocks — merged in reverse order —
// must be byte-identical to the serial rendering of the whole grid.
//
// Everything is also written machine-readably to BENCH_pipeline.json
// (override the path with --json=PATH).
//
// Reported per variant: wall-clock, placements evaluated, unique synthesis
// hierarchies, cache hit rate and the re-synthesis time the cache avoided.
// Prediction-only (like the paper's simulator-guided sweep): the grid's cost
// is dominated by syntax-guided synthesis, which is exactly what the cache
// removes. Exits non-zero if any variant's output diverges from serial, if
// the warm run fails to cut synthesis wall-clock by >= 90%, or if the
// concurrent variant fails its dedup gate (strictly fewer total synthesis
// runs than the same queries on independent services).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/format.h"
#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "engine/service.h"
#include "server/planner_server.h"
#include "server/remote_cache_client.h"
#include "topology/presets.h"

namespace {

using p2::FormatSeconds;
using p2::TextTable;
using p2::engine::CanonicalResultText;
using p2::engine::Engine;
using p2::engine::EngineOptions;
using p2::engine::ExperimentResult;
using p2::engine::PlanCancelled;
using p2::engine::PlanHandle;
using p2::engine::PlannerService;
using p2::engine::PlannerServiceOptions;
using p2::engine::PlanRequest;

struct GridConfig {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

// A Table-3-style grid on the racked (three-level) A100 system: several axis
// configurations, all reducing over a 16-wide axis. Under kReductionAxes the
// synthesis hierarchy of a placement is the reduction axis's factorization
// over the [rack node gpu] levels — the same four signatures recur across
// every experiment of the grid, which is exactly the reuse the cache mines
// (and, for the concurrent variant, the cross-query dedup the shared
// service mines).
std::vector<GridConfig> MakeGrid() {
  return {
      {{16, 4}, {0}},    {{16, 2, 2}, {0}}, {{4, 16}, {1}},
      {{2, 16, 2}, {1}}, {{2, 2, 16}, {2}}, {{8, 4, 2}, {0}},
  };
}

struct VariantResult {
  double seconds = 0.0;
  double synth_seconds = 0.0;  ///< wall-clock actually spent synthesizing
  std::int64_t placements = 0;
  std::int64_t unique = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t disk_hits = 0;
  double saved_seconds = 0.0;
  /// Service-side submit→complete p99 (histogram bucket upper bound,
  /// seconds) — the machine-readable per-variant tail for the JSON dump.
  double p99_seconds = 0.0;
};

void Accumulate(const ExperimentResult& result, VariantResult* v) {
  v->placements += result.pipeline.num_placements;
  v->unique += result.pipeline.unique_hierarchies;
  v->hits += result.pipeline.cache_hits;
  v->misses += result.pipeline.cache_misses;
  v->disk_hits += result.pipeline.cache_disk_hits;
  v->saved_seconds += result.pipeline.synthesis_seconds_saved;
  v->synth_seconds += result.pipeline.synthesis_seconds;
}

VariantResult RunGrid(const Engine& engine,
                      const PlannerServiceOptions& options,
                      bool cache_synthesis,
                      const std::vector<GridConfig>& grid,
                      std::vector<ExperimentResult>* results) {
  VariantResult v;
  // One service for the whole grid: the shared cache carries synthesis
  // results across experiments (e.g. reduce=0 of [8 2 2 2] and of [16 2 2]
  // can share hierarchies).
  PlannerService service(engine, options);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& cfg : grid) {
    PlanRequest request;
    request.axes = cfg.axes;
    request.reduction_axes = cfg.reduction_axes;
    request.cache_synthesis = cache_synthesis;
    ExperimentResult result = service.Plan(std::move(request));
    Accumulate(result, &v);
    if (results != nullptr) results->push_back(std::move(result));
  }
  v.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  v.p99_seconds = service.stats().latency_p99_seconds;
  // No-op unless options.cache_file is set (and not readonly): persists the
  // grid's synthesis results for the warm-from-disk variant.
  std::string error;
  if (!service.SaveCache(&error)) {
    std::fprintf(stderr, "cache save failed: %s\n", error.c_str());
  }
  return v;
}

// The concurrent-queries variant: all configs Submit()ted at once to one
// shared service, collected in submission order.
VariantResult RunGridConcurrently(const Engine& engine, int threads,
                                  const std::vector<GridConfig>& grid,
                                  std::vector<ExperimentResult>* results,
                                  std::int64_t* total_misses) {
  VariantResult v;
  PlannerService service(engine,
                         PlannerServiceOptions{.threads = threads,
                                               .cache_file = {},
                                               .cache_readonly = false});
  const auto start = std::chrono::steady_clock::now();
  std::vector<PlanHandle> futures;
  futures.reserve(grid.size());
  for (const auto& cfg : grid) {
    PlanRequest request;
    request.axes = cfg.axes;
    request.reduction_axes = cfg.reduction_axes;
    futures.push_back(service.Submit(std::move(request)));
  }
  for (auto& future : futures) {
    ExperimentResult result = future.get();
    Accumulate(result, &v);
    if (results != nullptr) results->push_back(std::move(result));
  }
  v.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto stats = service.stats();
  *total_misses = stats.cache.misses;
  v.p99_seconds = stats.latency_p99_seconds;
  return v;
}

// The multi-tenant variant: both clusters' grids Submit()ted at once to one
// shared service, each request naming its cluster.
VariantResult RunGridMultiTenant(const std::vector<p2::topology::Cluster>& clusters,
                                 const EngineOptions& engine_options,
                                 int threads,
                                 const std::vector<GridConfig>& grid,
                                 std::vector<ExperimentResult>* results,
                                 std::int64_t* total_misses,
                                 std::int64_t* cross_tenant_hits) {
  VariantResult v;
  PlannerServiceOptions options;
  options.threads = threads;
  options.engine = engine_options;
  PlannerService service(options);
  const auto start = std::chrono::steady_clock::now();
  std::vector<PlanHandle> futures;
  futures.reserve(clusters.size() * grid.size());
  for (const auto& cluster : clusters) {
    for (const auto& cfg : grid) {
      PlanRequest request;
      request.axes = cfg.axes;
      request.reduction_axes = cfg.reduction_axes;
      request.cluster = cluster;
      futures.push_back(service.Submit(std::move(request)));
    }
  }
  for (auto& future : futures) {
    ExperimentResult result = future.get();
    Accumulate(result, &v);
    if (results != nullptr) results->push_back(std::move(result));
  }
  v.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto stats = service.stats();
  *total_misses = stats.cache.misses;
  *cross_tenant_hits = stats.cache.cross_tenant_hits;
  v.p99_seconds = stats.latency_p99_seconds;
  return v;
}

// The contended tail-latency A/B (ISSUE 9). The scenario isolates the one
// structural difference between the two schedulers: what a pool thread does
// while a signature it needs is being synthesized by someone else.
//
//   - `copies` copies of the grid's FIRST config go in first — at least as
//     many as there are threads, so every worker starts on the hot config.
//   - A fault hook stalls exactly ONE synthesis layer (the first to run,
//     necessarily a hot-config signature) for a long beat. The owner sleeps
//     in it; every other hot copy promptly finds that signature in flight.
//   - Two copies each of the remaining configs queue behind as independent
//     background traffic.
//
// Parked baseline: the non-owner workers block inside GetOrSynthesize for
// the whole stall, the background requests wait for the wake-up, and their
// queueing delay lands on the tail. Deferral: the same workers register
// continuations and run the background requests DURING the stall, so the
// tail is the stall itself, not the stall plus everything behind it. That
// ordering — not a throughput delta — is what the strict p99 gate checks.
//
// One collector thread per handle records the exact submit→complete latency
// the moment its request resolves; the p50/p99 are rank-based over the
// sorted exact samples (the strict deferred-vs-parked gate needs finer
// resolution than the service histogram's log2 buckets).
struct ContendedResult {
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  std::int64_t deferred_lookups = 0;
  std::int64_t dedup_waits = 0;
  std::int64_t waiter_parks = 0;
  bool identical = true;  ///< every output byte-identical to serial
};

ContendedResult RunContended(const Engine& engine, int threads, bool defer,
                             const std::vector<GridConfig>& grid, int copies,
                             const std::vector<ExperimentResult>& serial) {
  ContendedResult r;
  PlannerServiceOptions options;
  options.threads = threads;
  options.defer_inflight = defer;
  PlannerService service(engine, options);
  // Armed-once: only the FIRST frontier layer to synthesize stalls — the
  // hot-signature owner. (exchange first, so the sleeping call has already
  // disarmed the hook for everyone else.)
  auto armed = std::make_shared<std::atomic<bool>>(true);
  p2::FaultScope stall([armed](std::string_view point) {
    if (point == "synth.layer" && armed->exchange(false)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  });
  // `copies` hot requests (grid[0]) first, then two copies of each other
  // config as background traffic.
  std::vector<std::size_t> config_of;
  for (int c = 0; c < copies; ++c) config_of.push_back(0);
  for (std::size_t g = 1; g < grid.size(); ++g) {
    config_of.push_back(g);
    config_of.push_back(g);
  }
  const std::size_t n = config_of.size();
  std::vector<PlanHandle> handles;
  handles.reserve(n);
  std::vector<std::chrono::steady_clock::time_point> submitted(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cfg = grid[config_of[i]];
    PlanRequest request;
    request.axes = cfg.axes;
    request.reduction_axes = cfg.reduction_axes;
    submitted[handles.size()] = std::chrono::steady_clock::now();
    handles.push_back(service.Submit(std::move(request)));
  }
  std::vector<double> latencies(n);
  std::vector<ExperimentResult> results(n);
  std::vector<std::thread> collectors;
  collectors.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    collectors.emplace_back([&, i] {
      results[i] = handles[i].get();
      latencies[i] = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - submitted[i])
                         .count();
    });
  }
  for (auto& t : collectors) t.join();
  for (std::size_t i = 0; i < n; ++i) {
    if (CanonicalResultText(results[i]) !=
        CanonicalResultText(serial[config_of[i]])) {
      r.identical = false;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const auto rank = [&](double p) {
    std::size_t k =
        static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
    if (k < 1) k = 1;
    if (k > n) k = n;
    return latencies[k - 1];
  };
  r.p50_seconds = rank(0.50);
  r.p99_seconds = rank(0.99);
  const auto stats = service.stats();
  r.deferred_lookups = stats.cache.deferred_lookups;
  r.dedup_waits = stats.cache.dedup_waits;
  r.waiter_parks = stats.cache.waiter_parks;
  return r;
}

// The cancel-storm smoke (ISSUE 7): the whole grid Submit()ted at once,
// then a deterministic ~50% of the handles cancelled while the requests are
// (possibly) in flight. The robustness contract under test: cancellation
// may only abort the requests it targets — every survivor's output stays
// byte-identical to the serial reference, and no un-cancelled request may
// abort. A cancelled request that wins the race and completes anyway is
// fine (completion beats abortion); its output must then also match.
bool RunCancelStorm(const Engine& engine, int threads,
                    const std::vector<GridConfig>& grid,
                    const std::vector<ExperimentResult>& serial_results,
                    std::int64_t* cancelled_out) {
  std::mt19937 rng(20260808);
  PlannerService service(engine, PlannerServiceOptions{.threads = threads});
  std::vector<PlanHandle> handles;
  std::vector<bool> storm;
  for (const auto& cfg : grid) {
    PlanRequest request;
    request.axes = cfg.axes;
    request.reduction_axes = cfg.reduction_axes;
    handles.push_back(service.Submit(std::move(request)));
    storm.push_back(rng() % 2 == 0);
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (storm[i]) handles[i].Cancel();
  }
  bool ok = true;
  std::int64_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    try {
      const ExperimentResult result = handles[i].get();
      if (CanonicalResultText(result) !=
          CanonicalResultText(serial_results[i])) {
        ok = false;
      }
    } catch (const PlanCancelled&) {
      ++cancelled;
      if (!storm[i]) ok = false;  // only targeted requests may abort
    }
  }
  *cancelled_out = cancelled;
  return ok;
}

bool SameResults(const std::vector<ExperimentResult>& a,
                 const std::vector<ExperimentResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t e = 0; e < a.size(); ++e) {
    // Byte-identity over the deterministic portion (programs, predictions,
    // measurements) — the very contract the service's deterministic merge
    // promises at any thread count and under any request overlap.
    if (CanonicalResultText(a[e]) != CanonicalResultText(b[e])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  std::string json_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      threads = std::max(1, std::atoi(argv[i]));
    }
  }

  EngineOptions opts;
  opts.payload_bytes = 1e9;
  opts.measure = false;  // prediction-only sweep (paper Section 5 workflow)
  const Engine engine(p2::topology::MakeRackedA100Cluster(2, 2), opts);
  const auto grid = MakeGrid();

  std::printf(
      "Pipeline bench: %zu experiments on %s\n"
      "(prediction-only; serial = the seed's per-placement re-synthesis)\n\n",
      grid.size(), engine.cluster().ToString().c_str());

  std::vector<ExperimentResult> serial_results;
  const auto serial = RunGrid(engine, PlannerServiceOptions{},
                              /*cache_synthesis=*/false, grid, &serial_results);

  // The cached variant doubles as the warm variant's seeder: its service
  // persists the grid's synthesis results on exit (load and save both sit
  // outside the timed region, so the timing is unaffected).
  const std::string cache_path =
      (std::filesystem::temp_directory_path() /
       ("p2_bench_pipeline_cache_" + std::to_string(::getpid()) + ".bin"))
          .string();
  PlannerServiceOptions cached_options;
  cached_options.cache_file = cache_path;
  std::vector<ExperimentResult> cached_results;
  const auto cached = RunGrid(engine, cached_options, /*cache_synthesis=*/true,
                              grid, &cached_results);

  std::vector<ExperimentResult> parallel_results;
  const auto parallel =
      RunGrid(engine, PlannerServiceOptions{.threads = threads},
              /*cache_synthesis=*/true, grid, &parallel_results);

  // Warm-from-disk: a fresh service (standing in for a second planner
  // process) replays the grid from the file the cached variant persisted.
  PlannerServiceOptions warm_options = cached_options;
  warm_options.cache_readonly = true;
  std::vector<ExperimentResult> warm_results;
  const auto warm = RunGrid(engine, warm_options, /*cache_synthesis=*/true,
                            grid, &warm_results);
  std::filesystem::remove(cache_path);

  // ISSUE 4 acceptance setup: N overlapping queries on one shared service
  // vs the same N queries on N independent single-query services. The
  // shared run must synthesize strictly fewer times in total — every
  // signature two queries share is synthesized once between them instead of
  // once each.
  constexpr std::size_t kConcurrentQueries = 4;
  const std::vector<GridConfig> queries(grid.begin(),
                                        grid.begin() + kConcurrentQueries);
  std::int64_t independent_misses = 0;
  for (const auto& cfg : queries) {
    PlannerService service(engine, PlannerServiceOptions{});
    PlanRequest request;
    request.axes = cfg.axes;
    request.reduction_axes = cfg.reduction_axes;
    const auto result = service.Plan(std::move(request));
    independent_misses += result.pipeline.cache_misses;
  }
  std::vector<ExperimentResult> concurrent_results;
  std::int64_t shared_misses = 0;
  const auto concurrent = RunGridConcurrently(
      engine, threads, queries, &concurrent_results, &shared_misses);

  // ISSUE 5 acceptance setup: the same grid for two DISTINCT clusters — a
  // flat 4-node A100 system ([4 16] hierarchy) and an 8-node V100 system
  // ([8 8]), both 64 devices — once through two independent single-cluster
  // services, once through one multi-tenant service. The hierarchy
  // signature is cluster-independent, so the reduction factorizations the
  // two machines share (e.g. (2,8) and (4,4) of a 16-wide axis) must dedup
  // across tenants: strictly fewer misses, nonzero cross-tenant hits,
  // per-request outputs byte-identical to the dedicated services.
  const auto a100_cluster = p2::topology::MakeA100Cluster(4);
  const auto v100_cluster = p2::topology::MakeV100Cluster(8);
  const Engine a100_engine(a100_cluster, opts);
  const Engine v100_engine(v100_cluster, opts);
  std::vector<ExperimentResult> dedicated_results;
  std::int64_t dedicated_misses = 0;
  for (const Engine* tenant_engine : {&a100_engine, &v100_engine}) {
    PlannerService service(*tenant_engine, PlannerServiceOptions{});
    for (const auto& cfg : grid) {
      PlanRequest request;
      request.axes = cfg.axes;
      request.reduction_axes = cfg.reduction_axes;
      dedicated_results.push_back(service.Plan(std::move(request)));
    }
    dedicated_misses += service.stats().cache.misses;
  }
  std::vector<ExperimentResult> tenant_results;
  std::int64_t tenant_misses = 0;
  std::int64_t cross_tenant_hits = 0;
  const auto multi_tenant = RunGridMultiTenant(
      {a100_cluster, v100_cluster}, opts, threads, grid, &tenant_results,
      &tenant_misses, &cross_tenant_hits);

  TextTable table({"Variant", "Wall(s)", "Synth(s)", "Placements", "Unique",
                   "Cache", "Disk", "Saved(s)", "Speedup"});
  auto row = [&](const char* name, const VariantResult& v) {
    char cache[64];
    std::snprintf(cache, sizeof(cache), "%lld/%lld",
                  static_cast<long long>(v.hits),
                  static_cast<long long>(v.hits + v.misses));
    table.AddRow({name, FormatSeconds(v.seconds),
                  FormatSeconds(v.synth_seconds), std::to_string(v.placements),
                  std::to_string(v.unique), cache,
                  std::to_string(v.disk_hits), FormatSeconds(v.saved_seconds),
                  p2::engine::FormatSpeedup(serial.seconds / v.seconds)});
  };
  row("serial", serial);
  row("cached", cached);
  char label[32];
  std::snprintf(label, sizeof(label), "cached+par(%d)", threads);
  row(label, parallel);
  row("warm(disk)", warm);
  std::snprintf(label, sizeof(label), "concurrent(%zu)", kConcurrentQueries);
  row(label, concurrent);
  row("multi-tenant(2)", multi_tenant);
  std::printf("%s\n", table.Render().c_str());

  const std::vector<ExperimentResult> serial_queries(
      serial_results.begin(), serial_results.begin() + kConcurrentQueries);
  const bool identical = SameResults(serial_results, cached_results) &&
                         SameResults(serial_results, parallel_results) &&
                         SameResults(serial_results, warm_results) &&
                         SameResults(serial_queries, concurrent_results) &&
                         SameResults(dedicated_results, tenant_results);
  std::printf("outputs identical across variants: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("cached+parallel speedup over serial: %.2fx\n",
              serial.seconds / parallel.seconds);

  // ISSUE 3 acceptance: warm from disk must remove >= 90% of the cached
  // run's synthesis wall-clock (every signature is a disk hit, so nothing is
  // synthesized). The absolute floor guards against flakiness when the cold
  // synthesis time is itself near the clock's resolution.
  const double reduction =
      cached.synth_seconds > 0.0
          ? 1.0 - warm.synth_seconds / cached.synth_seconds
          : 1.0;
  const bool warm_ok =
      warm.misses == 0 &&
      (reduction >= 0.9 || warm.synth_seconds < 5e-3);
  std::printf(
      "warm-from-disk synthesis time: %.4fs vs %.4fs cold (%.1f%% reduction, "
      "%lld disk hits): %s\n",
      warm.synth_seconds, cached.synth_seconds, 100.0 * reduction,
      static_cast<long long>(warm.disk_hits),
      warm_ok ? "ok" : "NO — BUG");

  // ISSUE 4 acceptance: overlapping queries through one shared service must
  // synthesize strictly fewer times in total than independent services —
  // the shared-signature dedup across queries.
  const bool concurrent_ok = shared_misses < independent_misses;
  std::printf(
      "concurrent(%zu) total synthesis runs: %lld shared vs %lld "
      "independent: %s\n",
      kConcurrentQueries, static_cast<long long>(shared_misses),
      static_cast<long long>(independent_misses),
      concurrent_ok ? "ok" : "NO — BUG");

  // ISSUE 5 acceptance: two overlapping-hierarchy tenants through one
  // multi-tenant service must synthesize strictly fewer times in total than
  // two independent single-cluster services, and the sharing must show up
  // as cross-tenant hits.
  const bool multi_tenant_ok =
      tenant_misses < dedicated_misses && cross_tenant_hits > 0;
  std::printf(
      "multi-tenant(2) total synthesis runs: %lld shared vs %lld dedicated "
      "(%lld cross-tenant hits): %s\n",
      static_cast<long long>(tenant_misses),
      static_cast<long long>(dedicated_misses),
      static_cast<long long>(cross_tenant_hits),
      multi_tenant_ok ? "ok" : "NO — BUG");

  // ISSUE 7 acceptance: random mid-flight cancellation must never perturb
  // the survivors — their outputs stay byte-identical to the serial run.
  std::int64_t storm_cancelled = 0;
  const bool storm_ok =
      RunCancelStorm(engine, threads, grid, serial_results, &storm_cancelled);
  std::printf(
      "cancel-storm: %lld/%zu requests aborted, survivors byte-identical to "
      "serial: %s\n",
      static_cast<long long>(storm_cancelled), grid.size(),
      storm_ok ? "ok" : "NO — BUG");

  // ISSUE 9 acceptance: under contention (every worker racing on one hot
  // config whose owner is stalled, independent traffic queued behind), the
  // deferral-aware scheduler must never park a pool thread, must actually
  // defer, must stay byte-identical to serial, and must beat the
  // parked-waiter baseline's exact client-side p99 at the same thread count.
  constexpr int kContendedThreads = 3;
  constexpr int kContendedCopies = 4;  // hot copies, >= threads
  const int kContendedBackground = 2 * (static_cast<int>(grid.size()) - 1);
  const auto parked = RunContended(engine, kContendedThreads, /*defer=*/false,
                                   grid, kContendedCopies, serial_results);
  const auto deferred = RunContended(engine, kContendedThreads, /*defer=*/true,
                                     grid, kContendedCopies, serial_results);
  std::printf(
      "contended(%d hot + %d background, %d threads): deferred p99 %.3f ms / "
      "p50 %.3f ms (%lld deferred lookups) vs parked p99 %.3f ms / p50 "
      "%.3f ms (%lld in-flight waits, %lld parks)\n",
      kContendedCopies, kContendedBackground, kContendedThreads,
      deferred.p99_seconds * 1e3, deferred.p50_seconds * 1e3,
      static_cast<long long>(deferred.deferred_lookups),
      parked.p99_seconds * 1e3, parked.p50_seconds * 1e3,
      static_cast<long long>(parked.dedup_waits),
      static_cast<long long>(parked.waiter_parks));
  const bool contended_ok =
      deferred.waiter_parks == 0 && deferred.deferred_lookups > 0 &&
      deferred.identical && parked.identical &&
      deferred.p99_seconds < parked.p99_seconds;
  std::printf(
      "contended gate: waiter_parks=%lld deferred_lookups=%lld identical=%s "
      "p99 %.3fms < parked %.3fms: %s\n",
      static_cast<long long>(deferred.waiter_parks),
      static_cast<long long>(deferred.deferred_lookups),
      deferred.identical && parked.identical ? "yes" : "NO",
      deferred.p99_seconds * 1e3, parked.p99_seconds * 1e3,
      contended_ok ? "ok" : "NO — BUG");

  // ISSUE 10 acceptance: the grid sharded across worker services behind a
  // remote cache plane (an in-process PlannerServer in cache-server mode,
  // each worker consulting it through the framed-TCP RemoteCacheBackend).
  // The shards are disjoint configs but their synthesis signatures overlap,
  // so the plane's ownership grants must keep the workers' combined
  // synthesis-run total strictly below N independent full-grid runs — and
  // the shard blocks, merged in any order, must be byte-identical to the
  // serial rendering of the whole grid.
  constexpr int kShardWorkers = 2;
  const auto block_of = [&](std::size_t i, const ExperimentResult& result) {
    return p2::engine::ShardBlock{
        static_cast<std::int64_t>(i),
        p2::engine::ExperimentConfig{grid[i].axes, grid[i].reduction_axes}
            .ToString(),
        CanonicalResultText(result)};
  };
  std::string serial_grid_text;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    serial_grid_text += p2::engine::RenderShardBlock(block_of(i, serial_results[i]));
  }
  PlannerService plane_service(engine, PlannerServiceOptions{});
  p2::server::PlannerServerOptions plane_options;
  plane_options.cache_server = true;
  p2::server::PlannerServer plane(plane_service, plane_options);
  std::vector<std::string> shard_texts(kShardWorkers);
  std::vector<std::int64_t> worker_misses(kShardWorkers, 0);
  std::vector<std::int64_t> worker_remote_hits(kShardWorkers, 0);
  std::vector<std::int64_t> worker_remote_errors(kShardWorkers, 0);
  {
    std::vector<std::thread> shard_threads;
    for (int w = 0; w < kShardWorkers; ++w) {
      shard_threads.emplace_back([&, w] {
        PlannerServiceOptions options;
        options.threads = 2;
        options.remote_cache =
            std::make_shared<p2::server::RemoteCacheClient>(plane.port());
        PlannerService worker(engine, options);
        for (std::size_t i : p2::engine::ShardIndices(
                 grid.size(), w, kShardWorkers)) {
          PlanRequest request;
          request.axes = grid[i].axes;
          request.reduction_axes = grid[i].reduction_axes;
          shard_texts[static_cast<std::size_t>(w)] +=
              p2::engine::RenderShardBlock(
                  block_of(i, worker.Plan(std::move(request))));
        }
        const auto stats = worker.stats();
        worker_misses[static_cast<std::size_t>(w)] = stats.cache.misses;
        worker_remote_hits[static_cast<std::size_t>(w)] =
            stats.cache.remote_hits;
        worker_remote_errors[static_cast<std::size_t>(w)] =
            stats.cache.remote_errors;
      });
    }
    for (auto& t : shard_threads) t.join();
  }
  std::int64_t sharded_misses = 0, sharded_remote_hits = 0,
               sharded_remote_errors = 0;
  for (int w = 0; w < kShardWorkers; ++w) {
    sharded_misses += worker_misses[static_cast<std::size_t>(w)];
    sharded_remote_hits += worker_remote_hits[static_cast<std::size_t>(w)];
    sharded_remote_errors += worker_remote_errors[static_cast<std::size_t>(w)];
  }
  // Merge with the shard files in reverse order: the merge must not care.
  std::vector<p2::engine::ShardBlock> shard_blocks;
  bool sharded_identical = true;
  {
    std::string shard_error;
    for (int w = kShardWorkers - 1; w >= 0; --w) {
      std::vector<p2::engine::ShardBlock> parsed;
      if (!p2::engine::ParseShardBlocks(
              shard_texts[static_cast<std::size_t>(w)], &parsed,
              &shard_error)) {
        std::fprintf(stderr, "shard %d unparsable: %s\n", w,
                     shard_error.c_str());
        sharded_identical = false;
      }
      shard_blocks.insert(shard_blocks.end(), parsed.begin(), parsed.end());
    }
    std::string merged;
    if (!p2::engine::MergeShardBlocks(std::move(shard_blocks),
                                      static_cast<std::int64_t>(grid.size()),
                                      &merged, &shard_error)) {
      std::fprintf(stderr, "shard merge failed: %s\n", shard_error.c_str());
      sharded_identical = false;
    } else if (merged != serial_grid_text) {
      sharded_identical = false;
    }
  }
  // N independent runs = N processes each covering the full grid with a
  // cold local cache: N x the cached variant's synthesis-run count.
  const std::int64_t independent_sharded_misses = kShardWorkers * cached.misses;
  const bool sharded_ok = sharded_misses < independent_sharded_misses &&
                          sharded_remote_hits > 0 &&
                          sharded_remote_errors == 0 && sharded_identical;
  std::printf(
      "sharded gate: %lld synthesis runs across %d workers < %lld "
      "independent, %lld remote hits, %lld remote errors, merged "
      "byte-identical=%s: %s\n",
      static_cast<long long>(sharded_misses), kShardWorkers,
      static_cast<long long>(independent_sharded_misses),
      static_cast<long long>(sharded_remote_hits),
      static_cast<long long>(sharded_remote_errors),
      sharded_identical ? "yes" : "NO", sharded_ok ? "ok" : "NO — BUG");

  // Machine-readable dump (satellite of ISSUE 9): every variant's headline
  // numbers plus the contended A/B, for CI artifacts and trend tracking.
  {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    } else {
      const std::pair<std::string, const VariantResult*> variants[] = {
          {"serial", &serial},
          {"cached", &cached},
          {"cached+par", &parallel},
          {"warm_disk", &warm},
          {"concurrent", &concurrent},
          {"multi_tenant", &multi_tenant},
      };
      std::fprintf(f, "{\n  \"threads\": %d,\n  \"variants\": [\n", threads);
      bool first = true;
      for (const auto& [name, v] : variants) {
        std::fprintf(
            f,
            "%s    {\"name\": \"%s\", \"misses\": %lld, \"hits\": %lld, "
            "\"seconds\": %.6f, \"synth_seconds\": %.6f, \"p99_ms\": %.6f}",
            first ? "" : ",\n", name.c_str(),
            static_cast<long long>(v->misses), static_cast<long long>(v->hits),
            v->seconds, v->synth_seconds, v->p99_seconds * 1e3);
        first = false;
      }
      std::fprintf(
          f,
          "\n  ],\n  \"contended\": {\n"
          "    \"threads\": %d, \"hot_copies\": %d, \"background\": %d,\n"
          "    \"parked_p50_ms\": %.6f, \"parked_p99_ms\": %.6f,\n"
          "    \"deferred_p50_ms\": %.6f, \"deferred_p99_ms\": %.6f,\n"
          "    \"deferred_lookups\": %lld, \"waiter_parks\": %lld,\n"
          "    \"identical\": %s, \"ok\": %s\n  },\n",
          kContendedThreads, kContendedCopies, kContendedBackground,
          parked.p50_seconds * 1e3,
          parked.p99_seconds * 1e3, deferred.p50_seconds * 1e3,
          deferred.p99_seconds * 1e3,
          static_cast<long long>(deferred.deferred_lookups),
          static_cast<long long>(deferred.waiter_parks),
          deferred.identical && parked.identical ? "true" : "false",
          contended_ok ? "true" : "false");
      std::fprintf(
          f,
          "  \"sharded\": {\n"
          "    \"workers\": %d, \"total_misses\": %lld,\n"
          "    \"independent_misses\": %lld, \"remote_hits\": %lld,\n"
          "    \"remote_errors\": %lld, \"identical\": %s, \"ok\": %s\n"
          "  }\n}\n",
          kShardWorkers, static_cast<long long>(sharded_misses),
          static_cast<long long>(independent_sharded_misses),
          static_cast<long long>(sharded_remote_hits),
          static_cast<long long>(sharded_remote_errors),
          sharded_identical ? "true" : "false",
          sharded_ok ? "true" : "false");
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return identical && warm_ok && concurrent_ok && multi_tenant_ok &&
                 storm_ok && contended_ok && sharded_ok
             ? 0
             : 1;
}
