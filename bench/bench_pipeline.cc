// Benchmarks the staged evaluation pipeline (ISSUE 1) against the serial
// monolith it replaced, on a Table-3-style grid: one A100 system, several
// axis configurations, every reduction axis of each. Three variants:
//
//   serial      — per-placement re-synthesis, one thread (the seed's
//                 Engine::RunExperiment monolith)
//   cached      — synthesize once per hierarchy signature, one thread
//   cached+par  — signature cache plus a worker pool for evaluation
//
// Reported per variant: wall-clock, placements evaluated, unique synthesis
// hierarchies, cache hit rate and the re-synthesis time the cache avoided.
// Prediction-only (like the paper's simulator-guided sweep): the grid's cost
// is dominated by syntax-guided synthesis, which is exactly what the cache
// removes.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/pipeline.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace {

using p2::FormatSeconds;
using p2::TextTable;
using p2::engine::Engine;
using p2::engine::EngineOptions;
using p2::engine::ExperimentResult;
using p2::engine::Pipeline;
using p2::engine::PipelineOptions;

struct GridConfig {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

// A Table-3-style grid on the racked (three-level) A100 system: several axis
// configurations, all reducing over a 16-wide axis. Under kReductionAxes the
// synthesis hierarchy of a placement is the reduction axis's factorization
// over the [rack node gpu] levels — the same four signatures recur across
// every experiment of the grid, which is exactly the reuse the cache mines.
std::vector<GridConfig> MakeGrid() {
  return {
      {{16, 4}, {0}},    {{16, 2, 2}, {0}}, {{4, 16}, {1}},
      {{2, 16, 2}, {1}}, {{2, 2, 16}, {2}}, {{8, 4, 2}, {0}},
  };
}

struct VariantResult {
  double seconds = 0.0;
  std::int64_t placements = 0;
  std::int64_t unique = 0;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  double saved_seconds = 0.0;
};

VariantResult RunGrid(const Engine& engine, const PipelineOptions& options,
                      const std::vector<GridConfig>& grid,
                      std::vector<ExperimentResult>* results) {
  VariantResult v;
  // One Pipeline for the whole grid: the signature cache also carries
  // synthesis results across experiments (e.g. reduce=0 of [8 2 2 2] and of
  // [16 2 2] can share hierarchies).
  Pipeline pipeline(engine, options);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& cfg : grid) {
    ExperimentResult result = pipeline.Run(cfg.axes, cfg.reduction_axes);
    v.placements += result.pipeline.num_placements;
    v.unique += result.pipeline.unique_hierarchies;
    v.hits += result.pipeline.cache_hits;
    v.misses += result.pipeline.cache_misses;
    v.saved_seconds += result.pipeline.synthesis_seconds_saved;
    if (results != nullptr) results->push_back(std::move(result));
  }
  v.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return v;
}

bool SameResults(const std::vector<ExperimentResult>& a,
                 const std::vector<ExperimentResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t e = 0; e < a.size(); ++e) {
    if (a[e].placements.size() != b[e].placements.size()) return false;
    for (std::size_t p = 0; p < a[e].placements.size(); ++p) {
      const auto& pa = a[e].placements[p];
      const auto& pb = b[e].placements[p];
      if (!(pa.matrix == pb.matrix)) return false;
      if (pa.programs.size() != pb.programs.size()) return false;
      for (std::size_t g = 0; g < pa.programs.size(); ++g) {
        if (pa.programs[g].program != pb.programs[g].program) return false;
        if (pa.programs[g].predicted_seconds !=
            pb.programs[g].predicted_seconds) {
          return false;
        }
        if (pa.programs[g].measured_seconds !=
            pb.programs[g].measured_seconds) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  if (argc > 1) threads = std::max(1, std::atoi(argv[1]));

  EngineOptions opts;
  opts.payload_bytes = 1e9;
  opts.measure = false;  // prediction-only sweep (paper Section 5 workflow)
  const Engine engine(p2::topology::MakeRackedA100Cluster(2, 2), opts);
  const auto grid = MakeGrid();

  std::printf(
      "Pipeline bench: %zu experiments on %s\n"
      "(prediction-only; serial = the seed's per-placement re-synthesis)\n\n",
      grid.size(), engine.cluster().ToString().c_str());

  std::vector<ExperimentResult> serial_results;
  const auto serial =
      RunGrid(engine,
              PipelineOptions{.threads = 1, .cache_synthesis = false},
              grid, &serial_results);

  std::vector<ExperimentResult> cached_results;
  const auto cached =
      RunGrid(engine, PipelineOptions{.threads = 1, .cache_synthesis = true},
              grid, &cached_results);

  std::vector<ExperimentResult> parallel_results;
  const auto parallel =
      RunGrid(engine,
              PipelineOptions{.threads = threads, .cache_synthesis = true},
              grid, &parallel_results);

  TextTable table({"Variant", "Wall(s)", "Placements", "Unique", "Cache",
                   "Saved(s)", "Speedup"});
  auto row = [&](const char* name, const VariantResult& v) {
    char cache[64];
    std::snprintf(cache, sizeof(cache), "%lld/%lld",
                  static_cast<long long>(v.hits),
                  static_cast<long long>(v.hits + v.misses));
    table.AddRow({name, FormatSeconds(v.seconds), std::to_string(v.placements),
                  std::to_string(v.unique), cache,
                  FormatSeconds(v.saved_seconds),
                  p2::engine::FormatSpeedup(serial.seconds / v.seconds)});
  };
  row("serial", serial);
  row("cached", cached);
  char label[32];
  std::snprintf(label, sizeof(label), "cached+par(%d)", threads);
  row(label, parallel);
  std::printf("%s\n", table.Render().c_str());

  const bool identical = SameResults(serial_results, cached_results) &&
                         SameResults(serial_results, parallel_results);
  std::printf("outputs identical across variants: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("cached+parallel speedup over serial: %.2fx\n",
              serial.seconds / parallel.seconds);
  return identical ? 0 : 1;
}
