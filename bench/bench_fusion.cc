// Ablation for the paper's Section 5 fusion observation: some synthesized
// programs (e.g. two consecutive AllReduce steps) are fused by XLA into a
// shorter program that is itself synthesizable — which is why P2 does not
// need an optimizer ("optimized programs are themselves valid synthesizable
// programs"). This bench quantifies that: across the evaluation systems, how
// many synthesized programs are fusible, and how the fused forms perform.
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "core/fusion.h"
#include "core/lowering.h"
#include "core/synthesizer.h"
#include "engine/engine.h"
#include "runtime/executor.h"
#include "topology/presets.h"

namespace {

using p2::TextTable;

void RunCluster(const char* name, const p2::topology::Cluster& cluster,
                const std::vector<std::int64_t>& axes,
                const std::vector<int>& raxes) {
  const p2::runtime::Executor exec(cluster);
  const double payload = p2::engine::Engine::DefaultPayloadBytes(cluster);

  TextTable table({"Placement", "Programs", "Fusible", "Steps removed",
                   "Fused <= original (measured)"});
  for (const auto& matrix :
       p2::core::EnumeratePlacements(cluster.hierarchy(), axes)) {
    const auto sh = p2::core::SynthesisHierarchy::Build(
        matrix, raxes, p2::core::SynthesisHierarchyKind::kReductionAxes);
    const auto result = p2::core::SynthesizePrograms(sh);

    int fusible = 0;
    int removed = 0;
    int fused_matches = 0;
    int fused_checked = 0;
    for (const auto& p : result.programs) {
      const auto fused = p2::core::FuseProgram(sh, p);
      if (fused.steps_removed == 0) continue;
      ++fusible;
      removed += fused.steps_removed;
      // The fused program must measure no slower than the original
      // (same bytes, fewer synchronization barriers).
      if (fused_checked < 8) {  // cap substrate work
        ++fused_checked;
        const auto lo = p2::core::LowerProgram(sh, p);
        const auto lf = p2::core::LowerProgram(sh, fused.program);
        const double to =
            exec.MeasureProgram(lo, payload, p2::core::NcclAlgo::kRing);
        const double tf =
            exec.MeasureProgram(lf, payload, p2::core::NcclAlgo::kRing);
        if (tf <= to * 1.001) ++fused_matches;
      }
    }
    char match[32];
    std::snprintf(match, sizeof(match), "%d/%d", fused_matches,
                  fused_checked);
    table.AddRow({matrix.ToString(), std::to_string(result.programs.size()),
                  std::to_string(fusible), std::to_string(removed), match});
  }
  std::printf("%s, axes", name);
  for (auto a : axes) std::printf(" %lld", static_cast<long long>(a));
  std::printf(", reduce");
  for (auto a : raxes) std::printf(" %d", a);
  std::printf(":\n%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Fusion ablation (Section 5): synthesized programs whose consecutive\n"
      "steps fuse into an equivalent shorter program\n\n");
  RunCluster("2 nodes x 16 A100", p2::topology::MakeA100Cluster(2), {8, 4},
             {0});
  RunCluster("4 nodes x 16 A100", p2::topology::MakeA100Cluster(4), {4, 16},
             {1});
  RunCluster("4 nodes x 8 V100", p2::topology::MakeV100Cluster(4), {2, 16},
             {1});
  std::printf(
      "Fused forms almost always measure no slower (fewer barriers, same\n"
      "bytes); the rare exception is a fused step whose single coarser\n"
      "AllReduce raises the concurrent flow count through a congested NIC.\n"
      "Either way the fused form is itself in P2's search space — the\n"
      "paper's rationale for not adding an optimizer.\n");
  return 0;
}
