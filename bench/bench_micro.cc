// google-benchmark microbenchmarks for the P2 building blocks: placement
// enumeration, collective-semantics checking, grouping, synthesis, lowering,
// the analytic cost model and the flow-level substrate.
#include <benchmark/benchmark.h>

#include "core/collective_semantics.h"
#include "core/grouping.h"
#include "core/lowering.h"
#include "core/placement.h"
#include "core/synthesizer.h"
#include "cost/cost_model.h"
#include "engine/baselines.h"
#include "runtime/executor.h"
#include "topology/presets.h"

namespace {

using namespace p2;  // NOLINT: bench-local convenience

void BM_EnumeratePlacements(benchmark::State& state) {
  const auto h = topology::SystemHierarchy::FromCardinalities(
      std::vector<std::int64_t>{4, 16});
  const std::vector<std::int64_t> axes = {static_cast<std::int64_t>(state.range(0)),
                                          64 / state.range(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EnumeratePlacements(h, axes));
  }
}
BENCHMARK(BM_EnumeratePlacements)->Arg(2)->Arg(8)->Arg(32);

void BM_ApplyAllReduce(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto ctx = core::MakeInitialContext(k);
    std::vector<std::vector<std::int64_t>> groups;
    for (int g = 0; g < k; g += 2) {
      groups.push_back({g, g + 1});
    }
    benchmark::DoNotOptimize(
        core::ApplyCollectiveToGroups(core::Collective::kAllReduce, ctx,
                                      groups));
  }
}
BENCHMARK(BM_ApplyAllReduce)->Arg(8)->Arg(16)->Arg(64);

void BM_DeriveGroups(benchmark::State& state) {
  const std::vector<std::int64_t> hierarchy = {1, 4, 4, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::DeriveGroups(hierarchy, 2, core::Form::Parallel(0)));
  }
}
BENCHMARK(BM_DeriveGroups);

void BM_Synthesize(benchmark::State& state) {
  const core::ParallelismMatrix m({{2, 4}, {2, 4}});
  const std::vector<int> axes = {0};
  const auto sh = core::SynthesisHierarchy::Build(
      m, axes, core::SynthesisHierarchyKind::kReductionAxes);
  core::SynthesisOptions opts;
  opts.max_program_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SynthesizePrograms(sh, opts));
  }
}
BENCHMARK(BM_Synthesize)->Arg(3)->Arg(4)->Arg(5);

void BM_LowerProgram(benchmark::State& state) {
  const core::ParallelismMatrix m({{2, 4}, {2, 4}});
  const std::vector<int> axes = {0};
  const auto sh = core::SynthesisHierarchy::Build(
      m, axes, core::SynthesisHierarchyKind::kReductionAxes);
  const auto program = *engine::ReduceScatterAllReduceAllGather(sh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::LowerProgram(sh, program));
  }
}
BENCHMARK(BM_LowerProgram);

void BM_CostModelPredict(benchmark::State& state) {
  const cost::CostModel model(topology::MakeA100Cluster(4));
  const core::ParallelismMatrix m({{4, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto sh = core::SynthesisHierarchy::Build(
      m, axes, core::SynthesisHierarchyKind::kReductionAxes);
  const auto lowered =
      core::LowerProgram(sh, *engine::ReduceScatterAllReduceAllGather(sh));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.PredictProgram(lowered, 8e9, core::NcclAlgo::kRing));
  }
}
BENCHMARK(BM_CostModelPredict);

void BM_SubstrateMeasure(benchmark::State& state) {
  const runtime::Executor exec(topology::MakeA100Cluster(4));
  const core::ParallelismMatrix m({{4, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto sh = core::SynthesisHierarchy::Build(
      m, axes, core::SynthesisHierarchyKind::kReductionAxes);
  const auto lowered =
      core::LowerProgram(sh, *engine::ReduceScatterAllReduceAllGather(sh));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec.MeasureProgram(lowered, 8e9, core::NcclAlgo::kRing));
  }
}
BENCHMARK(BM_SubstrateMeasure);

}  // namespace

BENCHMARK_MAIN();
