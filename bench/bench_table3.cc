// Reproduces paper Table 3: "Reduction time in seconds of running AllReduce"
// across parallelism matrices, for 4 nodes x 16 A100 (axes [2 32], [4 16],
// [8 8]) and 4 nodes x 8 V100 (axes [8 4]), NCCL Ring and Tree, reduction on
// the 0th and on the 1st axis. Also prints the paper's Result 1 headline:
// the max/min AllReduce ratio across placements (paper: up to 448.5x).
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/engine.h"
#include "topology/presets.h"

namespace {

using p2::BracketJoin;
using p2::FormatSeconds;
using p2::TextTable;

struct AxisConfig {
  const char* label;
  std::vector<std::int64_t> axes;
};

void RunSystem(const char* title, const p2::topology::Cluster& cluster,
               const std::vector<AxisConfig>& configs, double* max_ratio) {
  std::printf("%s\n", title);
  TextTable table({"Axes", "Parallelism matrix", "reduce0 Ring",
                   "reduce0 Tree", "reduce1 Ring", "reduce1 Tree"});
  for (const auto& cfg : configs) {
    // Default AllReduce only: disable extra synthesis for speed.
    p2::engine::EngineOptions opts;
    opts.synthesis.max_program_size = 1;
    std::vector<std::vector<std::string>> rows;
    for (int which = 0; which < 4; ++which) {
      const auto algo = (which % 2 == 0) ? p2::core::NcclAlgo::kRing
                                         : p2::core::NcclAlgo::kTree;
      const std::vector<int> raxes = {which / 2};
      opts.algo = algo;
      const p2::engine::Engine eng(cluster, opts);
      const auto placements = eng.SynthesizePlacements(cfg.axes);
      if (rows.empty()) {
        rows.assign(placements.size(), std::vector<std::string>(6));
        for (std::size_t i = 0; i < placements.size(); ++i) {
          rows[i][0] = i == 0 ? cfg.label : "";
          rows[i][1] = placements[i].ToString();
        }
      }
      // Track the per-(axes, reduce axis, algo) max/min ratio (Result 1).
      double lo = 1e30, hi = 0.0;
      for (std::size_t i = 0; i < placements.size(); ++i) {
        const auto eval = eng.EvaluatePlacement(placements[i], raxes);
        const double t = eval.DefaultAllReduce().measured_seconds;
        rows[i][2 + static_cast<std::size_t>(which)] = FormatSeconds(t);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
      if (max_ratio != nullptr && lo > 0.0) {
        *max_ratio = std::max(*max_ratio, hi / lo);
      }
    }
    for (auto& r : rows) table.AddRow(std::move(r));
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Table 3: AllReduce reduction time (s) across parallelism matrices\n"
      "(payload: 2^29 x nodes float32 per GPU; substrate measurement)\n\n");

  double max_ratio = 0.0;

  RunSystem("4 nodes, each with 16 A100:", p2::topology::MakeA100Cluster(4),
            {AxisConfig{"A [2 32]", {2, 32}}, AxisConfig{"B [4 16]", {4, 16}},
             AxisConfig{"C [8 8]", {8, 8}}},
            &max_ratio);

  RunSystem("4 nodes, each with 8 V100:", p2::topology::MakeV100Cluster(4),
            {AxisConfig{"E [8 4]", {8, 4}}}, &max_ratio);

  std::printf(
      "Result 1 (RQ1): AllReduce performance across parallelism matrices for\n"
      "the same axes differs by up to %.1fx (paper: up to 448.5x).\n",
      max_ratio);
  return 0;
}
