// Reproduces paper Figure 11: measured vs simulated reduction time for every
// (parallelism matrix, program) pair of two configurations, sorted by
// measured time:
//   (a) 4 nodes of V100, NCCL Ring, axes [2 16], reduction on axis 1;
//   (b) 4 nodes of A100, NCCL Tree, axes [4 2 8], reduction on axes {0, 2}.
// Prints both series as aligned columns (an ASCII rendition of the figure)
// plus the synthesis/simulation wall-clock the caption reports.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/engine.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace {

using p2::FormatSeconds;
using p2::engine::Engine;
using p2::engine::EngineOptions;

struct Series {
  std::string placement;
  std::string program;
  double measured;
  double predicted;
};

void RunConfig(const char* title, const p2::topology::Cluster& cluster,
               p2::core::NcclAlgo algo, std::vector<std::int64_t> axes,
               std::vector<int> raxes) {
  EngineOptions opts;
  opts.algo = algo;
  const Engine eng(cluster, opts);

  const auto t0 = std::chrono::steady_clock::now();
  const auto result = eng.RunExperiment(axes, raxes);
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<Series> series;
  for (const auto& p : result.placements) {
    for (const auto& prog : p.programs) {
      series.push_back(Series{p.matrix.ToString(), prog.text,
                              prog.measured_seconds, prog.predicted_seconds});
    }
  }
  std::sort(series.begin(), series.end(),
            [](const Series& a, const Series& b) {
              return a.measured < b.measured;
            });

  double synthesis = result.TotalSynthesisSeconds();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  std::printf("%s\n", title);
  std::printf("synthesis %.2fs, evaluation (predict+measure) %.2fs\n",
              synthesis, wall);
  std::printf("%4s  %10s  %10s  %7s  %-22s\n", "#", "measured", "simulated",
              "err", "parallelism matrix");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    std::printf("%4zu  %10s  %10s  %+6.1f%%  %-22s\n", i,
                FormatSeconds(s.measured).c_str(),
                FormatSeconds(s.predicted).c_str(),
                100.0 * (s.predicted - s.measured) / s.measured,
                s.placement.c_str());
  }
  // Figure caption data point: how well the simulation tracks the ordering.
  std::vector<Series> by_pred = series;
  std::sort(by_pred.begin(), by_pred.end(),
            [](const Series& a, const Series& b) {
              return a.predicted < b.predicted;
            });
  int rank = 0;
  for (const auto& s : series) {
    if (s.measured < by_pred.front().measured) ++rank;
  }
  std::printf("predicted-best program lands at measured rank %d of %zu\n\n",
              rank, series.size());
}

}  // namespace

int main() {
  std::printf(
      "Figure 11: simulation vs measurement, programs in increasing order of\n"
      "measured time\n\n");
  RunConfig("(a) 4 nodes of V100, NCCL Ring, axes [2 16], reduce axis 1",
            p2::topology::MakeV100Cluster(4), p2::core::NcclAlgo::kRing,
            {2, 16}, {1});
  RunConfig("(b) 4 nodes of A100, NCCL Tree, axes [4 2 8], reduce axes {0,2}",
            p2::topology::MakeA100Cluster(4), p2::core::NcclAlgo::kTree,
            {4, 2, 8}, {0, 2});
  return 0;
}
