// Reproduces paper Table 5: top-k accuracy of the analytic performance model
// ("the simulator") against the runtime substrate ("the testbed"), over the
// full experiment grid of both GPU systems, ring and tree. One sample per
// experiment configuration: does the predicted-best (placement, program)
// pair land within the measured top-k?
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "engine/engine.h"
#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace {

using p2::TextTable;
using p2::engine::AccuracyCounter;
using p2::engine::Engine;
using p2::engine::EngineOptions;

void RunSystem(const char* name,
               const std::vector<p2::topology::Cluster>& clusters,
               AccuracyCounter& system_counter, AccuracyCounter& total) {
  for (const auto& cluster : clusters) {
    for (const auto algo :
         {p2::core::NcclAlgo::kRing, p2::core::NcclAlgo::kTree}) {
      EngineOptions opts;
      opts.algo = algo;
      const Engine eng(cluster, opts);
      for (const auto& cfg : p2::engine::FullGrid(cluster)) {
        const auto result = eng.RunExperiment(cfg.axes, cfg.reduction_axes);
        system_counter.AddExperiment(result);
        total.AddExperiment(result);
      }
    }
  }
  (void)name;
}

std::string Percent(double rate) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * rate);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "Table 5: prediction accuracy of the analytic model vs the substrate\n"
      "(one sample per experiment config: system x nodes x axes x reduction "
      "axes x algo)\n\n");

  AccuracyCounter a100, v100, total;
  RunSystem("A100",
            {p2::topology::MakeA100Cluster(2), p2::topology::MakeA100Cluster(4)},
            a100, total);
  RunSystem("V100",
            {p2::topology::MakeV100Cluster(2), p2::topology::MakeV100Cluster(4)},
            v100, total);

  TextTable table({"System", "Top-1", "Top-2", "Top-3", "Top-5", "Top-6",
                   "Top-10", "Experiments"});
  auto add = [&](const char* name, const AccuracyCounter& c) {
    std::vector<std::string> row = {name};
    for (std::size_t i = 0; i < c.ks().size(); ++i) {
      row.push_back(Percent(c.Rate(i)));
    }
    row.push_back(std::to_string(c.total()));
    table.AddRow(std::move(row));
  };
  add("A100", a100);
  add("V100", v100);
  add("Total", total);
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "(paper: total top-1 52%%, top-5 75%%, top-10 92%% — the shape to match\n"
      "is monotone growth with k and high top-10 accuracy.)\n");
  return 0;
}
