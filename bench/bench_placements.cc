// Reproduces the paper's Section 2.1 / Figure 2 placement-space argument:
// the number of parallelism matrices P2 enumerates versus the naive
// "(#devices)! assignments" space, for the running example and the
// evaluation systems; and lists the matrices of Figure 2.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "core/placement.h"
#include "topology/presets.h"

namespace {

using p2::BracketJoin;
using p2::TextTable;
using p2::core::CountPlacements;
using p2::core::EnumeratePlacements;
using p2::topology::SystemHierarchy;

double Log2Factorial(std::int64_t n) {
  double s = 0.0;
  for (std::int64_t i = 2; i <= n; ++i) s += std::log2(static_cast<double>(i));
  return s;
}

void Count(TextTable& table, const SystemHierarchy& h,
           std::vector<std::int64_t> axes) {
  const auto n = CountPlacements(h, axes);
  char naive[32];
  std::snprintf(naive, sizeof(naive), "2^%.0f", Log2Factorial(h.num_devices()));
  table.AddRow({h.ToShortString(),
                BracketJoin(std::span<const std::int64_t>(axes)),
                std::to_string(n), naive});
}

}  // namespace

int main() {
  std::printf(
      "Placement-space reduction (Section 2.1): parallelism matrices vs the\n"
      "naive device-assignment space\n\n");

  TextTable table({"Hierarchy", "Axes", "Matrices", "Naive assignments"});
  const auto running = p2::topology::MakeRunningExampleHierarchy();
  Count(table, running, {4, 4});
  Count(table, running, {2, 8});
  Count(table, running, {16});

  const auto a100_2 = p2::topology::MakeA100Cluster(2).hierarchy();
  const auto a100_4 = p2::topology::MakeA100Cluster(4).hierarchy();
  const auto v100_4 = p2::topology::MakeV100Cluster(4).hierarchy();
  Count(table, a100_2, {8, 4});
  Count(table, a100_4, {4, 16});
  Count(table, a100_4, {16, 2, 2});
  Count(table, a100_4, {64});
  Count(table, v100_4, {8, 4});
  Count(table, v100_4, {8, 2, 2});
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Figure 2 check: placements of data parallelism 4 x 4 parameter shards\n"
      "on [(rack,1),(server,2),(cpu,2),(gpu,4)]:\n");
  const std::vector<std::int64_t> fig2_axes = {4, 4};
  for (const auto& m : EnumeratePlacements(running, fig2_axes)) {
    std::printf("  %s\n", m.ToString().c_str());
  }
  return 0;
}
