// p2_shard: distributed experiment-grid worker + merger.
//
// Worker mode — run shard I of N of a cluster's experiment grid:
//
//   p2_shard --shard-index=I --num-shards=N
//            [--system=a100|v100] [--nodes=N] [--service-threads=N]
//            [--cache-port=P | --cache-port-file=PATH]
//            [--out=PATH]
//
// The worker owns every grid config whose index ≡ I (mod N), plans them
// through its own in-process PlannerService, and writes its configs as
// shard blocks (engine/experiment_grid.h) to --out (default stdout). With
// --cache-port[-file] the service's synthesis cache consults the cache
// plane of a `p2_server --cache-server` before synthesizing and publishes
// completions back, so N workers collectively synthesize each signature
// once; without it (or when the plane is unreachable) the worker degrades
// to local-only synthesis and still produces identical bytes. The last
// stdout line is the greppable footer the CI smoke asserts on:
//
//   p2_shard[I/N]: X configs, remote_hits=R remote_errors=E synthesized=M
//
// (synthesized = the worker's cache misses, i.e. signatures it ran the
// synthesizer for.)
//
// Merge mode — reassemble shard outputs into the serial grid order:
//
//   p2_shard --merge [--system=...] [--nodes=N] [--out=PATH] FILE...
//
// Validates exact coverage against the same grid (every config exactly
// once) and writes a byte-identical copy of what a --num-shards=1 worker
// run would have produced. Exit 0 only on full coverage.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/cli.h"
#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "engine/service.h"
#include "server/remote_cache_client.h"

namespace {

bool ParseInt(const std::string& value, long long* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Polls for the server's --port-file (the readiness signal) for ~30 s.
int PortFromFile(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      int port = 0;
      const int got = std::fscanf(f, "%d", &port);
      std::fclose(f);
      if (got == 1 && port > 0) return port;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

bool WriteOutput(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "p2_shard: cannot write %s\n", out_path.c_str());
    return false;
  }
  return true;
}

int RunMerge(const std::string& system, int nodes, const std::string& out_path,
             const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "p2_shard: --merge needs at least one shard file\n");
    return 2;
  }
  const p2::topology::Cluster cluster = p2::engine::ClusterFromPreset(
      p2::engine::TopologyPreset{system, nodes});
  const auto grid = p2::engine::FullGrid(cluster);
  std::vector<p2::engine::ShardBlock> blocks;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "p2_shard: cannot read %s\n", file.c_str());
      return 1;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    std::vector<p2::engine::ShardBlock> shard;
    std::string error;
    if (!p2::engine::ParseShardBlocks(contents.str(), &shard, &error)) {
      std::fprintf(stderr, "p2_shard: %s: %s\n", file.c_str(), error.c_str());
      return 1;
    }
    for (auto& block : shard) blocks.push_back(std::move(block));
  }
  std::string merged;
  std::string error;
  if (!p2::engine::MergeShardBlocks(std::move(blocks),
                                    static_cast<std::int64_t>(grid.size()),
                                    &merged, &error)) {
    std::fprintf(stderr, "p2_shard: merge failed: %s\n", error.c_str());
    return 1;
  }
  if (!WriteOutput(out_path, merged)) return 1;
  std::fprintf(stderr, "p2_shard: merged %zu configs from %zu shard files\n",
               grid.size(), files.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int shard_index = 0;
  int num_shards = 1;
  std::string system = "a100";
  int nodes = 2;
  int service_threads = 2;
  int cache_port = -1;
  std::string cache_port_file;
  std::string out_path;
  bool merge = false;
  std::vector<std::string> merge_files;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    long long n = 0;
    if (arg.substr(0, 2) != "--") {
      merge_files.push_back(arg);
    } else if (key == "--merge") {
      merge = true;
    } else if (key == "--shard-index" && ParseInt(value, &n)) {
      shard_index = static_cast<int>(n);
    } else if (key == "--num-shards" && ParseInt(value, &n)) {
      num_shards = static_cast<int>(n);
    } else if (key == "--system") {
      system = value;
    } else if (key == "--nodes" && ParseInt(value, &n)) {
      nodes = static_cast<int>(n);
    } else if (key == "--service-threads" && ParseInt(value, &n)) {
      service_threads = static_cast<int>(n);
    } else if (key == "--cache-port" && ParseInt(value, &n)) {
      cache_port = static_cast<int>(n);
    } else if (key == "--cache-port-file") {
      cache_port_file = value;
    } else if (key == "--out") {
      out_path = value;
    } else {
      std::fprintf(stderr, "unrecognized flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (merge) return RunMerge(system, nodes, out_path, merge_files);
  if (!merge_files.empty()) {
    std::fprintf(stderr, "p2_shard: positional files need --merge\n");
    return 2;
  }
  if (num_shards <= 0 || shard_index < 0 || shard_index >= num_shards) {
    std::fprintf(stderr,
                 "p2_shard: need 0 <= --shard-index < --num-shards\n");
    return 2;
  }
  if (!cache_port_file.empty()) {
    cache_port = PortFromFile(cache_port_file);
    if (cache_port < 0) {
      std::fprintf(stderr, "p2_shard: no port appeared in %s\n",
                   cache_port_file.c_str());
      return 1;
    }
  }

  const p2::topology::Cluster cluster = p2::engine::ClusterFromPreset(
      p2::engine::TopologyPreset{system, nodes});
  const auto grid = p2::engine::FullGrid(cluster);
  const auto indices = p2::engine::ShardIndices(
      grid.size(), shard_index, num_shards);

  p2::engine::PlannerServiceOptions service_options;
  service_options.threads = service_threads;
  if (cache_port >= 0) {
    service_options.remote_cache =
        std::make_shared<p2::server::RemoteCacheClient>(cache_port);
  }
  p2::engine::PlannerService service(service_options);

  std::string output;
  try {
    for (const std::size_t i : indices) {
      p2::engine::PlanRequest request;
      request.cluster = cluster;
      request.axes = grid[i].axes;
      request.reduction_axes = grid[i].reduction_axes;
      const p2::engine::ExperimentResult result =
          service.Plan(std::move(request));
      output += p2::engine::RenderShardBlock(p2::engine::ShardBlock{
          static_cast<std::int64_t>(i), grid[i].ToString(),
          p2::engine::CanonicalResultText(result)});
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "p2_shard: plan failed: %s\n", e.what());
    return 1;
  }

  if (!WriteOutput(out_path, output)) return 1;
  const p2::engine::PlannerServiceStats stats = service.stats();
  std::printf(
      "p2_shard[%d/%d]: %zu configs, remote_hits=%lld remote_errors=%lld "
      "synthesized=%lld\n",
      shard_index, num_shards, indices.size(),
      static_cast<long long>(stats.cache.remote_hits),
      static_cast<long long>(stats.cache.remote_errors),
      static_cast<long long>(stats.cache.misses));
  return 0;
}
