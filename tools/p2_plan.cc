// p2_plan: command-line front end of P2. See engine/cli.h for the flags.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto options = p2::engine::ParseCliOptions(args, &error);
  if (!options.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  std::string output;
  const int rc = p2::engine::RunCli(*options, &output);
  std::fputs(output.c_str(), rc == 0 ? stdout : stderr);
  return rc;
}
