// p2_server: the planning service behind a TCP port (server/planner_server.h).
//
//   p2_server [--port=N] [--port-file=PATH] [--service-threads=N]
//             [--cache-file=PATH] [--cache-max-entries=N]
//             [--cache-ttl-seconds=N] [--max-in-flight=N]
//             [--drain-grace-ms=N] [--cache-server] [--grant-ttl-ms=N]
//
// Binds the loopback interface only. --port=0 (the default) picks an
// ephemeral port; the bound port is printed to stdout and, with
// --port-file, written (atomically enough for a polling reader: the file
// appears only after the server is accepting). The process exits 0 after a
// client's shutdown frame drained the service — the CI smoke asserts that.
//
// --cache-server additionally serves the synthesis-cache plane (frame
// types 8-11) to sharded grid workers (tools/p2_shard): lookups answer
// with an entry, an ownership grant, or a retry-after, and publishes land
// in the shared cache (persisted by --cache-file like any other entry).
// --grant-ttl-ms bounds how long a dead worker's grant can shadow a base
// key (default 10000).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "engine/service.h"
#include "server/planner_server.h"

namespace {

bool ParseInt(const std::string& value, long long* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  std::string port_file;
  bool cache_server = false;
  long long grant_ttl_ms = -1;
  p2::engine::PlannerServiceOptions service_options;
  service_options.threads = 4;
  std::optional<std::chrono::milliseconds> drain_grace;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    long long n = 0;
    if (key == "--port" && ParseInt(value, &n)) {
      port = static_cast<int>(n);
    } else if (key == "--port-file") {
      port_file = value;
    } else if (key == "--service-threads" && ParseInt(value, &n)) {
      service_options.threads = static_cast<int>(n);
    } else if (key == "--cache-file") {
      service_options.cache_file = value;
    } else if (key == "--cache-max-entries" && ParseInt(value, &n)) {
      service_options.cache_max_entries = n;
    } else if (key == "--cache-ttl-seconds" && ParseInt(value, &n)) {
      service_options.cache_ttl_seconds = n;
    } else if (key == "--cache-server") {
      cache_server = true;
    } else if (key == "--grant-ttl-ms" && ParseInt(value, &n)) {
      if (n > 0) grant_ttl_ms = n;
    } else if (key == "--max-in-flight" && ParseInt(value, &n)) {
      service_options.max_in_flight = n;
    } else if (key == "--drain-grace-ms" && ParseInt(value, &n)) {
      if (n >= 0) drain_grace = std::chrono::milliseconds(n);
    } else {
      std::fprintf(stderr, "unrecognized flag: %s\n", arg.c_str());
      return 2;
    }
  }
  service_options.drain_grace = drain_grace;

  p2::engine::PlannerService service(service_options);
  if (service.cache_load_status() != p2::engine::CacheLoadStatus::kOk &&
      service.cache_load_status() !=
          p2::engine::CacheLoadStatus::kNotConfigured &&
      service.cache_load_status() != p2::engine::CacheLoadStatus::kNoFile) {
    std::fprintf(stderr, "warning: cache file ignored: %s\n",
                 service.cache_load_message().c_str());
  }

  p2::server::PlannerServerOptions server_options;
  server_options.port = port;
  server_options.drain_grace = drain_grace;
  server_options.cache_server = cache_server;
  if (grant_ttl_ms > 0) {
    server_options.grant_ttl = std::chrono::milliseconds(grant_ttl_ms);
  }
  try {
    p2::server::PlannerServer server(service, server_options);
    std::printf("p2_server listening on 127.0.0.1:%d\n", server.port());
    std::fflush(stdout);
    if (!port_file.empty()) {
      // Written only once accept() is live, so "the file exists" is a valid
      // readiness signal for a polling client.
      const std::string tmp = port_file + ".tmp";
      std::FILE* f = std::fopen(tmp.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
        return 1;
      }
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
      if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
        std::fprintf(stderr, "cannot rename %s\n", tmp.c_str());
        return 1;
      }
    }
    server.Wait();
    server.Shutdown();
    const p2::server::PlannerServerStats stats = server.stats();
    std::printf(
        "p2_server drained: %lld connections, %lld plan requests "
        "(%lld ok, %lld errors), %lld stats requests\n",
        static_cast<long long>(stats.connections),
        static_cast<long long>(stats.requests),
        static_cast<long long>(stats.plan_ok),
        static_cast<long long>(stats.plan_errors),
        static_cast<long long>(stats.stats_requests));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "p2_server: %s\n", e.what());
    return 1;
  }
  return 0;
}
