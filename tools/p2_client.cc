// p2_client: loadgen + end-to-end determinism oracle for p2_server.
//
//   p2_client --port=N | --port-file=PATH
//             [--system=a100|v100] [--nodes=N]
//             [--grid | --axes=4,16 --reduce=0]
//             [--concurrency=N] [--check-identical]
//             [--deadline-storm=K] [--top-k=N] [--max-programs=N]
//             [--stats] [--shutdown]
//
// Replays the experiment grid (or one config) over N concurrent
// connections. With --check-identical it first computes every config's
// CanonicalResultText on an in-process single-threaded PlannerService and
// asserts each OK response body is byte-identical — the wire, the server's
// concurrency, and the shared-cache interleavings must not change a single
// byte of any plan. --deadline-storm=K gives every Kth request a 1 ms
// deadline, so a fraction of requests abort mid-flight (DEADLINE_EXCEEDED);
// the oracle then also proves survivors are unperturbed by their
// neighbours' aborts. Exit 0 iff no protocol errors, no body mismatches,
// and (under --check-identical) at least one body was compared.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/cli.h"
#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "engine/service.h"
#include "server/planner_client.h"

namespace {

bool ParseInt(const std::string& value, long long* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseIntList(const std::string& value, std::vector<long long>* out) {
  std::string token;
  for (std::size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == ',') {
      long long n = 0;
      if (!ParseInt(token, &n)) return false;
      out->push_back(n);
      token.clear();
    } else {
      token.push_back(value[i]);
    }
  }
  return !out->empty();
}

/// Polls for the server's --port-file (the readiness signal) for ~30 s.
int PortFromFile(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      int port = 0;
      const int got = std::fscanf(f, "%d", &port);
      std::fclose(f);
      if (got == 1 && port > 0) return port;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

struct Tally {
  std::mutex mu;
  long long ok = 0;
  long long deadline_exceeded = 0;
  long long cancelled = 0;
  long long rejected = 0;
  long long failures = 0;   ///< unexpected statuses / transport errors
  long long mismatches = 0; ///< OK bodies differing from the serial reference
  std::vector<double> latencies;  ///< per-request wall-clock (seconds)
};

/// Exact rank-based percentile over sorted samples: the value at rank
/// ceil(p/100 * n), clamped to [1, n].
double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  std::string port_file;
  std::string system = "a100";
  int nodes = 2;
  bool grid = false;
  std::vector<long long> axes;
  std::vector<long long> reduce;
  int concurrency = 1;
  bool check_identical = false;
  long long deadline_storm = 0;
  long long top_k = -1;
  long long max_programs = 0;
  bool want_stats = false;
  bool want_shutdown = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    long long n = 0;
    if (key == "--port" && ParseInt(value, &n)) {
      port = static_cast<int>(n);
    } else if (key == "--port-file") {
      port_file = value;
    } else if (key == "--system") {
      system = value;
    } else if (key == "--nodes" && ParseInt(value, &n)) {
      nodes = static_cast<int>(n);
    } else if (key == "--grid") {
      grid = true;
    } else if (key == "--axes" && ParseIntList(value, &axes)) {
    } else if (key == "--reduce" && ParseIntList(value, &reduce)) {
    } else if (key == "--concurrency" && ParseInt(value, &n)) {
      concurrency = static_cast<int>(n);
    } else if (key == "--check-identical") {
      check_identical = true;
    } else if (key == "--deadline-storm" && ParseInt(value, &n)) {
      deadline_storm = n;
    } else if (key == "--top-k" && ParseInt(value, &n)) {
      top_k = n;
    } else if (key == "--max-programs" && ParseInt(value, &n)) {
      max_programs = n;
    } else if (key == "--stats") {
      want_stats = true;
    } else if (key == "--shutdown") {
      want_shutdown = true;
    } else {
      std::fprintf(stderr, "unrecognized flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (port < 0 && !port_file.empty()) port = PortFromFile(port_file);
  if (port <= 0) {
    std::fprintf(stderr, "need --port=N or a readable --port-file\n");
    return 2;
  }
  if (system != "a100" && system != "v100") {
    std::fprintf(stderr, "--system must be a100 or v100\n");
    return 2;
  }
  if (concurrency < 1) concurrency = 1;

  const p2::engine::TopologyPreset preset{system, nodes};
  const p2::topology::Cluster cluster = p2::engine::ClusterFromPreset(preset);
  std::vector<p2::engine::ExperimentConfig> configs;
  if (grid) {
    configs = p2::engine::FullGrid(cluster);
  } else if (axes.empty()) {
    // A stats- or shutdown-only invocation needs no plan work at all.
    if (!want_stats && !want_shutdown) {
      std::fprintf(stderr, "need --grid or --axes=... [--reduce=...]\n");
      return 2;
    }
  } else {
    p2::engine::ExperimentConfig config;
    config.axes.assign(axes.begin(), axes.end());
    for (long long a : reduce) config.reduction_axes.push_back(
        static_cast<int>(a));
    configs.push_back(std::move(config));
  }

  // The serial reference: same requests, one in-process service, one
  // thread. Its CanonicalResultText per config is what every OK response
  // body must equal byte-for-byte.
  std::vector<std::string> expected(configs.size());
  if (check_identical) {
    p2::engine::PlannerService reference;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      p2::engine::PlanRequest request;
      request.axes = configs[i].axes;
      request.reduction_axes = configs[i].reduction_axes;
      request.measure_top_k = static_cast<int>(top_k);
      request.max_programs = max_programs;
      request.cluster = cluster;
      expected[i] =
          p2::engine::CanonicalResultText(reference.Plan(std::move(request)));
    }
  }

  Tally tally;
  std::atomic<bool> abort_run{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(concurrency));
  for (int t = 0; t < concurrency; ++t) {
    workers.emplace_back([&, t] {
      try {
        p2::server::PlannerClient client(port);
        for (std::size_t i = 0; i < configs.size(); ++i) {
          if (abort_run.load(std::memory_order_relaxed)) return;
          p2::server::PlanWireRequest request;
          request.preset_system = system;
          request.preset_nodes = nodes;
          request.axes = configs[i].axes;
          request.reduction_axes = configs[i].reduction_axes;
          request.measure_top_k = static_cast<int>(top_k);
          request.max_programs = max_programs;
          const bool stormed =
              deadline_storm > 0 &&
              static_cast<long long>(i) % deadline_storm == 0;
          if (stormed) request.deadline_ms = 1;
          const auto sent = std::chrono::steady_clock::now();
          const p2::server::PlanWireResponse response = client.Plan(request);
          const double elapsed = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - sent)
                                     .count();
          std::lock_guard<std::mutex> lock(tally.mu);
          tally.latencies.push_back(elapsed);
          switch (response.status) {
            case p2::server::WireStatus::kOk:
              ++tally.ok;
              if (check_identical && response.body != expected[i]) {
                ++tally.mismatches;
                std::fprintf(stderr,
                             "BODY MISMATCH thread %d config %zu (%s)\n", t,
                             i, configs[i].ToString().c_str());
              }
              break;
            case p2::server::WireStatus::kDeadlineExceeded:
              ++tally.deadline_exceeded;
              if (!stormed) ++tally.failures;
              break;
            case p2::server::WireStatus::kCancelled:
              ++tally.cancelled;
              if (!stormed) ++tally.failures;
              break;
            case p2::server::WireStatus::kResourceExhausted:
              // Admission-capped servers shed load by design; counted, not
              // failed.
              ++tally.rejected;
              break;
            default:
              ++tally.failures;
              std::fprintf(stderr, "thread %d config %zu: %s (%s)\n", t, i,
                           p2::server::ToString(response.status),
                           response.message.c_str());
          }
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(tally.mu);
        ++tally.failures;
        std::fprintf(stderr, "thread %d: %s\n", t, e.what());
        abort_run.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  if (want_stats) {
    try {
      p2::server::PlannerClient client(port);
      const auto stats = client.Stats();
      if (stats.status != p2::server::WireStatus::kOk) {
        std::fprintf(stderr, "stats request failed: %s\n", stats.json.c_str());
        ++tally.failures;
      } else {
        std::printf("%s\n", stats.json.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "stats connection failed: %s\n", e.what());
      ++tally.failures;
    }
  }
  if (want_shutdown) {
    try {
      p2::server::PlannerClient client(port);
      if (!client.Shutdown()) {
        std::fprintf(stderr, "shutdown not acknowledged\n");
        ++tally.failures;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "shutdown connection failed: %s\n", e.what());
      ++tally.failures;
    }
  }

  std::fprintf(stderr,
               "p2_client: %lld ok, %lld deadline-exceeded, %lld cancelled, "
               "%lld rejected, %lld mismatches, %lld failures\n",
               tally.ok, tally.deadline_exceeded, tally.cancelled,
               tally.rejected, tally.mismatches, tally.failures);
  if (!tally.latencies.empty()) {
    // Exact client-observed percentiles (all completed requests, whatever
    // their status — a shed or deadline-exceeded request still cost its
    // caller that wall-clock).
    std::sort(tally.latencies.begin(), tally.latencies.end());
    std::fprintf(stderr,
                 "p2_client latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms "
                 "(%zu requests)\n",
                 PercentileOfSorted(tally.latencies, 50.0) * 1e3,
                 PercentileOfSorted(tally.latencies, 95.0) * 1e3,
                 PercentileOfSorted(tally.latencies, 99.0) * 1e3,
                 tally.latencies.size());
  }
  if (tally.failures > 0 || tally.mismatches > 0) return 1;
  if (check_identical && tally.ok == 0) {
    std::fprintf(stderr, "--check-identical compared zero bodies\n");
    return 1;
  }
  return 0;
}
