// The analytic performance model of paper Section 5: predicts the end-to-end
// time of a lowered reduction program on a cluster, aware of the different
// interconnects (NVSwitch / NVLink ring / PCIe / NIC / data-center network)
// and of bandwidth sharing between concurrent reduction groups.
//
// The model statically charges every point-to-point transfer of a collective
// schedule to the network links its route crosses, then bounds each step by
// the most loaded link plus a latency term:
//
//   t_step = max_l (bytes_l / bandwidth_l) + rounds(op, algo, n) * alpha
//
// It deliberately stays coarser than the runtime substrate (src/runtime):
// perfect static sharing instead of flow dynamics, chains instead of binary
// trees across nodes, and no chunk quantization — the fidelity gap the
// paper's Table 5 quantifies as top-k prediction accuracy.
#ifndef P2_COST_COST_MODEL_H_
#define P2_COST_COST_MODEL_H_

#include <cstdint>
#include <memory>

#include "core/lowering.h"
#include "topology/cluster.h"
#include "topology/network.h"

namespace p2::cost {

using core::NcclAlgo;

class CostModel {
 public:
  explicit CostModel(topology::Cluster cluster);

  const topology::Cluster& cluster() const { return cluster_; }

  /// Predicted seconds for one step moving `payload_bytes` per device
  /// (the step's in/out fractions scale the payload).
  double PredictStep(const core::LoweredStep& step, double payload_bytes,
                     NcclAlgo algo) const;

  /// Predicted seconds for the whole program: steps execute back-to-back
  /// (XLA runs collectives sequentially).
  double PredictProgram(const core::LoweredProgram& program,
                        double payload_bytes, NcclAlgo algo) const;

 private:
  topology::Cluster cluster_;
  std::shared_ptr<const topology::Network> network_;
};

}  // namespace p2::cost

#endif  // P2_COST_COST_MODEL_H_
