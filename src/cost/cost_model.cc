#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math.h"
#include "topology/network.h"

namespace p2::cost {

namespace {

using core::Collective;
using topology::Cluster;
using topology::Network;

// Bytes each directed ring edge carries for a collective over n members
// whose per-member payload is `s_in` entering and `s_out` leaving the step.
double RingEdgeBytes(Collective op, int n, double s_in, double s_out) {
  const double nn = static_cast<double>(n);
  switch (op) {
    case Collective::kAllReduce:
      return 2.0 * (nn - 1.0) / nn * s_in;
    case Collective::kReduceScatter:
      return (nn - 1.0) / nn * s_in;
    case Collective::kAllGather:
      return (nn - 1.0) / nn * s_out;
    case Collective::kReduce:
      return s_in;  // pipelined chain: every byte traverses each edge once
    case Collective::kBroadcast:
      return s_out;
  }
  return s_in;
}

// Rounds (latency multiplier) of the schedule. A degenerate single-member
// group exchanges nothing: without the guard the ring formulas would charge
// `2*(n-1)`/`n-1` rounds — zero here, but negative garbage for an empty
// group, and the tree path would charge a phantom round — so latency is
// pinned to zero for n <= 1.
int Rounds(Collective op, core::NcclAlgo algo, int n) {
  if (n <= 1) return 0;
  if (algo == core::NcclAlgo::kTree && op != Collective::kReduceScatter &&
      op != Collective::kAllGather) {
    const int d = CeilLog2(n);
    return op == Collective::kAllReduce ? std::max(1, 2 * d) : std::max(1, d);
  }
  switch (op) {
    case Collective::kAllReduce:
      return 2 * (n - 1);
    default:
      return n - 1;
  }
}

// Static per-flow NIC degradation assumed by the model. The physical
// substrate degrades ~2%/flow (topology::Network, measured fidelity); the
// model assumes half of that because statically counted flows overestimate
// how many are simultaneously active.
constexpr double kModelNicCongestion = 0.01;

struct LinkLoads {
  std::vector<double> bytes;
  std::vector<int> flows;

  explicit LinkLoads(const Network& net)
      : bytes(net.links().size(), 0.0), flows(net.links().size(), 0) {}

  void Reset() {
    std::fill(bytes.begin(), bytes.end(), 0.0);
    std::fill(flows.begin(), flows.end(), 0);
  }

  void Charge(const Network& net, int src, int dst, double b) {
    if (src == dst) return;
    for (int l : net.PathLinks(src, dst)) {
      bytes[static_cast<std::size_t>(l)] += b;
      flows[static_cast<std::size_t>(l)] += 1;
    }
  }

  double BottleneckSeconds(const Network& net) const {
    double worst = 0.0;
    for (std::size_t l = 0; l < bytes.size(); ++l) {
      // NIC-class links (identified by their capacity) lose throughput as
      // concurrent flows pile up; see the class comment.
      const bool nic_class =
          net.links()[l].bandwidth <= 20e9;  // NIC/DCN capacity range
      const double degrade =
          nic_class ? 1.0 + kModelNicCongestion * std::max(0, flows[l] - 1)
                    : 1.0;
      worst = std::max(worst, bytes[l] * degrade / net.links()[l].bandwidth);
    }
    return worst;
  }
};

// The cost model's tree shape: GPUs chain inside each node, node heads form
// a *chain* across nodes. (The runtime substrate builds a balanced binary
// tree instead — one of the deliberate fidelity gaps between the two models.)
// `heads` is caller-owned scratch, reused across groups and steps.
void ChargeTree(const Network& net, const Cluster& cluster,
                const std::vector<int>& order, Collective op, double s_in,
                double s_out, LinkLoads& loads, std::vector<int>& heads) {
  const double s = op == Collective::kBroadcast ? s_out : s_in;
  const double factor = op == Collective::kAllReduce ? 2.0 : 1.0;
  heads.clear();
  int prev = -1;
  int prev_node = -1;
  for (int m : order) {
    const int node = cluster.NodeOf(m);
    if (node != prev_node) {
      heads.push_back(m);
      prev_node = node;
    } else {
      // Intra-node chain edge (both directions for AllReduce).
      loads.Charge(net, prev, m, s);
      if (factor > 1.0) loads.Charge(net, m, prev, s);
    }
    prev = m;
  }
  for (std::size_t i = 0; i + 1 < heads.size(); ++i) {
    loads.Charge(net, heads[i], heads[i + 1], s);
    if (factor > 1.0) loads.Charge(net, heads[i + 1], heads[i], s);
  }
}

void ChargeRing(const Network& net, const std::vector<int>& order,
                Collective op, double s_in, double s_out, LinkLoads& loads) {
  const int n = static_cast<int>(order.size());
  const double bytes = RingEdgeBytes(op, n, s_in, s_out);
  for (int i = 0; i < n; ++i) {
    loads.Charge(net, order[static_cast<std::size_t>(i)],
                 order[static_cast<std::size_t>((i + 1) % n)], bytes);
  }
}

double GroupLatency(const Network& net, const std::vector<int>& order) {
  // Worst per-message latency between ring neighbours.
  double alpha = 0.0;
  const int n = static_cast<int>(order.size());
  for (int i = 0; i < n; ++i) {
    const int src = order[static_cast<std::size_t>(i)];
    const int dst = order[static_cast<std::size_t>((i + 1) % n)];
    if (src == dst) continue;
    double lat = 0.0;
    for (int l : net.PathLinks(src, dst)) {
      lat += net.links()[static_cast<std::size_t>(l)].latency;
    }
    alpha = std::max(alpha, lat);
  }
  return alpha;
}

// Scratch buffers of one prediction call. PredictProgram allocates one set
// and reuses it across every step (and every group), so the per-step hot
// loop performs no heap allocation; `order` only backs steps whose cached
// sorted_orders are absent (hand-constructed LoweredSteps).
struct PredictScratch {
  LinkLoads loads;
  std::vector<int> order;
  std::vector<int> heads;

  explicit PredictScratch(const Network& net) : loads(net) {}
};

double PredictStepImpl(const Network& net, const Cluster& cluster,
                       const core::LoweredStep& step, double payload_bytes,
                       NcclAlgo algo, PredictScratch& scratch) {
  scratch.loads.Reset();
  const double s_in = step.in_fraction * payload_bytes;
  const double s_out = step.out_fraction * payload_bytes;
  const bool ring_only = step.op == Collective::kReduceScatter ||
                         step.op == Collective::kAllGather;
  const bool cached_orders = step.sorted_orders.size() == step.groups.size();
  double latency = 0.0;
  for (std::size_t gi = 0; gi < step.groups.size(); ++gi) {
    const std::vector<int>* order = nullptr;
    if (cached_orders) {
      order = &step.sorted_orders[gi];
    } else {
      scratch.order.clear();
      scratch.order.reserve(step.groups[gi].size());
      for (std::int64_t d : step.groups[gi]) {
        scratch.order.push_back(static_cast<int>(d));
      }
      std::sort(scratch.order.begin(), scratch.order.end());
      order = &scratch.order;
    }

    if (algo == NcclAlgo::kRing || ring_only) {
      ChargeRing(net, *order, step.op, s_in, s_out, scratch.loads);
    } else {
      ChargeTree(net, cluster, *order, step.op, s_in, s_out, scratch.loads,
                 scratch.heads);
    }
    const int n = static_cast<int>(order->size());
    latency = std::max(latency,
                       Rounds(step.op, algo, n) * GroupLatency(net, *order));
  }
  return scratch.loads.BottleneckSeconds(net) + latency;
}

}  // namespace


CostModel::CostModel(topology::Cluster cluster)
    : cluster_(std::move(cluster)),
      network_(std::make_shared<topology::Network>(
          topology::Network::Build(cluster_))) {}

double CostModel::PredictStep(const core::LoweredStep& step,
                              double payload_bytes, NcclAlgo algo) const {
  PredictScratch scratch(*network_);
  return PredictStepImpl(*network_, cluster_, step, payload_bytes, algo,
                         scratch);
}

double CostModel::PredictProgram(const core::LoweredProgram& program,
                                 double payload_bytes, NcclAlgo algo) const {
  PredictScratch scratch(*network_);
  double total = 0.0;
  for (const auto& step : program.steps) {
    total += PredictStepImpl(*network_, cluster_, step, payload_bytes, algo,
                             scratch);
  }
  return total;
}

}  // namespace p2::cost
