#include "core/parallelism_matrix.h"

#include <stdexcept>

#include "common/format.h"

namespace p2::core {

ParallelismMatrix::ParallelismMatrix(
    std::vector<std::vector<std::int64_t>> rows)
    : rows_(std::move(rows)) {
  if (rows_.empty() || rows_[0].empty()) {
    throw std::invalid_argument("ParallelismMatrix: empty");
  }
  const std::size_t cols = rows_[0].size();
  for (const auto& r : rows_) {
    if (r.size() != cols) {
      throw std::invalid_argument("ParallelismMatrix: ragged rows");
    }
    for (std::int64_t x : r) {
      if (x < 1) {
        throw std::invalid_argument("ParallelismMatrix: factor must be >= 1");
      }
    }
  }
}

std::int64_t ParallelismMatrix::factor(int axis, int level) const {
  return rows_.at(static_cast<std::size_t>(axis))
      .at(static_cast<std::size_t>(level));
}

std::span<const std::int64_t> ParallelismMatrix::row(int axis) const {
  return rows_.at(static_cast<std::size_t>(axis));
}

std::int64_t ParallelismMatrix::RowProduct(int axis) const {
  std::int64_t p = 1;
  for (std::int64_t x : rows_.at(static_cast<std::size_t>(axis))) p *= x;
  return p;
}

std::int64_t ParallelismMatrix::ColumnProduct(int level) const {
  std::int64_t p = 1;
  for (const auto& r : rows_) p *= r.at(static_cast<std::size_t>(level));
  return p;
}

std::vector<std::int64_t> ParallelismMatrix::AxisSizes() const {
  std::vector<std::int64_t> sizes;
  sizes.reserve(rows_.size());
  for (int i = 0; i < num_axes(); ++i) sizes.push_back(RowProduct(i));
  return sizes;
}

std::vector<std::int64_t> ParallelismMatrix::LevelCardinalities() const {
  std::vector<std::int64_t> cards;
  cards.reserve(static_cast<std::size_t>(num_levels()));
  for (int j = 0; j < num_levels(); ++j) cards.push_back(ColumnProduct(j));
  return cards;
}

bool ParallelismMatrix::IsValidFor(
    const topology::SystemHierarchy& hierarchy,
    std::span<const std::int64_t> axes) const {
  if (hierarchy.depth() != num_levels()) return false;
  if (static_cast<int>(axes.size()) != num_axes()) return false;
  for (int j = 0; j < num_levels(); ++j) {
    if (ColumnProduct(j) != hierarchy.cardinality(j)) return false;
  }
  for (int i = 0; i < num_axes(); ++i) {
    if (RowProduct(i) != axes[static_cast<std::size_t>(i)]) return false;
  }
  return true;
}

std::int64_t ParallelismMatrix::num_devices() const {
  std::int64_t p = 1;
  for (const auto& r : rows_) {
    for (std::int64_t x : r) p *= x;
  }
  return p;
}

std::string ParallelismMatrix::ToString() const {
  return NestedBracketJoin(rows_);
}

}  // namespace p2::core
