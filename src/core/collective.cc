#include "core/collective.h"

namespace p2::core {

const char* ToString(Collective c) {
  switch (c) {
    case Collective::kAllReduce:
      return "AllReduce";
    case Collective::kReduceScatter:
      return "ReduceScatter";
    case Collective::kAllGather:
      return "AllGather";
    case Collective::kReduce:
      return "Reduce";
    case Collective::kBroadcast:
      return "Broadcast";
  }
  return "?";
}

const char* ToString(NcclAlgo a) {
  switch (a) {
    case NcclAlgo::kRing:
      return "Ring";
    case NcclAlgo::kTree:
      return "Tree";
  }
  return "?";
}

const char* ShortName(Collective c) {
  switch (c) {
    case Collective::kAllReduce:
      return "AR";
    case Collective::kReduceScatter:
      return "RS";
    case Collective::kAllGather:
      return "AG";
    case Collective::kReduce:
      return "RD";
    case Collective::kBroadcast:
      return "BC";
  }
  return "?";
}

}  // namespace p2::core
