// Hoare-triple semantics of collective operations (paper Section 3.2,
// Figure 8). Each rule checks a pre-condition over the states of the devices
// in a reduction group and, when it holds, produces the post-condition
// states. Violations identify *semantically invalid* reduction steps: states
// from which the desired final state is unreachable (paper Section 2.3).
#ifndef P2_CORE_COLLECTIVE_SEMANTICS_H_
#define P2_CORE_COLLECTIVE_SEMANTICS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/collective.h"
#include "core/device_state.h"

namespace p2::core {

enum class SemanticsError {
  kNone,
  kGroupTooSmall,       // reduction groups need at least two devices
  kRowSetsDiffer,       // AllReduce/ReduceScatter/Reduce: rows must match
  kEmptyRows,           // nothing to reduce (information must increase)
  kChunksOverlap,       // would reduce the same data twice (Fig. 4b)
  kNotDivisible,        // ReduceScatter: rows not divisible by group size
  kRowSetsOverlap,      // AllGather: row sets must be disjoint (Fig. 4a)
  kRowCountsDiffer,     // AllGather: equal number of rows required
  kBroadcastNotSubset,  // Broadcast: every state must be <= the root's
  kBroadcastNoGain,     // Broadcast: some state must be < the root's
};

const char* ToString(SemanticsError e);

struct ApplyResult {
  SemanticsError error = SemanticsError::kNone;
  bool ok() const { return error == SemanticsError::kNone; }
};

/// Pre-images of exactly the devices an application mutated, so a caller
/// exploring many candidate instructions from one state (the synthesizer's
/// hot path) can roll back in O(devices touched) instead of copying the
/// whole k-device context per candidate.
class ApplyUndo {
 public:
  /// Records `state` as the pre-image of `device`. Called by the apply
  /// functions below immediately before each mutation.
  void Save(std::int64_t device, const DeviceState& state);

  /// Restores every saved device into `context`, most recent first (so a
  /// device saved twice ends at its oldest value), and clears the log.
  void RevertInto(StateContext& context);

  std::size_t size() const { return saved_.size(); }
  bool empty() const { return saved_.empty(); }
  void Clear() { saved_.clear(); }

 private:
  /// Restores entries down to `mark` (a previous size()). Lets a failing
  /// multi-group application revert only its own writes when the caller
  /// accumulates several instructions in one log.
  void RevertTo(StateContext& context, std::size_t mark);
  friend ApplyResult ApplyCollectiveToGroups(
      Collective, StateContext&, std::span<const std::vector<std::int64_t>>,
      ApplyUndo&);

  std::vector<std::pair<std::int64_t, DeviceState>> saved_;
};

/// Applies collective `op` to the devices listed in `group` (ids into
/// `context`; group[0] is the root for Reduce/Broadcast, as in the paper).
/// On success mutates `context`; on failure leaves it untouched.
ApplyResult ApplyCollectiveToGroup(Collective op, StateContext& context,
                                   std::span<const std::int64_t> group);

/// Applies `op` simultaneously to several disjoint groups (one DSL
/// instruction). All groups must succeed; otherwise the context is unchanged
/// and the first error is returned.
ApplyResult ApplyCollectiveToGroups(
    Collective op, StateContext& context,
    std::span<const std::vector<std::int64_t>> groups);

/// As above, but appends the pre-images of the mutated devices to `undo`
/// instead of snapshotting the whole context internally: on success the
/// caller can cheaply roll the instruction back with undo.RevertInto; on
/// failure this call's own writes are already reverted (entries recorded by
/// earlier calls on the same log are kept).
ApplyResult ApplyCollectiveToGroups(
    Collective op, StateContext& context,
    std::span<const std::vector<std::int64_t>> groups, ApplyUndo& undo);

}  // namespace p2::core

#endif  // P2_CORE_COLLECTIVE_SEMANTICS_H_
