// The collective operations P2 composes (paper Section 3.2).
#ifndef P2_CORE_COLLECTIVE_H_
#define P2_CORE_COLLECTIVE_H_

#include <array>
#include <string>

namespace p2::core {

enum class Collective {
  kAllReduce,
  kReduceScatter,
  kAllGather,
  kReduce,
  kBroadcast,
};

inline constexpr std::array<Collective, 5> kAllCollectives = {
    Collective::kAllReduce, Collective::kReduceScatter,
    Collective::kAllGather, Collective::kReduce, Collective::kBroadcast};

const char* ToString(Collective c);
/// Compact two-letter code used in program dumps: AR, RS, AG, RD, BC.
const char* ShortName(Collective c);

/// Which NCCL algorithm executes each collective (the paper's NCCL_ALGO
/// setting); ReduceScatter/AllGather always use rings, as in NCCL.
enum class NcclAlgo { kRing, kTree };

inline constexpr std::array<NcclAlgo, 2> kAllAlgos = {NcclAlgo::kRing,
                                                      NcclAlgo::kTree};

const char* ToString(NcclAlgo a);

}  // namespace p2::core

#endif  // P2_CORE_COLLECTIVE_H_
