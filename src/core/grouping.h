// Derivation of device groups from (slice, form) over a hierarchy
// (paper Section 3.3, Table 2). Devices are mixed-radix indices over the
// hierarchy cardinalities, outermost level first.
#ifndef P2_CORE_GROUPING_H_
#define P2_CORE_GROUPING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/reduction_dsl.h"

namespace p2::core {

/// groups(slice, form) of the paper. `hierarchy` lists level cardinalities,
/// outermost first; the slice is `instr.slice_level`; Parallel/Master carry a
/// strict-ancestor level. Groups are returned in deterministic order; groups
/// of size one are *not* filtered (callers decide whether a trivial group
/// invalidates the instruction).
/// Throws std::invalid_argument for out-of-range levels or a form whose
/// ancestor is not a strict ancestor of the slice.
std::vector<std::vector<std::int64_t>> DeriveGroups(
    std::span<const std::int64_t> hierarchy, int slice_level, const Form& form);

inline std::vector<std::vector<std::int64_t>> DeriveGroups(
    std::span<const std::int64_t> hierarchy, const Instruction& instr) {
  return DeriveGroups(hierarchy, instr.slice_level, instr.form);
}

}  // namespace p2::core

#endif  // P2_CORE_GROUPING_H_
