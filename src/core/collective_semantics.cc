#include "core/collective_semantics.h"

#include <stdexcept>

namespace p2::core {

const char* ToString(SemanticsError e) {
  switch (e) {
    case SemanticsError::kNone:
      return "ok";
    case SemanticsError::kGroupTooSmall:
      return "group too small";
    case SemanticsError::kRowSetsDiffer:
      return "row sets differ";
    case SemanticsError::kEmptyRows:
      return "no data to reduce";
    case SemanticsError::kChunksOverlap:
      return "chunks overlap (would reduce data twice)";
    case SemanticsError::kNotDivisible:
      return "rows not divisible by group size";
    case SemanticsError::kRowSetsOverlap:
      return "row sets overlap";
    case SemanticsError::kRowCountsDiffer:
      return "row counts differ";
    case SemanticsError::kBroadcastNotSubset:
      return "broadcast source not a superset";
    case SemanticsError::kBroadcastNoGain:
      return "broadcast adds no information";
  }
  return "?";
}

namespace {

// Shared premise of AllReduce / ReduceScatter / Reduce: identical non-empty
// row sets, at least one row, and pairwise chunk-disjointness. On success
// `sum` holds the union state (the paper's ⊎ s_i).
SemanticsError CheckReducePremise(const StateContext& context,
                                  std::span<const std::int64_t> group,
                                  DeviceState* sum) {
  const DeviceState& first = context[static_cast<std::size_t>(group[0])];
  if (first.IsEmpty()) return SemanticsError::kEmptyRows;
  // Allocation-free row-set scan first: the synthesizer tries every alphabet
  // instruction against every distinct state, and most candidates die here —
  // before the accumulator below is ever materialized.
  for (std::size_t i = 1; i < group.size(); ++i) {
    const DeviceState& s = context[static_cast<std::size_t>(group[i])];
    if (!first.SameNonEmptyRows(s)) return SemanticsError::kRowSetsDiffer;
  }
  DeviceState acc = first;
  for (std::size_t i = 1; i < group.size(); ++i) {
    const DeviceState& s = context[static_cast<std::size_t>(group[i])];
    if (!acc.ChunksDisjoint(s)) return SemanticsError::kChunksOverlap;
    acc.UnionInPlace(s);
  }
  *sum = std::move(acc);
  return SemanticsError::kNone;
}

// Every write to context[d] is preceded by undo.Save(d, ...), so `undo`
// holds exactly the pre-images needed to revert this application.
SemanticsError ApplyToGroup(Collective op, StateContext& context,
                            std::span<const std::int64_t> group,
                            ApplyUndo& undo) {
  if (group.size() < 2) return SemanticsError::kGroupTooSmall;
  for (std::int64_t d : group) {
    if (d < 0 || d >= static_cast<std::int64_t>(context.size())) {
      throw std::out_of_range("ApplyCollectiveToGroup: bad device id");
    }
  }

  switch (op) {
    case Collective::kAllReduce: {
      DeviceState sum;
      if (auto e = CheckReducePremise(context, group, &sum);
          e != SemanticsError::kNone) {
        return e;
      }
      for (std::int64_t d : group) {
        undo.Save(d, context[static_cast<std::size_t>(d)]);
        context[static_cast<std::size_t>(d)] = sum;
      }
      return SemanticsError::kNone;
    }
    case Collective::kReduceScatter: {
      DeviceState sum;
      if (auto e = CheckReducePremise(context, group, &sum);
          e != SemanticsError::kNone) {
        return e;
      }
      const std::vector<int> rows = sum.NonEmptyRows();
      if (rows.size() % group.size() != 0) {
        return SemanticsError::kNotDivisible;
      }
      const std::size_t per_device = rows.size() / group.size();
      for (std::size_t i = 0; i < group.size(); ++i) {
        std::span<const int> share(rows.data() + i * per_device, per_device);
        undo.Save(group[i], context[static_cast<std::size_t>(group[i])]);
        context[static_cast<std::size_t>(group[i])] =
            sum.RestrictedToRows(share);
      }
      return SemanticsError::kNone;
    }
    case Collective::kAllGather: {
      const DeviceState& first = context[static_cast<std::size_t>(group[0])];
      const int row_count = first.NumNonEmptyRows();
      if (row_count == 0) return SemanticsError::kEmptyRows;
      // Allocation-free count scan first (see CheckReducePremise).
      for (std::size_t i = 1; i < group.size(); ++i) {
        if (context[static_cast<std::size_t>(group[i])].NumNonEmptyRows() !=
            row_count) {
          return SemanticsError::kRowCountsDiffer;
        }
      }
      DeviceState sum = first;
      // Track row-set occupancy by folding: overlap with the accumulated
      // union's row set implies overlap with some earlier member.
      for (std::size_t i = 1; i < group.size(); ++i) {
        const DeviceState& s = context[static_cast<std::size_t>(group[i])];
        if (!sum.NonEmptyRowSetsDisjoint(s)) {
          return SemanticsError::kRowSetsOverlap;
        }
        sum.UnionInPlace(s);
      }
      for (std::int64_t d : group) {
        undo.Save(d, context[static_cast<std::size_t>(d)]);
        context[static_cast<std::size_t>(d)] = sum;
      }
      return SemanticsError::kNone;
    }
    case Collective::kReduce: {
      DeviceState sum;
      if (auto e = CheckReducePremise(context, group, &sum);
          e != SemanticsError::kNone) {
        return e;
      }
      undo.Save(group[0], context[static_cast<std::size_t>(group[0])]);
      context[static_cast<std::size_t>(group[0])] = std::move(sum);
      for (std::size_t i = 1; i < group.size(); ++i) {
        undo.Save(group[i], context[static_cast<std::size_t>(group[i])]);
        context[static_cast<std::size_t>(group[i])].Clear();
      }
      return SemanticsError::kNone;
    }
    case Collective::kBroadcast: {
      // The paper's R-BROADCAST requires s_i <= s_0 with *some* strict gain.
      // We require the gain for *every* non-root member: broadcasting to an
      // already-informed device is wasted communication, and the laxer rule
      // admits replica-asymmetric Master broadcasts that break the paper's
      // Theorem 3.2 ((d) >= (c)) — see DESIGN.md "Deviations" and the
      // theorem_test.cc counterexample discussion.
      const DeviceState& root = context[static_cast<std::size_t>(group[0])];
      for (std::size_t i = 1; i < group.size(); ++i) {
        const DeviceState& s = context[static_cast<std::size_t>(group[i])];
        if (!s.IsSubsetOf(root)) return SemanticsError::kBroadcastNotSubset;
        if (s == root) return SemanticsError::kBroadcastNoGain;
      }
      const DeviceState copy = root;
      // The root keeps its value under Broadcast, so only non-root members
      // are written (and saved).
      for (std::size_t i = 1; i < group.size(); ++i) {
        undo.Save(group[i], context[static_cast<std::size_t>(group[i])]);
        context[static_cast<std::size_t>(group[i])] = copy;
      }
      return SemanticsError::kNone;
    }
  }
  return SemanticsError::kNone;
}

}  // namespace

void ApplyUndo::Save(std::int64_t device, const DeviceState& state) {
  saved_.emplace_back(device, state);
}

void ApplyUndo::RevertTo(StateContext& context, std::size_t mark) {
  while (saved_.size() > mark) {
    auto& [device, state] = saved_.back();
    context[static_cast<std::size_t>(device)] = std::move(state);
    saved_.pop_back();
  }
}

void ApplyUndo::RevertInto(StateContext& context) { RevertTo(context, 0); }

ApplyResult ApplyCollectiveToGroup(Collective op, StateContext& context,
                                   std::span<const std::int64_t> group) {
  ApplyUndo undo;
  const SemanticsError e = ApplyToGroup(op, context, group, undo);
  if (e != SemanticsError::kNone) undo.RevertInto(context);
  return ApplyResult{e};
}

ApplyResult ApplyCollectiveToGroups(
    Collective op, StateContext& context,
    std::span<const std::vector<std::int64_t>> groups) {
  ApplyUndo undo;
  return ApplyCollectiveToGroups(op, context, groups, undo);
}

ApplyResult ApplyCollectiveToGroups(
    Collective op, StateContext& context,
    std::span<const std::vector<std::int64_t>> groups, ApplyUndo& undo) {
  const std::size_t mark = undo.size();
  for (const auto& group : groups) {
    const SemanticsError e = ApplyToGroup(op, context, group, undo);
    if (e != SemanticsError::kNone) {
      undo.RevertTo(context, mark);
      return ApplyResult{e};
    }
  }
  return ApplyResult{SemanticsError::kNone};
}

}  // namespace p2::core
