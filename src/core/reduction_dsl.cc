#include "core/reduction_dsl.h"

#include <sstream>

namespace p2::core {

namespace {

std::string LevelName(int level, std::span<const std::string> names) {
  if (level >= 0 && level < static_cast<int>(names.size())) {
    return names[static_cast<std::size_t>(level)];
  }
  return "L" + std::to_string(level);
}

}  // namespace

std::string ToString(const Instruction& instr,
                     std::span<const std::string> level_names) {
  std::ostringstream os;
  os << ToString(instr.op) << "(slice=" << LevelName(instr.slice_level, level_names);
  switch (instr.form.kind) {
    case Form::Kind::kInsideGroup:
      os << ", InsideGroup";
      break;
    case Form::Kind::kParallel:
      os << ", Parallel(" << LevelName(instr.form.ancestor_level, level_names)
         << ')';
      break;
    case Form::Kind::kMaster:
      os << ", Master(" << LevelName(instr.form.ancestor_level, level_names)
         << ')';
      break;
  }
  os << ')';
  return os.str();
}

std::string ToString(const Program& program,
                     std::span<const std::string> level_names) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.size(); ++i) {
    if (i > 0) os << "; ";
    os << ToString(program[i], level_names);
  }
  return os.str();
}

}  // namespace p2::core
