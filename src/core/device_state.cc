#include "core/device_state.h"

#include <bit>
#include <stdexcept>

namespace p2::core {

namespace {
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

DeviceState::DeviceState(int k)
    : k_(k),
      words_per_row_((k + 63) / 64),
      bits_(static_cast<std::size_t>(k) * static_cast<std::size_t>((k + 63) / 64),
            0) {
  if (k < 1) throw std::invalid_argument("DeviceState: k must be >= 1");
}

DeviceState DeviceState::Initial(int k, int device) {
  DeviceState s(k);
  if (device < 0 || device >= k) {
    throw std::out_of_range("DeviceState::Initial: bad device");
  }
  for (int r = 0; r < k; ++r) s.Set(r, device, true);
  return s;
}

std::span<const std::uint64_t> DeviceState::RowBits(int row) const {
  return {bits_.data() +
              static_cast<std::size_t>(row) *
                  static_cast<std::size_t>(words_per_row_),
          static_cast<std::size_t>(words_per_row_)};
}

std::span<std::uint64_t> DeviceState::MutableRowBits(int row) {
  return {bits_.data() +
              static_cast<std::size_t>(row) *
                  static_cast<std::size_t>(words_per_row_),
          static_cast<std::size_t>(words_per_row_)};
}

bool DeviceState::Get(int row, int col) const {
  if (row < 0 || row >= k_ || col < 0 || col >= k_) {
    throw std::out_of_range("DeviceState::Get: out of range");
  }
  return (RowBits(row)[static_cast<std::size_t>(col) / 64] >>
          (static_cast<std::size_t>(col) % 64)) &
         1u;
}

void DeviceState::Set(int row, int col, bool value) {
  if (row < 0 || row >= k_ || col < 0 || col >= k_) {
    throw std::out_of_range("DeviceState::Set: out of range");
  }
  auto bits = MutableRowBits(row);
  const std::uint64_t mask = 1ull << (static_cast<std::size_t>(col) % 64);
  if (value) {
    bits[static_cast<std::size_t>(col) / 64] |= mask;
  } else {
    bits[static_cast<std::size_t>(col) / 64] &= ~mask;
  }
}

bool DeviceState::RowEmpty(int row) const {
  for (std::uint64_t w : RowBits(row)) {
    if (w != 0) return false;
  }
  return true;
}

std::vector<int> DeviceState::NonEmptyRows() const {
  std::vector<int> rows;
  for (int r = 0; r < k_; ++r) {
    if (!RowEmpty(r)) rows.push_back(r);
  }
  return rows;
}

int DeviceState::NumNonEmptyRows() const {
  int n = 0;
  for (int r = 0; r < k_; ++r) {
    if (!RowEmpty(r)) ++n;
  }
  return n;
}

bool DeviceState::IsEmpty() const {
  for (std::uint64_t w : bits_) {
    if (w != 0) return false;
  }
  return true;
}

bool DeviceState::SameNonEmptyRows(const DeviceState& other) const {
  if (k_ != other.k_) return false;
  for (int r = 0; r < k_; ++r) {
    if (RowEmpty(r) != other.RowEmpty(r)) return false;
  }
  return true;
}

bool DeviceState::NonEmptyRowSetsDisjoint(const DeviceState& other) const {
  if (k_ != other.k_) return false;
  for (int r = 0; r < k_; ++r) {
    if (!RowEmpty(r) && !other.RowEmpty(r)) return false;
  }
  return true;
}

bool DeviceState::ChunksDisjoint(const DeviceState& other) const {
  if (k_ != other.k_) return false;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & other.bits_[i]) != 0) return false;
  }
  return true;
}

bool DeviceState::IsSubsetOf(const DeviceState& other) const {
  if (k_ != other.k_) return false;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

bool DeviceState::IsStrictSubsetOf(const DeviceState& other) const {
  return IsSubsetOf(other) && !(*this == other);
}

DeviceState DeviceState::Union(const DeviceState& other) const {
  DeviceState out = *this;
  out.UnionInPlace(other);
  return out;
}

void DeviceState::UnionInPlace(const DeviceState& other) {
  if (k_ != other.k_) {
    throw std::invalid_argument("DeviceState::Union: size mismatch");
  }
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

DeviceState DeviceState::RestrictedToRows(std::span<const int> rows) const {
  DeviceState out(k_);
  for (int r : rows) {
    if (r < 0 || r >= k_) {
      throw std::out_of_range("DeviceState::RestrictedToRows: bad row");
    }
    auto src = RowBits(r);
    auto dst = out.MutableRowBits(r);
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
  }
  return out;
}

void DeviceState::Clear() {
  for (std::uint64_t& w : bits_) w = 0;
}

std::size_t DeviceState::Hash() const {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t w : bits_) {
    h ^= w;
    h *= kFnvPrime;
  }
  return static_cast<std::size_t>(h);
}

std::string DeviceState::ToString() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(k_) * (static_cast<std::size_t>(k_) + 1));
  for (int r = 0; r < k_; ++r) {
    for (int c = 0; c < k_; ++c) s.push_back(Get(r, c) ? '1' : '0');
    if (r + 1 < k_) s.push_back('\n');
  }
  return s;
}

StateContext MakeInitialContext(int k) {
  StateContext ctx;
  ctx.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) ctx.push_back(DeviceState::Initial(k, d));
  return ctx;
}

StateContext MakeGoalContext(
    int k, std::span<const std::vector<std::int64_t>> groups) {
  StateContext ctx(static_cast<std::size_t>(k), DeviceState(k));
  std::vector<bool> seen(static_cast<std::size_t>(k), false);
  for (const auto& group : groups) {
    DeviceState s(k);
    for (std::int64_t c : group) {
      for (int r = 0; r < k; ++r) s.Set(r, static_cast<int>(c), true);
    }
    for (std::int64_t d : group) {
      if (d < 0 || d >= k || seen[static_cast<std::size_t>(d)]) {
        throw std::invalid_argument("MakeGoalContext: groups must partition");
      }
      seen[static_cast<std::size_t>(d)] = true;
      ctx[static_cast<std::size_t>(d)] = s;
    }
  }
  for (bool b : seen) {
    if (!b) throw std::invalid_argument("MakeGoalContext: device not covered");
  }
  return ctx;
}

std::size_t HashContext(const StateContext& context) {
  std::uint64_t h = kFnvOffset;
  for (const DeviceState& s : context) {
    h ^= s.Hash();
    h *= kFnvPrime;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace p2::core
