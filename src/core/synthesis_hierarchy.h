// Synthesis hierarchies (paper Sections 2.5 and 3.4, Table 1): the hierarchy
// over which reduction programs are synthesized, together with the data
// needed to lower synthesized programs back onto the full system.
//
// The four variants of the paper:
//   (a) kSystem        — the hardware hierarchy itself, e.g. [1 2 2 4]
//   (b) kColumnMajor   — parallelism factors flattened by columns
//   (c) kRowMajor      — parallelism factors flattened by rows
//   (d) kReductionAxes — only the reduction axes' factors (P2's choice;
//                        Theorem 3.2 proves (d) >= (c) >= (b) >= (a)),
//                        optionally collapsing factors that live on the same
//                        hardware level, and with a (root, 1) level prepended.
//
// For (d) the synthesis devices are the members of one reduction group
// (k' = product of the reduction axes) and the goal is a full reduction over
// all of them; lowering replicates the grouping pattern over every
// assignment of the non-reduction axes' coordinates. For (a)-(c) synthesis
// devices are all devices (under a variant-specific renumbering) and the
// goal keeps one group per non-reduction coordinate assignment.
#ifndef P2_CORE_SYNTHESIS_HIERARCHY_H_
#define P2_CORE_SYNTHESIS_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/placement.h"

namespace p2::core {

enum class SynthesisHierarchyKind {
  kSystem,         // (a)
  kColumnMajor,    // (b)
  kRowMajor,       // (c)
  kReductionAxes,  // (d)
};

const char* ToString(SynthesisHierarchyKind k);

class SynthesisHierarchy {
 public:
  /// `collapse` only affects kReductionAxes: multiply the reduction axes'
  /// factors living on the same hardware level together (Table 1, bottom).
  static SynthesisHierarchy Build(const ParallelismMatrix& matrix,
                                  std::span<const int> reduction_axes,
                                  SynthesisHierarchyKind kind,
                                  bool collapse = true);

  SynthesisHierarchyKind kind() const { return kind_; }
  const ParallelismMatrix& matrix() const { return layout_.matrix(); }
  const PlacementLayout& layout() const { return layout_; }
  const std::vector<int>& reduction_axes() const { return reduction_axes_; }

  /// Level cardinalities of the synthesis hierarchy, outermost first.
  const std::vector<std::int64_t>& levels() const { return levels_; }
  const std::vector<std::string>& level_names() const { return level_names_; }

  std::int64_t num_synth_devices() const { return num_synth_devices_; }
  std::int64_t num_replicas() const { return num_replicas_; }
  std::int64_t num_global_devices() const { return layout_.num_devices(); }

  /// Global device implementing synthesis device `synth` in copy `replica`.
  std::int64_t GlobalDevice(std::int64_t synth, std::int64_t replica) const;

  /// Goal partition of the synthesis devices (synth indices). For
  /// kReductionAxes this is a single group of all synthesis devices.
  const std::vector<std::vector<std::int64_t>>& goal_groups() const {
    return goal_groups_;
  }

  /// Canonical signature of the synthesis problem this hierarchy poses:
  /// the level cardinalities plus the goal-group partition of the synthesis
  /// devices. Everything SynthesizePrograms depends on — the grouping
  /// alphabet (derived from the levels), the synthesis device count (their
  /// product) and the goal context — is a function of the signature, so two
  /// hierarchies with equal signatures yield identical program lists. The
  /// signature is invariant under global-device renumbering (the device map
  /// only affects lowering), which is what lets isomorphic placements of one
  /// experiment share a single synthesis run.
  std::string Signature() const;

 private:
  SynthesisHierarchy(PlacementLayout layout, std::vector<int> reduction_axes,
                     SynthesisHierarchyKind kind);

  SynthesisHierarchyKind kind_;
  PlacementLayout layout_;
  std::vector<int> reduction_axes_;
  std::vector<std::int64_t> levels_;
  std::vector<std::string> level_names_;
  std::int64_t num_synth_devices_ = 0;
  std::int64_t num_replicas_ = 1;
  std::vector<std::vector<std::int64_t>> device_map_;  // [replica][synth]
  std::vector<std::vector<std::int64_t>> goal_groups_;
};

}  // namespace p2::core

#endif  // P2_CORE_SYNTHESIS_HIERARCHY_H_
