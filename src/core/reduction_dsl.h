// The reduction DSL (paper Section 3.3): a program is a list of
// (slice, form, collective) instructions; the slice chooses a level of the
// synthesis hierarchy and the form one of InsideGroup / Parallel(e) /
// Master(e) where e is an ancestor level of the slice.
#ifndef P2_CORE_REDUCTION_DSL_H_
#define P2_CORE_REDUCTION_DSL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/collective.h"

namespace p2::core {

struct Form {
  enum class Kind { kInsideGroup, kParallel, kMaster };

  Kind kind = Kind::kInsideGroup;
  /// Ancestor level carried by Parallel/Master; -1 for InsideGroup.
  int ancestor_level = -1;

  static Form InsideGroup() { return Form{Kind::kInsideGroup, -1}; }
  static Form Parallel(int ancestor) { return Form{Kind::kParallel, ancestor}; }
  static Form Master(int ancestor) { return Form{Kind::kMaster, ancestor}; }

  friend bool operator==(const Form&, const Form&) = default;
};

struct Instruction {
  int slice_level = 0;
  Form form = Form::InsideGroup();
  Collective op = Collective::kAllReduce;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// A reduction strategy: instructions applied in order (paper's `program`).
using Program = std::vector<Instruction>;

/// "AllReduce(slice=gpu, Parallel(rack))"; level names default to "L<i>".
std::string ToString(const Instruction& instr,
                     std::span<const std::string> level_names = {});
/// "RS(slice=L1, InsideGroup); AR(slice=L2, Parallel(L0)); ..."
std::string ToString(const Program& program,
                     std::span<const std::string> level_names = {});

}  // namespace p2::core

#endif  // P2_CORE_REDUCTION_DSL_H_
