#include "core/lowering.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/collective_semantics.h"
#include "core/device_state.h"
#include "core/grouping.h"

namespace p2::core {

void LoweredStep::ComputeSortedOrders() {
  sorted_orders.clear();
  sorted_orders.reserve(groups.size());
  for (const auto& group : groups) {
    std::vector<int>& order = sorted_orders.emplace_back();
    order.reserve(group.size());
    for (std::int64_t d : group) order.push_back(static_cast<int>(d));
    std::sort(order.begin(), order.end());
  }
}

LoweredProgram LowerProgram(const SynthesisHierarchy& sh,
                            const Program& program) {
  LoweredProgram out;
  out.source = program;
  out.num_devices = sh.num_global_devices();

  const std::int64_t k = sh.num_synth_devices();
  StateContext ctx = MakeInitialContext(static_cast<int>(k));

  // Applications are permanent here, so the undo log is only a way to skip
  // the whole-context backup the legacy overload would take per step.
  ApplyUndo undo;
  for (const Instruction& instr : program) {
    auto synth_groups = DeriveGroups(sh.levels(), instr);
    // Singleton groups perform no communication; the synthesizer's alphabet
    // filters them identically before validating instructions.
    std::erase_if(synth_groups, [](const auto& g) { return g.size() < 2; });
    if (synth_groups.empty()) {
      throw std::invalid_argument(
          "LowerProgram: instruction derives no non-trivial groups: " +
          ToString(instr));
    }

    LoweredStep step;
    step.op = instr.op;

    // Fractions: data held by the step's participants before the op. All
    // reduce-family participants hold equally many rows (the semantics
    // requires it); for Broadcast the root's volume is what moves.
    double in_rows = 0;
    for (const auto& g : synth_groups) {
      if (g.size() < 2) continue;
      in_rows = std::max(
          in_rows,
          static_cast<double>(
              ctx[static_cast<std::size_t>(g[0])].NumNonEmptyRows()));
    }
    step.in_fraction = in_rows / static_cast<double>(k);

    const ApplyResult r =
        ApplyCollectiveToGroups(instr.op, ctx, synth_groups, undo);
    undo.Clear();
    if (!r.ok()) {
      std::ostringstream os;
      os << "LowerProgram: invalid instruction " << ToString(instr)
         << ": " << ToString(r.error);
      throw std::invalid_argument(os.str());
    }

    double out_rows = 0;
    for (const auto& g : synth_groups) {
      for (std::int64_t d : g) {
        out_rows = std::max(
            out_rows, static_cast<double>(
                          ctx[static_cast<std::size_t>(d)].NumNonEmptyRows()));
      }
    }
    step.out_fraction = out_rows / static_cast<double>(k);

    // Replicate the synthesis groups over every non-reduction assignment.
    for (std::int64_t rep = 0; rep < sh.num_replicas(); ++rep) {
      for (const auto& g : synth_groups) {
        if (g.size() < 2) continue;  // trivial groups perform no communication
        std::vector<std::int64_t> global;
        global.reserve(g.size());
        for (std::int64_t s : g) global.push_back(sh.GlobalDevice(s, rep));
        step.groups.push_back(std::move(global));
      }
    }
    step.ComputeSortedOrders();
    out.steps.push_back(std::move(step));
  }
  return out;
}

bool CheckLoweredOnFullSystem(const SynthesisHierarchy& sh,
                              const LoweredProgram& lowered,
                              std::string* error) {
  const int k = static_cast<int>(sh.num_global_devices());
  StateContext ctx = MakeInitialContext(k);
  ApplyUndo undo;
  for (std::size_t i = 0; i < lowered.steps.size(); ++i) {
    const LoweredStep& step = lowered.steps[i];
    const ApplyResult r =
        ApplyCollectiveToGroups(step.op, ctx, step.groups, undo);
    undo.Clear();
    if (!r.ok()) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "step " << i << " (" << ToString(step.op)
           << ") invalid on full system: " << ToString(r.error);
        *error = os.str();
      }
      return false;
    }
  }
  const auto goal_groups = sh.layout().ReductionGroups(sh.reduction_axes());
  const StateContext goal = MakeGoalContext(k, goal_groups);
  if (ctx != goal) {
    if (error != nullptr) *error = "final context differs from goal";
    return false;
  }
  return true;
}

}  // namespace p2::core
