// Device states (paper Section 3.2, Figure 7): each device's state is a
// k x k boolean matrix where row r describes data chunk r and column c is set
// iff device c's original chunk r has been folded into this device's copy.
#ifndef P2_CORE_DEVICE_STATE_H_
#define P2_CORE_DEVICE_STATE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace p2::core {

class DeviceState {
 public:
  DeviceState() = default;
  /// All-zero k x k state.
  explicit DeviceState(int k);

  /// The paper's initial state for device `device`: the device holds every
  /// chunk of its own data, so column `device` is set in every row.
  static DeviceState Initial(int k, int device);

  int k() const { return k_; }

  bool Get(int row, int col) const;
  void Set(int row, int col, bool value);

  bool RowEmpty(int row) const;
  /// Indices of non-empty rows ("rows" in the paper's rules), ascending.
  std::vector<int> NonEmptyRows() const;
  int NumNonEmptyRows() const;
  bool IsEmpty() const;

  /// True iff both states have the same set of non-empty rows.
  bool SameNonEmptyRows(const DeviceState& other) const;
  /// True iff the sets of non-empty rows are disjoint (AllGather's premise).
  bool NonEmptyRowSetsDisjoint(const DeviceState& other) const;
  /// True iff for every row r, the column sets of this and other are disjoint
  /// (the per-chunk premise of AllReduce/ReduceScatter/Reduce).
  bool ChunksDisjoint(const DeviceState& other) const;

  bool IsSubsetOf(const DeviceState& other) const;
  bool IsStrictSubsetOf(const DeviceState& other) const;

  /// Bitwise union (the paper's ⊎ under the disjointness premises).
  DeviceState Union(const DeviceState& other) const;
  void UnionInPlace(const DeviceState& other);

  /// Keeps only the rows in `rows`; clears everything else.
  DeviceState RestrictedToRows(std::span<const int> rows) const;

  void Clear();

  std::size_t Hash() const;
  friend bool operator==(const DeviceState&, const DeviceState&) = default;

  /// Multi-line 0/1 grid, e.g. "1100\n0000\n...".
  std::string ToString() const;

 private:
  int WordsPerRow() const { return words_per_row_; }
  std::span<const std::uint64_t> RowBits(int row) const;
  std::span<std::uint64_t> MutableRowBits(int row);

  int k_ = 0;
  int words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;
};

/// A state context G: one state per device, indexed by device id.
using StateContext = std::vector<DeviceState>;

/// Context where every device only holds its own data.
StateContext MakeInitialContext(int k);

/// The paper's desired final state: each device has 1 in every row for every
/// column in its reduction group. `groups` must partition [0, k).
StateContext MakeGoalContext(int k,
                             std::span<const std::vector<std::int64_t>> groups);

std::size_t HashContext(const StateContext& context);

}  // namespace p2::core

#endif  // P2_CORE_DEVICE_STATE_H_
