// Parallelism placement synthesis (paper Section 3.1) and the concrete
// device layout a parallelism matrix induces.
//
// Device-numbering convention: the global device id is the mixed-radix index
// over hierarchy levels (outermost first); *within* level j, the level digit
// decomposes into per-axis digits (a_{0,j}, ..., a_{m,j}) with radices
// (x_{0,j}, ..., x_{m,j}), axis 0 outermost. A device's coordinate on
// parallelism axis i is the mixed-radix value of (a_{i,0}, ..., a_{i,n}).
// Devices that agree on every non-reduction axis coordinate form one
// reduction group of the user-requested reduction.
#ifndef P2_CORE_PLACEMENT_H_
#define P2_CORE_PLACEMENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/parallelism_matrix.h"
#include "topology/system.h"

namespace p2::core {

/// Enumerates every parallelism matrix for `hierarchy` and `axes`
/// (all factorizations satisfying the row/column product constraints),
/// in deterministic lexicographic order. Requires
/// product(axes) == hierarchy.num_devices(); otherwise returns {}.
std::vector<ParallelismMatrix> EnumeratePlacements(
    const topology::SystemHierarchy& hierarchy,
    std::span<const std::int64_t> axes);

/// Number of placements without materializing them (used by the placement-
/// space benchmarks; equals EnumeratePlacements(...).size()).
std::int64_t CountPlacements(const topology::SystemHierarchy& hierarchy,
                             std::span<const std::int64_t> axes);

/// The concrete device layout induced by a parallelism matrix.
class PlacementLayout {
 public:
  explicit PlacementLayout(ParallelismMatrix matrix);

  const ParallelismMatrix& matrix() const { return matrix_; }
  std::int64_t num_devices() const { return num_devices_; }

  /// Per-axis, per-level digit a_{axis, level} of `device`.
  std::int64_t Digit(std::int64_t device, int axis, int level) const;

  /// The device with the given per-axis-per-level digits
  /// (digits[axis][level], same shape as the matrix).
  std::int64_t DeviceFromDigits(
      const std::vector<std::vector<std::int64_t>>& digits) const;

  /// Coordinate of `device` on parallelism `axis` in [0, axis_size).
  std::int64_t AxisCoordinate(std::int64_t device, int axis) const;

  /// Partition of all devices into reduction groups for the given reduction
  /// axes: devices agreeing on all *other* axes' coordinates are grouped.
  /// Groups are sorted by device id; each group is sorted ascending.
  std::vector<std::vector<std::int64_t>> ReductionGroups(
      std::span<const int> reduction_axes) const;

 private:
  ParallelismMatrix matrix_;
  std::int64_t num_devices_ = 0;
  // Flattened radices of the digit expansion of a device id: for each level j
  // (outer to inner), for each axis i (outer to inner), x_{i,j}.
  std::vector<std::int64_t> flat_radices_;
};

}  // namespace p2::core

#endif  // P2_CORE_PLACEMENT_H_
