// Lowering of synthesized reduction programs from the synthesis hierarchy to
// the full system (paper Section 3.4): every instruction becomes a set of
// concrete global-device groups (the synthesis grouping pattern applied once
// per assignment of the non-reduction axes' coordinates), annotated with the
// per-device data volume entering and leaving the step.
#ifndef P2_CORE_LOWERING_H_
#define P2_CORE_LOWERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/collective.h"
#include "core/reduction_dsl.h"
#include "core/synthesis_hierarchy.h"

namespace p2::core {

struct LoweredStep {
  Collective op = Collective::kAllReduce;
  /// Concrete global-device groups executing `op` concurrently.
  std::vector<std::vector<std::int64_t>> groups;
  /// groups[i] as ints in ascending order — the ring/chain member order the
  /// cost model charges. Precomputed here (LowerProgram fills it; see
  /// ComputeSortedOrders) so CostModel::PredictStep does not rebuild and
  /// sort the order per group per prediction; when absent (e.g. a
  /// hand-constructed step) the cost model falls back to a scratch build.
  std::vector<std::vector<int>> sorted_orders;
  /// Per-participant data entering/leaving the step, as a fraction of the
  /// per-device payload (rows held / k'). For Reduce/Broadcast the fraction
  /// of the root is used; for AllGather `out_fraction` is the gathered total.
  double in_fraction = 1.0;
  double out_fraction = 1.0;

  /// Rebuilds `sorted_orders` from `groups`.
  void ComputeSortedOrders();
};

struct LoweredProgram {
  Program source;                  ///< the DSL program this was lowered from
  std::vector<LoweredStep> steps;  ///< executed in order, barrier in between
  std::int64_t num_devices = 0;    ///< global device count of the system
};

/// Lowers `program` (which must be semantically valid on `sh`'s synthesis
/// hierarchy; throws std::invalid_argument otherwise).
LoweredProgram LowerProgram(const SynthesisHierarchy& sh,
                            const Program& program);

/// Replays a lowered program on the *full system's* state matrices and
/// verifies it implements the user-requested reduction: the initial context
/// must reach exactly the goal context of the placement's reduction groups.
/// This is the paper's notion of end-to-end semantic validity; the lowering
/// theorem (Thm 3.2 machinery) says it always holds for programs synthesized
/// on hierarchy (d) — a property the test-suite checks empirically.
bool CheckLoweredOnFullSystem(const SynthesisHierarchy& sh,
                              const LoweredProgram& lowered,
                              std::string* error = nullptr);

}  // namespace p2::core

#endif  // P2_CORE_LOWERING_H_
