// Parallelism matrices (paper Section 3.1): an (m+1) x (n+1) matrix of
// positive "parallelism factors" mapping m+1 parallelism axes onto an
// n+1-level system hierarchy, subject to
//   (1) column products equal the hierarchy cardinalities, and
//   (2) row products equal the parallelism axis sizes.
#ifndef P2_CORE_PARALLELISM_MATRIX_H_
#define P2_CORE_PARALLELISM_MATRIX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "topology/system.h"

namespace p2::core {

class ParallelismMatrix {
 public:
  ParallelismMatrix() = default;

  /// `rows[i][j]` is the factor of parallelism axis i at hierarchy level j.
  /// Throws std::invalid_argument on ragged or empty input or factors < 1.
  explicit ParallelismMatrix(std::vector<std::vector<std::int64_t>> rows);

  int num_axes() const { return static_cast<int>(rows_.size()); }
  int num_levels() const {
    return rows_.empty() ? 0 : static_cast<int>(rows_[0].size());
  }

  std::int64_t factor(int axis, int level) const;
  std::span<const std::int64_t> row(int axis) const;
  const std::vector<std::vector<std::int64_t>>& rows() const { return rows_; }

  /// Product of row `axis` (the parallelism axis size this matrix realizes).
  std::int64_t RowProduct(int axis) const;
  /// Product of column `level` (the hierarchy cardinality it realizes).
  std::int64_t ColumnProduct(int level) const;

  /// Axis sizes [RowProduct(0) ... RowProduct(m)].
  std::vector<std::int64_t> AxisSizes() const;
  /// Hierarchy cardinalities [ColumnProduct(0) ... ColumnProduct(n)].
  std::vector<std::int64_t> LevelCardinalities() const;

  /// Checks constraints (1) and (2) against the given hierarchy and axes.
  bool IsValidFor(const topology::SystemHierarchy& hierarchy,
                  std::span<const std::int64_t> axes) const;

  /// Total number of devices = product of all entries.
  std::int64_t num_devices() const;

  /// "[[1 2] [4 8]]"
  std::string ToString() const;

  friend bool operator==(const ParallelismMatrix&, const ParallelismMatrix&) =
      default;

 private:
  std::vector<std::vector<std::int64_t>> rows_;
};

}  // namespace p2::core

#endif  // P2_CORE_PARALLELISM_MATRIX_H_
