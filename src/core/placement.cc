#include "core/placement.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/math.h"

namespace p2::core {

namespace {

// Recursively assigns one hierarchy level (column) at a time. `running[i]` is
// the product of row i's factors assigned so far.
void EnumerateColumns(std::span<const std::int64_t> cards,
                      std::span<const std::int64_t> axes, int level,
                      std::vector<std::vector<std::int64_t>>& columns,
                      std::vector<std::int64_t>& running,
                      std::vector<ParallelismMatrix>* out,
                      std::int64_t* count) {
  const int num_axes = static_cast<int>(axes.size());
  const int num_levels = static_cast<int>(cards.size());
  if (level == num_levels) {
    for (int i = 0; i < num_axes; ++i) {
      if (running[static_cast<std::size_t>(i)] !=
          axes[static_cast<std::size_t>(i)]) {
        return;
      }
    }
    if (count != nullptr) ++*count;
    if (out != nullptr) {
      // columns[j][i] -> rows[i][j]
      std::vector<std::vector<std::int64_t>> rows(
          static_cast<std::size_t>(num_axes),
          std::vector<std::int64_t>(static_cast<std::size_t>(num_levels)));
      for (int j = 0; j < num_levels; ++j) {
        for (int i = 0; i < num_axes; ++i) {
          rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
              columns[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
        }
      }
      out->push_back(ParallelismMatrix(std::move(rows)));
    }
    return;
  }

  // Enumerate ordered factorizations of this level's cardinality across axes,
  // pruning rows whose running product would no longer divide the axis size.
  std::vector<std::int64_t> column(static_cast<std::size_t>(num_axes), 1);
  auto rec = [&](auto&& self, int axis, std::int64_t remaining) -> void {
    if (axis == num_axes - 1) {
      const std::int64_t f = remaining;
      const std::int64_t next =
          running[static_cast<std::size_t>(axis)] * f;
      if (axes[static_cast<std::size_t>(axis)] % next != 0) return;
      column[static_cast<std::size_t>(axis)] = f;
      running[static_cast<std::size_t>(axis)] = next;
      columns.push_back(column);
      EnumerateColumns(cards, axes, level + 1, columns, running, out, count);
      columns.pop_back();
      running[static_cast<std::size_t>(axis)] = next / f;
      return;
    }
    for (std::int64_t f = 1; f <= remaining; ++f) {
      if (remaining % f != 0) continue;
      const std::int64_t next = running[static_cast<std::size_t>(axis)] * f;
      if (axes[static_cast<std::size_t>(axis)] % next != 0) continue;
      column[static_cast<std::size_t>(axis)] = f;
      running[static_cast<std::size_t>(axis)] = next;
      self(self, axis + 1, remaining / f);
      running[static_cast<std::size_t>(axis)] = next / f;
    }
  };
  rec(rec, 0, cards[static_cast<std::size_t>(level)]);
}

void Enumerate(const topology::SystemHierarchy& hierarchy,
               std::span<const std::int64_t> axes,
               std::vector<ParallelismMatrix>* out, std::int64_t* count) {
  if (axes.empty()) return;
  std::int64_t axis_product = 1;
  for (std::int64_t a : axes) {
    if (a < 1) throw std::invalid_argument("EnumeratePlacements: axis < 1");
    axis_product *= a;
  }
  if (axis_product != hierarchy.num_devices()) return;
  const auto cards = hierarchy.cardinalities();
  std::vector<std::vector<std::int64_t>> columns;
  std::vector<std::int64_t> running(axes.size(), 1);
  EnumerateColumns(cards, axes, 0, columns, running, out, count);
}

}  // namespace

std::vector<ParallelismMatrix> EnumeratePlacements(
    const topology::SystemHierarchy& hierarchy,
    std::span<const std::int64_t> axes) {
  std::vector<ParallelismMatrix> out;
  Enumerate(hierarchy, axes, &out, nullptr);
  return out;
}

std::int64_t CountPlacements(const topology::SystemHierarchy& hierarchy,
                             std::span<const std::int64_t> axes) {
  std::int64_t count = 0;
  Enumerate(hierarchy, axes, nullptr, &count);
  return count;
}

PlacementLayout::PlacementLayout(ParallelismMatrix matrix)
    : matrix_(std::move(matrix)) {
  num_devices_ = matrix_.num_devices();
  flat_radices_.reserve(static_cast<std::size_t>(matrix_.num_levels()) *
                        static_cast<std::size_t>(matrix_.num_axes()));
  for (int j = 0; j < matrix_.num_levels(); ++j) {
    for (int i = 0; i < matrix_.num_axes(); ++i) {
      flat_radices_.push_back(matrix_.factor(i, j));
    }
  }
}

std::int64_t PlacementLayout::Digit(std::int64_t device, int axis,
                                    int level) const {
  if (device < 0 || device >= num_devices_) {
    throw std::out_of_range("PlacementLayout::Digit: bad device");
  }
  const auto digits = IndexToDigits(device, flat_radices_);
  return digits[static_cast<std::size_t>(level) *
                    static_cast<std::size_t>(matrix_.num_axes()) +
                static_cast<std::size_t>(axis)];
}

std::int64_t PlacementLayout::DeviceFromDigits(
    const std::vector<std::vector<std::int64_t>>& digits) const {
  if (static_cast<int>(digits.size()) != matrix_.num_axes()) {
    throw std::invalid_argument("DeviceFromDigits: wrong axis count");
  }
  std::vector<std::int64_t> flat;
  flat.reserve(flat_radices_.size());
  for (int j = 0; j < matrix_.num_levels(); ++j) {
    for (int i = 0; i < matrix_.num_axes(); ++i) {
      flat.push_back(digits.at(static_cast<std::size_t>(i))
                         .at(static_cast<std::size_t>(j)));
    }
  }
  return DigitsToIndex(flat, flat_radices_);
}

std::int64_t PlacementLayout::AxisCoordinate(std::int64_t device,
                                             int axis) const {
  const auto digits = IndexToDigits(device, flat_radices_);
  std::int64_t coord = 0;
  for (int j = 0; j < matrix_.num_levels(); ++j) {
    coord = coord * matrix_.factor(axis, j) +
            digits[static_cast<std::size_t>(j) *
                       static_cast<std::size_t>(matrix_.num_axes()) +
                   static_cast<std::size_t>(axis)];
  }
  return coord;
}

std::vector<std::vector<std::int64_t>> PlacementLayout::ReductionGroups(
    std::span<const int> reduction_axes) const {
  std::vector<bool> is_reduction(static_cast<std::size_t>(matrix_.num_axes()),
                                 false);
  for (int a : reduction_axes) {
    if (a < 0 || a >= matrix_.num_axes()) {
      throw std::out_of_range("ReductionGroups: bad reduction axis");
    }
    is_reduction[static_cast<std::size_t>(a)] = true;
  }
  std::map<std::vector<std::int64_t>, std::vector<std::int64_t>> by_key;
  for (std::int64_t d = 0; d < num_devices_; ++d) {
    std::vector<std::int64_t> key;
    for (int i = 0; i < matrix_.num_axes(); ++i) {
      if (!is_reduction[static_cast<std::size_t>(i)]) {
        key.push_back(AxisCoordinate(d, i));
      }
    }
    by_key[key].push_back(d);
  }
  std::vector<std::vector<std::int64_t>> groups;
  groups.reserve(by_key.size());
  for (auto& [key, group] : by_key) groups.push_back(std::move(group));
  std::sort(groups.begin(), groups.end());
  return groups;
}

}  // namespace p2::core
