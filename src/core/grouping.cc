#include "core/grouping.h"

#include <stdexcept>

namespace p2::core {

std::vector<std::vector<std::int64_t>> DeriveGroups(
    std::span<const std::int64_t> hierarchy, int slice_level,
    const Form& form) {
  const int depth = static_cast<int>(hierarchy.size());
  if (slice_level < 0 || slice_level >= depth) {
    throw std::invalid_argument("DeriveGroups: slice level out of range");
  }
  std::int64_t total = 1;
  for (std::int64_t c : hierarchy) {
    if (c < 1) throw std::invalid_argument("DeriveGroups: bad cardinality");
    total *= c;
  }
  // Number of devices under one node of the slice level.
  std::int64_t slice_subtree = 1;
  for (int l = slice_level + 1; l < depth; ++l) {
    slice_subtree *= hierarchy[static_cast<std::size_t>(l)];
  }

  std::vector<std::vector<std::int64_t>> groups;
  switch (form.kind) {
    case Form::Kind::kInsideGroup: {
      // One group per slice-level node: a contiguous block of devices.
      for (std::int64_t base = 0; base < total; base += slice_subtree) {
        std::vector<std::int64_t> g;
        g.reserve(static_cast<std::size_t>(slice_subtree));
        for (std::int64_t t = 0; t < slice_subtree; ++t) g.push_back(base + t);
        groups.push_back(std::move(g));
      }
      return groups;
    }
    case Form::Kind::kParallel:
    case Form::Kind::kMaster: {
      const int anc = form.ancestor_level;
      if (anc < 0 || anc >= slice_level) {
        throw std::invalid_argument(
            "DeriveGroups: form level must be a strict ancestor of the slice");
      }
      // Devices under one ancestor node, and slice-level nodes it contains.
      std::int64_t anc_subtree = 1;
      for (int l = anc + 1; l < depth; ++l) {
        anc_subtree *= hierarchy[static_cast<std::size_t>(l)];
      }
      const std::int64_t slices_per_anc = anc_subtree / slice_subtree;
      for (std::int64_t base = 0; base < total; base += anc_subtree) {
        const std::int64_t positions =
            form.kind == Form::Kind::kMaster ? 1 : slice_subtree;
        for (std::int64_t p = 0; p < positions; ++p) {
          std::vector<std::int64_t> g;
          g.reserve(static_cast<std::size_t>(slices_per_anc));
          for (std::int64_t q = 0; q < slices_per_anc; ++q) {
            g.push_back(base + q * slice_subtree + p);
          }
          groups.push_back(std::move(g));
        }
      }
      return groups;
    }
  }
  throw std::logic_error("DeriveGroups: unknown form");
}

}  // namespace p2::core
