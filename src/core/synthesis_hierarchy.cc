#include "core/synthesis_hierarchy.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/math.h"

namespace p2::core {

const char* ToString(SynthesisHierarchyKind k) {
  switch (k) {
    case SynthesisHierarchyKind::kSystem:
      return "system";
    case SynthesisHierarchyKind::kColumnMajor:
      return "column-major";
    case SynthesisHierarchyKind::kRowMajor:
      return "row-major";
    case SynthesisHierarchyKind::kReductionAxes:
      return "reduction-axes";
  }
  return "?";
}

SynthesisHierarchy::SynthesisHierarchy(PlacementLayout layout,
                                       std::vector<int> reduction_axes,
                                       SynthesisHierarchyKind kind)
    : kind_(kind),
      layout_(std::move(layout)),
      reduction_axes_(std::move(reduction_axes)) {}

std::string SynthesisHierarchy::Signature() const {
  std::string sig = "levels:";
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (i > 0) sig += ',';
    sig += std::to_string(levels_[i]);
  }
  sig += ";goal:";
  for (const auto& group : goal_groups_) {
    sig += '[';
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (i > 0) sig += ',';
      sig += std::to_string(group[i]);
    }
    sig += ']';
  }
  return sig;
}

std::int64_t SynthesisHierarchy::GlobalDevice(std::int64_t synth,
                                              std::int64_t replica) const {
  return device_map_.at(static_cast<std::size_t>(replica))
      .at(static_cast<std::size_t>(synth));
}

namespace {

std::vector<bool> ReductionFlags(const ParallelismMatrix& m,
                                 std::span<const int> reduction_axes) {
  std::vector<bool> flags(static_cast<std::size_t>(m.num_axes()), false);
  if (reduction_axes.empty()) {
    throw std::invalid_argument("SynthesisHierarchy: no reduction axes");
  }
  for (int a : reduction_axes) {
    if (a < 0 || a >= m.num_axes()) {
      throw std::out_of_range("SynthesisHierarchy: bad reduction axis");
    }
    if (flags[static_cast<std::size_t>(a)]) {
      throw std::invalid_argument("SynthesisHierarchy: duplicate axis");
    }
    flags[static_cast<std::size_t>(a)] = true;
  }
  return flags;
}

// Groups synthesis devices by their devices' non-reduction-axis coordinates.
std::vector<std::vector<std::int64_t>> GoalGroupsFromMap(
    const PlacementLayout& layout, const std::vector<bool>& is_reduction,
    std::span<const std::int64_t> synth_to_global) {
  std::map<std::vector<std::int64_t>, std::vector<std::int64_t>> by_key;
  for (std::int64_t s = 0;
       s < static_cast<std::int64_t>(synth_to_global.size()); ++s) {
    const std::int64_t d = synth_to_global[static_cast<std::size_t>(s)];
    std::vector<std::int64_t> key;
    for (int i = 0; i < layout.matrix().num_axes(); ++i) {
      if (!is_reduction[static_cast<std::size_t>(i)]) {
        key.push_back(layout.AxisCoordinate(d, i));
      }
    }
    by_key[key].push_back(s);
  }
  std::vector<std::vector<std::int64_t>> groups;
  groups.reserve(by_key.size());
  for (auto& [k, g] : by_key) groups.push_back(std::move(g));
  std::sort(groups.begin(), groups.end());
  return groups;
}

}  // namespace

SynthesisHierarchy SynthesisHierarchy::Build(
    const ParallelismMatrix& matrix, std::span<const int> reduction_axes,
    SynthesisHierarchyKind kind, bool collapse) {
  const std::vector<bool> is_reduction = ReductionFlags(matrix, reduction_axes);
  SynthesisHierarchy sh(PlacementLayout(matrix),
                        std::vector<int>(reduction_axes.begin(),
                                         reduction_axes.end()),
                        kind);
  const int m = matrix.num_axes();
  const int n = matrix.num_levels();
  const std::int64_t k_global = matrix.num_devices();

  switch (kind) {
    case SynthesisHierarchyKind::kSystem: {
      for (int j = 0; j < n; ++j) {
        sh.levels_.push_back(matrix.ColumnProduct(j));
        sh.level_names_.push_back("L" + std::to_string(j));
      }
      sh.num_synth_devices_ = k_global;
      sh.num_replicas_ = 1;
      sh.device_map_.emplace_back();
      for (std::int64_t d = 0; d < k_global; ++d) {
        sh.device_map_[0].push_back(d);
      }
      break;
    }
    case SynthesisHierarchyKind::kColumnMajor: {
      // Flattening columns matches the global-device digit order exactly, so
      // the synthesis numbering is the identity.
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i) {
          sh.levels_.push_back(matrix.factor(i, j));
          sh.level_names_.push_back("L" + std::to_string(j) + ".a" +
                                    std::to_string(i));
        }
      }
      sh.num_synth_devices_ = k_global;
      sh.num_replicas_ = 1;
      sh.device_map_.emplace_back();
      for (std::int64_t d = 0; d < k_global; ++d) {
        sh.device_map_[0].push_back(d);
      }
      break;
    }
    case SynthesisHierarchyKind::kRowMajor: {
      std::vector<std::int64_t> flat_radices;
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          sh.levels_.push_back(matrix.factor(i, j));
          flat_radices.push_back(matrix.factor(i, j));
          sh.level_names_.push_back("a" + std::to_string(i) + ".L" +
                                    std::to_string(j));
        }
      }
      sh.num_synth_devices_ = k_global;
      sh.num_replicas_ = 1;
      sh.device_map_.emplace_back();
      sh.device_map_[0].resize(static_cast<std::size_t>(k_global));
      // Synthesis digit order: (a_{0,0}..a_{0,n}, a_{1,0}, ...). Convert each
      // synthesis index to per-axis digits, then to the global device.
      for (std::int64_t s = 0; s < k_global; ++s) {
        const auto digits = IndexToDigits(s, flat_radices);
        std::vector<std::vector<std::int64_t>> by_axis(
            static_cast<std::size_t>(m),
            std::vector<std::int64_t>(static_cast<std::size_t>(n)));
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < n; ++j) {
            by_axis[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                digits[static_cast<std::size_t>(i * n + j)];
          }
        }
        sh.device_map_[0][static_cast<std::size_t>(s)] =
            sh.layout_.DeviceFromDigits(by_axis);
      }
      break;
    }
    case SynthesisHierarchyKind::kReductionAxes: {
      // Root level first (appendix B: "(root, 1) as the root of (d)").
      sh.levels_.push_back(1);
      sh.level_names_.push_back("root");
      // Ordered reduction axes (ascending) and the digit radices of a
      // synthesis index.
      std::vector<int> axes_sorted = sh.reduction_axes_;
      std::sort(axes_sorted.begin(), axes_sorted.end());
      if (collapse) {
        for (int j = 0; j < n; ++j) {
          std::int64_t y = 1;
          for (int i : axes_sorted) y *= matrix.factor(i, j);
          sh.levels_.push_back(y);
          sh.level_names_.push_back("L" + std::to_string(j));
        }
      } else {
        for (int i : axes_sorted) {
          for (int j = 0; j < n; ++j) {
            sh.levels_.push_back(matrix.factor(i, j));
            sh.level_names_.push_back("a" + std::to_string(i) + ".L" +
                                      std::to_string(j));
          }
        }
      }
      sh.num_synth_devices_ = Product(std::span<const std::int64_t>(sh.levels_));

      // Replica radices: digits of the non-reduction axes (axis-major).
      std::vector<std::int64_t> replica_radices;
      std::vector<std::pair<int, int>> replica_slots;  // (axis, level)
      for (int i = 0; i < m; ++i) {
        if (is_reduction[static_cast<std::size_t>(i)]) continue;
        for (int j = 0; j < n; ++j) {
          replica_radices.push_back(matrix.factor(i, j));
          replica_slots.emplace_back(i, j);
        }
      }
      sh.num_replicas_ = Product(std::span<const std::int64_t>(replica_radices));

      // Synthesis-digit radices and their (axis, level) slots.
      std::vector<std::int64_t> synth_radices;
      std::vector<std::pair<int, int>> synth_slots;
      for (int i : axes_sorted) {
        for (int j = 0; j < n; ++j) {
          synth_radices.push_back(matrix.factor(i, j));
          synth_slots.emplace_back(i, j);
        }
      }
      // With collapse, the synthesis *levels* multiply same-level factors
      // together; the per-(axis, level) digits of a synthesis index are
      // recovered with the expanded level-major radices below. Mixed radix is
      // associative under grouping, so decomposing with the flattened radices
      // equals decomposing level digits b_j and then splitting each b_j.
      std::vector<std::int64_t> synth_digit_radices;
      std::vector<std::pair<int, int>> synth_digit_slots;
      if (collapse) {
        for (int j = 0; j < n; ++j) {
          for (int i : axes_sorted) {
            synth_digit_radices.push_back(matrix.factor(i, j));
            synth_digit_slots.emplace_back(i, j);
          }
        }
      } else {
        synth_digit_radices = synth_radices;
        synth_digit_slots = synth_slots;
      }

      sh.device_map_.assign(static_cast<std::size_t>(sh.num_replicas_), {});
      for (std::int64_t rep = 0; rep < sh.num_replicas_; ++rep) {
        const auto rep_digits =
            replica_radices.empty()
                ? std::vector<std::int64_t>{}
                : IndexToDigits(rep, replica_radices);
        auto& row = sh.device_map_[static_cast<std::size_t>(rep)];
        row.resize(static_cast<std::size_t>(sh.num_synth_devices_));
        for (std::int64_t s = 0; s < sh.num_synth_devices_; ++s) {
          const auto s_digits = IndexToDigits(s, synth_digit_radices);
          std::vector<std::vector<std::int64_t>> by_axis(
              static_cast<std::size_t>(m),
              std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
          for (std::size_t t = 0; t < synth_digit_slots.size(); ++t) {
            const auto [i, j] = synth_digit_slots[t];
            by_axis[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                s_digits[t];
          }
          for (std::size_t t = 0; t < replica_slots.size(); ++t) {
            const auto [i, j] = replica_slots[t];
            by_axis[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
                rep_digits[t];
          }
          row[static_cast<std::size_t>(s)] = sh.layout_.DeviceFromDigits(by_axis);
        }
      }
      break;
    }
  }

  // Appendix B assumes every synthesis hierarchy is rooted with a level of
  // cardinality 1 so that Parallel/Master can join groups across the whole
  // system; hierarchies whose outermost level is already 1 have that root.
  if (sh.levels_.front() != 1) {
    sh.levels_.insert(sh.levels_.begin(), 1);
    sh.level_names_.insert(sh.level_names_.begin(), "root");
  }

  // Goal groups.
  if (kind == SynthesisHierarchyKind::kReductionAxes) {
    std::vector<std::int64_t> all(
        static_cast<std::size_t>(sh.num_synth_devices_));
    for (std::int64_t s = 0; s < sh.num_synth_devices_; ++s) {
      all[static_cast<std::size_t>(s)] = s;
    }
    sh.goal_groups_.push_back(std::move(all));
  } else {
    sh.goal_groups_ = GoalGroupsFromMap(sh.layout_, is_reduction,
                                        sh.device_map_[0]);
  }
  return sh;
}

}  // namespace p2::core
