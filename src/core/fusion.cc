#include "core/fusion.h"

#include <optional>
#include <stdexcept>

#include "core/collective_semantics.h"
#include "core/device_state.h"
#include "core/grouping.h"
#include "core/synthesizer.h"

namespace p2::core {

namespace {

// Applies one instruction via its deduplicated grouping pattern. Returns
// false when the semantics rejects it.
bool ApplyInstruction(const GroupingPattern& pattern, Collective op,
                      StateContext& ctx) {
  return ApplyCollectiveToGroups(op, ctx, pattern.groups).ok();
}

std::optional<Instruction> FindSingleStepEquivalent(
    const std::vector<GroupingPattern>& alphabet, const StateContext& before,
    const StateContext& after) {
  for (const GroupingPattern& pattern : alphabet) {
    for (Collective op : kAllCollectives) {
      StateContext ctx = before;
      if (!ApplyInstruction(pattern, op, ctx)) continue;
      if (ctx == after) {
        return Instruction{pattern.slice_level, pattern.form, op};
      }
    }
  }
  return std::nullopt;
}

// The pattern whose groups an instruction denotes (after singleton
// filtering, matching the synthesizer's alphabet construction).
const GroupingPattern* PatternFor(
    const std::vector<GroupingPattern>& alphabet,
    const SynthesisHierarchy& sh, const Instruction& instr) {
  auto groups = DeriveGroups(sh.levels(), instr);
  std::erase_if(groups, [](const auto& g) { return g.size() < 2; });
  for (const GroupingPattern& pattern : alphabet) {
    if (pattern.groups == groups) return &pattern;
  }
  return nullptr;
}

}  // namespace

FusionResult FuseProgram(const SynthesisHierarchy& sh,
                         const Program& program) {
  const auto alphabet = BuildGroupingAlphabet(sh);
  const int k = static_cast<int>(sh.num_synth_devices());

  FusionResult result;
  result.program = program;

  bool changed = true;
  while (changed) {
    changed = false;
    // Contexts before each step.
    std::vector<StateContext> contexts;
    contexts.push_back(MakeInitialContext(k));
    for (const Instruction& instr : result.program) {
      const GroupingPattern* pattern = PatternFor(alphabet, sh, instr);
      if (pattern == nullptr) {
        throw std::invalid_argument("FuseProgram: instruction has no groups");
      }
      StateContext next = contexts.back();
      if (!ApplyInstruction(*pattern, instr.op, next)) {
        throw std::invalid_argument("FuseProgram: invalid program");
      }
      contexts.push_back(std::move(next));
    }

    for (std::size_t i = 0; i + 1 < result.program.size(); ++i) {
      const auto fused = FindSingleStepEquivalent(alphabet, contexts[i],
                                                  contexts[i + 2]);
      if (!fused.has_value()) continue;
      result.program[i] = *fused;
      result.program.erase(result.program.begin() +
                           static_cast<std::ptrdiff_t>(i) + 1);
      ++result.steps_removed;
      changed = true;
      break;  // recompute contexts from scratch
    }
  }
  return result;
}

}  // namespace p2::core
