// Peephole fusion of reduction programs. The paper observes (Section 5)
// that XLA fuses some synthesized programs — e.g. two consecutive AllReduce
// steps collapse into a single AllReduce over coarser groups — and that the
// fused forms are themselves valid synthesizable programs. This pass
// performs that rewrite inside P2: adjacent instruction pairs are replaced
// by a single alphabet instruction whenever one produces the identical
// state context, repeatedly, until a fixed point.
#ifndef P2_CORE_FUSION_H_
#define P2_CORE_FUSION_H_

#include "core/reduction_dsl.h"
#include "core/synthesis_hierarchy.h"

namespace p2::core {

struct FusionResult {
  Program program;     ///< the (possibly shorter) equivalent program
  int steps_removed = 0;
};

/// Fuses `program` (which must be valid on `sh`; throws std::invalid_argument
/// otherwise). The result is semantically equivalent: it transforms every
/// reachable context identically, step pair by step pair.
FusionResult FuseProgram(const SynthesisHierarchy& sh, const Program& program);

}  // namespace p2::core

#endif  // P2_CORE_FUSION_H_
