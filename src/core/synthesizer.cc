#include "core/synthesizer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/collective_semantics.h"
#include "core/device_state.h"
#include "core/grouping.h"

namespace p2::core {

std::vector<GroupingPattern> BuildGroupingAlphabet(
    const SynthesisHierarchy& sh) {
  std::vector<GroupingPattern> alphabet;
  std::set<std::vector<std::vector<std::int64_t>>> seen;
  const auto& levels = sh.levels();
  const int depth = static_cast<int>(levels.size());
  auto consider = [&](int slice, const Form& form) {
    auto groups = DeriveGroups(levels, slice, form);
    // Drop trivial groups; a pattern whose groups are all singletons performs
    // no communication and is not a reduction instruction.
    std::erase_if(groups, [](const auto& g) { return g.size() < 2; });
    if (groups.empty()) return;
    if (!seen.insert(groups).second) return;
    alphabet.push_back(GroupingPattern{slice, form, std::move(groups)});
  };
  for (int slice = 0; slice < depth; ++slice) {
    consider(slice, Form::InsideGroup());
    for (int anc = 0; anc < slice; ++anc) {
      consider(slice, Form::Parallel(anc));
      consider(slice, Form::Master(anc));
    }
  }
  return alphabet;
}

namespace {

constexpr int kNumOps = static_cast<int>(kAllCollectives.size());

// Flat instruction index over the alphabet: pattern-major, collective-minor
// — exactly the candidate order of the reference DFS, which the transition
// table and the deterministic merges below preserve.
Instruction DecodeInstruction(const std::vector<GroupingPattern>& alphabet,
                              std::int32_t index) {
  const GroupingPattern& p =
      alphabet[static_cast<std::size_t>(index) / kNumOps];
  return Instruction{p.slice_level, p.form,
                     kAllCollectives[static_cast<std::size_t>(index) % kNumOps]};
}

// The seed's blind DFS, kept verbatim as the differential oracle.
struct ReferenceSearcher {
  const std::vector<GroupingPattern>& alphabet;
  const StateContext& goal;
  const SynthesisOptions& options;
  SynthesisResult& result;
  Program current;

  void Dfs(const StateContext& ctx) {
    if (static_cast<std::int64_t>(result.programs.size()) >=
        options.max_programs) {
      return;
    }
    if (ctx == goal) {
      result.programs.push_back(current);
      return;  // extensions of a finished program are not useful programs
    }
    if (static_cast<int>(current.size()) >= options.max_program_size) return;
    for (const GroupingPattern& p : alphabet) {
      for (Collective op : kAllCollectives) {
        ++result.stats.instructions_tried;
        StateContext next = ctx;
        const ApplyResult r = ApplyCollectiveToGroups(op, next, p.groups);
        if (!r.ok()) continue;
        ++result.stats.applications_succeeded;
        current.push_back(Instruction{p.slice_level, p.form, op});
        Dfs(next);
        current.pop_back();
      }
    }
  }
};

// An instruction-index suffix leading to the goal.
using Suffix = std::vector<std::int32_t>;
using SuffixList = std::vector<Suffix>;

// The transposition table: redistribution states interned by
// DeviceState::Hash()/equality, the (state, instruction) -> state transition
// relation computed once per distinct state, and the exact-length goal
// completions of every (state, length) pair memoized — so sub-states reached
// by different instruction orders are explored once and replayed everywhere
// else.
//
// Build() grows the table breadth-first: each layer's frontier states are
// expanded on the thread pool (expansion only *reads* the table — candidate
// instructions run apply/undo on a private scratch, so workers share
// nothing mutable), and the successors are interned in a serial merge that
// walks states in discovery order and instructions in alphabet order. The
// merge makes state ids, the transition relation, and every statistic a pure
// function of the synthesis problem — identical at any thread count — which
// mirrors the evaluation pipeline's parallel-evaluate / deterministic-merge
// contract. At layer 0 the fan-out is exactly the root-level alphabet
// branches; deeper layers generalize it to the whole frontier.
class TranspositionTable {
 public:
  TranspositionTable(const std::vector<GroupingPattern>& alphabet,
                     const StateContext& goal, int max_length)
      : alphabet_(alphabet), goal_(goal), max_length_(max_length) {}

  /// Interns the root state and expands the transition relation to every
  /// state reachable within `max_length_` instructions (goal states are
  /// absorbing and never expanded). `cancel` is observed between layers and
  /// per frontier-state expansion; an aborted build throws the token's
  /// error with the table half-grown (the caller discards it).
  void Build(const StateContext& initial, ThreadPool& pool,
             const CancelToken& cancel) {
    StateContext root = initial;
    std::vector<int> layer = {Intern(std::move(root))};
    const std::int64_t num_instructions =
        static_cast<std::int64_t>(alphabet_.size()) * kNumOps;
    for (int depth = 0; depth < max_length_ && !layer.empty(); ++depth) {
      MaybeInjectFault("synth.layer");
      cancel.ThrowIfCancelled();
      // Parallel phase: expand each frontier state into its successor
      // contexts. Slot i belongs to layer[i] alone and states_ does not
      // grow here, so workers race on nothing.
      std::vector<std::vector<std::pair<std::int32_t, StateContext>>>
          expanded(layer.size());
      pool.ParallelFor(
          static_cast<std::int64_t>(layer.size()), [&](std::int64_t i) {
            cancel.ThrowIfCancelled();
            const int id = layer[static_cast<std::size_t>(i)];
            if (is_goal_[static_cast<std::size_t>(id)]) return;
            auto& out = expanded[static_cast<std::size_t>(i)];
            StateContext scratch = states_[static_cast<std::size_t>(id)];
            ApplyUndo undo;
            std::int32_t instr = 0;
            for (const GroupingPattern& p : alphabet_) {
              for (Collective op : kAllCollectives) {
                if (ApplyCollectiveToGroups(op, scratch, p.groups, undo)
                        .ok()) {
                  out.emplace_back(instr, scratch);
                  undo.RevertInto(scratch);
                }
                ++instr;
              }
            }
          });
      // Serial merge, in (frontier order, alphabet order): intern successors
      // and record the transition lists. First-discovery order assigns ids.
      std::vector<int> next;
      for (std::size_t i = 0; i < layer.size(); ++i) {
        const int id = layer[i];
        if (is_goal_[static_cast<std::size_t>(id)]) continue;
        stats.instructions_tried += num_instructions;
        stats.applications_succeeded +=
            static_cast<std::int64_t>(expanded[i].size());
        auto succ =
            std::make_unique<std::vector<std::pair<std::int32_t, int>>>();
        succ->reserve(expanded[i].size());
        for (auto& [instr, ctx] : expanded[i]) {
          const std::size_t before = states_.size();
          const int succ_id = Intern(std::move(ctx));
          if (states_.size() > before) next.push_back(succ_id);
          succ->emplace_back(instr, succ_id);
        }
        successors_[static_cast<std::size_t>(id)] = std::move(succ);
      }
      layer = std::move(next);
    }
  }

  /// Suffixes of exactly `length` instructions leading from state `id` to
  /// the goal, lexicographic in instruction index. Goal states are never
  /// extended — the DFS rule that finished programs make no useful prefixes.
  const SuffixList& Completions(int id, int length) {
    const std::int64_t key =
        static_cast<std::int64_t>(id) * (max_length_ + 1) + length;
    if (const auto it = completions_.find(key); it != completions_.end()) {
      ++stats.branches_pruned;
      return it->second;
    }
    SuffixList out;
    if (is_goal_[static_cast<std::size_t>(id)]) {
      if (length == 0) out.emplace_back();
    } else if (length > 0) {
      const auto* succ = successors_[static_cast<std::size_t>(id)].get();
      if (succ == nullptr) {
        // Build() expands every state reachable in < max_length_ steps, and
        // deeper states are only ever queried with length == 0.
        throw std::logic_error("TranspositionTable: unexpanded state queried");
      }
      for (const auto& [instr, succ_id] : *succ) {
        for (const Suffix& tail : Completions(succ_id, length - 1)) {
          Suffix& s = out.emplace_back();
          s.reserve(tail.size() + 1);
          s.push_back(instr);
          s.insert(s.end(), tail.begin(), tail.end());
        }
      }
    }
    // unordered_map references are stable, so callers may hold the returned
    // list across further Completions calls.
    return completions_.emplace(key, std::move(out)).first->second;
  }

  SynthesisStats stats;  ///< the counters the table owns (see header)

 private:
  /// Returns the id of `ctx`, interning it if unseen (a transposition
  /// otherwise). Only called from the serial merge.
  int Intern(StateContext&& ctx) {
    std::vector<int>& bucket = ids_by_hash_[HashContext(ctx)];
    for (int id : bucket) {
      if (states_[static_cast<std::size_t>(id)] == ctx) {
        ++stats.states_deduped;
        return id;
      }
    }
    const int id = static_cast<int>(states_.size());
    is_goal_.push_back(ctx == goal_);
    states_.push_back(std::move(ctx));
    successors_.emplace_back(nullptr);
    bucket.push_back(id);
    ++stats.states_visited;
    return id;
  }

  const std::vector<GroupingPattern>& alphabet_;
  const StateContext& goal_;
  const int max_length_;
  std::vector<StateContext> states_;
  std::vector<bool> is_goal_;
  /// Transition lists by state id; nullptr for goal states and for the
  /// final frontier (never extended).
  std::vector<std::unique_ptr<std::vector<std::pair<std::int32_t, int>>>>
      successors_;
  std::unordered_map<std::size_t, std::vector<int>> ids_by_hash_;
  std::unordered_map<std::int64_t, SuffixList> completions_;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

SynthesisResult SynthesizePrograms(const SynthesisHierarchy& sh,
                                   const SynthesisOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  SynthesisResult result;

  const int k = static_cast<int>(sh.num_synth_devices());
  const StateContext initial = MakeInitialContext(k);
  const StateContext goal = MakeGoalContext(k, sh.goal_groups());

  const std::vector<GroupingPattern> alphabet = BuildGroupingAlphabet(sh);
  result.stats.alphabet_size = static_cast<int>(alphabet.size()) * kNumOps;

  if (options.max_programs <= 0) {
    result.stats.seconds = SecondsSince(start);
    return result;
  }
  if (initial == goal) {
    // Degenerate single-device goal: the empty program, as the DFS finds it.
    result.programs.emplace_back();
    result.stats.seconds = SecondsSince(start);
    return result;
  }
  if (options.max_program_size <= 0) {
    result.stats.seconds = SecondsSince(start);
    return result;
  }

  ThreadPool pool(options.threads);
  TranspositionTable table(alphabet, goal, options.max_program_size);
  table.Build(initial, pool, options.cancel);

  // Iterative deepening over the program size: the exact-length-d goal
  // completions of the root state *are* the programs of size d, and they
  // come out of the memoized table in instruction order — so the list is
  // emitted directly in increasing size, then instruction order, matching
  // the reference DFS's stable size sort byte for byte.
  std::int64_t emitted = 0;
  for (int d = 1; d <= options.max_program_size && emitted >= 0; ++d) {
    options.cancel.ThrowIfCancelled();
    for (const Suffix& tail : table.Completions(0, d)) {
      if (emitted >= options.max_programs) {
        emitted = -1;  // capped: stop both loops
        break;
      }
      Program program;
      program.reserve(tail.size());
      for (std::int32_t index : tail) {
        program.push_back(DecodeInstruction(alphabet, index));
      }
      result.programs.push_back(std::move(program));
      ++emitted;
    }
  }

  result.stats.instructions_tried = table.stats.instructions_tried;
  result.stats.applications_succeeded = table.stats.applications_succeeded;
  result.stats.states_visited = table.stats.states_visited;
  result.stats.states_deduped = table.stats.states_deduped;
  result.stats.branches_pruned = table.stats.branches_pruned;
  result.stats.seconds = SecondsSince(start);
  return result;
}

SynthesisResult SynthesizeProgramsReference(const SynthesisHierarchy& sh,
                                            const SynthesisOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  SynthesisResult result;

  const int k = static_cast<int>(sh.num_synth_devices());
  const StateContext initial = MakeInitialContext(k);
  const StateContext goal = MakeGoalContext(k, sh.goal_groups());

  const std::vector<GroupingPattern> alphabet = BuildGroupingAlphabet(sh);
  result.stats.alphabet_size =
      static_cast<int>(alphabet.size()) * kNumOps;

  ReferenceSearcher searcher{alphabet, goal, options, result, {}};
  searcher.Dfs(initial);

  // Increasing order of program size (stable within a size class).
  std::stable_sort(result.programs.begin(), result.programs.end(),
                   [](const Program& a, const Program& b) {
                     return a.size() < b.size();
                   });

  result.stats.seconds = SecondsSince(start);
  return result;
}

}  // namespace p2::core
