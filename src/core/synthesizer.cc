#include "core/synthesizer.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "core/collective_semantics.h"
#include "core/device_state.h"
#include "core/grouping.h"

namespace p2::core {

std::vector<GroupingPattern> BuildGroupingAlphabet(
    const SynthesisHierarchy& sh) {
  std::vector<GroupingPattern> alphabet;
  std::set<std::vector<std::vector<std::int64_t>>> seen;
  const auto& levels = sh.levels();
  const int depth = static_cast<int>(levels.size());
  auto consider = [&](int slice, const Form& form) {
    auto groups = DeriveGroups(levels, slice, form);
    // Drop trivial groups; a pattern whose groups are all singletons performs
    // no communication and is not a reduction instruction.
    std::erase_if(groups, [](const auto& g) { return g.size() < 2; });
    if (groups.empty()) return;
    if (!seen.insert(groups).second) return;
    alphabet.push_back(GroupingPattern{slice, form, std::move(groups)});
  };
  for (int slice = 0; slice < depth; ++slice) {
    consider(slice, Form::InsideGroup());
    for (int anc = 0; anc < slice; ++anc) {
      consider(slice, Form::Parallel(anc));
      consider(slice, Form::Master(anc));
    }
  }
  return alphabet;
}

namespace {

struct Searcher {
  const std::vector<GroupingPattern>& alphabet;
  const StateContext& goal;
  const SynthesisOptions& options;
  SynthesisResult& result;
  Program current;

  void Dfs(const StateContext& ctx) {
    if (static_cast<std::int64_t>(result.programs.size()) >=
        options.max_programs) {
      return;
    }
    if (ctx == goal) {
      result.programs.push_back(current);
      return;  // extensions of a finished program are not useful programs
    }
    if (static_cast<int>(current.size()) >= options.max_program_size) return;
    for (const GroupingPattern& p : alphabet) {
      for (Collective op : kAllCollectives) {
        ++result.stats.instructions_tried;
        StateContext next = ctx;
        const ApplyResult r = ApplyCollectiveToGroups(op, next, p.groups);
        if (!r.ok()) continue;
        ++result.stats.applications_succeeded;
        current.push_back(Instruction{p.slice_level, p.form, op});
        Dfs(next);
        current.pop_back();
      }
    }
  }
};

}  // namespace

SynthesisResult SynthesizePrograms(const SynthesisHierarchy& sh,
                                   const SynthesisOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  SynthesisResult result;

  const int k = static_cast<int>(sh.num_synth_devices());
  const StateContext initial = MakeInitialContext(k);
  const StateContext goal = MakeGoalContext(k, sh.goal_groups());

  const std::vector<GroupingPattern> alphabet = BuildGroupingAlphabet(sh);
  result.stats.alphabet_size =
      static_cast<int>(alphabet.size()) *
      static_cast<int>(kAllCollectives.size());

  Searcher searcher{alphabet, goal, options, result, {}};
  searcher.Dfs(initial);

  // Increasing order of program size (stable within a size class).
  std::stable_sort(result.programs.begin(), result.programs.end(),
                   [](const Program& a, const Program& b) {
                     return a.size() < b.size();
                   });

  result.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace p2::core
