// Syntax-guided synthesis of reduction programs (paper Section 3.5):
// enumerate DSL programs in increasing size over a synthesis hierarchy,
// pruning with the collective semantics, and return every program whose
// final context is the goal (each device holds exactly its reduction
// group's data, fully reduced).
#ifndef P2_CORE_SYNTHESIZER_H_
#define P2_CORE_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "core/reduction_dsl.h"
#include "core/synthesis_hierarchy.h"

namespace p2::core {

struct SynthesisOptions {
  /// The paper uses 5: "we set 5 as the program size limit ... sufficient to
  /// generate interesting reduction patterns".
  int max_program_size = 5;
  /// Safety cap on emitted programs.
  std::int64_t max_programs = 1 << 20;
};

struct SynthesisStats {
  std::int64_t instructions_tried = 0;
  std::int64_t applications_succeeded = 0;
  int alphabet_size = 0;  ///< distinct (slice, form) grouping patterns x ops
  double seconds = 0.0;
};

struct SynthesisResult {
  std::vector<Program> programs;
  SynthesisStats stats;
};

/// One usable (slice, form) pair of a synthesis hierarchy together with the
/// device groups it derives. The synthesizer's instruction alphabet is
/// this set crossed with the five collectives.
struct GroupingPattern {
  int slice_level = 0;
  Form form = Form::InsideGroup();
  std::vector<std::vector<std::int64_t>> groups;
};

/// Every distinct grouping pattern of the hierarchy: all (slice, form)
/// pairs, deduplicated by the groups they derive, trivial (all-singleton)
/// patterns dropped.
std::vector<GroupingPattern> BuildGroupingAlphabet(
    const SynthesisHierarchy& sh);

/// Enumerates all semantically valid programs of size <= max_program_size
/// reaching the goal of `sh`, in increasing program size (then in instruction
/// order). Grouping patterns that derive identical device groups are
/// deduplicated, and programs are not extended past the goal.
SynthesisResult SynthesizePrograms(const SynthesisHierarchy& sh,
                                   const SynthesisOptions& options = {});

}  // namespace p2::core

#endif  // P2_CORE_SYNTHESIZER_H_
