// Syntax-guided synthesis of reduction programs (paper Section 3.5):
// enumerate DSL programs in increasing size over a synthesis hierarchy,
// pruning with the collective semantics, and return every program whose
// final context is the goal (each device holds exactly its reduction
// group's data, fully reduced).
//
// Two engines produce the same program list:
//
//  - SynthesizePrograms: a depth-bounded search over a transposition table.
//    Redistribution states are interned by DeviceState::Hash()/equality, the
//    (state, instruction) -> state transition relation is computed once per
//    distinct state via apply/undo, and the exact-length goal completions of
//    every (state, length) pair are memoized — so sub-states reached by
//    different instruction orders are explored once and replayed everywhere
//    else. The table grows breadth-first: each frontier layer (the
//    root-level alphabet branches at layer 0) is expanded on a ThreadPool
//    (SynthesisOptions::threads) and interned by a serial merge in
//    (discovery, alphabet) order, so state ids, programs and stats are
//    identical at any thread count. Iterative deepening over the program
//    size then emits the root's completions directly in increasing size
//    order.
//
//  - SynthesizeProgramsReference: the original blind DFS that copies the
//    full StateContext per candidate. Kept as the differential-testing
//    oracle (tests/synth_differential_test.cc asserts byte-identical program
//    lists) and as the baseline bench_synth measures the search against.
//
// The only observable difference is under the max_programs cap: the
// transposition search keeps the *smallest* max_programs programs (a prefix
// of the size-ordered list), while the reference DFS keeps an arbitrary
// DFS-order prefix of the same set.
#ifndef P2_CORE_SYNTHESIZER_H_
#define P2_CORE_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "core/reduction_dsl.h"
#include "core/synthesis_hierarchy.h"

namespace p2::core {

struct SynthesisOptions {
  /// The paper uses 5: "we set 5 as the program size limit ... sufficient to
  /// generate interesting reduction patterns".
  int max_program_size = 5;
  /// Worker threads for the root-level branch fan-out; <= 1 searches inline.
  /// The program list and all stats are identical at any thread count, which
  /// is why SynthesisCache::Key deliberately excludes this field.
  int threads = 1;
  /// Safety cap on emitted programs.
  std::int64_t max_programs = 1 << 20;
  /// Cooperative-cancellation token (common/cancel.h), checked between
  /// frontier layers, per frontier-state expansion, and per emitted size
  /// class; an aborted search throws the token's error. Null (the default)
  /// never cancels. Execution-only like `threads`: it cannot change the
  /// program list of a search that completes, so SynthesisCache keys
  /// exclude it.
  CancelToken cancel;
};

struct SynthesisStats {
  /// Instruction applications attempted / semantically valid. The
  /// transposition search applies each instruction once per *distinct*
  /// state, so these count transition-table construction, not tree nodes.
  std::int64_t instructions_tried = 0;
  std::int64_t applications_succeeded = 0;
  /// Distinct redistribution states interned across all root branches.
  std::int64_t states_visited = 0;
  /// Transpositions: state arrivals that hit an already-interned state and
  /// were collapsed onto it instead of being re-explored.
  std::int64_t states_deduped = 0;
  /// Completion-memo hits: subtree walks replayed from the transposition
  /// table instead of being re-searched.
  std::int64_t branches_pruned = 0;
  int alphabet_size = 0;  ///< distinct (slice, form) grouping patterns x ops
  double seconds = 0.0;
};

struct SynthesisResult {
  std::vector<Program> programs;
  SynthesisStats stats;
};

/// One usable (slice, form) pair of a synthesis hierarchy together with the
/// device groups it derives. The synthesizer's instruction alphabet is
/// this set crossed with the five collectives.
struct GroupingPattern {
  int slice_level = 0;
  Form form = Form::InsideGroup();
  std::vector<std::vector<std::int64_t>> groups;
};

/// Every distinct grouping pattern of the hierarchy: all (slice, form)
/// pairs, deduplicated by the groups they derive, trivial (all-singleton)
/// patterns dropped.
std::vector<GroupingPattern> BuildGroupingAlphabet(
    const SynthesisHierarchy& sh);

/// Enumerates all semantically valid programs of size <= max_program_size
/// reaching the goal of `sh`, in increasing program size (then in instruction
/// order). Grouping patterns that derive identical device groups are
/// deduplicated, and programs are not extended past the goal.
SynthesisResult SynthesizePrograms(const SynthesisHierarchy& sh,
                                   const SynthesisOptions& options = {});

/// The seed's blind DFS (see the file comment). Same program list as
/// SynthesizePrograms; exponentially slower on deep hierarchies. The
/// transposition-table stats (states_visited, states_deduped,
/// branches_pruned) stay zero, and `threads` is ignored.
SynthesisResult SynthesizeProgramsReference(const SynthesisHierarchy& sh,
                                            const SynthesisOptions& options = {});

}  // namespace p2::core

#endif  // P2_CORE_SYNTHESIZER_H_
