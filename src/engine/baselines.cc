#include "engine/baselines.h"

#include <stdexcept>

#include "core/collective_semantics.h"
#include "core/grouping.h"
#include "core/lowering.h"

namespace p2::engine {

using core::Collective;
using core::Form;
using core::Instruction;
using core::Program;
using core::SynthesisHierarchy;

Program DefaultAllReduceProgram() {
  // Slice at the root: one group per replica covering the whole reduction
  // group — exactly what a single NCCL AllReduce call does.
  return {Instruction{0, Form::InsideGroup(), Collective::kAllReduce}};
}

std::optional<int> LocalSliceLevel(const SynthesisHierarchy& sh) {
  const auto& levels = sh.levels();
  // The deepest level that still has more than one device below it and more
  // than one group: slicing there yields non-trivial "local" groups.
  for (int level = static_cast<int>(levels.size()) - 1; level >= 1; --level) {
    std::int64_t below = 1;
    for (std::size_t l = static_cast<std::size_t>(level) + 1;
         l < levels.size(); ++l) {
      below *= levels[l];
    }
    std::int64_t groups = sh.num_synth_devices() / below;
    if (below >= 2 && groups >= 2) return level;
  }
  return std::nullopt;
}

std::optional<Program> ReduceAllReduceBroadcast(const SynthesisHierarchy& sh) {
  const auto slice = LocalSliceLevel(sh);
  if (!slice.has_value()) return std::nullopt;
  return Program{
      Instruction{*slice, Form::InsideGroup(), Collective::kReduce},
      Instruction{*slice, Form::Master(0), Collective::kAllReduce},
      Instruction{*slice, Form::InsideGroup(), Collective::kBroadcast}};
}

std::optional<Program> ReduceScatterAllReduceAllGather(
    const SynthesisHierarchy& sh) {
  const auto slice = LocalSliceLevel(sh);
  if (!slice.has_value()) return std::nullopt;
  const Program program{
      Instruction{*slice, Form::InsideGroup(), Collective::kReduceScatter},
      Instruction{*slice, Form::Parallel(0), Collective::kAllReduce},
      Instruction{*slice, Form::InsideGroup(), Collective::kAllGather}};
  // The scatter requires the chunk count to divide the local group size;
  // validate by dry-lowering.
  try {
    (void)core::LowerProgram(sh, program);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  return program;
}

}  // namespace p2::engine
