// Canned baseline reduction strategies from the literature, expressed in the
// P2 DSL over a synthesis hierarchy:
//  * the default single-step AllReduce (what XLA emits; the paper's baseline),
//  * Reduce-AllReduce-Broadcast (Fig. 10i; Goyal et al. 2018, Jia et al. 2018),
//  * ReduceScatter-AllReduce-AllGather (Fig. 10ii; BlueConnect, Cho et al. 2019).
#ifndef P2_ENGINE_BASELINES_H_
#define P2_ENGINE_BASELINES_H_

#include <optional>

#include "core/reduction_dsl.h"
#include "core/synthesis_hierarchy.h"

namespace p2::engine {

/// The single-step AllReduce over every reduction group.
core::Program DefaultAllReduceProgram();

/// The deepest synthesis-hierarchy level whose slice splits the reduction
/// devices into more than one non-trivial local group, or std::nullopt if the
/// hierarchy has no such structure (everything is one flat group).
std::optional<int> LocalSliceLevel(const core::SynthesisHierarchy& sh);

/// Fig. 10i over the hierarchy's top split; nullopt if the hierarchy is flat.
std::optional<core::Program> ReduceAllReduceBroadcast(
    const core::SynthesisHierarchy& sh);

/// Fig. 10ii (BlueConnect) over the hierarchy's top split; nullopt if flat
/// or if the scatter is not divisible.
std::optional<core::Program> ReduceScatterAllReduceAllGather(
    const core::SynthesisHierarchy& sh);

}  // namespace p2::engine

#endif  // P2_ENGINE_BASELINES_H_
