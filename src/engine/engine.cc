#include "engine/engine.h"

#include <algorithm>
#include <cmath>

#include "core/placement.h"
#include "engine/pipeline.h"
#include "engine/service.h"

namespace p2::engine {

int PlacementEvaluation::BestMeasuredIndex() const {
  if (programs.empty()) return -1;
  // Seed the comparison from the first *measured* program: under guided
  // evaluation (or measure = false) most entries carry measured_seconds == 0,
  // which must not win.
  int best = -1;
  for (int i = 0; i < static_cast<int>(programs.size()); ++i) {
    const auto& p = programs[static_cast<std::size_t>(i)];
    if (!p.measured) continue;
    if (best < 0 ||
        p.measured_seconds <
            programs[static_cast<std::size_t>(best)].measured_seconds) {
      best = i;
    }
  }
  return best >= 0 ? best : BestPredictedIndex();
}

int PlacementEvaluation::BestPredictedIndex() const {
  if (programs.empty()) return -1;
  int best = 0;
  for (int i = 1; i < static_cast<int>(programs.size()); ++i) {
    if (programs[static_cast<std::size_t>(i)].predicted_seconds <
        programs[static_cast<std::size_t>(best)].predicted_seconds) {
      best = i;
    }
  }
  return best;
}

int PlacementEvaluation::NumOutperforming() const {
  if (programs.empty() || !DefaultAllReduce().measured) return 0;
  // Require a 0.5% margin: schedules that move exactly the same bytes over
  // the same links should not be counted as wins on float noise.
  const double baseline = DefaultAllReduce().measured_seconds * 0.995;
  int n = 0;
  for (std::size_t i = 1; i < programs.size(); ++i) {
    if (programs[i].measured && programs[i].measured_seconds < baseline) ++n;
  }
  return n;
}

std::int64_t ExperimentResult::TotalPrograms() const {
  std::int64_t n = 0;
  for (const auto& p : placements) {
    n += static_cast<std::int64_t>(p.programs.size()) - 1;  // minus default
  }
  return n;
}

std::int64_t ExperimentResult::TotalOutperforming() const {
  std::int64_t n = 0;
  for (const auto& p : placements) n += p.NumOutperforming();
  return n;
}

double ExperimentResult::TotalSynthesisSeconds() const {
  double s = 0.0;
  for (const auto& p : placements) s += p.synthesis_seconds;
  return s;
}

Engine::Engine(topology::Cluster cluster, EngineOptions options)
    : cluster_(std::move(cluster)),
      options_(options),
      payload_bytes_(options.payload_bytes > 0
                         ? options.payload_bytes
                         : DefaultPayloadBytes(cluster_)),
      cost_model_(cluster_),
      executor_(cluster_) {}

double Engine::DefaultPayloadBytes(const topology::Cluster& cluster) {
  // Paper Section 4: (2^29 * nodes) float32 per GPU.
  return std::ldexp(4.0, 29) * cluster.num_nodes;
}

std::vector<core::ParallelismMatrix> Engine::SynthesizePlacements(
    std::span<const std::int64_t> axes) const {
  return core::EnumeratePlacements(cluster_.hierarchy(), axes);
}

ProgramEvaluation Engine::EvaluateProgram(const core::SynthesisHierarchy& sh,
                                          const core::Program& program) const {
  return EvaluateProgramOnEngine(*this, sh, program, options_.measure);
}

PlacementEvaluation Engine::EvaluatePlacement(
    const core::ParallelismMatrix& matrix,
    std::span<const int> reduction_axes) const {
  // A throwaway single-query service: this entry point predates the
  // long-lived PlannerService and keeps its one-shot, cacheless semantics.
  PlannerService service(*this);
  Pipeline pipeline(service, *this,
                    PipelineOptions{.cache_synthesis = false,
                                    .measure_top_k = -1,
                                    .cancel = {}});
  return pipeline.EvaluatePlacement(matrix, reduction_axes);
}

PlacementEvaluation Engine::EvaluatePlacementGuided(
    const core::ParallelismMatrix& matrix,
    std::span<const int> reduction_axes, int measure_top_k) const {
  // Clamp: negative k means "measure nothing beyond the baseline" here,
  // while a negative PipelineOptions::measure_top_k would mean "not guided".
  PlannerService service(*this);
  Pipeline pipeline(service, *this,
                    PipelineOptions{.cache_synthesis = false,
                                    .measure_top_k =
                                        std::max(0, measure_top_k),
                                    .cancel = {}});
  return pipeline.EvaluatePlacement(matrix, reduction_axes);
}

ExperimentResult Engine::RunExperiment(
    std::span<const std::int64_t> axes,
    std::span<const int> reduction_axes) const {
  // A transient service per call: callers that want cross-query sharing
  // (one cache, one pool) hold a PlannerService themselves and Submit.
  PlannerServiceOptions service_options;
  service_options.threads = options_.threads;
  PlannerService service(*this, service_options);
  PlanRequest request;
  request.axes.assign(axes.begin(), axes.end());
  request.reduction_axes.assign(reduction_axes.begin(), reduction_axes.end());
  request.cache_synthesis = options_.cache_synthesis;
  return service.Plan(std::move(request));
}

}  // namespace p2::engine
