#include "engine/engine.h"

#include <algorithm>
#include <cmath>

#include "core/placement.h"
#include "engine/baselines.h"

namespace p2::engine {

int PlacementEvaluation::BestMeasuredIndex() const {
  int best = 0;
  for (int i = 1; i < static_cast<int>(programs.size()); ++i) {
    const auto& p = programs[static_cast<std::size_t>(i)];
    if (!p.measured) continue;
    if (p.measured_seconds <
        programs[static_cast<std::size_t>(best)].measured_seconds) {
      best = i;
    }
  }
  return best;
}

int PlacementEvaluation::BestPredictedIndex() const {
  int best = 0;
  for (int i = 1; i < static_cast<int>(programs.size()); ++i) {
    if (programs[static_cast<std::size_t>(i)].predicted_seconds <
        programs[static_cast<std::size_t>(best)].predicted_seconds) {
      best = i;
    }
  }
  return best;
}

int PlacementEvaluation::NumOutperforming() const {
  // Require a 0.5% margin: schedules that move exactly the same bytes over
  // the same links should not be counted as wins on float noise.
  const double baseline = DefaultAllReduce().measured_seconds * 0.995;
  int n = 0;
  for (std::size_t i = 1; i < programs.size(); ++i) {
    if (programs[i].measured && programs[i].measured_seconds < baseline) ++n;
  }
  return n;
}

std::int64_t ExperimentResult::TotalPrograms() const {
  std::int64_t n = 0;
  for (const auto& p : placements) {
    n += static_cast<std::int64_t>(p.programs.size()) - 1;  // minus default
  }
  return n;
}

std::int64_t ExperimentResult::TotalOutperforming() const {
  std::int64_t n = 0;
  for (const auto& p : placements) n += p.NumOutperforming();
  return n;
}

double ExperimentResult::TotalSynthesisSeconds() const {
  double s = 0.0;
  for (const auto& p : placements) s += p.synthesis_seconds;
  return s;
}

Engine::Engine(topology::Cluster cluster, EngineOptions options)
    : cluster_(std::move(cluster)),
      options_(options),
      payload_bytes_(options.payload_bytes > 0
                         ? options.payload_bytes
                         : DefaultPayloadBytes(cluster_)),
      cost_model_(cluster_),
      executor_(cluster_) {}

double Engine::DefaultPayloadBytes(const topology::Cluster& cluster) {
  // Paper Section 4: (2^29 * nodes) float32 per GPU.
  return std::ldexp(4.0, 29) * cluster.num_nodes;
}

std::vector<core::ParallelismMatrix> Engine::SynthesizePlacements(
    std::span<const std::int64_t> axes) const {
  return core::EnumeratePlacements(cluster_.hierarchy(), axes);
}

ProgramEvaluation Engine::EvaluateProgram(const core::SynthesisHierarchy& sh,
                                          const core::Program& program) const {
  ProgramEvaluation eval;
  eval.program = program;
  eval.text = core::ToString(program, sh.level_names());
  eval.num_steps = static_cast<int>(program.size());
  const auto lowered = core::LowerProgram(sh, program);
  eval.predicted_seconds =
      cost_model_.PredictProgram(lowered, payload_bytes_, options_.algo);
  if (options_.measure) {
    eval.measured_seconds =
        executor_.MeasureProgram(lowered, payload_bytes_, options_.algo);
    eval.measured = true;
  }
  return eval;
}

PlacementEvaluation Engine::EvaluatePlacement(
    const core::ParallelismMatrix& matrix,
    std::span<const int> reduction_axes) const {
  PlacementEvaluation eval;
  eval.matrix = matrix;

  const auto sh = core::SynthesisHierarchy::Build(
      matrix, reduction_axes, options_.hierarchy_kind,
      options_.collapse_hierarchy);

  auto synthesis = core::SynthesizePrograms(sh, options_.synthesis);
  eval.synthesis_seconds = synthesis.stats.seconds;
  eval.synthesis_stats = synthesis.stats;

  // The default AllReduce always comes first; the synthesizer also finds it,
  // so drop the duplicate from the synthesized list.
  const core::Program default_ar = DefaultAllReduceProgram();
  eval.programs.push_back(EvaluateProgram(sh, default_ar));
  eval.programs.front().is_default_allreduce = true;

  const auto default_lowered = core::LowerProgram(sh, default_ar);
  for (const core::Program& p : synthesis.programs) {
    if (p.size() == 1) {
      // A one-step program with the same lowered groups *is* the default.
      const auto lowered = core::LowerProgram(sh, p);
      if (lowered.steps.size() == 1 &&
          lowered.steps[0].op == core::Collective::kAllReduce &&
          lowered.steps[0].groups == default_lowered.steps[0].groups) {
        continue;
      }
    }
    eval.programs.push_back(EvaluateProgram(sh, p));
  }
  return eval;
}

PlacementEvaluation Engine::EvaluatePlacementGuided(
    const core::ParallelismMatrix& matrix,
    std::span<const int> reduction_axes, int measure_top_k) const {
  // Predict everything without measuring...
  EngineOptions predict_only = options_;
  predict_only.measure = false;
  Engine predictor(cluster_, predict_only);
  PlacementEvaluation eval =
      predictor.EvaluatePlacement(matrix, reduction_axes);

  // ...then measure the default AllReduce and the top-k by prediction.
  std::vector<int> order(eval.programs.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return eval.programs[static_cast<std::size_t>(a)].predicted_seconds <
           eval.programs[static_cast<std::size_t>(b)].predicted_seconds;
  });

  const auto sh = core::SynthesisHierarchy::Build(
      matrix, reduction_axes, options_.hierarchy_kind,
      options_.collapse_hierarchy);
  auto measure = [&](int index) {
    auto& p = eval.programs[static_cast<std::size_t>(index)];
    if (p.measured) return;
    const auto lowered = core::LowerProgram(sh, p.program);
    p.measured_seconds =
        executor_.MeasureProgram(lowered, payload_bytes_, options_.algo);
    p.measured = true;
  };
  measure(0);  // the baseline is always measured
  for (int i = 0; i < measure_top_k && i < static_cast<int>(order.size());
       ++i) {
    measure(order[static_cast<std::size_t>(i)]);
  }
  return eval;
}

ExperimentResult Engine::RunExperiment(
    std::span<const std::int64_t> axes,
    std::span<const int> reduction_axes) const {
  ExperimentResult result;
  result.axes.assign(axes.begin(), axes.end());
  result.reduction_axes.assign(reduction_axes.begin(), reduction_axes.end());
  result.algo = options_.algo;
  result.payload_bytes = payload_bytes_;
  for (const auto& matrix : SynthesizePlacements(axes)) {
    result.placements.push_back(EvaluatePlacement(matrix, reduction_axes));
  }
  return result;
}

}  // namespace p2::engine
