// Ranking/accuracy analysis (paper Table 5) and small formatting helpers
// shared by the bench binaries.
#ifndef P2_ENGINE_REPORT_H_
#define P2_ENGINE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/service.h"

namespace p2::engine {

/// One (placement, program) pair of an experiment, flattened for ranking.
struct RankedPair {
  int placement_index = 0;
  int program_index = 0;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;
};

/// All pairs of an experiment, in input order.
std::vector<RankedPair> CollectPairs(const ExperimentResult& result);

/// Measured rank (0-based) of the predicted-best pair: the paper's
/// simulator-accuracy metric. Ties on measured time count as the better rank.
int MeasuredRankOfPredictedBest(const std::vector<RankedPair>& pairs);

/// Accumulates top-k accuracy over experiments (Table 5).
class AccuracyCounter {
 public:
  explicit AccuracyCounter(std::vector<int> ks = {1, 2, 3, 5, 6, 10});

  void AddExperiment(const ExperimentResult& result);

  const std::vector<int>& ks() const { return ks_; }
  std::int64_t total() const { return total_; }
  /// Fraction of experiments whose predicted-best program was within the
  /// measured top-k (k = ks()[i]).
  double Rate(std::size_t i) const;
  std::int64_t Hits(std::size_t i) const {
    return hits_.at(i);
  }

 private:
  std::vector<int> ks_;
  std::vector<std::int64_t> hits_;
  std::int64_t total_ = 0;
};

/// "1.83x" (two decimals, trailing x); "1x" for exactly one.
std::string FormatSpeedup(double speedup);

/// One-line summary of an experiment's pipeline run, e.g.
/// "pipeline: 6 placements, 3 unique hierarchies, cache 3 hits / 3 misses
///  (1.20 s re-synthesis avoided), 2 threads".
std::string RenderPipelineStats(const PipelineStats& stats);

/// Once-per-service summary (engine/service.h): requests served, cache
/// totals across them (including cross-tenant hits and LRU evictions), the
/// one-time disk preload, and — when the registry holds more than one
/// tenant — a per-tenant line with each cluster's requests, placements and
/// cache split. These figures must not be repeated per experiment (summing
/// cache_entries_loaded across a multi-config run used to double-count the
/// single preload).
std::string RenderServiceStats(const PlannerServiceStats& stats);

/// The deterministic portion of an ExperimentResult, serialized for
/// byte-identity gates: placements with their program texts, predictions
/// and measurements — no wall-clock fields, no cache-attribution counters,
/// no search statistics (a subsumption-served placement legitimately
/// carries the stats of the larger-cap run that produced its entry). Two
/// runs of the same query agree on this text regardless of thread count,
/// cache state, or what other queries were in flight.
std::string CanonicalResultText(const ExperimentResult& result);

/// Classifies a program's shape for the Fig. 10 analysis: "AR", "AR-AR",
/// "RD-AR-BC", "RS-AR-AG", or the generic short-op chain.
std::string ProgramShape(const core::Program& program);

}  // namespace p2::engine

#endif  // P2_ENGINE_REPORT_H_
