#include "engine/cli.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <future>
#include <sstream>
#include <utility>

#include "common/format.h"
#include "core/fusion.h"
#include "engine/engine.h"
#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "engine/service.h"
#include "topology/presets.h"

namespace p2::engine {

namespace {

bool ParseInt(const std::string& s, std::int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseList(const std::string& s, std::vector<std::int64_t>* out) {
  out->clear();
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::int64_t v = 0;
    if (!ParseInt(item, &v)) return false;
    out->push_back(v);
  }
  return !out->empty();
}

// The best measured program of a finished experiment together with the
// placement holding it (used by both report paths).
struct BestOfExperiment {
  const PlacementEvaluation* placement = nullptr;
  const ProgramEvaluation* program = nullptr;
};

BestOfExperiment FindBest(const ExperimentResult& result) {
  BestOfExperiment best;
  for (const auto& eval : result.placements) {
    const int index = eval.BestMeasuredIndex();
    if (index < 0) continue;
    const auto& program = eval.programs[static_cast<std::size_t>(index)];
    if (best.program == nullptr ||
        program.measured_seconds < best.program->measured_seconds) {
      best.placement = &eval;
      best.program = &program;
    }
  }
  return best;
}

std::string MaybeFused(const CliOptions& options,
                       const PlacementEvaluation& eval,
                       const ProgramEvaluation& best,
                       const std::vector<int>& reduction_axes) {
  std::string text = best.text;
  if (!options.fuse) return text;
  const auto sh = core::SynthesisHierarchy::Build(
      eval.matrix, reduction_axes,
      core::SynthesisHierarchyKind::kReductionAxes);
  const auto fused = core::FuseProgram(sh, best.program);
  if (fused.steps_removed > 0) {
    text += "  [fused to " + core::ToString(fused.program, sh.level_names()) +
            "]";
  }
  return text;
}

}  // namespace

std::string CliUsage() {
  return
      "p2_plan: synthesize parallelism placements and reduction strategies\n"
      "\n"
      "usage: p2_plan --system=a100|v100 --nodes=N --axes=A,B[,C] "
      "--reduce=I[,J]\n"
      "               [--algo=ring|tree] [--payload-mb=N] [--top-k=N]\n"
      "               [--service-threads=N] [--synth-threads=N] [--fuse]\n"
      "               [--cache-file=PATH] [--cache-readonly]\n"
      "               [--cache-max-entries=N] [--cache-ttl-seconds=N]\n"
      "               [--deadline-ms=N]\n"
      "               [--max-in-flight=N] [--drain-grace-ms=N]\n"
      "       p2_plan --system=a100|v100 --nodes=N --grid [...]\n"
      "       p2_plan --topology=SYS:N[,SYS:N...] --grid [...]\n"
      "\n"
      "  --system      GPU system model (Fig. 9 of the paper)\n"
      "  --nodes       number of nodes\n"
      "  --topology    one or more system presets as SYS:NODES (e.g.\n"
      "                a100:4,v100:2; repeatable). One preset is shorthand\n"
      "                for --system/--nodes; several presets require --grid\n"
      "                and plan every preset's grid through ONE multi-tenant\n"
      "                service — clusters with overlapping reduction\n"
      "                factorizations synthesize shared hierarchies once\n"
      "                between them (cross-tenant cache hits)\n"
      "  --axes        parallelism axis sizes (product must equal #GPUs)\n"
      "  --reduce      reduction axis indices\n"
      "  --grid        plan the paper's full experiment grid for the system\n"
      "                instead of one --axes/--reduce config; every config\n"
      "                is submitted concurrently to one shared planning\n"
      "                service, so configs with isomorphic hierarchies\n"
      "                synthesize once between them\n"
      "  --algo        NCCL algorithm (default ring)\n"
      "  --payload-mb  per-GPU payload in MB (default: 2^29*nodes floats)\n"
      "  --top-k       measure only the top-k programs by prediction\n"
      "  --service-threads  size of the planning service's shared worker\n"
      "                pool (default 1; results are identical at any count;\n"
      "                --threads is accepted as a legacy alias)\n"
      "  --synth-threads  expand the synthesis search frontier with N worker\n"
      "                threads (default 1; identical output at any count)\n"
      "  --fuse        fuse consecutive fusible steps before evaluating\n"
      "  --cache-file  load/save the persistent synthesis cache at PATH:\n"
      "                known hierarchies skip synthesis across planner runs;\n"
      "                a corrupt file starts cold with a warning and is\n"
      "                rewritten atomically on exit (unreadable or\n"
      "                newer-format-version files are never overwritten)\n"
      "  --cache-readonly  use the cache file without creating or\n"
      "                modifying it (requires --cache-file)\n"
      "  --cache-max-entries  keep at most N synthesis-cache entries,\n"
      "                evicting least-recently-used first (default:\n"
      "                unbounded); eviction never changes results, an\n"
      "                evicted hierarchy is simply re-synthesized\n"
      "  --cache-ttl-seconds  skip cache-file entries first persisted more\n"
      "                than N seconds ago when loading (they are pruned from\n"
      "                the file on the next save; default: never expire).\n"
      "                Entries from files written before stamps existed have\n"
      "                unknown age and are never expired\n"
      "  --deadline-ms  per-request deadline in milliseconds: a config\n"
      "                still planning when it expires is abandoned\n"
      "                (reported, not fatal) and its worker slots freed\n"
      "                (default: no deadline)\n"
      "  --max-in-flight  admit at most N concurrently planning requests;\n"
      "                submissions beyond the cap are rejected and reported\n"
      "                instead of silently queuing (default: unbounded)\n"
      "  --drain-grace-ms  on shutdown, give still-running requests N ms to\n"
      "                finish before cancelling them (default: wait for\n"
      "                them indefinitely)\n";
}

std::optional<CliOptions> ParseCliOptions(
    const std::vector<std::string>& args, std::string* error) {
  CliOptions opts;
  bool system_or_nodes_given = false;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      *error = CliUsage();
      return std::nullopt;
    }
    if (arg.rfind("--", 0) != 0) {
      *error = "unrecognized argument: " + arg + "\n\n" + CliUsage();
      return std::nullopt;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      // Bare boolean flags. Anything unknown is an error — silently ignoring
      // a mistyped flag would quietly change what gets planned.
      if (arg == "--fuse") {
        opts.fuse = true;
      } else if (arg == "--grid") {
        opts.grid = true;
      } else if (arg == "--cache-readonly") {
        opts.cache_readonly = true;
      } else {
        *error = "unrecognized flag: " + arg + "\n\n" + CliUsage();
        return std::nullopt;
      }
      continue;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "--system") {
      if (value != "a100" && value != "v100") {
        *error = "--system must be a100 or v100";
        return std::nullopt;
      }
      opts.system = value;
      system_or_nodes_given = true;
    } else if (key == "--nodes") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 1) {
        *error = "--nodes must be a positive integer";
        return std::nullopt;
      }
      opts.nodes = static_cast<int>(v);
      system_or_nodes_given = true;
    } else if (key == "--topology") {
      // Comma-separated SYS:NODES presets; the flag is also repeatable, so
      // entries append rather than replace.
      std::stringstream ss(value);
      std::string entry;
      bool any = false;
      while (std::getline(ss, entry, ',')) {
        any = true;
        const auto colon = entry.find(':');
        TopologyPreset preset;
        std::int64_t n = 0;
        if (colon == std::string::npos ||
            !ParseInt(entry.substr(colon + 1), &n) || n < 1) {
          *error = "--topology entries must be SYS:NODES (e.g. a100:4), got "
                   "\"" + entry + "\"";
          return std::nullopt;
        }
        preset.system = entry.substr(0, colon);
        preset.nodes = static_cast<int>(n);
        if (preset.system != "a100" && preset.system != "v100") {
          *error = "--topology system must be a100 or v100, got \"" +
                   preset.system + "\"";
          return std::nullopt;
        }
        // A duplicate preset would plan the same grid twice through the
        // same tenant and report it as two tenants' worth of work.
        for (const TopologyPreset& existing : opts.topologies) {
          if (existing == preset) {
            *error = "--topology lists " + entry + " twice";
            return std::nullopt;
          }
        }
        opts.topologies.push_back(std::move(preset));
      }
      if (!any) {
        *error = "--topology needs at least one SYS:NODES preset";
        return std::nullopt;
      }
    } else if (key == "--axes") {
      if (!ParseList(value, &opts.axes)) {
        *error = "--axes must be a comma-separated list of sizes";
        return std::nullopt;
      }
    } else if (key == "--reduce") {
      std::vector<std::int64_t> raw;
      if (!ParseList(value, &raw)) {
        *error = "--reduce must be a comma-separated list of axis indices";
        return std::nullopt;
      }
      opts.reduction_axes.clear();
      for (std::int64_t v : raw) {
        opts.reduction_axes.push_back(static_cast<int>(v));
      }
    } else if (key == "--algo") {
      if (value == "ring") {
        opts.algo = core::NcclAlgo::kRing;
      } else if (value == "tree") {
        opts.algo = core::NcclAlgo::kTree;
      } else {
        *error = "--algo must be ring or tree";
        return std::nullopt;
      }
    } else if (key == "--payload-mb") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 1) {
        *error = "--payload-mb must be a positive integer";
        return std::nullopt;
      }
      opts.payload_mb = static_cast<double>(v);
    } else if (key == "--top-k") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 0) {
        *error = "--top-k must be a non-negative integer";
        return std::nullopt;
      }
      opts.top_k = static_cast<int>(v);
    } else if (key == "--threads" || key == "--service-threads") {
      std::int64_t v = 0;
      // Bounded: an absurd count would die in std::thread creation with an
      // unhandled std::system_error instead of a usage message.
      if (!ParseInt(value, &v) || v < 1 || v > 1024) {
        *error = key + " must be an integer in [1, 1024]";
        return std::nullopt;
      }
      if (key == "--threads") {
        opts.threads = static_cast<int>(v);
      } else {
        opts.service_threads = static_cast<int>(v);
      }
    } else if (key == "--synth-threads") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 1 || v > 1024) {
        *error = "--synth-threads must be an integer in [1, 1024]";
        return std::nullopt;
      }
      opts.synth_threads = static_cast<int>(v);
    } else if (key == "--cache-file") {
      if (value.empty()) {
        *error = "--cache-file needs a path";
        return std::nullopt;
      }
      opts.cache_file = value;
    } else if (key == "--cache-max-entries") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 1) {
        *error = "--cache-max-entries must be a positive integer";
        return std::nullopt;
      }
      opts.cache_max_entries = v;
    } else if (key == "--cache-ttl-seconds") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 1) {
        *error = "--cache-ttl-seconds must be a positive integer";
        return std::nullopt;
      }
      opts.cache_ttl_seconds = v;
    } else if (key == "--deadline-ms") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 1) {
        *error = "--deadline-ms must be a positive integer";
        return std::nullopt;
      }
      opts.deadline_ms = v;
    } else if (key == "--max-in-flight") {
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 1) {
        *error = "--max-in-flight must be a positive integer";
        return std::nullopt;
      }
      opts.max_in_flight = v;
    } else if (key == "--drain-grace-ms") {
      // 0 is meaningful: cancel whatever is still running the moment the
      // drain starts.
      std::int64_t v = 0;
      if (!ParseInt(value, &v) || v < 0) {
        *error = "--drain-grace-ms must be a non-negative integer";
        return std::nullopt;
      }
      opts.drain_grace_ms = v;
    } else {
      *error = "unrecognized flag: " + key + "\n\n" + CliUsage();
      return std::nullopt;
    }
  }
  if (!opts.topologies.empty() && system_or_nodes_given) {
    *error = "--topology already names the systems; drop --system/--nodes";
    return std::nullopt;
  }
  if (opts.topologies.size() > 1 && !opts.grid) {
    // A single --axes config cannot fit several device counts at once; the
    // multi-tenant form plans each preset's own grid.
    *error = "multiple --topology presets require --grid";
    return std::nullopt;
  }
  if (opts.topologies.size() == 1) {
    // One preset is pure shorthand: fold it into --system/--nodes so every
    // downstream path (and RunCli's single-cluster report) is unchanged.
    opts.system = opts.topologies.front().system;
    opts.nodes = opts.topologies.front().nodes;
  }
  if (opts.grid) {
    if (!opts.axes.empty() || !opts.reduction_axes.empty()) {
      *error = "--grid chooses the configs itself; drop --axes/--reduce";
      return std::nullopt;
    }
    if (opts.fuse) {
      // The grid report is a per-config summary with no program column to
      // annotate; silently accepting --fuse would let the user believe
      // fused programs were evaluated.
      *error = "--fuse is not supported with --grid (the grid report has no "
               "per-program detail to annotate); run the config standalone";
      return std::nullopt;
    }
  } else {
    if (opts.axes.empty()) {
      *error = "missing --axes\n\n" + CliUsage();
      return std::nullopt;
    }
    for (std::int64_t a : opts.axes) {
      if (a < 1) {
        *error = "--axes entries must be positive";
        return std::nullopt;
      }
    }
    if (opts.reduction_axes.empty()) {
      *error = "missing --reduce\n\n" + CliUsage();
      return std::nullopt;
    }
    for (int a : opts.reduction_axes) {
      if (a < 0 || a >= static_cast<int>(opts.axes.size())) {
        *error = "--reduce index out of range";
        return std::nullopt;
      }
    }
  }
  if (opts.cache_readonly && opts.cache_file.empty()) {
    *error = "--cache-readonly requires --cache-file";
    return std::nullopt;
  }
  return opts;
}

topology::Cluster ClusterFromOptions(const CliOptions& options) {
  return options.system == "a100"
             ? topology::MakeA100Cluster(options.nodes)
             : topology::MakeV100Cluster(options.nodes);
}

topology::Cluster ClusterFromPreset(const TopologyPreset& preset) {
  return preset.system == "a100" ? topology::MakeA100Cluster(preset.nodes)
                                 : topology::MakeV100Cluster(preset.nodes);
}

namespace {

// Single translation points from CLI flags to the engine/service/request
// option structs: both the single-cluster and the multi-topology paths go
// through these, so a new flag cannot get wired into one path and silently
// not the other.
EngineOptions EngineOptionsFromCli(const CliOptions& options) {
  EngineOptions eng_opts;
  eng_opts.algo = options.algo;
  eng_opts.synthesis.threads = options.synth_threads;
  if (options.payload_mb > 0) {
    eng_opts.payload_bytes = options.payload_mb * 1e6;
  }
  return eng_opts;
}

PlannerServiceOptions ServiceOptionsFromCli(const CliOptions& options) {
  PlannerServiceOptions svc;
  svc.threads = options.EffectiveServiceThreads();
  svc.cache_file = options.cache_file;
  svc.cache_readonly = options.cache_readonly;
  svc.cache_max_entries = options.cache_max_entries;
  svc.cache_ttl_seconds = options.cache_ttl_seconds;
  svc.max_in_flight = options.max_in_flight;
  if (options.drain_grace_ms >= 0) {
    svc.drain_grace = std::chrono::milliseconds(options.drain_grace_ms);
  }
  return svc;
}

PlanRequest RequestForConfig(const ExperimentConfig& config,
                             const CliOptions& options) {
  PlanRequest request;
  request.axes = config.axes;
  request.reduction_axes = config.reduction_axes;
  request.measure_top_k = options.top_k > 0 ? options.top_k : -1;
  if (options.deadline_ms > 0) {
    request.deadline = std::chrono::milliseconds(options.deadline_ms);
  }
  return request;
}

/// Collects every handle, pairing survivors with their configs; a rejected,
/// cancelled or expired config becomes a warning line instead of killing
/// the whole invocation (its siblings' results are unaffected — that is
/// the service's determinism contract).
void CollectResults(std::vector<ExperimentConfig> configs,
                    std::vector<PlanHandle>& handles,
                    std::vector<ExperimentConfig>* done_configs,
                    std::vector<ExperimentResult>* results,
                    std::ostream& os) {
  for (std::size_t i = 0; i < handles.size(); ++i) {
    try {
      results->push_back(handles[i].get());
      done_configs->push_back(std::move(configs[i]));
    } catch (const PlanRejected& e) {
      os << "warning: config " << configs[i].ToString()
         << " rejected: " << e.what() << '\n';
    } catch (const RequestAborted& e) {
      os << "warning: config " << configs[i].ToString()
         << " abandoned: " << e.what() << '\n';
    }
  }
}

void AppendCacheLoadWarnings(const PlannerService& service,
                             const CliOptions& options, std::ostream& os) {
  if (IsCorrupt(service.cache_load_status())) {
    os << "warning: cache file " << options.cache_file << ": "
       << ToString(service.cache_load_status()) << " ("
       << service.cache_load_message() << "); starting cold\n";
  } else if (options.cache_readonly &&
             service.cache_load_status() == CacheLoadStatus::kNoFile) {
    // A writable cold start is normal, but readonly names a file the user
    // expects to exist — running cold here is a silent latency regression.
    os << "warning: cache file " << options.cache_file
       << " does not exist; --cache-readonly runs cold\n";
  }
}

void RenderGridTable(const std::vector<ExperimentConfig>& configs,
                     const std::vector<ExperimentResult>& results,
                     std::ostream& os) {
  // One summary row per config; the full per-placement detail of a config
  // is what the single-config invocation is for.
  TextTable table({"Config", "Placements", "AllReduce(s)", "Best(s)",
                   "Speedup", "Best placement"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& result = results[i];
    const BestOfExperiment best = FindBest(result);
    if (best.program == nullptr) continue;
    const double baseline = best.placement->DefaultAllReduce().measured_seconds;
    table.AddRow({configs[i].ToString(),
                  std::to_string(result.placements.size()),
                  FormatSeconds(baseline),
                  FormatSeconds(best.program->measured_seconds),
                  FormatSpeedup(baseline / best.program->measured_seconds),
                  best.placement->matrix.ToString()});
  }
  os << table.Render();
}

/// The multi-tenant form: every --topology preset's full grid through one
/// shared service, reported per tenant with one service-wide footer.
int RunMultiTopology(const CliOptions& options, std::string* output) {
  PlannerServiceOptions svc = ServiceOptionsFromCli(options);
  svc.engine = EngineOptionsFromCli(options);
  // One multi-tenant service: every preset's requests share its cache and
  // pool, so hierarchies recurring across clusters synthesize once.
  PlannerService service(svc);

  std::ostringstream os;
  AppendCacheLoadWarnings(service, options, os);

  struct TenantRun {
    topology::Cluster cluster;
    std::vector<ExperimentConfig> configs;
    std::vector<PlanHandle> handles;
  };
  std::vector<TenantRun> runs;
  runs.reserve(options.topologies.size());
  for (const TopologyPreset& preset : options.topologies) {
    TenantRun run;
    run.cluster = ClusterFromPreset(preset);
    run.configs = FullGrid(run.cluster);
    runs.push_back(std::move(run));
  }
  // Submit everything before collecting anything: all tenants' requests
  // overlap on the shared pool, while the report below stays in preset +
  // config order.
  for (TenantRun& run : runs) {
    run.handles.reserve(run.configs.size());
    for (const auto& config : run.configs) {
      PlanRequest request = RequestForConfig(config, options);
      request.cluster = run.cluster;
      run.handles.push_back(service.Submit(std::move(request)));
    }
  }
  for (TenantRun& run : runs) {
    std::vector<ExperimentConfig> done_configs;
    std::vector<ExperimentResult> results;
    CollectResults(std::move(run.configs), run.handles, &done_configs,
                   &results, os);
    os << "system: " << run.cluster.ToString() << ", "
       << core::ToString(options.algo) << ", payload "
       << service.EngineFor(run.cluster).payload_bytes() / 1e6
       << " MB/GPU\n\n";
    RenderGridTable(done_configs, results, os);
    os << '\n';
  }

  std::string save_error;
  if (!service.SaveCache(&save_error)) {
    os << "warning: could not save cache file " << options.cache_file << ": "
       << save_error << '\n';
  }
  // The footer carries the whole point of the shared service: per-tenant
  // rows plus the cross-tenant cache hits the sharing produced.
  os << RenderServiceStats(service.stats()) << '\n';
  *output = os.str();
  return 0;
}

}  // namespace

int RunCli(const CliOptions& options, std::string* output) {
  if (options.topologies.size() > 1) return RunMultiTopology(options, output);
  const topology::Cluster cluster = ClusterFromOptions(options);

  if (!options.grid) {
    std::int64_t axis_product = 1;
    for (std::int64_t a : options.axes) axis_product *= a;
    if (axis_product != cluster.num_devices()) {
      std::ostringstream os;
      os << "error: axes multiply to " << axis_product
         << " but the system has " << cluster.num_devices() << " GPUs\n";
      *output = os.str();
      return 1;
    }
  }

  const Engine engine(cluster, EngineOptionsFromCli(options));
  // One service per invocation: the single owner of the shared cache, the
  // worker pool and the optional persistent store; every config below is a
  // query against it (the engine is the service's default tenant).
  PlannerService service(engine, ServiceOptionsFromCli(options));

  std::ostringstream os;
  AppendCacheLoadWarnings(service, options, os);

  // Decide the queries, submit them all, then collect in config order: with
  // --grid the requests overlap on the shared pool and dedup against each
  // other's synthesis, while the reported order stays deterministic.
  std::vector<ExperimentConfig> configs;
  if (options.grid) {
    configs = FullGrid(cluster);
  } else {
    configs.push_back(ExperimentConfig{options.axes, options.reduction_axes});
  }
  std::vector<PlanHandle> handles;
  handles.reserve(configs.size());
  for (const auto& config : configs) {
    handles.push_back(service.Submit(RequestForConfig(config, options)));
  }
  std::vector<ExperimentConfig> done_configs;
  std::vector<ExperimentResult> results;
  CollectResults(std::move(configs), handles, &done_configs, &results, os);
  if (results.empty()) {
    os << "error: no config completed\n";
    *output = os.str();
    return 1;
  }

  std::string save_error;
  if (!service.SaveCache(&save_error)) {
    os << "warning: could not save cache file " << options.cache_file << ": "
       << save_error << '\n';
  }

  os << "system: " << cluster.ToString() << ", "
     << core::ToString(options.algo) << ", payload "
     << engine.payload_bytes() / 1e6 << " MB/GPU\n\n";

  if (options.grid) {
    RenderGridTable(done_configs, results, os);
  } else {
    const ExperimentResult& result = results.front();
    TextTable table({"Placement", "Programs", "AllReduce(s)", "Best(s)",
                     "Speedup", "Best program"});
    for (const auto& eval : result.placements) {
      const auto& best =
          eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
      table.AddRow(
          {eval.matrix.ToString(), std::to_string(eval.programs.size()),
           FormatSeconds(eval.DefaultAllReduce().measured_seconds),
           FormatSeconds(best.measured_seconds),
           FormatSpeedup(eval.DefaultAllReduce().measured_seconds /
                         best.measured_seconds),
           MaybeFused(options, eval, best, result.reduction_axes)});
    }
    os << table.Render();
    os << '\n' << RenderPipelineStats(result.pipeline) << '\n';
  }
  // Service-wide figures render exactly once per invocation — in particular
  // the one-time disk preload, which the per-experiment stats used to
  // repeat verbatim for every config of a sequential multi-config run.
  if (options.grid || !options.cache_file.empty()) {
    os << '\n' << RenderServiceStats(service.stats()) << '\n';
  }
  *output = os.str();
  return 0;
}

}  // namespace p2::engine
