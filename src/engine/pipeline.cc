#include "engine/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "core/placement.h"
#include "engine/baselines.h"
#include "engine/service.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// The shared per-program evaluation, taking an already-lowered program so
// callers holding a lowering (the guided path keeps them for measurement)
// never lower twice.
ProgramEvaluation EvaluateLowered(const Engine& engine,
                                  const core::SynthesisHierarchy& sh,
                                  const core::Program& program,
                                  const core::LoweredProgram& lowered,
                                  bool measure) {
  ProgramEvaluation eval;
  eval.program = program;
  eval.text = core::ToString(program, sh.level_names());
  eval.num_steps = static_cast<int>(program.size());
  eval.predicted_seconds = engine.cost_model().PredictProgram(
      lowered, engine.payload_bytes(), engine.options().algo);
  if (measure) {
    eval.measured_seconds = engine.executor().MeasureProgram(
        lowered, engine.payload_bytes(), engine.options().algo);
    eval.measured = true;
  }
  return eval;
}

}  // namespace

ProgramEvaluation EvaluateProgramOnEngine(const Engine& engine,
                                          const core::SynthesisHierarchy& sh,
                                          const core::Program& program,
                                          bool measure) {
  return EvaluateLowered(engine, sh, program, core::LowerProgram(sh, program),
                         measure);
}

Pipeline::Pipeline(PlannerService& service, const Engine& engine,
                   PipelineOptions options)
    : service_(service), engine_(engine), options_(options) {}

PlacementEvaluation Pipeline::Evaluate(
    const core::ParallelismMatrix& matrix, const core::SynthesisHierarchy& sh,
    const core::SynthesisResult& synthesis) const {
  const bool guided = options_.measure_top_k >= 0;
  const bool measure_all = !guided && engine_.options().measure;

  PlacementEvaluation eval;
  eval.matrix = matrix;
  eval.synthesis_seconds = synthesis.stats.seconds;
  eval.synthesis_stats = synthesis.stats;

  // Every program is lowered exactly once: the lowering backs the dedup
  // check, the prediction, and — kept in `lowered` under guided evaluation —
  // the top-k measurement pass, which used to re-lower its candidates.
  std::vector<core::LoweredProgram> lowered;
  lowered.reserve(synthesis.programs.size() + 1);

  // The default AllReduce always comes first; the synthesizer also finds it,
  // so drop the duplicate from the synthesized list.
  const core::Program default_ar = DefaultAllReduceProgram();
  lowered.push_back(core::LowerProgram(sh, default_ar));
  eval.programs.push_back(EvaluateLowered(engine_, sh, default_ar,
                                          lowered.front(), measure_all));
  eval.programs.front().is_default_allreduce = true;

  for (const core::Program& p : synthesis.programs) {
    auto lowered_p = core::LowerProgram(sh, p);
    // lowered.front() is re-fetched per iteration: the vector grows inside
    // this loop, so a reference held across iterations could dangle.
    if (lowered_p.steps.size() == 1 &&
        lowered_p.steps[0].op == core::Collective::kAllReduce &&
        lowered_p.steps[0].groups == lowered.front().steps[0].groups) {
      // A one-step program with the same lowered groups *is* the default.
      continue;
    }
    eval.programs.push_back(
        EvaluateLowered(engine_, sh, p, lowered_p, measure_all));
    lowered.push_back(std::move(lowered_p));
  }

  if (guided) {
    // Measure the default AllReduce and the top-k by prediction (stable on
    // prediction ties, so the measured set is deterministic), reusing the
    // lowerings from the predict pass above.
    std::vector<int> order(eval.programs.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int>(i);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return eval.programs[static_cast<std::size_t>(a)].predicted_seconds <
             eval.programs[static_cast<std::size_t>(b)].predicted_seconds;
    });
    auto measure = [&](int index) {
      auto& p = eval.programs[static_cast<std::size_t>(index)];
      if (p.measured) return;
      p.measured_seconds = engine_.executor().MeasureProgram(
          lowered[static_cast<std::size_t>(index)], engine_.payload_bytes(),
          engine_.options().algo);
      p.measured = true;
    };
    measure(0);  // the baseline is always measured
    // Early stopping over the top-k: a candidate whose *prediction* already
    // exceeds the incumbent's *measurement* by more than the model's
    // observed overprediction is skipped — under every pred/meas ratio seen
    // so far in this placement, its measurement could not beat the
    // incumbent. The bound tightens as measurements accrue; everything here
    // is a pure function of the (deterministic) predictions and
    // measurements, so the measured set — and with it the whole result —
    // stays byte-identical at any thread count and cache state.
    double incumbent_measured = eval.programs.front().measured_seconds;
    double overprediction = 1.0;  // max observed predicted/measured, >= 1
    const auto observe = [&](const ProgramEvaluation& p) {
      if (p.measured_seconds > 0.0) {
        overprediction = std::max(overprediction,
                                  p.predicted_seconds / p.measured_seconds);
        incumbent_measured = std::min(incumbent_measured, p.measured_seconds);
      }
    };
    observe(eval.programs.front());
    for (int i = 0;
         i < options_.measure_top_k && i < static_cast<int>(order.size());
         ++i) {
      const int index = order[static_cast<std::size_t>(i)];
      auto& p = eval.programs[static_cast<std::size_t>(index)];
      if (p.measured) continue;  // the baseline may sit inside the top-k
      if (p.predicted_seconds > incumbent_measured * overprediction) {
        // `order` is prediction-ascending, so once one candidate is
        // provably behind, all remaining ones are too; counting them
        // individually keeps the report honest about what was skipped.
        ++eval.guided_skipped;
        continue;
      }
      measure(index);
      observe(p);
    }
  }
  return eval;
}

PlacementEvaluation Pipeline::EvaluatePlacement(
    const core::ParallelismMatrix& matrix,
    std::span<const int> reduction_axes) {
  const auto sh = core::SynthesisHierarchy::Build(
      matrix, reduction_axes, engine_.options().hierarchy_kind,
      engine_.options().collapse_hierarchy);
  // The engine's synthesis knobs plus this request's token. The token is
  // execution-only (SynthesisCache::BaseKey excludes it), so entries are
  // shared with tokenless requests.
  core::SynthesisOptions synth_options = engine_.options().synthesis;
  synth_options.cancel = options_.cancel;
  if (options_.cache_synthesis) {
    const auto synthesis = service_.cache().GetOrSynthesize(
        sh, synth_options, nullptr, options_.tenant);
    return Evaluate(matrix, sh, *synthesis);
  }
  const auto synthesis = core::SynthesizePrograms(sh, synth_options);
  return Evaluate(matrix, sh, synthesis);
}

ExperimentResult Pipeline::Run(std::span<const std::int64_t> axes,
                               std::span<const int> reduction_axes) {
  const auto start = std::chrono::steady_clock::now();
  // A request aborted while queued (deadline already past, Cancel() before
  // the pool got to it) unwinds before doing any work.
  options_.cancel.ThrowIfCancelled();

  ExperimentResult result;
  result.axes.assign(axes.begin(), axes.end());
  result.reduction_axes.assign(reduction_axes.begin(), reduction_axes.end());
  result.algo = engine_.options().algo;
  result.payload_bytes = engine_.payload_bytes();

  // Stage 1: enumerate placements (deterministic lexicographic order).
  const auto placements =
      core::EnumeratePlacements(engine_.cluster().hierarchy(), axes);
  const std::size_t n = placements.size();

  // Stage 2: build each placement's synthesis hierarchy and group placements
  // by signature. `members_of[u]` lists the placements sharing unique
  // signature u, in placement order.
  std::vector<core::SynthesisHierarchy> hierarchies;
  hierarchies.reserve(n);
  for (const auto& matrix : placements) {
    hierarchies.push_back(core::SynthesisHierarchy::Build(
        matrix, reduction_axes, engine_.options().hierarchy_kind,
        engine_.options().collapse_hierarchy));
  }
  std::vector<std::vector<std::size_t>> members_of;
  if (options_.cache_synthesis) {
    std::unordered_map<std::string, std::size_t> group_of_signature;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] = group_of_signature.try_emplace(
          SynthesisCache::BaseKey(hierarchies[i], engine_.options().synthesis),
          members_of.size());
      if (inserted) members_of.emplace_back();
      members_of[it->second].push_back(i);
    }
  } else {
    // Cacheless: every placement is its own group and re-synthesizes.
    members_of.resize(n);
    for (std::size_t i = 0; i < n; ++i) members_of[i].push_back(i);
  }

  // This request's work items. Other in-flight requests have their own
  // groups on the same pool; the scheduler interleaves them round-robin and
  // Wait (inside ParallelFor) helps execute instead of idling a worker, so
  // requests running *as* pool tasks make progress too.
  ThreadPool::TaskGroup group(service_.pool());

  // Stages 3+4: synthesize once per unique signature, then
  // lower/predict/measure every placement — either as two staged barriers
  // (whose in-flight lookups park) or as one deferral-aware work loop. Each
  // placement's lookup outcome lands in its own slot, so this request's
  // cache accounting below is deterministic in placement order and never
  // includes other requests' activity; either way the results land in
  // preallocated slots whose order equals placement order, which *is* the
  // deterministic merge — the output matches the serial path byte for byte.
  //
  // The engine's synthesis knobs plus this request's token, threaded into
  // every dispatch below. Execution-only (SynthesisCache::BaseKey excludes
  // the token — stage 2 keyed with the engine's plain options and gets the
  // same groups), so cache entries stay shared across requests regardless
  // of who carries a token.
  core::SynthesisOptions synth_options = engine_.options().synthesis;
  synth_options.cancel = options_.cancel;
  std::vector<std::shared_ptr<const core::SynthesisResult>> synthesis(n);
  std::vector<CacheLookupOutcome> outcomes(n);
  result.placements.resize(n);

  // Deferral needs a concurrent peer to fire continuations and other queued
  // work to run meanwhile: on an inline pool (or cacheless, or opted out)
  // the staged path is already optimal — and doubles as the parked-waiter
  // baseline bench_pipeline's contended variant measures against.
  const bool defer = options_.defer_inflight && options_.cache_synthesis &&
                     service_.pool().num_threads() > 0;

  double synthesis_seconds = 0.0;
  double evaluation_seconds = 0.0;
  std::int64_t deferred_total = 0;
  if (!defer) {
    // Staged scheduler. Signatures another request is synthesizing right
    // now are waited on (GetOrSynthesize parks on the owner's cv), not
    // re-synthesized; duplicate members resolve through the shared cache.
    const auto synth_start = std::chrono::steady_clock::now();
    group.ParallelFor(
        static_cast<std::int64_t>(members_of.size()), [&](std::int64_t g) {
          MaybeInjectFault("pipeline.synthesize");
          options_.cancel.ThrowIfCancelled();
          const auto& members = members_of[static_cast<std::size_t>(g)];
          for (std::size_t i : members) {
            if (options_.cache_synthesis) {
              synthesis[i] = service_.cache().GetOrSynthesize(
                  hierarchies[i], synth_options, &outcomes[i], options_.tenant);
            } else {
              synthesis[i] = std::make_shared<const core::SynthesisResult>(
                  SynthesizePrograms(hierarchies[i], synth_options));
            }
          }
        });
    synthesis_seconds = SecondsSince(synth_start);

    const auto eval_start = std::chrono::steady_clock::now();
    group.ParallelFor(static_cast<std::int64_t>(n), [&](std::int64_t i) {
      MaybeInjectFault("pipeline.evaluate");
      options_.cancel.ThrowIfCancelled();
      const auto idx = static_cast<std::size_t>(i);
      result.placements[idx] =
          Evaluate(placements[idx], hierarchies[idx], *synthesis[idx]);
    });
    evaluation_seconds = SecondsSince(eval_start);
  } else {
    // Deferral-aware scheduler: one self-re-enqueueing resolve task per
    // signature group. Members resolve through non-blocking TryLookup; a
    // group whose signature is being synthesized by another request
    // reserves its pool slot, registers a completion continuation, and
    // returns — the worker moves on to other pending tasks (this request's
    // or anyone else's) instead of parking — and the continuation (owner
    // publish or owner death) commits the task back into the group. Once
    // every member holds its synthesis the group fans its evaluations into
    // the same TaskGroup, so downstream lower/predict work interleaves
    // with other groups' synthesis instead of waiting behind a barrier.
    struct GroupState {
      std::size_t next_member = 0;  ///< members resolved so far
      SynthesisCache::DeferredLookup deferred;
      double synth_seconds = 0.0;
    };
    std::vector<GroupState> group_states(members_of.size());
    std::vector<double> eval_seconds(n, 0.0);
    std::atomic<std::int64_t> deferred_events{0};

    // One FireState per deferral: whoever wins the fire-once CAS commits
    // the re-enqueued resolve task — the cache continuation, or the cancel
    // kick below. The shared_ptr keeps a late losing fire (a continuation
    // an owner extracted before CancelDeferred could withdraw it) safe
    // even after this frame unwound: it CAS-fails and touches nothing.
    struct FireState {
      std::atomic<bool> fired{false};
      ThreadPool::TaskGroup* group = nullptr;
      std::function<void()> task;
    };
    const auto try_fire = [](const std::shared_ptr<FireState>& state) {
      bool expected = false;
      if (state->fired.compare_exchange_strong(expected, true)) {
        state->group->CommitDeferred(std::move(state->task));
      }
    };
    std::mutex fire_mu;
    bool kicked = false;  // guarded by fire_mu
    std::vector<std::shared_ptr<FireState>> pending_fires;  // ditto

    std::function<void(std::size_t)> resolve = [&](std::size_t g) {
      MaybeInjectFault("pipeline.synthesize");
      options_.cancel.ThrowIfCancelled();
      GroupState& state = group_states[g];
      const auto& members = members_of[g];
      while (state.next_member < members.size()) {
        const std::size_t i = members[state.next_member];
        // Reserve the pool slot BEFORE the lookup can register the
        // continuation: a continuation firing instantly must find the
        // reservation its CommitDeferred settles.
        group.ReserveDeferred();
        auto fire = std::make_shared<FireState>();
        fire->group = &group;
        fire->task = [&resolve, g] { resolve(g); };
        SynthesisCache::TryLookupResult looked = service_.cache().TryLookup(
            hierarchies[i], synth_options, [fire, try_fire] { try_fire(fire); },
            &state.deferred, &outcomes[i], options_.tenant);
        if (looked.state == SynthesisCache::TryLookupState::kInFlight) {
          deferred_events.fetch_add(1, std::memory_order_relaxed);
          // Publish the pending fire for the cancel kick. If the kick
          // already ran, nobody walks the registry again — self-fire, and
          // the committed re-run observes the cancellation and unwinds.
          bool kick_now = false;
          {
            std::lock_guard<std::mutex> fire_lock(fire_mu);
            pending_fires.push_back(fire);
            kick_now = kicked;
          }
          if (kick_now) try_fire(fire);
          // The reservation keeps group.Wait blocked (and helping) until
          // exactly one CommitDeferred re-runs this task.
          return;
        }
        // Not deferred: no continuation was registered, so the FireState is
        // ours alone — neutralize it and release the unused reservation.
        fire->fired.store(true, std::memory_order_relaxed);
        group.AbandonDeferred();
        if (looked.state == SynthesisCache::TryLookupState::kOwned) {
          // This call owns the signature. Before synthesizing, try the
          // remote cache plane: another worker process may already hold (or
          // be granted) this signature, and a fetched hit settles the
          // flight in place of CompleteOwned. A failed fetch (no backend,
          // plane miss with local grant, plane unreachable) falls through
          // to local synthesis: publish, wake/fire the others. A failed
          // synthesis (cancellation included) withdraws the claim first —
          // the dead-owner contract. The owner never defers on its own
          // claim, so every in-flight signature always has a running owner:
          // owner chains cannot cycle.
          if (auto fetched = service_.cache().FetchRemoteOwned(
                  hierarchies[i], synth_options, &outcomes[i])) {
            synthesis[i] = std::move(fetched);
            ++state.next_member;
            continue;
          }
          std::shared_ptr<const core::SynthesisResult> owned;
          const auto owned_start = std::chrono::steady_clock::now();
          try {
            owned = std::make_shared<const core::SynthesisResult>(
                SynthesizePrograms(hierarchies[i], synth_options));
          } catch (...) {
            service_.cache().AbandonOwned(hierarchies[i], synth_options);
            throw;
          }
          state.synth_seconds += SecondsSince(owned_start);
          service_.cache().CompleteOwned(hierarchies[i], synth_options, owned,
                                        options_.tenant);
          synthesis[i] = std::move(owned);
          // outcomes[i] stays the zeroed miss TryLookup reset it to.
        } else {
          synthesis[i] = std::move(looked.result);  // kReady: outcome filled
        }
        ++state.next_member;
      }
      // All members resolved: fan this group's evaluations into the same
      // TaskGroup (submitting without waiting from inside a task is
      // supported), where they interleave with other groups' work.
      for (const std::size_t i : members) {
        group.Submit([&, i] {
          MaybeInjectFault("pipeline.evaluate");
          options_.cancel.ThrowIfCancelled();
          const auto eval_start = std::chrono::steady_clock::now();
          result.placements[i] =
              Evaluate(placements[i], hierarchies[i], *synthesis[i]);
          eval_seconds[i] = SecondsSince(eval_start);
        });
      }
    };

    for (std::size_t g = 0; g < members_of.size(); ++g) {
      group.Submit([&resolve, g] { resolve(g); });
    }
    // The cancel kick flushes every pending deferral back into the queue.
    // It COMMITS (never abandons), so each pool reservation is settled by
    // exactly one commit; the re-run tasks observe the cancellation at
    // their checkpoint and unwind into the group's first error, which Wait
    // rethrows with the usual abort taxonomy. Setting `kicked` under
    // fire_mu closes the race with deferrals registering concurrently —
    // they self-fire above.
    const auto kick = [&] {
      std::vector<std::shared_ptr<FireState>> snapshot;
      {
        std::lock_guard<std::mutex> fire_lock(fire_mu);
        kicked = true;
        snapshot.swap(pending_fires);
      }
      for (const auto& fire : snapshot) try_fire(fire);
    };
    std::exception_ptr error;
    try {
      group.Wait(options_.cancel, kick);
    } catch (...) {
      error = std::current_exception();
    }
    // Wait returned: every pool reservation is settled and no resolve task
    // is running or pending — but a group whose committed task was
    // fail-fast-skipped (or threw at its re-entry checkpoint) still holds
    // its cache-side reservation and continuation registration. Settle
    // them exactly like the parked path's cancelled waiter does.
    for (GroupState& state : group_states) {
      service_.cache().CancelDeferred(&state.deferred);
    }
    if (error != nullptr) std::rethrow_exception(error);

    for (const GroupState& state : group_states) {
      synthesis_seconds += state.synth_seconds;
    }
    for (const double s : eval_seconds) evaluation_seconds += s;
    deferred_total = deferred_events.load(std::memory_order_relaxed);
  }

  result.pipeline.num_placements = static_cast<std::int64_t>(n);
  result.pipeline.unique_hierarchies =
      static_cast<std::int64_t>(members_of.size());
  for (const auto& placement : result.placements) {
    result.pipeline.synth_states_visited +=
        placement.synthesis_stats.states_visited;
    result.pipeline.synth_states_deduped +=
        placement.synthesis_stats.states_deduped;
    result.pipeline.synth_branches_pruned +=
        placement.synthesis_stats.branches_pruned;
    result.pipeline.guided_skipped += placement.guided_skipped;
  }
  // Cache accounting from this request's own lookups, summed in placement
  // order (deterministic and double-reproducible — unlike global cache
  // deltas, which under concurrent requests would absorb everyone else's
  // hits and misses). The cacheless path leaves all of it zero.
  if (options_.cache_synthesis) {
    for (const CacheLookupOutcome& o : outcomes) {
      if (o.hit) {
        ++result.pipeline.cache_hits;
        result.pipeline.synthesis_seconds_saved += o.seconds_saved;
        if (o.from_disk) {
          ++result.pipeline.cache_disk_hits;
          result.pipeline.disk_seconds_saved += o.seconds_saved;
        }
        if (o.from_remote) ++result.pipeline.cache_remote_hits;
        if (o.cross_tenant) ++result.pipeline.cache_cross_tenant_hits;
      } else {
        ++result.pipeline.cache_misses;
      }
      if (o.waited) ++result.pipeline.cache_dedup_waits;
    }
  }
  result.pipeline.cache_deferred_lookups = deferred_total;
  result.pipeline.synthesis_seconds = synthesis_seconds;
  result.pipeline.evaluation_seconds = evaluation_seconds;
  result.pipeline.total_seconds = SecondsSince(start);
  result.pipeline.threads = std::max(1, service_.options().threads);
  return result;
}

}  // namespace p2::engine
