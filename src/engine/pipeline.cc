#include "engine/pipeline.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/placement.h"
#include "engine/baselines.h"

namespace p2::engine {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ProgramEvaluation EvaluateProgramOnEngine(const Engine& engine,
                                          const core::SynthesisHierarchy& sh,
                                          const core::Program& program,
                                          bool measure) {
  ProgramEvaluation eval;
  eval.program = program;
  eval.text = core::ToString(program, sh.level_names());
  eval.num_steps = static_cast<int>(program.size());
  const auto lowered = core::LowerProgram(sh, program);
  eval.predicted_seconds = engine.cost_model().PredictProgram(
      lowered, engine.payload_bytes(), engine.options().algo);
  if (measure) {
    eval.measured_seconds = engine.executor().MeasureProgram(
        lowered, engine.payload_bytes(), engine.options().algo);
    eval.measured = true;
  }
  return eval;
}

Pipeline::Pipeline(const Engine& engine, PipelineOptions options)
    : engine_(engine), options_(options) {}

PlacementEvaluation Pipeline::Evaluate(
    const core::ParallelismMatrix& matrix, const core::SynthesisHierarchy& sh,
    const core::SynthesisResult& synthesis) const {
  const bool guided = options_.measure_top_k >= 0;
  const bool measure_all = !guided && engine_.options().measure;

  PlacementEvaluation eval;
  eval.matrix = matrix;
  eval.synthesis_seconds = synthesis.stats.seconds;
  eval.synthesis_stats = synthesis.stats;

  // The default AllReduce always comes first; the synthesizer also finds it,
  // so drop the duplicate from the synthesized list.
  const core::Program default_ar = DefaultAllReduceProgram();
  eval.programs.push_back(
      EvaluateProgramOnEngine(engine_, sh, default_ar, measure_all));
  eval.programs.front().is_default_allreduce = true;

  const auto default_lowered = core::LowerProgram(sh, default_ar);
  for (const core::Program& p : synthesis.programs) {
    if (p.size() == 1) {
      // A one-step program with the same lowered groups *is* the default.
      const auto lowered = core::LowerProgram(sh, p);
      if (lowered.steps.size() == 1 &&
          lowered.steps[0].op == core::Collective::kAllReduce &&
          lowered.steps[0].groups == default_lowered.steps[0].groups) {
        continue;
      }
    }
    eval.programs.push_back(EvaluateProgramOnEngine(engine_, sh, p, measure_all));
  }

  if (guided) {
    // Measure the default AllReduce and the top-k by prediction (stable on
    // prediction ties, so the measured set is deterministic).
    std::vector<int> order(eval.programs.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int>(i);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return eval.programs[static_cast<std::size_t>(a)].predicted_seconds <
             eval.programs[static_cast<std::size_t>(b)].predicted_seconds;
    });
    auto measure = [&](int index) {
      auto& p = eval.programs[static_cast<std::size_t>(index)];
      if (p.measured) return;
      const auto lowered = core::LowerProgram(sh, p.program);
      p.measured_seconds = engine_.executor().MeasureProgram(
          lowered, engine_.payload_bytes(), engine_.options().algo);
      p.measured = true;
    };
    measure(0);  // the baseline is always measured
    for (int i = 0;
         i < options_.measure_top_k && i < static_cast<int>(order.size());
         ++i) {
      measure(order[static_cast<std::size_t>(i)]);
    }
  }
  return eval;
}

PlacementEvaluation Pipeline::EvaluatePlacement(
    const core::ParallelismMatrix& matrix,
    std::span<const int> reduction_axes) {
  const auto sh = core::SynthesisHierarchy::Build(
      matrix, reduction_axes, engine_.options().hierarchy_kind,
      engine_.options().collapse_hierarchy);
  if (options_.cache_synthesis) {
    const auto synthesis =
        cache_.GetOrSynthesize(sh, engine_.options().synthesis);
    return Evaluate(matrix, sh, *synthesis);
  }
  const auto synthesis = core::SynthesizePrograms(sh, engine_.options().synthesis);
  return Evaluate(matrix, sh, synthesis);
}

ExperimentResult Pipeline::Run(std::span<const std::int64_t> axes,
                               std::span<const int> reduction_axes) {
  const auto start = std::chrono::steady_clock::now();
  const SynthesisCacheStats cache_before = cache_.stats();

  ExperimentResult result;
  result.axes.assign(axes.begin(), axes.end());
  result.reduction_axes.assign(reduction_axes.begin(), reduction_axes.end());
  result.algo = engine_.options().algo;
  result.payload_bytes = engine_.payload_bytes();

  // Stage 1: enumerate placements (deterministic lexicographic order).
  const auto placements =
      core::EnumeratePlacements(engine_.cluster().hierarchy(), axes);
  const std::size_t n = placements.size();

  // Stage 2: build each placement's synthesis hierarchy and group placements
  // by signature. `members_of[u]` lists the placements sharing unique
  // signature u, in placement order.
  std::vector<core::SynthesisHierarchy> hierarchies;
  hierarchies.reserve(n);
  for (const auto& matrix : placements) {
    hierarchies.push_back(core::SynthesisHierarchy::Build(
        matrix, reduction_axes, engine_.options().hierarchy_kind,
        engine_.options().collapse_hierarchy));
  }
  std::vector<std::vector<std::size_t>> members_of;
  if (options_.cache_synthesis) {
    std::unordered_map<std::string, std::size_t> group_of_signature;
    for (std::size_t i = 0; i < n; ++i) {
      const auto [it, inserted] = group_of_signature.try_emplace(
          SynthesisCache::Key(hierarchies[i], engine_.options().synthesis),
          members_of.size());
      if (inserted) members_of.emplace_back();
      members_of[it->second].push_back(i);
    }
  } else {
    // Cacheless: every placement is its own group and re-synthesizes.
    members_of.resize(n);
    for (std::size_t i = 0; i < n; ++i) members_of[i].push_back(i);
  }

  ThreadPool pool(options_.threads);

  // Stage 3: synthesize once per unique signature, in parallel. Duplicate
  // members resolve through the cache (counted as hits with the seconds the
  // cacheless path would have spent).
  const auto synth_start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<const core::SynthesisResult>> synthesis(n);
  pool.ParallelFor(
      static_cast<std::int64_t>(members_of.size()), [&](std::int64_t g) {
        const auto& members = members_of[static_cast<std::size_t>(g)];
        for (std::size_t i : members) {
          if (options_.cache_synthesis) {
            synthesis[i] =
                cache_.GetOrSynthesize(hierarchies[i], engine_.options().synthesis);
          } else {
            synthesis[i] = std::make_shared<const core::SynthesisResult>(
                SynthesizePrograms(hierarchies[i], engine_.options().synthesis));
          }
        }
      });
  const double synthesis_seconds = SecondsSince(synth_start);

  // Stage 4: lower/predict/measure every placement in parallel, writing into
  // its slot...
  const auto eval_start = std::chrono::steady_clock::now();
  result.placements.resize(n);
  pool.ParallelFor(static_cast<std::int64_t>(n), [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    result.placements[idx] =
        Evaluate(placements[idx], hierarchies[idx], *synthesis[idx]);
  });
  // ...which *is* the deterministic merge: slot order equals placement order,
  // so the output matches the serial path byte for byte.

  const SynthesisCacheStats cache_after = cache_.stats();
  result.pipeline.num_placements = static_cast<std::int64_t>(n);
  result.pipeline.unique_hierarchies =
      static_cast<std::int64_t>(members_of.size());
  result.pipeline.cache_hits = cache_after.hits - cache_before.hits;
  result.pipeline.cache_misses = cache_after.misses - cache_before.misses;
  result.pipeline.synthesis_seconds_saved =
      cache_after.seconds_saved - cache_before.seconds_saved;
  result.pipeline.synthesis_seconds = synthesis_seconds;
  result.pipeline.evaluation_seconds = SecondsSince(eval_start);
  result.pipeline.total_seconds = SecondsSince(start);
  result.pipeline.threads = std::max(1, options_.threads);
  return result;
}

}  // namespace p2::engine
