#include "engine/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace p2::engine {

std::vector<RankedPair> CollectPairs(const ExperimentResult& result) {
  std::vector<RankedPair> pairs;
  for (int pi = 0; pi < static_cast<int>(result.placements.size()); ++pi) {
    const auto& placement = result.placements[static_cast<std::size_t>(pi)];
    for (int gi = 0; gi < static_cast<int>(placement.programs.size()); ++gi) {
      const auto& prog = placement.programs[static_cast<std::size_t>(gi)];
      pairs.push_back(RankedPair{pi, gi, prog.predicted_seconds,
                                 prog.measured_seconds});
    }
  }
  return pairs;
}

int MeasuredRankOfPredictedBest(const std::vector<RankedPair>& pairs) {
  if (pairs.empty()) {
    throw std::invalid_argument("MeasuredRankOfPredictedBest: no pairs");
  }
  const auto best_pred = std::min_element(
      pairs.begin(), pairs.end(), [](const RankedPair& a, const RankedPair& b) {
        return a.predicted_seconds < b.predicted_seconds;
      });
  int rank = 0;
  for (const RankedPair& p : pairs) {
    if (p.measured_seconds < best_pred->measured_seconds) ++rank;
  }
  return rank;
}

AccuracyCounter::AccuracyCounter(std::vector<int> ks)
    : ks_(std::move(ks)), hits_(ks_.size(), 0) {}

void AccuracyCounter::AddExperiment(const ExperimentResult& result) {
  const auto pairs = CollectPairs(result);
  if (pairs.empty()) return;
  const int rank = MeasuredRankOfPredictedBest(pairs);
  ++total_;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (rank < ks_[i]) ++hits_[i];
  }
}

double AccuracyCounter::Rate(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(hits_.at(i)) / static_cast<double>(total_);
}

std::string FormatSpeedup(double speedup) {
  if (std::abs(speedup - 1.0) < 5e-3) return "1x";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

std::string RenderPipelineStats(const PipelineStats& stats) {
  std::ostringstream os;
  os << "pipeline: " << stats.num_placements << " placements, "
     << stats.unique_hierarchies << " unique hierarchies, cache "
     << stats.cache_hits << " hits / " << stats.cache_misses << " misses";
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (%.2f s re-synthesis avoided)",
                stats.synthesis_seconds_saved);
  os << buf << ", " << stats.threads
     << (stats.threads == 1 ? " thread" : " threads");
  if (stats.cache_dedup_waits > 0) {
    os << ", " << stats.cache_dedup_waits << " in-flight waits";
  }
  if (stats.cache_deferred_lookups > 0) {
    os << ", " << stats.cache_deferred_lookups << " deferred lookups";
  }
  if (stats.cache_cross_tenant_hits > 0) {
    os << ", " << stats.cache_cross_tenant_hits << " cross-tenant hits";
  }
  if (stats.guided_skipped > 0) {
    os << "\nguided: " << stats.guided_skipped
       << " measurements skipped by early stopping";
  }
  if (stats.cache_remote_hits > 0) {
    os << ", " << stats.cache_remote_hits << " remote hits";
  }
  if (stats.cache_disk_hits > 0) {
    std::snprintf(buf, sizeof(buf), " (%.2f s saved across runs)",
                  stats.disk_seconds_saved);
    os << "\ndisk cache: " << stats.cache_disk_hits << " disk hits" << buf;
  }
  os << "\nsearch: " << stats.synth_states_visited << " states visited, "
     << stats.synth_states_deduped << " transpositions collapsed, "
     << stats.synth_branches_pruned << " subtrees replayed from the table";
  return os.str();
}

std::string RenderServiceStats(const PlannerServiceStats& stats) {
  std::ostringstream os;
  os << "service: " << stats.requests
     << (stats.requests == 1 ? " request" : " requests") << ", cache "
     << stats.cache.hits << " hits / " << stats.cache.misses << " misses";
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (%.2f s re-synthesis avoided)",
                stats.cache.seconds_saved);
  os << buf;
  if (stats.cache.subsumed_hits > 0) {
    os << ", " << stats.cache.subsumed_hits << " served by subsumption";
  }
  if (stats.cache.dedup_waits > 0) {
    os << ", " << stats.cache.dedup_waits << " in-flight waits";
  }
  if (stats.cache.deferred_lookups > 0) {
    os << ", " << stats.cache.deferred_lookups << " deferred lookups ("
       << stats.cache.continuations_fired << " continuations fired)";
  }
  if (stats.cache.waiter_parks > 0) {
    os << ", " << stats.cache.waiter_parks << " waiter parks";
  }
  if (stats.cache.cross_tenant_hits > 0) {
    os << ", " << stats.cache.cross_tenant_hits << " cross-tenant hits";
  }
  if (stats.cache.remote_hits > 0) {
    os << ", " << stats.cache.remote_hits << " remote hits";
  }
  if (stats.cache.remote_errors > 0) {
    os << ", " << stats.cache.remote_errors << " remote errors";
  }
  if (stats.cache.evictions > 0) {
    os << ", " << stats.cache.evictions << " evictions";
  }
  os << ", " << stats.threads
     << (stats.threads == 1 ? " thread" : " threads");
  // Robustness counters render only when the run actually rejected,
  // cancelled, or timed out something, so classic reports are unchanged.
  if (stats.rejected > 0) {
    os << "\nadmission: " << stats.rejected << " rejected, peak "
       << stats.peak_in_flight << " in flight";
  }
  if (stats.cancelled > 0 || stats.deadline_exceeded > 0) {
    os << "\naborted: " << stats.cancelled << " cancelled, "
       << stats.deadline_exceeded << " deadline-exceeded";
  }
  if (stats.save_errors > 0) {
    os << "\ncache save errors: " << stats.save_errors << " (last: "
       << stats.last_save_error << ")";
  }
  if (stats.latency_count > 0) {
    char latency_buf[96];
    std::snprintf(latency_buf, sizeof(latency_buf),
                  "\nlatency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms",
                  stats.latency_p50_seconds * 1e3,
                  stats.latency_p95_seconds * 1e3,
                  stats.latency_p99_seconds * 1e3);
    os << latency_buf << " (" << stats.latency_count
       << (stats.latency_count == 1 ? " request)" : " requests)");
  }
  if (stats.cache_entries_loaded > 0 || stats.cache.disk_hits > 0 ||
      stats.cache_entries_expired > 0) {
    std::snprintf(buf, sizeof(buf), " (%.2f s saved across runs)",
                  stats.cache.disk_seconds_saved);
    os << "\nservice disk cache: " << stats.cache_entries_loaded
       << " entries loaded, " << stats.cache.disk_hits << " disk hits" << buf;
    if (stats.cache_entries_expired > 0) {
      os << ", " << stats.cache_entries_expired << " expired";
    }
  }
  // One line per tenant (only when the registry holds more than the single
  // default tenant — the classic single-cluster footer stays unchanged).
  // The per-tenant cache split is attribution-approximate under races, like
  // per-request PipelineStats; the sums match the service totals.
  if (stats.tenants.size() > 1) {
    for (const TenantStats& tenant : stats.tenants) {
      os << "\ntenant " << tenant.id << " [" << tenant.cluster << "]: "
         << tenant.requests
         << (tenant.requests == 1 ? " request, " : " requests, ")
         << tenant.placements << " placements, cache " << tenant.cache_hits
         << " hits / " << tenant.cache_misses << " misses";
      if (tenant.cache_cross_tenant_hits > 0) {
        os << " (" << tenant.cache_cross_tenant_hits
           << " served cross-tenant)";
      }
      if (tenant.cache_disk_hits > 0) {
        os << ", " << tenant.cache_disk_hits << " disk hits";
      }
      if (tenant.rejected > 0) {
        os << ", " << tenant.rejected << " rejected";
      }
      if (tenant.cancelled > 0) {
        os << ", " << tenant.cancelled << " cancelled";
      }
      if (tenant.deadline_exceeded > 0) {
        os << ", " << tenant.deadline_exceeded << " deadline-exceeded";
      }
    }
  }
  return os.str();
}

std::string CanonicalResultText(const ExperimentResult& result) {
  std::ostringstream os;
  os << "axes";
  for (std::int64_t a : result.axes) os << ' ' << a;
  os << "; reduce";
  for (int a : result.reduction_axes) os << ' ' << a;
  os << "; " << core::ToString(result.algo) << '\n';
  char buf[64];
  for (const auto& placement : result.placements) {
    os << placement.matrix.ToString() << '\n';
    for (const auto& p : placement.programs) {
      // %.17g: doubles round-trip exactly, so equal outputs really are
      // bit-equal predictions and measurements.
      std::snprintf(buf, sizeof(buf), "%.17g", p.predicted_seconds);
      os << "  " << p.text << " | steps=" << p.num_steps
         << " | predicted=" << buf;
      std::snprintf(buf, sizeof(buf), "%.17g", p.measured_seconds);
      os << " | measured=" << (p.measured ? buf : "-")
         << (p.is_default_allreduce ? " | default" : "") << '\n';
    }
  }
  return os.str();
}

std::string ProgramShape(const core::Program& program) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.size(); ++i) {
    if (i > 0) os << '-';
    os << core::ShortName(program[i].op);
  }
  return os.str();
}

}  // namespace p2::engine
