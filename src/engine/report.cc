#include "engine/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace p2::engine {

std::vector<RankedPair> CollectPairs(const ExperimentResult& result) {
  std::vector<RankedPair> pairs;
  for (int pi = 0; pi < static_cast<int>(result.placements.size()); ++pi) {
    const auto& placement = result.placements[static_cast<std::size_t>(pi)];
    for (int gi = 0; gi < static_cast<int>(placement.programs.size()); ++gi) {
      const auto& prog = placement.programs[static_cast<std::size_t>(gi)];
      pairs.push_back(RankedPair{pi, gi, prog.predicted_seconds,
                                 prog.measured_seconds});
    }
  }
  return pairs;
}

int MeasuredRankOfPredictedBest(const std::vector<RankedPair>& pairs) {
  if (pairs.empty()) {
    throw std::invalid_argument("MeasuredRankOfPredictedBest: no pairs");
  }
  const auto best_pred = std::min_element(
      pairs.begin(), pairs.end(), [](const RankedPair& a, const RankedPair& b) {
        return a.predicted_seconds < b.predicted_seconds;
      });
  int rank = 0;
  for (const RankedPair& p : pairs) {
    if (p.measured_seconds < best_pred->measured_seconds) ++rank;
  }
  return rank;
}

AccuracyCounter::AccuracyCounter(std::vector<int> ks)
    : ks_(std::move(ks)), hits_(ks_.size(), 0) {}

void AccuracyCounter::AddExperiment(const ExperimentResult& result) {
  const auto pairs = CollectPairs(result);
  if (pairs.empty()) return;
  const int rank = MeasuredRankOfPredictedBest(pairs);
  ++total_;
  for (std::size_t i = 0; i < ks_.size(); ++i) {
    if (rank < ks_[i]) ++hits_[i];
  }
}

double AccuracyCounter::Rate(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(hits_.at(i)) / static_cast<double>(total_);
}

std::string FormatSpeedup(double speedup) {
  if (std::abs(speedup - 1.0) < 5e-3) return "1x";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

std::string RenderPipelineStats(const PipelineStats& stats) {
  std::ostringstream os;
  os << "pipeline: " << stats.num_placements << " placements, "
     << stats.unique_hierarchies << " unique hierarchies, cache "
     << stats.cache_hits << " hits / " << stats.cache_misses << " misses";
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (%.2f s re-synthesis avoided)",
                stats.synthesis_seconds_saved);
  os << buf << ", " << stats.threads
     << (stats.threads == 1 ? " thread" : " threads");
  if (stats.cache_entries_loaded > 0 || stats.cache_disk_hits > 0) {
    std::snprintf(buf, sizeof(buf), " (%.2f s saved across runs)",
                  stats.disk_seconds_saved);
    os << "\ndisk cache: " << stats.cache_entries_loaded
       << " entries loaded, " << stats.cache_disk_hits << " disk hits" << buf;
  }
  os << "\nsearch: " << stats.synth_states_visited << " states visited, "
     << stats.synth_states_deduped << " transpositions collapsed, "
     << stats.synth_branches_pruned << " subtrees replayed from the table";
  return os.str();
}

std::string ProgramShape(const core::Program& program) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.size(); ++i) {
    if (i > 0) os << '-';
    os << core::ShortName(program[i].op);
  }
  return os.str();
}

}  // namespace p2::engine
