#include "engine/planner.h"

#include <algorithm>
#include <stdexcept>

namespace p2::engine {

std::vector<PlacementPlan> PlanPlacements(
    const Engine& engine, std::span<const std::int64_t> axes,
    std::span<const ReductionDemand> demands) {
  if (demands.empty()) {
    throw std::invalid_argument("PlanPlacements: no demands");
  }
  std::vector<PlacementPlan> plans;
  for (const auto& matrix : engine.SynthesizePlacements(axes)) {
    PlacementPlan plan;
    plan.matrix = matrix;
    for (const ReductionDemand& demand : demands) {
      // Re-scale the engine's payload per demand.
      EngineOptions opts = engine.options();
      opts.payload_bytes = demand.payload_bytes;
      const Engine scoped(engine.cluster(), opts);
      const auto eval =
          scoped.EvaluatePlacement(matrix, demand.reduction_axes);
      const auto& best =
          eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
      DemandPlan dp;
      dp.seconds_per_step = demand.count_per_step * best.measured_seconds;
      dp.program = best.program;
      dp.program_text = best.text;
      plan.total_seconds_per_step += dp.seconds_per_step;
      plan.demands.push_back(std::move(dp));
    }
    plans.push_back(std::move(plan));
  }
  std::sort(plans.begin(), plans.end(),
            [](const PlacementPlan& a, const PlacementPlan& b) {
              return a.total_seconds_per_step < b.total_seconds_per_step;
            });
  return plans;
}

}  // namespace p2::engine
