#include "engine/experiment_grid.h"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <utility>

#include "common/format.h"

namespace p2::engine {

std::string ExperimentConfig::ToString() const {
  std::ostringstream os;
  os << BracketJoin(std::span<const std::int64_t>(axes)) << " reduce";
  for (int a : reduction_axes) os << ' ' << a;
  return os.str();
}

std::vector<ExperimentConfig> SingleAxisConfigs(std::int64_t num_devices) {
  return {ExperimentConfig{{num_devices}, {0}}};
}

std::vector<ExperimentConfig> TwoAxisConfigs(std::int64_t num_devices) {
  std::vector<ExperimentConfig> configs;
  for (std::int64_t a = 2; a < num_devices; a *= 2) {
    if (num_devices % a != 0) continue;
    const std::int64_t b = num_devices / a;
    if (b < 2) continue;
    configs.push_back(ExperimentConfig{{a, b}, {0}});
    configs.push_back(ExperimentConfig{{a, b}, {1}});
  }
  return configs;
}

std::vector<ExperimentConfig> ThreeAxisConfigs(std::int64_t num_devices) {
  std::vector<ExperimentConfig> configs;
  if (num_devices % 2 != 0) return configs;
  const std::int64_t rest = num_devices / 2;
  for (std::int64_t x = 2; x < rest; x *= 2) {
    if (rest % x != 0) continue;
    const std::int64_t y = rest / x;
    if (y < 2) continue;
    configs.push_back(ExperimentConfig{{x, 2, y}, {0, 2}});
  }
  return configs;
}

std::vector<ExperimentConfig> FullGrid(const topology::Cluster& cluster) {
  const std::int64_t d = cluster.num_devices();
  std::vector<ExperimentConfig> grid = SingleAxisConfigs(d);
  for (auto& c : TwoAxisConfigs(d)) grid.push_back(std::move(c));
  for (auto& c : ThreeAxisConfigs(d)) grid.push_back(std::move(c));
  return grid;
}

namespace {

constexpr std::string_view kBlockPrefix = "== config ";

}  // namespace

std::vector<std::size_t> ShardIndices(std::size_t grid_size, int shard_index,
                                      int num_shards) {
  std::vector<std::size_t> indices;
  if (shard_index < 0 || num_shards <= 0 || shard_index >= num_shards) {
    return indices;
  }
  for (std::size_t i = static_cast<std::size_t>(shard_index); i < grid_size;
       i += static_cast<std::size_t>(num_shards)) {
    indices.push_back(i);
  }
  return indices;
}

std::string RenderShardBlock(const ShardBlock& block) {
  std::ostringstream os;
  os << kBlockPrefix << block.index << ": " << block.config << " ==\n"
     << block.body;
  if (!block.body.empty() && block.body.back() != '\n') os << '\n';
  return os.str();
}

bool ParseShardBlocks(std::string_view text, std::vector<ShardBlock>* blocks,
                      std::string* error) {
  blocks->clear();
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  std::size_t pos = 0;
  ShardBlock* current = nullptr;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    // A final line without a newline is still a line.
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.substr(0, kBlockPrefix.size()) == kBlockPrefix) {
      std::string_view rest = line.substr(kBlockPrefix.size());
      std::int64_t index = 0;
      const auto [ptr, ec] =
          std::from_chars(rest.data(), rest.data() + rest.size(), index);
      const std::string_view after(ptr,
                                   static_cast<std::size_t>(
                                       rest.data() + rest.size() - ptr));
      if (ec != std::errc() || index < 0 || after.substr(0, 2) != ": " ||
          after.size() < 5 || after.substr(after.size() - 3) != " ==") {
        return fail("malformed shard block header: " + std::string(line));
      }
      blocks->push_back(ShardBlock{
          index, std::string(after.substr(2, after.size() - 5)), ""});
      current = &blocks->back();
      continue;
    }
    if (current == nullptr) {
      return fail("shard output does not start with a block header");
    }
    current->body.append(line);
    current->body.push_back('\n');
  }
  return true;
}

bool MergeShardBlocks(std::vector<ShardBlock> blocks,
                      std::int64_t expected_count, std::string* merged,
                      std::string* error) {
  const auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  std::sort(blocks.begin(), blocks.end(),
            [](const ShardBlock& a, const ShardBlock& b) {
              return a.index < b.index;
            });
  if (static_cast<std::int64_t>(blocks.size()) != expected_count) {
    return fail("expected " + std::to_string(expected_count) +
                " configs, merged shards hold " +
                std::to_string(blocks.size()));
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].index != static_cast<std::int64_t>(i)) {
      return fail(blocks[i].index > static_cast<std::int64_t>(i)
                      ? "missing config " + std::to_string(i)
                      : "duplicate config " + std::to_string(blocks[i].index));
    }
  }
  std::string out;
  for (const ShardBlock& block : blocks) out += RenderShardBlock(block);
  *merged = std::move(out);
  return true;
}

}  // namespace p2::engine
