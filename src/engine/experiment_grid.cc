#include "engine/experiment_grid.h"

#include <sstream>

#include "common/format.h"

namespace p2::engine {

std::string ExperimentConfig::ToString() const {
  std::ostringstream os;
  os << BracketJoin(std::span<const std::int64_t>(axes)) << " reduce";
  for (int a : reduction_axes) os << ' ' << a;
  return os.str();
}

std::vector<ExperimentConfig> SingleAxisConfigs(std::int64_t num_devices) {
  return {ExperimentConfig{{num_devices}, {0}}};
}

std::vector<ExperimentConfig> TwoAxisConfigs(std::int64_t num_devices) {
  std::vector<ExperimentConfig> configs;
  for (std::int64_t a = 2; a < num_devices; a *= 2) {
    if (num_devices % a != 0) continue;
    const std::int64_t b = num_devices / a;
    if (b < 2) continue;
    configs.push_back(ExperimentConfig{{a, b}, {0}});
    configs.push_back(ExperimentConfig{{a, b}, {1}});
  }
  return configs;
}

std::vector<ExperimentConfig> ThreeAxisConfigs(std::int64_t num_devices) {
  std::vector<ExperimentConfig> configs;
  if (num_devices % 2 != 0) return configs;
  const std::int64_t rest = num_devices / 2;
  for (std::int64_t x = 2; x < rest; x *= 2) {
    if (rest % x != 0) continue;
    const std::int64_t y = rest / x;
    if (y < 2) continue;
    configs.push_back(ExperimentConfig{{x, 2, y}, {0, 2}});
  }
  return configs;
}

std::vector<ExperimentConfig> FullGrid(const topology::Cluster& cluster) {
  const std::int64_t d = cluster.num_devices();
  std::vector<ExperimentConfig> grid = SingleAxisConfigs(d);
  for (auto& c : TwoAxisConfigs(d)) grid.push_back(std::move(c));
  for (auto& c : ThreeAxisConfigs(d)) grid.push_back(std::move(c));
  return grid;
}

}  // namespace p2::engine
