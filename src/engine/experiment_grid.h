// The paper's experiment grid (Section 4 / appendix Table A): for each GPU
// system and node count, the set of parallelism-axis decompositions and
// reduction-axis choices evaluated.
#ifndef P2_ENGINE_EXPERIMENT_GRID_H_
#define P2_ENGINE_EXPERIMENT_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "topology/cluster.h"

namespace p2::engine {

struct ExperimentConfig {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;

  std::string ToString() const;
};

/// One-axis config [D] with reduction on it.
std::vector<ExperimentConfig> SingleAxisConfigs(std::int64_t num_devices);

/// All two-axis decompositions [a b] of num_devices with a,b >= 2 (powers of
/// two between the extremes, as in the appendix), reducing on axis 0 and on
/// axis 1 as separate configs.
std::vector<ExperimentConfig> TwoAxisConfigs(std::int64_t num_devices);

/// The paper's three-axis configs [x 2 y] with x*2*y = num_devices,
/// reduction on axes {0, 2}.
std::vector<ExperimentConfig> ThreeAxisConfigs(std::int64_t num_devices);

/// The full appendix grid for one cluster: single + two + three axis configs.
std::vector<ExperimentConfig> FullGrid(const topology::Cluster& cluster);

}  // namespace p2::engine

#endif  // P2_ENGINE_EXPERIMENT_GRID_H_
