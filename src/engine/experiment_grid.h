// The paper's experiment grid (Section 4 / appendix Table A): for each GPU
// system and node count, the set of parallelism-axis decompositions and
// reduction-axis choices evaluated — plus the shard/merge layer the
// distributed grid runner (tools/p2_shard) splits it with.
//
// Sharding is by grid index modulo the worker count, so any N workers cover
// the grid exactly once with no coordination. Each worker renders its
// configs as *shard blocks* — a header line naming the config's grid index
// followed by the CanonicalResultText body — and the merge step reassembles
// the blocks of all shards into grid order, validating exact coverage
// (every index 0..M-1 present exactly once). Because the body is the
// byte-identity oracle (engine/report.h), a merged N-worker run is
// byte-identical to a serial single-worker run of the same grid.
#ifndef P2_ENGINE_EXPERIMENT_GRID_H_
#define P2_ENGINE_EXPERIMENT_GRID_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "topology/cluster.h"

namespace p2::engine {

struct ExperimentConfig {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;

  std::string ToString() const;
};

/// One-axis config [D] with reduction on it.
std::vector<ExperimentConfig> SingleAxisConfigs(std::int64_t num_devices);

/// All two-axis decompositions [a b] of num_devices with a,b >= 2 (powers of
/// two between the extremes, as in the appendix), reducing on axis 0 and on
/// axis 1 as separate configs.
std::vector<ExperimentConfig> TwoAxisConfigs(std::int64_t num_devices);

/// The paper's three-axis configs [x 2 y] with x*2*y = num_devices,
/// reduction on axes {0, 2}.
std::vector<ExperimentConfig> ThreeAxisConfigs(std::int64_t num_devices);

/// The full appendix grid for one cluster: single + two + three axis configs.
std::vector<ExperimentConfig> FullGrid(const topology::Cluster& cluster);

/// The grid indices shard `shard_index` of `num_shards` owns: every i in
/// [0, grid_size) with i % num_shards == shard_index. Disjoint across
/// shards, exhaustive over the grid; empty when the shard has no work
/// (more shards than configs). Requires 0 <= shard_index < num_shards.
std::vector<std::size_t> ShardIndices(std::size_t grid_size, int shard_index,
                                      int num_shards);

/// One config's result inside a shard output: the grid index, the config's
/// ToString() (a cross-shard identity check at merge time), and the
/// CanonicalResultText body.
struct ShardBlock {
  std::int64_t index = 0;
  std::string config;
  std::string body;
};

/// Renders one block:
///   == config <index>: <config> ==
///   <body lines...>
/// The body (CanonicalResultText) never begins a line with "== config", so
/// blocks need no explicit terminator.
std::string RenderShardBlock(const ShardBlock& block);

/// Parses a shard output (a concatenation of rendered blocks) back into
/// blocks. False on any malformation — text before the first header or an
/// unparsable header line; coverage checks are left to the merge.
bool ParseShardBlocks(std::string_view text, std::vector<ShardBlock>* blocks,
                      std::string* error);

/// Merges the blocks of all shards into grid order and re-renders them.
/// Validates exact coverage: every index in [0, expected_count) exactly
/// once — a missing, duplicate, or out-of-range index fails with a reason.
/// On success `merged` is byte-identical to a serial run's rendering of the
/// whole grid.
bool MergeShardBlocks(std::vector<ShardBlock> blocks,
                      std::int64_t expected_count, std::string* merged,
                      std::string* error);

}  // namespace p2::engine

#endif  // P2_ENGINE_EXPERIMENT_GRID_H_
