#include "engine/synthesis_cache.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <thread>
#include <utility>

namespace p2::engine {

namespace {

constexpr std::string_view kCapMarker = ";cap=";

/// Total retry-after budget spent waiting out one foreign grant before the
/// lookup gives up and synthesizes locally (a safe duplicate, never a wrong
/// answer): a crashed foreign owner must not wedge this worker even if the
/// server keeps re-granting.
constexpr int kMaxRemoteRetryMs = 60'000;

/// Recovers the max_programs cap a persisted Key() embeds. False when the
/// key was not produced by Key() (e.g. a hand-forged cache file).
bool ParseCapFromKey(const std::string& key, std::string* base,
                     std::int64_t* cap) {
  const auto pos = key.rfind(kCapMarker);
  if (pos == std::string::npos) return false;
  const char* begin = key.data() + pos + kCapMarker.size();
  const char* end = key.data() + key.size();
  if (begin == end) return false;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || value < 0) return false;
  base->assign(key, 0, pos);
  *cap = value;
  return true;
}

}  // namespace

void SynthesisCache::InFlight::MarkDone() {
  {
    std::lock_guard<std::mutex> lock(m);
    done = true;
  }
  cv.notify_all();
}

bool SynthesisCache::InFlight::Wait(const CancelToken& cancel) {
  if (!cancel.CanBeCancelled()) {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [this] { return done; });
    return true;
  }
  // Register the cv with the token before the first predicate check and
  // while `m` is not held (the AddCancelWaiter contract): a Cancel() landing
  // any time after this line either notifies the cv or is already visible
  // to cancel_requested() below. Destruction order matters too — `lock`
  // below releases `m` before `waiter` unregisters.
  CancelWaiter waiter(cancel, &m, &cv);
  std::unique_lock<std::mutex> lock(m);
  for (;;) {
    if (done) return true;
    if (cancel.cancel_requested()) return false;
    // Deadline expiry never notifies (see cancel.h), so bound the block by
    // the currently-armed deadline — re-read each round, it can be
    // re-armed — and let the post-wake cancel_requested() latch the expiry.
    const auto deadline = cancel.deadline();
    if (deadline.has_value()) {
      cv.wait_until(lock, *deadline);
    } else {
      cv.wait(lock);
    }
  }
}

std::string SynthesisCache::BaseKey(const core::SynthesisHierarchy& sh,
                                    const core::SynthesisOptions& options) {
  // Every SynthesisOptions field that can change the program list must
  // appear in the key or be bridged by subsumption, or two queries with
  // different options would silently share program sets. `threads` is
  // deliberately excluded: the transposition search's output and stats are
  // identical at any thread count (tests/synth_differential_test.cc proves
  // it), so caching per thread count would only split the cache.
  // `max_programs` is excluded *here* because entries record the cap they
  // were synthesized under and smaller caps are served by truncation (the
  // size-ordered program list makes the truncation exact); it still appears
  // in the full Key() so persisted entries keep their cap. The assert fires
  // when a field is added without revisiting this function.
  // `cancel` is excluded for the same reason as `threads`: it is pure
  // execution strategy — a search that *completes* returns the same program
  // list with or without a token, and an aborted search publishes nothing.
  static_assert(sizeof(core::SynthesisOptions) ==
                    4 * sizeof(std::int64_t),  // int max_program_size
                                               // + int threads (excluded)
                                               // + int64 max_programs
                                               // + CancelToken (excluded)
                "new SynthesisOptions field? include it in the cache key");
  return sh.Signature() + ";size<=" + std::to_string(options.max_program_size);
}

std::string SynthesisCache::Key(const core::SynthesisHierarchy& sh,
                                const core::SynthesisOptions& options) {
  return BaseKey(sh, options) + std::string(kCapMarker) +
         std::to_string(options.max_programs);
}

std::string SynthesisCache::BaseOfKey(const std::string& key) {
  std::string base;
  std::int64_t cap = 0;
  return ParseCapFromKey(key, &base, &cap) ? base : key;
}

void SynthesisCache::set_remote(std::shared_ptr<RemoteCacheBackend> remote) {
  std::unique_lock<std::mutex> lock(mu_);
  remote_ = std::move(remote);
}

SynthesisCache::Entry& SynthesisCache::PublishLocked(const std::string& base,
                                                     Entry entry) {
  const auto it = entries_.find(base);
  if (it != entries_.end()) {
    // Replacement (cap upgrade): keep the LRU slot, refreshed below.
    entry.lru = it->second.lru;
    it->second = std::move(entry);
    TouchLocked(it->second);
    return it->second;
  }
  lru_.push_front(base);
  entry.lru = lru_.begin();
  Entry& inserted = entries_.emplace(base, std::move(entry)).first->second;
  EvictLocked();
  return inserted;
}

void SynthesisCache::TouchLocked(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

void SynthesisCache::EvictLocked() {
  if (max_entries_ <= 0) return;
  auto it = lru_.end();
  while (it != lru_.begin() &&
         static_cast<std::int64_t>(entries_.size()) > max_entries_) {
    --it;
    // A reserved base has in-flight waiters about to be served from it:
    // immune until the last one has done its post-wake lookup. The cache
    // may transiently exceed its cap by the number of reserved bases.
    if (reserved_.find(*it) != reserved_.end()) continue;
    entries_.erase(*it);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

std::shared_ptr<const core::SynthesisResult> SynthesisCache::GetOrSynthesize(
    const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options,
    CacheLookupOutcome* outcome, std::int64_t tenant) {
  if (outcome != nullptr) *outcome = CacheLookupOutcome{};
  const std::string base = BaseKey(sh, options);
  // Clamp like the synthesizer does: a non-positive cap means "no programs"
  // (core::SynthesizePrograms returns an empty list for it), so it is
  // served from any entry as an empty prefix — never as a negative
  // iterator offset.
  const std::int64_t cap = std::max<std::int64_t>(0, options.max_programs);
  bool waited = false;

  std::unique_lock<std::mutex> lock(mu_);
  bool holds_reservation = false;
  // Releases the reservation taken before the most recent wait. Runs at the
  // top of every post-wake iteration — under the same lock acquisition as
  // the lookup that follows, so eviction (which also needs the lock) cannot
  // squeeze between the release and the read.
  const auto release_reservation = [&] {
    if (!holds_reservation) return;
    holds_reservation = false;
    const auto rit = reserved_.find(base);
    if (--rit->second == 0) reserved_.erase(rit);
  };
  for (;;) {
    release_reservation();
    const auto it = entries_.find(base);
    if (it != entries_.end() && it->second.CanServe(cap)) {
      return ServeHitLocked(lock, it->second, cap, tenant, waited, outcome);
    }
    // Not servable from the table. If someone is synthesizing this
    // signature right now, wait for them and re-check: their result usually
    // serves us (same cap), though a truncated smaller-cap result sends us
    // around the loop into our own synthesis. The reservation taken here —
    // released at the top of the next iteration — keeps the LRU from
    // evicting the published entry between publication and our wake-up.
    const auto fit = inflight_.find(base);
    if (fit == inflight_.end()) break;
    const auto flight = fit->second;
    ++reserved_[base];
    holds_reservation = true;
    waited = true;
    ++stats_.waiter_parks;
    lock.unlock();
    if (!flight->Wait(options.cancel)) {
      // Our *own* request aborted while parked behind a foreign owner that
      // may never cancel: release the reservation (nobody will do the
      // post-wake lookup it protected) and unwind.
      lock.lock();
      release_reservation();
      lock.unlock();
      options.cancel.ThrowIfCancelled();
    }
    lock.lock();
  }

  // Miss: announce the in-flight synthesis, run it outside the lock, then
  // publish. Concurrent queries on other signatures proceed in parallel;
  // concurrent queries on this one block above.
  auto flight = std::make_shared<InFlight>();
  inflight_.emplace(base, flight);
  const std::shared_ptr<RemoteCacheBackend> remote = remote_;
  lock.unlock();

  // Consult the remote cache plane before paying for a synthesis (no-op
  // without a backend). Announcing the flight *first* means local
  // concurrent lookups park/defer behind the remote round trip too, so the
  // process makes one plane query per signature, not one per thread.
  if (remote != nullptr) {
    core::SynthesisResult fetched;
    std::int64_t entry_cap = 0;
    if (ConsultRemote(*remote, base, options, &fetched, &entry_cap)) {
      return AdoptRemoteHit(base, std::move(fetched), entry_cap, cap, waited,
                            outcome);
    }
  }

  std::shared_ptr<const core::SynthesisResult> result;
  try {
    result = std::make_shared<const core::SynthesisResult>(
        SynthesizePrograms(sh, options));
  } catch (...) {
    // Withdraw the announcement, wake the waiters, fire any registered
    // continuations (a blocking owner can have deferred registrants too);
    // each retries the lookup and (finding no entry and no flight)
    // dispatches the synthesis itself.
    lock.lock();
    SettleFlight(lock, base);
    throw;
  }

  lock.lock();
  // Replace any existing entry: we only reach here when it could not serve
  // this cap, i.e. it was truncated below `cap` — the new result strictly
  // extends it (determinism: both are prefixes of the same ordered list).
  Entry entry;
  entry.result = result;
  entry.original_seconds = result->stats.seconds;
  entry.max_programs = cap;
  entry.owner_tenant = tenant;
  PublishLocked(base, std::move(entry));
  ++stats_.misses;
  // stats_.dedup_waits counts only waits that *avoided* a synthesis (a
  // subset of hits, per the header); a wait that ended here — the finished
  // entry could not serve this cap — ran its own synthesis after all, so
  // it is recorded only in the caller's outcome.
  if (outcome != nullptr) outcome->waited = waited;
  SettleFlight(lock, base);
  // Publish the completion to the plane (after settling — local waiters
  // never stall behind the wire). A failed publish only loses cross-worker
  // reuse of this one entry.
  if (remote != nullptr &&
      !remote->Publish(
          base + std::string(kCapMarker) + std::to_string(cap), *result)) {
    std::unique_lock<std::mutex> relock(mu_);
    ++stats_.remote_errors;
  }
  return result;
}

bool SynthesisCache::ConsultRemote(RemoteCacheBackend& remote,
                                   const std::string& base,
                                   const core::SynthesisOptions& options,
                                   core::SynthesisResult* result,
                                   std::int64_t* entry_cap) {
  const std::int64_t cap = std::max<std::int64_t>(0, options.max_programs);
  const auto count_error = [this] {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.remote_errors;
  };
  int waited_ms = 0;
  for (;;) {
    // A cancelled request stops retrying and falls through to the local
    // synthesis, whose own cancellation checkpoints unwind it — the remote
    // consult never needs to throw.
    if (options.cancel.cancel_requested()) return false;
    RemoteLookupResult reply = remote.Lookup(base, cap);
    switch (reply.kind) {
      case RemoteLookupResult::Kind::kHit: {
        std::string reply_base;
        std::int64_t reply_cap = 0;
        if (!ParseCapFromKey(reply.key, &reply_base, &reply_cap)) {
          reply_base = reply.key;
          reply_cap = static_cast<std::int64_t>(reply.result.programs.size());
        }
        const bool complete =
            static_cast<std::int64_t>(reply.result.programs.size()) <
            reply_cap;
        if (reply_base != base || (!complete && cap > reply_cap)) {
          // A hit for the wrong base or one that cannot serve our cap is a
          // protocol violation by the plane: synthesize locally rather than
          // adopt an answer we cannot trust.
          count_error();
          return false;
        }
        *result = std::move(reply.result);
        *entry_cap = reply_cap;
        return true;
      }
      case RemoteLookupResult::Kind::kOwned:
        // The grant is ours: synthesize locally and publish the completion.
        return false;
      case RemoteLookupResult::Kind::kRetryAfter: {
        if (waited_ms >= kMaxRemoteRetryMs) {
          // The foreign owner looks dead (or the grant keeps bouncing):
          // a duplicate local synthesis is safe, wedging here is not.
          count_error();
          return false;
        }
        const int sleep_ms = std::clamp(reply.retry_after_ms, 1, 1000);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        waited_ms += sleep_ms;
        break;
      }
      case RemoteLookupResult::Kind::kUnavailable:
        count_error();
        return false;
    }
  }
}

std::shared_ptr<const core::SynthesisResult> SynthesisCache::AdoptRemoteHit(
    const std::string& base, core::SynthesisResult fetched,
    std::int64_t entry_cap, std::int64_t cap, bool waited,
    CacheLookupOutcome* outcome) {
  const double original_seconds = fetched.stats.seconds;
  // Like Preload: this process spent nothing synthesizing, so the served
  // result reports zero seconds while the foreign wall-clock lives on in
  // original_seconds for the savings accounting.
  fetched.stats.seconds = 0.0;
  std::unique_lock<std::mutex> lock(mu_);
  Entry entry;
  entry.result =
      std::make_shared<const core::SynthesisResult>(std::move(fetched));
  entry.original_seconds = original_seconds;
  entry.max_programs = entry_cap;
  // owner_tenant stays kNoTenant: the entry was synthesized by a foreign
  // process, not by any tenant of this one.
  Entry& published = PublishLocked(base, std::move(entry));
  ++stats_.hits;
  ++stats_.remote_hits;
  stats_.seconds_saved += original_seconds;
  if (waited) ++stats_.dedup_waits;
  const bool subsumed =
      cap < static_cast<std::int64_t>(published.result->programs.size());
  if (subsumed) ++stats_.subsumed_hits;
  if (outcome != nullptr) {
    *outcome = CacheLookupOutcome{};
    outcome->hit = true;
    outcome->from_remote = true;
    outcome->subsumed = subsumed;
    outcome->waited = waited;
    outcome->seconds_saved = original_seconds;
  }
  auto result = published.result;
  // Settle the flight we claimed before consulting the plane: parked
  // waiters and deferred continuations are served from the adopted entry.
  SettleFlight(lock, base);
  if (!subsumed) return result;
  auto truncated = std::make_shared<core::SynthesisResult>();
  truncated->stats = result->stats;
  truncated->programs.assign(
      result->programs.begin(),
      result->programs.begin() + static_cast<std::ptrdiff_t>(cap));
  return truncated;
}

std::shared_ptr<const core::SynthesisResult> SynthesisCache::FetchRemoteOwned(
    const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options,
    CacheLookupOutcome* outcome) {
  std::shared_ptr<RemoteCacheBackend> remote;
  {
    std::unique_lock<std::mutex> lock(mu_);
    remote = remote_;
  }
  if (remote == nullptr) return nullptr;
  const std::string base = BaseKey(sh, options);
  const std::int64_t cap = std::max<std::int64_t>(0, options.max_programs);
  core::SynthesisResult fetched;
  std::int64_t entry_cap = 0;
  if (!ConsultRemote(*remote, base, options, &fetched, &entry_cap)) {
    return nullptr;
  }
  return AdoptRemoteHit(base, std::move(fetched), entry_cap, cap,
                        /*waited=*/false, outcome);
}

std::shared_ptr<const core::SynthesisResult> SynthesisCache::ServeHitLocked(
    std::unique_lock<std::mutex>& lock, Entry& entry, std::int64_t cap,
    std::int64_t tenant, bool waited, CacheLookupOutcome* outcome) {
  TouchLocked(entry);
  ++stats_.hits;
  stats_.seconds_saved += entry.original_seconds;
  if (entry.from_disk) {
    ++stats_.disk_hits;
    stats_.disk_seconds_saved += entry.original_seconds;
  }
  if (waited) ++stats_.dedup_waits;
  const bool cross_tenant = entry.owner_tenant != kNoTenant &&
                            tenant != kNoTenant && entry.owner_tenant != tenant;
  if (cross_tenant) ++stats_.cross_tenant_hits;
  const bool subsumed =
      cap < static_cast<std::int64_t>(entry.result->programs.size());
  if (subsumed) ++stats_.subsumed_hits;
  if (outcome != nullptr) {
    outcome->hit = true;
    outcome->from_disk = entry.from_disk;
    outcome->subsumed = subsumed;
    outcome->waited = waited;
    outcome->cross_tenant = cross_tenant;
    outcome->seconds_saved = entry.original_seconds;
  }
  auto result = entry.result;
  // The truncation copies up to `cap` programs — do it outside the lock,
  // off the snapshotted shared_ptr, so concurrent lookups on other
  // signatures never stall behind it. Truncating to a smaller cap is
  // exact: the entry's program list is the smallest-first prefix of the
  // full solution set, so its own prefix is precisely what a fresh
  // synthesis under `cap` would return. The stats (and the counterfactual
  // seconds) stay those of the run that produced the entry, like any other
  // hit.
  lock.unlock();
  if (!subsumed) return result;
  auto truncated = std::make_shared<core::SynthesisResult>();
  truncated->stats = result->stats;
  truncated->programs.assign(
      result->programs.begin(),
      result->programs.begin() + static_cast<std::ptrdiff_t>(cap));
  return truncated;
}

void SynthesisCache::SettleFlight(std::unique_lock<std::mutex>& lock,
                                  const std::string& base) {
  const auto fit = inflight_.find(base);
  const std::shared_ptr<InFlight> flight = fit->second;
  std::vector<InFlight::Continuation> continuations =
      std::move(flight->continuations);
  stats_.continuations_fired += static_cast<std::int64_t>(continuations.size());
  inflight_.erase(fit);
  lock.unlock();
  // Parked waiters first (they re-lock mu_ themselves), then the deferred
  // ones' continuations — all outside every lock, so a continuation is free
  // to call straight back into the cache or into a ThreadPool group.
  flight->MarkDone();
  for (InFlight::Continuation& continuation : continuations) continuation.fn();
}

SynthesisCache::TryLookupResult SynthesisCache::TryLookup(
    const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options,
    std::function<void()> on_resolved, DeferredLookup* deferred,
    CacheLookupOutcome* outcome, std::int64_t tenant) {
  if (outcome != nullptr) *outcome = CacheLookupOutcome{};
  const std::string base = BaseKey(sh, options);
  const std::int64_t cap = std::max<std::int64_t>(0, options.max_programs);

  TryLookupResult r;
  std::unique_lock<std::mutex> lock(mu_);
  // A retry after a deferral releases its reservation here — under the same
  // lock acquisition as the lookup below, so eviction (which also needs the
  // lock) cannot squeeze between the release and the read. This mirrors
  // GetOrSynthesize's post-wake release_reservation() exactly.
  if (deferred->active_) {
    deferred->active_ = false;
    const auto rit = reserved_.find(deferred->base_);
    if (--rit->second == 0) reserved_.erase(rit);
  }
  const auto it = entries_.find(base);
  if (it != entries_.end() && it->second.CanServe(cap)) {
    r.state = TryLookupState::kReady;
    r.result = ServeHitLocked(lock, it->second, cap, tenant,
                              /*waited=*/false, outcome);
    return r;
  }
  const auto fit = inflight_.find(base);
  if (fit != inflight_.end()) {
    // Defer: reserve the base (the published entry must survive until our
    // retry reads it — the same immunity a parked waiter holds) and
    // register the continuation under the tag CancelDeferred withdraws by.
    ++reserved_[base];
    deferred->active_ = true;
    deferred->base_ = base;
    deferred->id_ = next_continuation_id_++;
    fit->second->continuations.push_back(
        InFlight::Continuation{deferred->id_, std::move(on_resolved)});
    ++stats_.deferred_lookups;
    r.state = TryLookupState::kInFlight;
    return r;
  }
  // Claim the flight: the caller is now the owner every concurrent lookup
  // of this base parks or defers behind, until CompleteOwned/AbandonOwned.
  inflight_.emplace(base, std::make_shared<InFlight>());
  r.state = TryLookupState::kOwned;
  return r;
}

void SynthesisCache::CompleteOwned(
    const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options,
    std::shared_ptr<const core::SynthesisResult> result, std::int64_t tenant) {
  const std::string base = BaseKey(sh, options);
  const std::int64_t cap = std::max<std::int64_t>(0, options.max_programs);
  const std::shared_ptr<const core::SynthesisResult> completed = result;
  std::unique_lock<std::mutex> lock(mu_);
  const std::shared_ptr<RemoteCacheBackend> remote = remote_;
  Entry entry;
  entry.result = std::move(result);
  entry.original_seconds = entry.result->stats.seconds;
  entry.max_programs = cap;
  entry.owner_tenant = tenant;
  PublishLocked(base, std::move(entry));
  ++stats_.misses;
  SettleFlight(lock, base);
  // Publish to the remote plane after settling, exactly like the
  // GetOrSynthesize owner path: local waiters never stall behind the wire,
  // and a failed publish only loses cross-worker reuse of this entry.
  if (remote != nullptr &&
      !remote->Publish(
          base + std::string(kCapMarker) + std::to_string(cap), *completed)) {
    std::unique_lock<std::mutex> relock(mu_);
    ++stats_.remote_errors;
  }
}

void SynthesisCache::AbandonOwned(const core::SynthesisHierarchy& sh,
                                  const core::SynthesisOptions& options) {
  const std::string base = BaseKey(sh, options);
  std::unique_lock<std::mutex> lock(mu_);
  SettleFlight(lock, base);
}

void SynthesisCache::CancelDeferred(DeferredLookup* deferred) {
  if (deferred == nullptr || !deferred->active_) return;
  std::unique_lock<std::mutex> lock(mu_);
  deferred->active_ = false;
  const auto rit = reserved_.find(deferred->base_);
  if (--rit->second == 0) reserved_.erase(rit);
  // Withdraw the continuation if the flight still holds it. The flight may
  // already be a *successor* (our owner settled, extracting our
  // continuation, and someone re-claimed the base) — ids are never reused,
  // so the scan simply finds nothing and the extracted continuation fires
  // late as the caller's fire-once no-op.
  const auto fit = inflight_.find(deferred->base_);
  if (fit != inflight_.end()) {
    auto& continuations = fit->second->continuations;
    for (auto it = continuations.begin(); it != continuations.end(); ++it) {
      if (it->id == deferred->id_) {
        continuations.erase(it);
        break;
      }
    }
  }
}

bool SynthesisCache::LookupByKey(const std::string& base_key, std::int64_t cap,
                                 std::string* key,
                                 core::SynthesisResult* result,
                                 bool* in_flight) {
  const std::int64_t clamped = std::max<std::int64_t>(0, cap);
  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight != nullptr) {
    *in_flight = inflight_.find(base_key) != inflight_.end();
  }
  const auto it = entries_.find(base_key);
  if (it == entries_.end() || !it->second.CanServe(clamped)) return false;
  TouchLocked(it->second);
  *key = base_key + std::string(kCapMarker) +
         std::to_string(it->second.max_programs);
  *result = *it->second.result;
  // The wire carries the original synthesis wall-clock (like Snapshot), so
  // the adopting worker's seconds-saved accounting spans processes.
  result->stats.seconds = it->second.original_seconds;
  return true;
}

bool SynthesisCache::PublishByKey(const std::string& key,
                                  core::SynthesisResult result) {
  std::string base;
  std::int64_t cap = 0;
  if (!ParseCapFromKey(key, &base, &cap)) {
    // Same conservative fallback as Preload for a non-Key-shaped key.
    base = key;
    cap = static_cast<std::int64_t>(result.programs.size());
  }
  const double original_seconds = result.stats.seconds;
  const bool incoming_complete =
      static_cast<std::int64_t>(result.programs.size()) < cap;
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = entries_.find(base);
  // Keep the existing entry when it subsumes the incoming one: it serves
  // every cap the incoming entry could (complete, or at least as large a
  // truncated prefix). Out-of-order publishes from racing workers are
  // harmless either way — both are prefixes of the same ordered list.
  if (it != entries_.end() &&
      (it->second.complete() ||
       (!incoming_complete && it->second.max_programs >= cap))) {
    return false;
  }
  result.stats.seconds = 0.0;
  Entry entry;
  entry.result =
      std::make_shared<const core::SynthesisResult>(std::move(result));
  entry.original_seconds = original_seconds;
  entry.max_programs = cap;
  PublishLocked(base, std::move(entry));
  return true;
}

std::int64_t SynthesisCache::Preload(
    std::vector<std::pair<std::string, core::SynthesisResult>> entries) {
  std::unique_lock<std::mutex> lock(mu_);
  std::int64_t inserted = 0;
  for (auto& [key, result] : entries) {
    std::string base;
    std::int64_t cap = 0;
    if (!ParseCapFromKey(key, &base, &cap)) {
      // Not a Key()-shaped key (foreign writer): assume the entry holds
      // exactly its program count, so it serves caps up to that count and
      // never fabricates completeness.
      base = key;
      cap = static_cast<std::int64_t>(result.programs.size());
    }
    if (entries_.find(base) != entries_.end()) continue;
    const double original_seconds = result.stats.seconds;
    // Served results report zero synthesis time: this process never ran the
    // search. The original wall-clock lives on in Entry::original_seconds
    // for the savings accounting and for re-persisting.
    result.stats.seconds = 0.0;
    Entry entry;
    entry.result =
        std::make_shared<const core::SynthesisResult>(std::move(result));
    entry.original_seconds = original_seconds;
    entry.from_disk = true;
    entry.max_programs = cap;
    PublishLocked(base, std::move(entry));
    ++inserted;
  }
  return inserted;
}

std::vector<std::pair<std::string, core::SynthesisResult>>
SynthesisCache::Snapshot() const {
  std::vector<std::pair<std::string, core::SynthesisResult>> snapshot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    snapshot.reserve(entries_.size());
    for (const auto& [base, entry] : entries_) {
      core::SynthesisResult result = *entry.result;
      result.stats.seconds = entry.original_seconds;
      snapshot.emplace_back(base + std::string(kCapMarker) +
                                std::to_string(entry.max_programs),
                            std::move(result));
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snapshot;
}

SynthesisCacheStats SynthesisCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SynthesisCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

void SynthesisCache::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_ = SynthesisCacheStats{};
}

}  // namespace p2::engine
