#include "engine/synthesis_cache.h"

#include <algorithm>
#include <utility>

namespace p2::engine {

std::string SynthesisCache::Key(const core::SynthesisHierarchy& sh,
                                const core::SynthesisOptions& options) {
  // Every SynthesisOptions field that can change the program list must
  // appear in the key, or two pipelines with different options would
  // silently share program sets. `threads` is deliberately excluded: the
  // transposition search's output and stats are identical at any thread
  // count (tests/synth_differential_test.cc proves it), so caching per
  // thread count would only split the cache. The assert fires when a field
  // is added without revisiting this function.
  static_assert(sizeof(core::SynthesisOptions) ==
                    2 * sizeof(std::int64_t),  // int max_program_size
                                               // + int threads (excluded)
                                               // + int64 max_programs
                "new SynthesisOptions field? include it in the cache key");
  return sh.Signature() + ";size<=" + std::to_string(options.max_program_size) +
         ";cap=" + std::to_string(options.max_programs);
}

std::shared_ptr<const core::SynthesisResult> SynthesisCache::GetOrSynthesize(
    const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options) {
  const std::string key = Key(sh, options);
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      stats_.seconds_saved += it->second.original_seconds;
      if (it->second.from_disk) {
        ++stats_.disk_hits;
        stats_.disk_seconds_saved += it->second.original_seconds;
      }
      return it->second.result;
    }
  }
  auto result =
      std::make_shared<const core::SynthesisResult>(SynthesizePrograms(sh, options));
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A concurrent miss on the same signature may have beaten us to the
    // insert (try_emplace keeps the winner); either way we synthesized — the
    // programs are identical — so this call is a miss and no re-synthesis
    // was avoided.
    const double seconds = result->stats.seconds;
    const auto it =
        entries_.try_emplace(key, Entry{std::move(result), seconds, false})
            .first;
    ++stats_.misses;
    return it->second.result;
  }
}

std::int64_t SynthesisCache::Preload(
    std::vector<std::pair<std::string, core::SynthesisResult>> entries) {
  std::unique_lock<std::mutex> lock(mu_);
  std::int64_t inserted = 0;
  for (auto& [key, result] : entries) {
    const double original_seconds = result.stats.seconds;
    // Served results report zero synthesis time: this process never ran the
    // search. The original wall-clock lives on in Entry::original_seconds
    // for the savings accounting and for re-persisting.
    result.stats.seconds = 0.0;
    auto shared =
        std::make_shared<const core::SynthesisResult>(std::move(result));
    if (entries_
            .try_emplace(std::move(key),
                         Entry{std::move(shared), original_seconds, true})
            .second) {
      ++inserted;
    }
  }
  return inserted;
}

std::vector<std::pair<std::string, core::SynthesisResult>>
SynthesisCache::Snapshot() const {
  std::vector<std::pair<std::string, core::SynthesisResult>> snapshot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    snapshot.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) {
      core::SynthesisResult result = *entry.result;
      result.stats.seconds = entry.original_seconds;
      snapshot.emplace_back(key, std::move(result));
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snapshot;
}

SynthesisCacheStats SynthesisCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SynthesisCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

void SynthesisCache::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = SynthesisCacheStats{};
}

}  // namespace p2::engine
