#include "engine/synthesis_cache.h"

#include <utility>

namespace p2::engine {

std::string SynthesisCache::Key(const core::SynthesisHierarchy& sh,
                                const core::SynthesisOptions& options) {
  // Every SynthesisOptions field that can change the program list must
  // appear in the key, or two pipelines with different options would
  // silently share program sets. `threads` is deliberately excluded: the
  // transposition search's output and stats are identical at any thread
  // count (tests/synth_differential_test.cc proves it), so caching per
  // thread count would only split the cache. The assert fires when a field
  // is added without revisiting this function.
  static_assert(sizeof(core::SynthesisOptions) ==
                    2 * sizeof(std::int64_t),  // int max_program_size
                                               // + int threads (excluded)
                                               // + int64 max_programs
                "new SynthesisOptions field? include it in the cache key");
  return sh.Signature() + ";size<=" + std::to_string(options.max_program_size) +
         ";cap=" + std::to_string(options.max_programs);
}

std::shared_ptr<const core::SynthesisResult> SynthesisCache::GetOrSynthesize(
    const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options) {
  const std::string key = Key(sh, options);
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      stats_.seconds_saved += it->second->stats.seconds;
      return it->second;
    }
  }
  auto result =
      std::make_shared<const core::SynthesisResult>(SynthesizePrograms(sh, options));
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A concurrent miss on the same signature may have beaten us to the
    // insert (try_emplace keeps the winner); either way we synthesized — the
    // programs are identical — so this call is a miss and no re-synthesis
    // was avoided.
    const auto it = entries_.try_emplace(key, std::move(result)).first;
    ++stats_.misses;
    return it->second;
  }
}

SynthesisCacheStats SynthesisCache::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SynthesisCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return entries_.size();
}

void SynthesisCache::Clear() {
  std::unique_lock<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = SynthesisCacheStats{};
}

}  // namespace p2::engine
