// The remote cache plane: an abstract backend the SynthesisCache consults on
// a local miss before synthesizing, and publishes completions to. This is
// what makes sharded grid execution (tools/p2_shard) win: the per-signature
// program search is embarrassingly parallel across worker *processes* except
// for the memoization plane, so the memoization plane becomes a service —
// one worker synthesizes a signature, every other worker fetches it.
//
// The contract mirrors the in-process in-flight dedup over the wire:
//
//   kHit          the plane holds an entry that serves the requested cap;
//                 `key`/`result` carry it (the key embeds the cap the entry
//                 was synthesized under, exactly the persisted encoding of
//                 engine/cache_store.h)
//   kOwned        the plane granted THIS caller the synthesis: no other
//                 worker will be granted the same base key until the grant
//                 expires or a matching publish lands — synthesize locally
//                 and Publish() the completion
//   kRetryAfter   a foreign worker holds the grant (or a local synthesis is
//                 in flight on the serving process); retry the lookup after
//                 `retry_after_ms` — two workers never synthesize one
//                 signature
//   kUnavailable  the plane cannot be reached; the caller degrades to
//                 local-only synthesis (counted as a `remote_errors` stat,
//                 never an exception — connection loss must not crash or
//                 wedge a worker)
//
// Implementations must never throw from Lookup/Publish and must be safe to
// call concurrently (src/server/remote_cache_client.{h,cc} is the framed-TCP
// implementation against a `p2_server --cache-server`).
#ifndef P2_ENGINE_REMOTE_CACHE_H_
#define P2_ENGINE_REMOTE_CACHE_H_

#include <cstdint>
#include <string>

#include "core/synthesizer.h"

namespace p2::engine {

struct RemoteLookupResult {
  enum class Kind {
    kHit,
    kOwned,
    kRetryAfter,
    kUnavailable,
  };
  Kind kind = Kind::kUnavailable;
  /// For kRetryAfter: how long the plane suggests waiting before the next
  /// lookup (bounded by the server's ownership-grant TTL).
  int retry_after_ms = 0;
  /// For kHit: the entry's persisted cache key (SynthesisCache::Key form,
  /// base + ";cap=N") and the synthesis result it maps to. The result's
  /// stats.seconds is the *original* synthesis wall-clock on whichever
  /// worker ran it, so seconds-saved accounting spans processes.
  std::string key;
  core::SynthesisResult result;
};

class RemoteCacheBackend {
 public:
  virtual ~RemoteCacheBackend() = default;

  /// Looks `base_key` up on the plane for a query capped at `cap` programs.
  /// Never throws; failures are kUnavailable.
  virtual RemoteLookupResult Lookup(const std::string& base_key,
                                    std::int64_t cap) = 0;

  /// Publishes a completed synthesis under its persisted cache key. Returns
  /// false (never throws) when the plane could not be reached or rejected
  /// the entry; the local cache keeps serving either way.
  virtual bool Publish(const std::string& key,
                       const core::SynthesisResult& result) = 0;
};

}  // namespace p2::engine

#endif  // P2_ENGINE_REMOTE_CACHE_H_
