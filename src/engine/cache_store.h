// Persistent on-disk layer for the SynthesisCache: a versioned, portable
// binary codec for (signature key -> SynthesisResult) entries plus an atomic
// load/save protocol, so repeated planning runs — the "serving millions of
// users" pattern of the ROADMAP — skip synthesis entirely for hierarchies any
// previous process has seen.
//
// File format (all integers little-endian, doubles as IEEE-754 bit patterns):
//
//   header:  magic "P2SC" (4 bytes) | format version u32 | entry count u64
//   entry:   payload length u32 | FNV-1a-64 checksum of the payload u64
//            | payload
//   payload: key length u32 | key bytes
//            | SynthesisStats (5 x i64 counters, alphabet i32, seconds f64)
//            | program count u32
//            | per program: instruction count u32
//            | per instruction: slice i32 | form kind u8 | ancestor i32
//                               | collective u8
//            | saved-at unix seconds u64   (v2; absent in v1 files)
//
// Version compatibility: this build writes version 2 and reads versions 1
// and 2. A v1 entry carries no save stamp and decodes with
// saved_unix_seconds == 0 ("unknown age"); a zero stamp is never expired —
// the TTL policy only prunes entries whose staleness it can prove — and is
// replaced with the save time on the next rewrite. A version above 2 loads
// as kBadVersion (cold, and Save refuses to overwrite).
//
// TTL policy (optional): set_ttl_seconds(ttl > 0) makes LoadInto skip
// entries whose stamp is older than ttl at load time, counting them in
// entries_expired(); the next Save then rewrites the file without them.
// Surviving entries keep their original stamp across save/load cycles, so
// an entry's age is measured from when it was first persisted, not from the
// last rewrite.
//
// Corruption policy: a mismatched magic or version, a truncated header or
// entry, a failed checksum, a malformed payload, or trailing bytes all load
// as a *cold* cache — CacheFileContents carries the reason, the caller warns,
// and planning proceeds by re-synthesizing. Loading never throws and never
// aborts. A missing file is a normal cold start, not an error. Decoding also
// validates payload *semantics*, not just framing: every instruction's slice
// and ancestor levels are bounded against the hierarchy depth recovered from
// the entry's signature key, so even a checksum-valid file from a buggy or
// malicious writer can never feed the lowering path a program it would
// throw on.
//
// Save protocol: the whole file is rewritten through a temp file in the same
// directory followed by std::filesystem::rename, which is atomic on POSIX —
// concurrent planners sharing one cache file observe either the old or the
// new contents, never a torn write. Entries are key-sorted before encoding,
// so equal caches produce byte-identical files. Merge semantics across
// processes are last-writer-wins over the union each writer loaded.
#ifndef P2_ENGINE_CACHE_STORE_H_
#define P2_ENGINE_CACHE_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/synthesizer.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {

enum class CacheLoadStatus {
  kNotConfigured,     ///< no cache file was configured
  kNoFile,            ///< file absent: a normal cold start
  kOk,                ///< entries decoded and verified
  kBadMagic,          ///< not a P2 synthesis-cache file
  kBadVersion,        ///< written by an incompatible format version
  kTruncated,         ///< header or entry cut short (includes an empty file)
  kChecksumMismatch,  ///< an entry's payload failed its checksum
  kBadPayload,        ///< framing/checksum fine but the payload is malformed
  kIoError,           ///< the file exists but could not be read
};

const char* ToString(CacheLoadStatus status);

/// True for the statuses that mean "the file existed but was unusable" — the
/// caller should warn; kOk / kNoFile / kNotConfigured are normal operation.
bool IsCorrupt(CacheLoadStatus status);

/// One decoded (or to-be-encoded) cache-file entry.
struct CacheFileEntry {
  std::string key;  ///< SynthesisCache::Key of the hierarchy + options
  core::SynthesisResult result;
  /// When the entry was first persisted (unix seconds); 0 = unknown (v1
  /// files), which the TTL policy treats as never expired.
  std::uint64_t saved_unix_seconds = 0;
};

/// The outcome of decoding a cache file. `entries` is populated only when
/// status == kOk; every corruption falls back to an empty (cold) entry list.
struct CacheFileContents {
  CacheLoadStatus status = CacheLoadStatus::kNoFile;
  std::string message;  ///< human-readable detail for warnings
  std::vector<CacheFileEntry> entries;
};

class CacheStore {
 public:
  /// The version this build writes; reads back to kMinFormatVersion.
  static constexpr std::uint32_t kFormatVersion = 2;
  static constexpr std::uint32_t kMinFormatVersion = 1;
  static constexpr char kMagic[4] = {'P', '2', 'S', 'C'};

  explicit CacheStore(std::string path);

  const std::string& path() const { return path_; }

  /// TTL for persisted entries (see the file comment); <= 0 (the default)
  /// disables expiry. Takes effect at the next LoadInto.
  void set_ttl_seconds(std::int64_t ttl_seconds) { ttl_seconds_ = ttl_seconds; }
  std::int64_t ttl_seconds() const { return ttl_seconds_; }

  /// Overrides the unix-seconds clock the TTL policy and Save stamps use
  /// (deterministic tests); nullptr restores the system clock.
  void set_clock_for_test(std::function<std::uint64_t()> clock) {
    clock_ = std::move(clock);
  }

  /// Reads and decodes the file; never throws (see the corruption policy).
  CacheFileContents Load() const;

  /// Load() + SynthesisCache::Preload, recording the outcome in the
  /// accessors below. On any corruption the cache is left cold.
  CacheLoadStatus LoadInto(SynthesisCache* cache);

  /// Atomically rewrites the file with a key-sorted snapshot of `cache`
  /// (write-temp + rename). On IO failure returns false, fills `error` if
  /// non-null, and leaves any existing file untouched. Refuses (false) when
  /// this store's last load ended in kIoError or kBadVersion: such files
  /// may hold an intact cache (unreadable here, or written by a newer
  /// binary) that a rewrite would destroy; genuinely corrupt files are
  /// overwritten — that is the recovery path.
  bool Save(const SynthesisCache& cache, std::string* error = nullptr);

  CacheLoadStatus last_load_status() const { return last_load_status_; }
  const std::string& last_load_message() const { return last_load_message_; }
  std::int64_t entries_loaded() const { return entries_loaded_; }
  std::int64_t entries_saved() const { return entries_saved_; }
  /// Entries the last LoadInto pruned as older than the TTL.
  std::int64_t entries_expired() const { return entries_expired_; }

  // --- codec building blocks (exposed for the round-trip test suite) ------

  /// Encodes one entry's payload (no framing/checksum — that is file-level).
  static std::string EncodeEntry(const CacheFileEntry& entry);
  /// Decodes one payload; false on any malformation (nothing is thrown).
  static bool DecodeEntry(std::string_view payload, CacheFileEntry* entry);
  /// Encodes a whole file image: header + framed, checksummed entries.
  static std::string EncodeFile(const std::vector<CacheFileEntry>& entries);
  /// Decodes a whole file image (the pure-function core of Load()).
  static CacheFileContents DecodeFile(std::string_view bytes);

 private:
  /// The TTL clock: the injected override, else system unix seconds.
  std::uint64_t NowUnixSeconds() const;

  std::string path_;
  std::int64_t ttl_seconds_ = 0;
  std::function<std::uint64_t()> clock_;
  CacheLoadStatus last_load_status_ = CacheLoadStatus::kNotConfigured;
  std::string last_load_message_;
  std::int64_t entries_loaded_ = 0;
  std::int64_t entries_saved_ = 0;
  std::int64_t entries_expired_ = 0;
  /// Save stamps of the entries the last LoadInto kept, so a rewrite
  /// preserves each survivor's original persist time (new keys are stamped
  /// with the save time).
  std::unordered_map<std::string, std::uint64_t> loaded_stamps_;
};

}  // namespace p2::engine

#endif  // P2_ENGINE_CACHE_STORE_H_
