// The long-lived planning service (the ROADMAP's "batch/async planning
// service", multi-tenant since ISSUE 5): one process-wide owner of
// everything P2's interactive workflow shares across queries — for any
// number of clusters.
//
//   PlannerService
//     ├─ engine registry     tenants keyed by the canonical
//     │                      topology::Cluster::Fingerprint() (plus an
//     │                      engine-options digest): one lazily-constructed
//     │                      Engine per distinct machine, built exactly once
//     │                      even when requests race on a new fingerprint
//     │                      (same in-flight-dedup pattern as the cache)
//     ├─ SynthesisCache      ONE per process, shared by every tenant: the
//     │                      hierarchy signature is cluster-independent, so
//     │                      tenants with different machines but overlapping
//     │                      reduction factorizations dedup against each
//     │                      other (cross_tenant_hits), with in-flight
//     │                      synthesis dedup and an optional LRU entry cap
//     ├─ ThreadPool          one shared worker pool; concurrent requests'
//     │                      work items interleave fairly (round-robin per
//     │                      TaskGroup), no per-query thread spawning
//     └─ CacheStore          optional warm-start/persistence of the cache
//                            (a file written by a single-cluster run warms
//                            every tenant of a multi-tenant service)
//
//   Pipeline (engine/pipeline.h) is the stateless per-query executor that
//   borrows cache + pool from the service and evaluates on the engine the
//   request's cluster resolves to.
//
// Two entry points: Submit(PlanRequest) returns a std::future immediately
// and runs the request as pool tasks (requests overlap: their placements
// are decomposed into work items scheduled round-robin across requests),
// while Plan(...) blocks. A request names its cluster via
// PlanRequest::cluster; without one it goes to the service's *default
// tenant* (the engine the compatibility constructor registered), so
// single-cluster call sites keep working unchanged. Either way a request's
// placements are merged in placement order, so its ExperimentResult is
// byte-identical to the same request on a dedicated single-cluster service
// — at any thread count, under any submission order, and regardless of
// which other tenants are in flight (modulo wall-clock fields and
// cache-attribution counters; the program lists, predictions and
// measurements never change).
#ifndef P2_ENGINE_SERVICE_H_
#define P2_ENGINE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "engine/cache_store.h"
#include "engine/engine.h"
#include "engine/synthesis_cache.h"
#include "topology/cluster.h"

namespace p2::engine {

struct PlannerServiceOptions {
  /// Worker threads of the shared pool; <= 1 runs every request inline on
  /// the submitting thread (Submit still returns a — ready — future).
  int threads = 1;
  /// Path of a persistent synthesis-cache file (engine/cache_store.h). The
  /// service loads it at construction — corrupted or version-mismatched
  /// files fall back to a cold cache, never a crash — and SaveCache()
  /// atomically rewrites it with the merged in-memory entries. Empty
  /// disables persistence.
  std::string cache_file;
  /// With cache_file set: load only. SaveCache() becomes a no-op, so the
  /// file is never created or modified.
  bool cache_readonly = false;
  /// LRU cap on the shared synthesis cache: at most this many entries are
  /// kept, least-recently-used evicted first (stats().cache.evictions).
  /// <= 0 (the default) is unbounded. Eviction never changes results —
  /// an evicted signature is simply re-synthesized on its next miss.
  std::int64_t cache_max_entries = 0;
  /// EngineOptions for engines the service constructs itself for
  /// request-supplied clusters. The compatibility constructor overwrites
  /// this with the borrowed engine's options, so requests naming a cluster
  /// evaluate under the same knobs as the default tenant.
  EngineOptions engine;
};

/// One planning query: evaluate every placement of `axes` on the engine of
/// `cluster` (or of the service's default tenant), reducing over
/// `reduction_axes`.
struct PlanRequest {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  /// < 0: measure every program iff the engine's options say so. >= 0:
  /// simulator-guided evaluation — predict everything, measure only the
  /// default AllReduce plus the top-k programs by prediction.
  int measure_top_k = -1;
  /// Memoize synthesis in the service's shared cache. Off re-synthesizes
  /// per placement like the original monolith (the bench's baseline); a
  /// service with a cache_file forces it on for its requests.
  bool cache_synthesis = true;
  /// Tenant selector: the machine to plan for. The service resolves it to
  /// an engine through the registry (constructing one on a new
  /// fingerprint), so one service serves any number of clusters. Without
  /// it the request goes to the default tenant; a request with neither a
  /// cluster nor a default tenant fails (std::invalid_argument through the
  /// future).
  std::optional<topology::Cluster> cluster;
};

/// Per-tenant figures: one row per registered engine, in registration
/// order. The cache split across tenants is attribution-approximate the
/// same way per-request PipelineStats are — for a signature two tenants
/// share, whichever request arrives first takes the miss. On a quiescent
/// service (every submitted request completed) the sums across tenants
/// match the service-wide cache totals; while requests are in flight the
/// cache counters run ahead of the tenant rows, which only accumulate at
/// request completion.
struct TenantStats {
  /// Registration order, monotonically increasing from 0 and never reused —
  /// a registration whose engine construction failed burns its id, so a gap
  /// can appear but two tenants can never share one (the id doubles as the
  /// cache's cross-tenant attribution tag).
  std::int64_t id = 0;
  std::string fingerprint;        ///< topology::Cluster::Fingerprint()
  std::string cluster;            ///< human-readable Cluster::ToString()
  std::int64_t requests = 0;      ///< completed requests (not submitted)
  std::int64_t placements = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Hits served by entries another tenant's query synthesized — the
  /// cross-cluster sharing a multi-tenant service exists for.
  std::int64_t cache_cross_tenant_hits = 0;
  std::int64_t cache_disk_hits = 0;
  double synthesis_seconds_saved = 0.0;
};

/// Service-wide figures, aggregated exactly once per service — unlike the
/// per-request PipelineStats, which under concurrency can only attribute
/// cache activity approximately (whichever request got there first takes
/// the miss). cache_entries_loaded in particular is a property of the
/// service's one-time preload: summing it per experiment (as the stats of
/// sequential multi-config runs once invited) double-counts it.
struct PlannerServiceStats {
  std::int64_t requests = 0;  ///< queries submitted so far
  std::int64_t cache_entries_loaded = 0;
  /// Engines actually constructed by the registry (excludes the borrowed
  /// default engine of the compatibility constructor); requests racing on
  /// one new fingerprint construct exactly one.
  std::int64_t engines_constructed = 0;
  SynthesisCacheStats cache;  ///< shared-cache totals across all requests
  int threads = 1;
  std::vector<TenantStats> tenants;  ///< registration order
};

class PlannerService {
 public:
  /// A multi-tenant service with no default tenant: every request must name
  /// its cluster. A non-empty cache_file is loaded here; see
  /// cache_load_status() for how that went.
  explicit PlannerService(PlannerServiceOptions options = {});
  /// Compatibility constructor: registers `engine` (borrowed — it must
  /// outlive the service) as the default tenant, so requests without a
  /// cluster keep working, and adopts its EngineOptions for
  /// request-supplied clusters.
  explicit PlannerService(const Engine& engine,
                          PlannerServiceOptions options = {});
  /// Drains every outstanding Submit()ted request, then joins the pool.
  ~PlannerService();

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  const PlannerServiceOptions& options() const { return options_; }
  /// The process-wide signature cache shared by every request.
  SynthesisCache& cache() { return cache_; }
  const SynthesisCache& cache() const { return cache_; }
  /// The shared worker pool (per-query executors borrow it via TaskGroups).
  ThreadPool& pool() { return pool_; }

  /// Resolves `cluster` to its tenant engine, registering it (and
  /// constructing the Engine, exactly once even under races) if the
  /// fingerprint is new. The reference stays valid for the service's
  /// lifetime — tenants are never evicted.
  const Engine& EngineFor(const topology::Cluster& cluster);
  /// The default tenant's engine, or nullptr when the service was built
  /// without one.
  const Engine* default_engine() const;

  /// Enqueues a request and returns immediately. The request runs as tasks
  /// on the shared pool, interleaved fairly with other in-flight requests;
  /// the future carries its ExperimentResult (or the first exception its
  /// evaluation threw, including the tenant-resolution failure of a request
  /// with neither a cluster nor a default tenant). With threads <= 1 the
  /// request runs synchronously here and the future is already ready.
  std::future<ExperimentResult> Submit(PlanRequest request);

  /// Blocking single query (Submit + get).
  ExperimentResult Plan(PlanRequest request);
  /// Compatibility overload: plans on the default tenant.
  ExperimentResult Plan(std::span<const std::int64_t> axes,
                        std::span<const int> reduction_axes);

  /// How the cache-file load at construction went: kNotConfigured without a
  /// cache_file, kNoFile on a cold start, kOk, or a corruption status (the
  /// service still runs — cold — but callers should surface a warning).
  CacheLoadStatus cache_load_status() const;
  /// Human-readable detail behind cache_load_status() (for warnings).
  const std::string& cache_load_message() const;
  /// Entries preloaded from the cache file at construction.
  std::int64_t cache_entries_loaded() const;

  /// Atomically rewrites options().cache_file with the merged cache (entries
  /// loaded from disk plus everything synthesized since). A no-op returning
  /// true when persistence is unconfigured or cache_readonly is set; returns
  /// false and fills `error` only on an IO failure.
  bool SaveCache(std::string* error = nullptr);

  /// Once-per-service aggregates (see PlannerServiceStats).
  PlannerServiceStats stats() const;

 private:
  /// One registered engine. `engine` is null while a request is
  /// constructing it; `built` is the future such racers wait on.
  struct Tenant {
    std::int64_t id = 0;
    std::string fingerprint;
    topology::Cluster cluster;
    std::shared_ptr<const Engine> engine;
    std::shared_future<void> built;
    TenantStats stats;  ///< guarded by tenants_mu_
  };

  /// Creates and publishes a fresh Tenant record under `key` (tenants_mu_
  /// held); the caller fills in `engine` or `built` before releasing the
  /// lock.
  Tenant& RegisterTenantLocked(const std::string& key,
                               const topology::Cluster& cluster);
  /// Registry lookup/registration with construct-once semantics; throws
  /// whatever Engine's constructor throws (after withdrawing the tenant).
  Tenant& ResolveTenant(const topology::Cluster& cluster);
  /// Registers an already-built engine (borrowed or owned).
  Tenant& AdoptTenant(const topology::Cluster& cluster,
                      const EngineOptions& engine_options,
                      std::shared_ptr<const Engine> engine);
  /// The tenant a request addresses (default tenant when it has no
  /// cluster); throws std::invalid_argument when there is neither.
  Tenant& TenantForRequest(const PlanRequest& request);
  /// Folds a finished request's pipeline stats into its tenant's row.
  void AccumulateTenantStats(Tenant& tenant, const ExperimentResult& result);

  PlannerServiceOptions options_;
  SynthesisCache cache_;
  std::optional<CacheStore> store_;
  ThreadPool pool_;
  std::atomic<std::int64_t> requests_{0};

  mutable std::mutex tenants_mu_;
  /// Registration-ordered tenant records; unique_ptr so Tenant& stays
  /// stable across registry growth.
  std::vector<std::unique_ptr<Tenant>> tenants_;
  /// Fingerprint + engine-options digest -> tenant. The options digest
  /// keeps two tenants with one machine but different evaluation knobs
  /// (algo, payload, synthesis caps) from silently sharing an engine.
  std::unordered_map<std::string, Tenant*> tenant_by_key_;
  Tenant* default_tenant_ = nullptr;
  std::int64_t engines_constructed_ = 0;
  /// Monotonic id source (never tenants_.size(): a withdrawn failed
  /// registration would let two live tenants share an id, corrupting the
  /// cache's cross-tenant attribution).
  std::int64_t next_tenant_id_ = 0;

  /// The orchestration tasks of Submit()ted requests. Declared last: its
  /// destructor drains them while the registry, cache_ and pool_ are still
  /// alive.
  ThreadPool::TaskGroup request_tasks_{pool_};
};

}  // namespace p2::engine

#endif  // P2_ENGINE_SERVICE_H_
