// The long-lived planning service (the ROADMAP's "batch/async planning
// service"): one process-wide owner of everything P2's interactive workflow
// shares across queries.
//
//   PlannerService
//     ├─ SynthesisCache      one per process: every query's placements dedup
//     │                      against every other query's, with in-flight
//     │                      synthesis dedup so two queries racing on the
//     │                      same uncached hierarchy synthesize it once
//     ├─ ThreadPool          one shared worker pool; concurrent requests'
//     │                      work items interleave fairly (round-robin per
//     │                      TaskGroup), no per-query thread spawning
//     └─ CacheStore          optional warm-start/persistence of the cache
//
//   Pipeline (engine/pipeline.h) is the stateless per-query executor that
//   borrows cache + pool from the service.
//
// Two entry points: Submit(PlanRequest) returns a std::future immediately
// and runs the request as pool tasks (requests overlap: their placements
// are decomposed into work items scheduled round-robin across requests),
// while Plan(...) blocks. Either way a request's placements are merged in
// placement order, so its ExperimentResult is byte-identical to a serial
// run regardless of thread count or what else is in flight (modulo
// wall-clock fields and cache-attribution counters; the program lists,
// predictions and measurements never change).
#ifndef P2_ENGINE_SERVICE_H_
#define P2_ENGINE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/cache_store.h"
#include "engine/engine.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {

struct PlannerServiceOptions {
  /// Worker threads of the shared pool; <= 1 runs every request inline on
  /// the submitting thread (Submit still returns a — ready — future).
  int threads = 1;
  /// Path of a persistent synthesis-cache file (engine/cache_store.h). The
  /// service loads it at construction — corrupted or version-mismatched
  /// files fall back to a cold cache, never a crash — and SaveCache()
  /// atomically rewrites it with the merged in-memory entries. Empty
  /// disables persistence.
  std::string cache_file;
  /// With cache_file set: load only. SaveCache() becomes a no-op, so the
  /// file is never created or modified.
  bool cache_readonly = false;
};

/// One planning query: evaluate every placement of `axes` on the service's
/// engine, reducing over `reduction_axes`.
struct PlanRequest {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  /// < 0: measure every program iff the engine's options say so. >= 0:
  /// simulator-guided evaluation — predict everything, measure only the
  /// default AllReduce plus the top-k programs by prediction.
  int measure_top_k = -1;
  /// Memoize synthesis in the service's shared cache. Off re-synthesizes
  /// per placement like the original monolith (the bench's baseline); a
  /// service with a cache_file forces it on for its requests.
  bool cache_synthesis = true;
};

/// Service-wide figures, aggregated exactly once per service — unlike the
/// per-request PipelineStats, which under concurrency can only attribute
/// cache activity approximately (whichever request got there first takes
/// the miss). cache_entries_loaded in particular is a property of the
/// service's one-time preload: summing it per experiment (as the stats of
/// sequential multi-config runs once invited) double-counts it.
struct PlannerServiceStats {
  std::int64_t requests = 0;  ///< queries submitted so far
  std::int64_t cache_entries_loaded = 0;
  SynthesisCacheStats cache;  ///< shared-cache totals across all requests
  int threads = 1;
};

class PlannerService {
 public:
  /// The engine must outlive the service. A non-empty cache_file is loaded
  /// here; see cache_load_status() for how that went.
  explicit PlannerService(const Engine& engine,
                          PlannerServiceOptions options = {});
  /// Drains every outstanding Submit()ted request, then joins the pool.
  ~PlannerService();

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  const Engine& engine() const { return engine_; }
  const PlannerServiceOptions& options() const { return options_; }
  /// The process-wide signature cache shared by every request.
  SynthesisCache& cache() { return cache_; }
  const SynthesisCache& cache() const { return cache_; }
  /// The shared worker pool (per-query executors borrow it via TaskGroups).
  ThreadPool& pool() { return pool_; }

  /// Enqueues a request and returns immediately. The request runs as tasks
  /// on the shared pool, interleaved fairly with other in-flight requests;
  /// the future carries its ExperimentResult (or the first exception its
  /// evaluation threw). With threads <= 1 the request runs synchronously
  /// here and the future is already ready.
  std::future<ExperimentResult> Submit(PlanRequest request);

  /// Blocking single query (Submit + get).
  ExperimentResult Plan(PlanRequest request);
  ExperimentResult Plan(std::span<const std::int64_t> axes,
                        std::span<const int> reduction_axes);

  /// How the cache-file load at construction went: kNotConfigured without a
  /// cache_file, kNoFile on a cold start, kOk, or a corruption status (the
  /// service still runs — cold — but callers should surface a warning).
  CacheLoadStatus cache_load_status() const;
  /// Human-readable detail behind cache_load_status() (for warnings).
  const std::string& cache_load_message() const;
  /// Entries preloaded from the cache file at construction.
  std::int64_t cache_entries_loaded() const;

  /// Atomically rewrites options().cache_file with the merged cache (entries
  /// loaded from disk plus everything synthesized since). A no-op returning
  /// true when persistence is unconfigured or cache_readonly is set; returns
  /// false and fills `error` only on an IO failure.
  bool SaveCache(std::string* error = nullptr);

  /// Once-per-service aggregates (see PlannerServiceStats).
  PlannerServiceStats stats() const;

 private:
  const Engine& engine_;
  PlannerServiceOptions options_;
  SynthesisCache cache_;
  std::optional<CacheStore> store_;
  ThreadPool pool_;
  std::atomic<std::int64_t> requests_{0};
  /// The orchestration tasks of Submit()ted requests. Declared last: its
  /// destructor drains them while cache_ and pool_ are still alive.
  ThreadPool::TaskGroup request_tasks_{pool_};
};

}  // namespace p2::engine

#endif  // P2_ENGINE_SERVICE_H_
