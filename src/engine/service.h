// The long-lived planning service (the ROADMAP's "batch/async planning
// service", multi-tenant since ISSUE 5): one process-wide owner of
// everything P2's interactive workflow shares across queries — for any
// number of clusters.
//
//   PlannerService
//     ├─ engine registry     tenants keyed by the canonical
//     │                      topology::Cluster::Fingerprint() (plus an
//     │                      engine-options digest): one lazily-constructed
//     │                      Engine per distinct machine, built exactly once
//     │                      even when requests race on a new fingerprint
//     │                      (same in-flight-dedup pattern as the cache)
//     ├─ SynthesisCache      ONE per process, shared by every tenant: the
//     │                      hierarchy signature is cluster-independent, so
//     │                      tenants with different machines but overlapping
//     │                      reduction factorizations dedup against each
//     │                      other (cross_tenant_hits), with in-flight
//     │                      synthesis dedup and an optional LRU entry cap
//     ├─ ThreadPool          one shared worker pool; concurrent requests'
//     │                      work items interleave fairly (round-robin per
//     │                      TaskGroup), no per-query thread spawning
//     └─ CacheStore          optional warm-start/persistence of the cache
//                            (a file written by a single-cluster run warms
//                            every tenant of a multi-tenant service)
//
//   Pipeline (engine/pipeline.h) is the stateless per-query executor that
//   borrows cache + pool from the service and evaluates on the engine the
//   request's cluster resolves to.
//
// Two entry points: Submit(PlanRequest) returns a std::future immediately
// and runs the request as pool tasks (requests overlap: their placements
// are decomposed into work items scheduled round-robin across requests),
// while Plan(...) blocks. A request names its cluster via
// PlanRequest::cluster; without one it goes to the service's *default
// tenant* (the engine the compatibility constructor registered), so
// single-cluster call sites keep working unchanged. Either way a request's
// placements are merged in placement order, so its ExperimentResult is
// byte-identical to the same request on a dedicated single-cluster service
// — at any thread count, under any submission order, and regardless of
// which other tenants are in flight (modulo wall-clock fields and
// cache-attribution counters; the program lists, predictions and
// measurements never change).
#ifndef P2_ENGINE_SERVICE_H_
#define P2_ENGINE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/histogram.h"
#include "common/thread_pool.h"
#include "engine/cache_store.h"
#include "engine/engine.h"
#include "engine/synthesis_cache.h"
#include "topology/cluster.h"

namespace p2::engine {

// The service's abort taxonomy (the README's "Robustness contract"). A
// request's future completes with exactly one of these when it does not
// complete with a result:
//
//   PlanRejected          refused at Submit — admission cap hit or the
//                         service is draining; no work was started
//   PlanCancelled         PlanHandle::Cancel() (or a drain grace deadline)
//                         aborted it mid-flight
//   PlanDeadlineExceeded  its PlanRequest::deadline passed mid-flight
//
// The latter two are the common cancellation errors (common/cancel.h) under
// service-level names; catch RequestAborted to handle both. Cancellation is
// cooperative and never perturbs other requests: a surviving request's
// result is byte-identical whether or not co-tenants were cancelled.
using PlanCancelled = CancelledError;
using PlanDeadlineExceeded = DeadlineExceededError;

/// The submission was refused before any work started (admission control or
/// drain). Deliberately *not* a RequestAborted: nothing was in flight.
class PlanRejected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// How a plan request ended, as a closed enum — the abort taxonomy above
/// flattened for callers that speak status codes instead of exception
/// types (the wire front end in src/server/ maps these 1:1 onto its
/// gRPC-style statuses).
enum class PlanOutcome {
  kOk = 0,
  kRejected,          ///< PlanRejected: admission cap or drain
  kCancelled,         ///< PlanCancelled: explicit cancel / drain grace
  kDeadlineExceeded,  ///< PlanDeadlineExceeded
  kInvalidArgument,   ///< std::invalid_argument: a malformed request
  kInternal,          ///< anything else the evaluation threw
};

const char* ToString(PlanOutcome outcome);

/// Classifies the exception a PlanHandle future carried (nullptr -> kOk).
/// The inverse of the taxonomy: every exception type the service documents
/// maps to its own outcome, everything unexpected to kInternal.
PlanOutcome ClassifyPlanError(std::exception_ptr error);

struct PlannerServiceOptions {
  /// Worker threads of the shared pool; <= 1 runs every request inline on
  /// the submitting thread (Submit still returns a — ready — future).
  int threads = 1;
  /// Path of a persistent synthesis-cache file (engine/cache_store.h). The
  /// service loads it at construction — corrupted or version-mismatched
  /// files fall back to a cold cache, never a crash — and SaveCache()
  /// atomically rewrites it with the merged in-memory entries. Empty
  /// disables persistence.
  std::string cache_file;
  /// With cache_file set: load only. SaveCache() becomes a no-op, so the
  /// file is never created or modified.
  bool cache_readonly = false;
  /// LRU cap on the shared synthesis cache: at most this many entries are
  /// kept, least-recently-used evicted first (stats().cache.evictions).
  /// <= 0 (the default) is unbounded. Eviction never changes results —
  /// an evicted signature is simply re-synthesized on its next miss.
  std::int64_t cache_max_entries = 0;
  /// With cache_file set: prune entries older than this many seconds at
  /// load time (engine/cache_store.h's TTL policy;
  /// stats().cache_entries_expired counts them). <= 0 (the default) keeps
  /// every entry forever.
  std::int64_t cache_ttl_seconds = 0;
  /// The remote cache plane (engine/remote_cache.h): attached to the shared
  /// SynthesisCache at construction, so every local miss consults a cache
  /// server before synthesizing and completions are published back —
  /// sharded workers (tools/p2_shard) dedup synthesis across processes.
  /// nullptr (the default) is local-only.
  std::shared_ptr<RemoteCacheBackend> remote_cache;
  /// EngineOptions for engines the service constructs itself for
  /// request-supplied clusters. The compatibility constructor overwrites
  /// this with the borrowed engine's options, so requests naming a cluster
  /// evaluate under the same knobs as the default tenant.
  EngineOptions engine;
  /// Admission cap on concurrently in-flight requests service-wide; a
  /// Submit beyond it fails fast with PlanRejected through the returned
  /// handle (no silent queuing — the cap bounds the pool's pending queue).
  /// <= 0 (the default) is unbounded.
  std::int64_t max_in_flight = 0;
  /// The same cap per tenant, so one misbehaving tenant exhausts its own
  /// budget instead of the whole service's. <= 0 is unbounded.
  std::int64_t max_in_flight_per_tenant = 0;
  /// Grace the *destructor's* implicit drain gives in-flight requests
  /// before cancelling them (see BeginDrain); nullopt (the default) waits
  /// for them indefinitely, like the pre-drain destructor always did.
  std::optional<std::chrono::milliseconds> drain_grace;
  /// Defer instead of park when a request's synthesis signature is already
  /// in flight under another request (PipelineOptions::defer_inflight): the
  /// worker re-enqueues that work through a cache continuation and runs
  /// other pending tasks meanwhile, keeping every pool thread productive —
  /// the tail-latency lever for contended traffic (stats().cache
  /// waiter_parks stays 0; deferred_lookups counts the deferrals). Off
  /// restores the parked-waiter scheduler. Results are byte-identical
  /// either way.
  bool defer_inflight = true;
};

/// One planning query: evaluate every placement of `axes` on the engine of
/// `cluster` (or of the service's default tenant), reducing over
/// `reduction_axes`.
struct PlanRequest {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  /// < 0: measure every program iff the engine's options say so. >= 0:
  /// simulator-guided evaluation — predict everything, measure only the
  /// default AllReduce plus the top-k programs by prediction.
  int measure_top_k = -1;
  /// Memoize synthesis in the service's shared cache. Off re-synthesizes
  /// per placement like the original monolith (the bench's baseline); a
  /// service with a cache_file forces it on for its requests.
  bool cache_synthesis = true;
  /// Tenant selector: the machine to plan for. The service resolves it to
  /// an engine through the registry (constructing one on a new
  /// fingerprint), so one service serves any number of clusters. Without
  /// it the request goes to the default tenant; a request with neither a
  /// cluster nor a default tenant fails (std::invalid_argument through the
  /// future).
  std::optional<topology::Cluster> cluster;
  /// Deadline relative to Submit(): once it passes, the request aborts at
  /// its next cancellation checkpoint and its future carries
  /// PlanDeadlineExceeded. nullopt (the default) never expires.
  std::optional<std::chrono::milliseconds> deadline;
  /// > 0: cap the synthesized program list per hierarchy at this many
  /// programs instead of the service's engine default — what a wire client
  /// tunes per request. The override is part of the tenant identity (the
  /// options digest includes the cap), so it requires PlanRequest::cluster;
  /// an override without a cluster fails with std::invalid_argument.
  /// <= 0 (the default) keeps the engine's configured cap.
  std::int64_t max_programs = 0;
};

/// The future-like handle Submit returns: the result channel plus the
/// request's cancellation lever. Cancel() is cooperative — the request
/// observes it at its next checkpoint, releases its pool slots, and
/// completes the future with PlanCancelled; a request that already finished
/// is unaffected. The handle may outlive the service (the destructor drains
/// in-flight requests first), and get()/wait() mirror std::future.
class PlanHandle {
 public:
  PlanHandle() = default;

  /// Blocks for the result; rethrows PlanRejected / PlanCancelled /
  /// PlanDeadlineExceeded or the request's own failure. Consumes the state,
  /// like std::future::get.
  ExperimentResult get() { return future_.get(); }
  void wait() const { future_.wait(); }
  template <class Rep, class Period>
  std::future_status wait_for(
      const std::chrono::duration<Rep, Period>& timeout) const {
    return future_.wait_for(timeout);
  }
  bool valid() const { return future_.valid(); }

  /// Requests cooperative cancellation (idempotent, any thread). A request
  /// whose deadline already fired keeps PlanDeadlineExceeded — the first
  /// abort reason wins.
  void Cancel() { source_.Cancel(); }

 private:
  friend class PlannerService;
  PlanHandle(std::future<ExperimentResult> future, CancelSource source)
      : future_(std::move(future)), source_(std::move(source)) {}

  std::future<ExperimentResult> future_;
  CancelSource source_;
};

/// Per-tenant figures: one row per registered engine, in registration
/// order. The cache split across tenants is attribution-approximate the
/// same way per-request PipelineStats are — for a signature two tenants
/// share, whichever request arrives first takes the miss. On a quiescent
/// service (every submitted request completed) the sums across tenants
/// match the service-wide cache totals; while requests are in flight the
/// cache counters run ahead of the tenant rows, which only accumulate at
/// request completion.
struct TenantStats {
  /// Registration order, monotonically increasing from 0 and never reused
  /// or shared (the id doubles as the cache's cross-tenant attribution
  /// tag). A tenant record survives a failed engine construction — its
  /// admission counters persist and the next request on the fingerprint
  /// retries the construction under the same id.
  std::int64_t id = 0;
  std::string fingerprint;        ///< topology::Cluster::Fingerprint()
  std::string cluster;            ///< human-readable Cluster::ToString()
  std::int64_t requests = 0;      ///< completed requests (not submitted)
  std::int64_t placements = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Hits served by entries another tenant's query synthesized — the
  /// cross-cluster sharing a multi-tenant service exists for.
  std::int64_t cache_cross_tenant_hits = 0;
  std::int64_t cache_disk_hits = 0;
  double synthesis_seconds_saved = 0.0;
  // Robustness counters (the service's abort taxonomy, see the top of this
  // header): how this tenant's submissions ended other than successfully.
  std::int64_t rejected = 0;           ///< failed admission (PlanRejected)
  std::int64_t cancelled = 0;          ///< aborted via Cancel()/drain
  std::int64_t deadline_exceeded = 0;  ///< aborted by their deadline
  /// High-water mark of this tenant's concurrently in-flight requests.
  std::int64_t peak_in_flight = 0;
};

/// Service-wide figures, aggregated exactly once per service — unlike the
/// per-request PipelineStats, which under concurrency can only attribute
/// cache activity approximately (whichever request got there first takes
/// the miss). cache_entries_loaded in particular is a property of the
/// service's one-time preload: summing it per experiment (as the stats of
/// sequential multi-config runs once invited) double-counts it.
struct PlannerServiceStats {
  std::int64_t requests = 0;  ///< queries submitted so far
  std::int64_t cache_entries_loaded = 0;
  /// Entries the cache-file load pruned as older than
  /// PlannerServiceOptions::cache_ttl_seconds.
  std::int64_t cache_entries_expired = 0;
  /// Engines actually constructed by the registry (excludes the borrowed
  /// default engine of the compatibility constructor); requests racing on
  /// one new fingerprint construct exactly one.
  std::int64_t engines_constructed = 0;
  SynthesisCacheStats cache;  ///< shared-cache totals across all requests
  int threads = 1;
  // Service-wide robustness totals (across all tenants, including requests
  // rejected before any tenant attribution was possible).
  std::int64_t rejected = 0;
  std::int64_t cancelled = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t peak_in_flight = 0;  ///< high-water mark of in-flight requests
  /// SaveCache failures so far — including the drain-time save, whose error
  /// return nobody is left to read (BeginDrain is also the destructor's
  /// path); on a server this counter is the only way the operator learns
  /// the cache stopped persisting.
  std::int64_t save_errors = 0;
  std::string last_save_error;  ///< detail of the most recent failure
  /// Submit→completion latency of finished requests — successful or aborted
  /// mid-flight; rejected submissions never started and are excluded — from
  /// a fixed log2-bucket histogram (common/histogram.h): the percentiles
  /// report their bucket's upper bound, so rendering is deterministic for a
  /// given set of counts. All zero until the first request finishes.
  std::int64_t latency_count = 0;
  double latency_p50_seconds = 0.0;
  double latency_p95_seconds = 0.0;
  double latency_p99_seconds = 0.0;
  std::vector<TenantStats> tenants;  ///< registration order
};

class PlannerService {
 public:
  /// A multi-tenant service with no default tenant: every request must name
  /// its cluster. A non-empty cache_file is loaded here; see
  /// cache_load_status() for how that went.
  explicit PlannerService(PlannerServiceOptions options = {});
  /// Compatibility constructor: registers `engine` (borrowed — it must
  /// outlive the service) as the default tenant, so requests without a
  /// cluster keep working, and adopts its EngineOptions for
  /// request-supplied clusters.
  explicit PlannerService(const Engine& engine,
                          PlannerServiceOptions options = {});
  /// Drains through BeginDrain(options().drain_grace) — waits for (or,
  /// after the grace, cancels) every outstanding Submit()ted request and
  /// persists the cache — then joins the pool.
  ~PlannerService();

  PlannerService(const PlannerService&) = delete;
  PlannerService& operator=(const PlannerService&) = delete;

  const PlannerServiceOptions& options() const { return options_; }
  /// The process-wide signature cache shared by every request.
  SynthesisCache& cache() { return cache_; }
  const SynthesisCache& cache() const { return cache_; }
  /// The shared worker pool (per-query executors borrow it via TaskGroups).
  ThreadPool& pool() { return pool_; }

  /// Resolves `cluster` to its tenant engine, registering it (and
  /// constructing the Engine, exactly once even under races) if the
  /// fingerprint is new. The reference stays valid for the service's
  /// lifetime — tenants are never evicted.
  const Engine& EngineFor(const topology::Cluster& cluster);
  /// The default tenant's engine, or nullptr when the service was built
  /// without one.
  const Engine* default_engine() const;

  /// Enqueues a request and returns immediately. The request runs as tasks
  /// on the shared pool, interleaved fairly with other in-flight requests;
  /// the handle's future carries its ExperimentResult (or the first
  /// exception its evaluation threw, including the tenant-resolution
  /// failure of a request with neither a cluster nor a default tenant).
  /// Admission control applies here: beyond max_in_flight (service-wide or
  /// per-tenant) or once draining, the handle is already failed with
  /// PlanRejected and no work starts. A PlanRequest::deadline starts
  /// counting now. With threads <= 1 the request runs synchronously here
  /// and the handle is already ready.
  PlanHandle Submit(PlanRequest request);

  /// Graceful shutdown, reusable and idempotent: new submissions are
  /// rejected (PlanRejected) from this call on; in-flight requests run to
  /// completion — or, when `grace` is set and expires first, are
  /// cooperatively cancelled (their futures carry PlanCancelled) and then
  /// still waited for; finally the cache is persisted (SaveCache — a no-op
  /// without a cache_file or under cache_readonly). The destructor drains
  /// through this with options().drain_grace.
  void BeginDrain(
      std::optional<std::chrono::milliseconds> grace = std::nullopt);
  /// True once BeginDrain ran: every later Submit is rejected.
  bool draining() const;

  /// Blocking single query (Submit + get).
  ExperimentResult Plan(PlanRequest request);
  /// Compatibility overload: plans on the default tenant.
  ExperimentResult Plan(std::span<const std::int64_t> axes,
                        std::span<const int> reduction_axes);

  /// How the cache-file load at construction went: kNotConfigured without a
  /// cache_file, kNoFile on a cold start, kOk, or a corruption status (the
  /// service still runs — cold — but callers should surface a warning).
  CacheLoadStatus cache_load_status() const;
  /// Human-readable detail behind cache_load_status() (for warnings).
  const std::string& cache_load_message() const;
  /// Entries preloaded from the cache file at construction.
  std::int64_t cache_entries_loaded() const;

  /// Atomically rewrites options().cache_file with the merged cache (entries
  /// loaded from disk plus everything synthesized since). A no-op returning
  /// true when persistence is unconfigured or cache_readonly is set; returns
  /// false and fills `error` only on an IO failure.
  bool SaveCache(std::string* error = nullptr);

  /// Cache-plane pass-throughs for the wire cache server
  /// (src/server/planner_server.h): SynthesisCache::LookupByKey /
  /// PublishByKey on the shared cache, so wire workers, local plans and the
  /// persistent cache file all share one memoization plane.
  bool CacheLookupEntry(const std::string& base_key, std::int64_t cap,
                        std::string* key, core::SynthesisResult* result,
                        bool* in_flight);
  void CachePublishEntry(const std::string& key, core::SynthesisResult result);

  /// Once-per-service aggregates (see PlannerServiceStats).
  PlannerServiceStats stats() const;

 private:
  /// One registered engine. `engine` is null until a request constructs it
  /// (admission registers engine-less records so rejections are
  /// attributable); `built`, when valid, is the future racers wait on while
  /// one of them runs the construction.
  struct Tenant {
    std::int64_t id = 0;
    std::string fingerprint;
    topology::Cluster cluster;
    std::shared_ptr<const Engine> engine;
    std::shared_future<void> built;
    TenantStats stats;  ///< guarded by tenants_mu_
    /// This tenant's currently in-flight requests (guarded by tenants_mu_;
    /// transient, unlike the high-water mark in stats).
    std::int64_t in_flight = 0;
  };

  /// Creates and publishes a fresh Tenant record under `key` (tenants_mu_
  /// held); the caller fills in `engine` or `built` before releasing the
  /// lock.
  Tenant& RegisterTenantLocked(const std::string& key,
                               const topology::Cluster& cluster);
  /// Registry lookup/registration with construct-once semantics; throws
  /// whatever Engine's constructor throws (after withdrawing the tenant).
  /// `engine_options` is part of the tenant identity — a request-level
  /// max_programs override resolves to its own tenant.
  Tenant& ResolveTenant(const topology::Cluster& cluster,
                        const EngineOptions& engine_options);
  /// The service's EngineOptions with the request's per-request overrides
  /// (max_programs) applied.
  EngineOptions EffectiveEngineOptions(const PlanRequest& request) const;
  /// Registers an already-built engine (borrowed or owned).
  Tenant& AdoptTenant(const topology::Cluster& cluster,
                      const EngineOptions& engine_options,
                      std::shared_ptr<const Engine> engine);
  /// The tenant a request addresses (default tenant when it has no
  /// cluster); throws std::invalid_argument when there is neither.
  Tenant& TenantForRequest(const PlanRequest& request);
  /// The tenant *record* a request will be attributed to, registering an
  /// engine-less one on a new fingerprint (tenants_mu_ held). The Submit
  /// path needs the record for admission before any engine exists; the
  /// request task later resolves/constructs the engine into it. Throws
  /// std::invalid_argument for a request with neither cluster nor default.
  Tenant& AdmitTenantLocked(const PlanRequest& request);
  /// Books completion of in-flight request `id` (admission bookkeeping,
  /// abort classification from `error`, submit→complete latency measured
  /// from `submitted`, drain wake-up).
  void FinishRequest(std::int64_t id, Tenant& tenant, std::exception_ptr error,
                     std::chrono::steady_clock::time_point submitted);
  /// Folds a finished request's pipeline stats into its tenant's row.
  void AccumulateTenantStats(Tenant& tenant, const ExperimentResult& result);

  PlannerServiceOptions options_;
  SynthesisCache cache_;
  std::optional<CacheStore> store_;
  ThreadPool pool_;
  std::atomic<std::int64_t> requests_{0};

  mutable std::mutex tenants_mu_;
  /// Registration-ordered tenant records; unique_ptr so Tenant& stays
  /// stable across registry growth.
  std::vector<std::unique_ptr<Tenant>> tenants_;
  /// Fingerprint + engine-options digest -> tenant. The options digest
  /// keeps two tenants with one machine but different evaluation knobs
  /// (algo, payload, synthesis caps) from silently sharing an engine.
  std::unordered_map<std::string, Tenant*> tenant_by_key_;
  Tenant* default_tenant_ = nullptr;
  std::int64_t engines_constructed_ = 0;
  /// Monotonic id source (never tenants_.size(), so ids are stable however
  /// the registry is grown — the id is the cache's cross-tenant
  /// attribution tag and must never be shared).
  std::int64_t next_tenant_id_ = 0;

  // Admission / drain state, all guarded by tenants_mu_.
  bool draining_ = false;
  std::int64_t in_flight_ = 0;
  std::int64_t peak_in_flight_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t cancelled_ = 0;
  std::int64_t deadline_exceeded_ = 0;
  std::int64_t save_errors_ = 0;
  std::string last_save_error_;
  std::int64_t next_request_id_ = 0;
  /// Submit→complete latency of finished requests (see
  /// PlannerServiceStats); guarded by tenants_mu_.
  LatencyHistogram latency_;
  /// Cancel levers of in-flight requests, by request id — what a drain
  /// grace deadline fires.
  std::unordered_map<std::int64_t, CancelSource> active_;
  /// Signalled by FinishRequest; BeginDrain waits on it for in_flight_ == 0.
  std::condition_variable drained_cv_;

  /// The orchestration tasks of Submit()ted requests. Declared last: its
  /// destructor drains them while the registry, cache_ and pool_ are still
  /// alive.
  ThreadPool::TaskGroup request_tasks_{pool_};
};

}  // namespace p2::engine

#endif  // P2_ENGINE_SERVICE_H_
