// Multi-reduction placement planning. Models with several parallelism forms
// perform reductions along several axes with different payloads and
// frequencies (paper Section 4.1: "models with multiple parallelism forms
// involve reductions across both axes, and the selection of a mapping should
// take all of them into account"). The planner scores every placement by the
// weighted sum of its best synthesized strategy per reduction demand.
#ifndef P2_ENGINE_PLANNER_H_
#define P2_ENGINE_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"

namespace p2::engine {

/// One recurring reduction of the training step.
struct ReductionDemand {
  std::vector<int> reduction_axes;
  double payload_bytes = 0.0;
  /// How many times the reduction runs per training step (e.g. one
  /// tensor-parallel AllReduce per sharded layer per pass).
  double count_per_step = 1.0;
};

struct DemandPlan {
  double seconds_per_step = 0.0;  ///< count * best program's measured time
  core::Program program;          ///< the chosen strategy
  std::string program_text;
};

struct PlacementPlan {
  core::ParallelismMatrix matrix;
  double total_seconds_per_step = 0.0;
  std::vector<DemandPlan> demands;  ///< one per input demand, same order
};

/// Evaluates every placement of `axes` against all demands and returns the
/// plans sorted by total per-step communication time (best first).
std::vector<PlacementPlan> PlanPlacements(
    const Engine& engine, std::span<const std::int64_t> axes,
    std::span<const ReductionDemand> demands);

}  // namespace p2::engine

#endif  // P2_ENGINE_PLANNER_H_
