#include "engine/cache_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <exception>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"

namespace p2::engine {

namespace {

// FNV-1a 64-bit: tiny, dependency-free, and any single flipped byte changes
// the digest — all this file needs is corruption *detection*, not security.
std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// --- little-endian primitives ---------------------------------------------

void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendI32(std::string* out, std::int32_t v) {
  AppendU32(out, static_cast<std::uint32_t>(v));
}

void AppendI64(std::string* out, std::int64_t v) {
  AppendU64(out, static_cast<std::uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

// Bounds-checked sequential reader over a payload. Every Read* returns false
// on exhaustion instead of reading past the end, so a truncated or lying
// length field can never walk off the buffer.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadI32(std::int32_t* v) {
    std::uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<std::int32_t>(u);
    return true;
  }

  bool ReadI64(std::int64_t* v) {
    std::uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

  bool ReadBytes(std::size_t n, std::string_view* v) {
    if (remaining() < n) return false;
    *v = bytes_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// The entry key always starts with the hierarchy signature
// ("levels:a,b,c;goal:..."), so the depth the entry's programs were
// synthesized against is recoverable from the key itself — which lets the
// decoder bound every slice/ancestor level without trusting the payload.
bool ParseLevelCount(std::string_view key, int* num_levels) {
  constexpr std::string_view kPrefix = "levels:";
  if (key.substr(0, kPrefix.size()) != kPrefix) return false;
  const std::string_view rest = key.substr(kPrefix.size());
  const std::size_t end = rest.find(';');
  if (end == std::string_view::npos || end == 0) return false;
  int count = 1;
  for (std::size_t i = 0; i < end; ++i) {
    const char c = rest[i];
    if (c == ',') {
      ++count;
    } else if (c < '0' || c > '9') {
      return false;
    }
  }
  *num_levels = count;
  return true;
}

bool DecodeInstruction(Reader* r, int num_levels, core::Instruction* instr) {
  std::int32_t slice = 0;
  std::uint8_t form_kind = 0;
  std::int32_t ancestor = 0;
  std::uint8_t op = 0;
  if (!r->ReadI32(&slice) || !r->ReadU8(&form_kind) ||
      !r->ReadI32(&ancestor) || !r->ReadU8(&op)) {
    return false;
  }
  // Semantic validation, not just enum bounds: a checksum-valid payload from
  // a buggy or malicious writer must satisfy every precondition the lowering
  // path (core::DeriveGroups) would otherwise throw on, or the never-crash
  // corruption policy is void.
  if (slice < 0 || slice >= num_levels) return false;
  if (form_kind > static_cast<std::uint8_t>(core::Form::Kind::kMaster)) {
    return false;
  }
  const auto kind = static_cast<core::Form::Kind>(form_kind);
  if (kind == core::Form::Kind::kInsideGroup) {
    if (ancestor != -1) return false;
  } else if (ancestor < 0 || ancestor >= slice) {
    return false;  // Parallel/Master need a strict ancestor of the slice
  }
  if (op >= core::kAllCollectives.size()) return false;
  instr->slice_level = slice;
  instr->form.kind = kind;
  instr->form.ancestor_level = ancestor;
  instr->op = static_cast<core::Collective>(op);
  return true;
}

void EncodeInstruction(std::string* out, const core::Instruction& instr) {
  AppendI32(out, instr.slice_level);
  AppendU8(out, static_cast<std::uint8_t>(instr.form.kind));
  AppendI32(out, instr.form.ancestor_level);
  AppendU8(out, static_cast<std::uint8_t>(instr.op));
}

// Bytes per encoded instruction / minimum bytes per encoded program; used to
// sanity-bound counts before reserving memory for them.
constexpr std::size_t kInstructionBytes = 10;
constexpr std::size_t kMinProgramBytes = 4;
constexpr std::size_t kEntryFrameBytes = 12;   // payload length u32 + checksum u64
constexpr std::size_t kHeaderBytes = 16;       // magic + version u32 + count u64

}  // namespace

const char* ToString(CacheLoadStatus status) {
  switch (status) {
    case CacheLoadStatus::kNotConfigured:
      return "not configured";
    case CacheLoadStatus::kNoFile:
      return "no cache file";
    case CacheLoadStatus::kOk:
      return "ok";
    case CacheLoadStatus::kBadMagic:
      return "bad magic";
    case CacheLoadStatus::kBadVersion:
      return "unsupported format version";
    case CacheLoadStatus::kTruncated:
      return "truncated file";
    case CacheLoadStatus::kChecksumMismatch:
      return "checksum mismatch";
    case CacheLoadStatus::kBadPayload:
      return "malformed payload";
    case CacheLoadStatus::kIoError:
      return "unreadable file";
  }
  return "?";
}

bool IsCorrupt(CacheLoadStatus status) {
  return status != CacheLoadStatus::kOk &&
         status != CacheLoadStatus::kNoFile &&
         status != CacheLoadStatus::kNotConfigured;
}

CacheStore::CacheStore(std::string path) : path_(std::move(path)) {}

std::uint64_t CacheStore::NowUnixSeconds() const {
  if (clock_) return clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string CacheStore::EncodeEntry(const CacheFileEntry& entry) {
  std::string out;
  AppendU32(&out, static_cast<std::uint32_t>(entry.key.size()));
  out += entry.key;
  const core::SynthesisStats& s = entry.result.stats;
  AppendI64(&out, s.instructions_tried);
  AppendI64(&out, s.applications_succeeded);
  AppendI64(&out, s.states_visited);
  AppendI64(&out, s.states_deduped);
  AppendI64(&out, s.branches_pruned);
  AppendI32(&out, s.alphabet_size);
  AppendF64(&out, s.seconds);
  AppendU32(&out, static_cast<std::uint32_t>(entry.result.programs.size()));
  for (const core::Program& p : entry.result.programs) {
    AppendU32(&out, static_cast<std::uint32_t>(p.size()));
    for (const core::Instruction& instr : p) EncodeInstruction(&out, instr);
  }
  // v2 trailer: when the entry was first persisted. Appended last so v1
  // payloads are exactly this encoding minus the trailer.
  AppendU64(&out, entry.saved_unix_seconds);
  return out;
}

bool CacheStore::DecodeEntry(std::string_view payload, CacheFileEntry* entry) {
  Reader r(payload);
  std::uint32_t key_len = 0;
  if (!r.ReadU32(&key_len) || key_len > r.remaining()) return false;
  std::string_view key;
  if (!r.ReadBytes(key_len, &key)) return false;
  entry->key.assign(key);
  int num_levels = 0;
  if (!ParseLevelCount(key, &num_levels)) return false;

  core::SynthesisStats& s = entry->result.stats;
  s = core::SynthesisStats{};
  std::int32_t alphabet = 0;
  if (!r.ReadI64(&s.instructions_tried) ||
      !r.ReadI64(&s.applications_succeeded) || !r.ReadI64(&s.states_visited) ||
      !r.ReadI64(&s.states_deduped) || !r.ReadI64(&s.branches_pruned) ||
      !r.ReadI32(&alphabet) || !r.ReadF64(&s.seconds)) {
    return false;
  }
  s.alphabet_size = alphabet;

  std::uint32_t num_programs = 0;
  if (!r.ReadU32(&num_programs)) return false;
  // Each remaining program costs at least its own count field, so a count
  // larger than remaining/4 is a lie — reject before reserving memory for it.
  if (num_programs > r.remaining() / kMinProgramBytes) return false;
  entry->result.programs.clear();
  entry->result.programs.reserve(num_programs);
  for (std::uint32_t i = 0; i < num_programs; ++i) {
    std::uint32_t num_instructions = 0;
    if (!r.ReadU32(&num_instructions)) return false;
    if (num_instructions > r.remaining() / kInstructionBytes) return false;
    core::Program program;
    program.reserve(num_instructions);
    for (std::uint32_t j = 0; j < num_instructions; ++j) {
      core::Instruction instr;
      if (!DecodeInstruction(&r, num_levels, &instr)) return false;
      program.push_back(instr);
    }
    entry->result.programs.push_back(std::move(program));
  }
  // The save stamp: a v2 trailer, absent from v1 payloads (0 = unknown age,
  // never expired). Anything other than exactly-absent or exactly-one-u64
  // is malformed.
  entry->saved_unix_seconds = 0;
  if (!r.AtEnd() && !r.ReadU64(&entry->saved_unix_seconds)) return false;
  return r.AtEnd();  // trailing bytes inside a payload are malformed too
}

std::string CacheStore::EncodeFile(const std::vector<CacheFileEntry>& entries) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kFormatVersion);
  AppendU64(&out, static_cast<std::uint64_t>(entries.size()));
  for (const CacheFileEntry& entry : entries) {
    const std::string payload = EncodeEntry(entry);
    AppendU32(&out, static_cast<std::uint32_t>(payload.size()));
    AppendU64(&out, Fnv1a64(payload));
    out += payload;
  }
  return out;
}

CacheFileContents CacheStore::DecodeFile(std::string_view bytes) {
  CacheFileContents contents;
  auto fail = [&contents](CacheLoadStatus status, std::string message) {
    contents.status = status;
    contents.message = std::move(message);
    contents.entries.clear();  // every corruption loads as a cold cache
    return contents;
  };

  if (bytes.empty()) return fail(CacheLoadStatus::kTruncated, "empty file");
  if (bytes.size() >= sizeof(kMagic) &&
      bytes.substr(0, sizeof(kMagic)) != std::string_view(kMagic, sizeof(kMagic))) {
    return fail(CacheLoadStatus::kBadMagic,
                "not a P2 synthesis-cache file (bad magic)");
  }
  if (bytes.size() < kHeaderBytes) {
    return fail(CacheLoadStatus::kTruncated,
                "file shorter than the header (" +
                    std::to_string(bytes.size()) + " bytes)");
  }
  Reader r(bytes.substr(sizeof(kMagic)));
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  r.ReadU32(&version);
  r.ReadU64(&count);
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return fail(CacheLoadStatus::kBadVersion,
                "format version " + std::to_string(version) +
                    " (this build reads versions " +
                    std::to_string(kMinFormatVersion) + ".." +
                    std::to_string(kFormatVersion) + ")");
  }
  if (count > r.remaining() / kEntryFrameBytes) {
    return fail(CacheLoadStatus::kTruncated,
                "entry count exceeds the file size");
  }

  contents.entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t payload_len = 0;
    std::uint64_t checksum = 0;
    if (!r.ReadU32(&payload_len) || !r.ReadU64(&checksum)) {
      return fail(CacheLoadStatus::kTruncated,
                  "entry " + std::to_string(i) + " frame cut short");
    }
    std::string_view payload;
    if (!r.ReadBytes(payload_len, &payload)) {
      return fail(CacheLoadStatus::kTruncated,
                  "entry " + std::to_string(i) + " payload cut short");
    }
    if (Fnv1a64(payload) != checksum) {
      return fail(CacheLoadStatus::kChecksumMismatch,
                  "entry " + std::to_string(i) + " failed its checksum");
    }
    CacheFileEntry entry;
    if (!DecodeEntry(payload, &entry)) {
      return fail(CacheLoadStatus::kBadPayload,
                  "entry " + std::to_string(i) + " is malformed");
    }
    contents.entries.push_back(std::move(entry));
  }
  if (!r.AtEnd()) {
    return fail(CacheLoadStatus::kBadPayload,
                std::to_string(r.remaining()) + " trailing bytes after the " +
                    "last entry");
  }
  contents.status = CacheLoadStatus::kOk;
  return contents;
}

CacheFileContents CacheStore::Load() const {
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec)) {
    CacheFileContents contents;
    contents.status = CacheLoadStatus::kNoFile;
    contents.message = "no file at " + path_;
    return contents;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    // Distinct from corruption: the file may be intact but unreadable (e.g.
    // permissions), so the warning must not invite the operator to delete it.
    CacheFileContents contents;
    contents.status = CacheLoadStatus::kIoError;
    contents.message = "cannot open " + path_;
    return contents;
  }
  // One pre-sized read, not stream buffering: a pipeline constructs a store
  // on every startup and cache files grow without eviction, so avoid holding
  // two copies of the image.
  std::error_code size_ec;
  const auto size = std::filesystem::file_size(path_, size_ec);
  std::string bytes;
  if (!size_ec) bytes.resize(size);
  if (size_ec ||
      !in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    CacheFileContents contents;
    contents.status = CacheLoadStatus::kIoError;
    contents.message = "cannot read " + path_;
    return contents;
  }
  return DecodeFile(bytes);
}

CacheLoadStatus CacheStore::LoadInto(SynthesisCache* cache) {
  // Loading never throws (see the header's corruption policy), so an
  // injected fault surfaces as the status an actually-unreadable file
  // would produce — which also makes a later Save() refuse to overwrite.
  try {
    MaybeInjectFault("cache_store.load");
  } catch (const std::exception& e) {
    last_load_status_ = CacheLoadStatus::kIoError;
    last_load_message_ = std::string("injected fault: ") + e.what();
    entries_loaded_ = 0;
    return last_load_status_;
  }
  CacheFileContents contents = Load();
  last_load_status_ = contents.status;
  last_load_message_ = contents.message;
  entries_loaded_ = 0;
  entries_expired_ = 0;
  loaded_stamps_.clear();
  if (contents.status == CacheLoadStatus::kOk) {
    const std::uint64_t now = NowUnixSeconds();
    std::vector<std::pair<std::string, core::SynthesisResult>> entries;
    entries.reserve(contents.entries.size());
    for (CacheFileEntry& entry : contents.entries) {
      // TTL pruning: skip provably-stale entries (a zero stamp has unknown
      // age and is kept — see the file comment). The pruned entries stay in
      // the on-disk file until the next Save rewrites it without them.
      if (ttl_seconds_ > 0 && entry.saved_unix_seconds > 0 &&
          now > entry.saved_unix_seconds &&
          now - entry.saved_unix_seconds >
              static_cast<std::uint64_t>(ttl_seconds_)) {
        ++entries_expired_;
        continue;
      }
      loaded_stamps_.emplace(entry.key, entry.saved_unix_seconds);
      entries.emplace_back(std::move(entry.key), std::move(entry.result));
    }
    entries_loaded_ = cache->Preload(std::move(entries));
  }
  return last_load_status_;
}

bool CacheStore::Save(const SynthesisCache& cache, std::string* error) {
  // Rewriting is recovery for *corruption* (bad magic, truncation, failed
  // checksums): those files carry nothing worth keeping. But an unreadable
  // file may be intact, and a version-mismatched one was written by a newer
  // binary — overwriting either would destroy a cache other runs
  // accumulated, so refuse instead.
  if (last_load_status_ == CacheLoadStatus::kIoError ||
      last_load_status_ == CacheLoadStatus::kBadVersion) {
    if (error != nullptr) {
      *error = "refusing to overwrite " + path_ + ": " +
               ToString(last_load_status_) +
               " on load (the existing cache may be intact)";
    }
    return false;
  }
  // Save must not throw either: it runs inside BeginDrain and so inside the
  // service destructor. An injected fault becomes the false-plus-error
  // return an actual write failure would produce.
  try {
    MaybeInjectFault("cache_store.save");
  } catch (const std::exception& e) {
    if (error != nullptr) {
      *error = std::string("injected fault: ") + e.what();
    }
    return false;
  }
  std::vector<CacheFileEntry> entries;
  const std::uint64_t now = NowUnixSeconds();
  for (auto& [key, result] : cache.Snapshot()) {
    CacheFileEntry entry{std::move(key), std::move(result)};
    // Survivors of the load keep their original persist stamp (age runs
    // from first persistence, not from the last rewrite); new keys — and
    // stampless v1 survivors, whose age becomes known now — are stamped
    // with the save time.
    const auto it = loaded_stamps_.find(entry.key);
    entry.saved_unix_seconds =
        (it != loaded_stamps_.end() && it->second > 0) ? it->second : now;
    entries.push_back(std::move(entry));
  }
  const std::string image = EncodeFile(entries);

  // Write-temp + rename: the rename is atomic on POSIX, so a concurrent
  // planner loading this path sees either the previous file or this one in
  // full — never a torn mix. The temp name carries the pid plus a
  // process-wide counter so no two writers — across processes or across
  // Pipelines/threads within one — ever share a temp file.
  static std::atomic<std::uint64_t> save_counter{0};
  const std::string tmp = path_ + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(save_counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(image.data(),
                           static_cast<std::streamsize>(image.size()))) {
      if (error != nullptr) *error = "cannot write " + tmp;
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " to " + path_ + ": " + ec.message();
    }
    std::filesystem::remove(tmp, ec);
    return false;
  }
  entries_saved_ = static_cast<std::int64_t>(entries.size());
  return true;
}

}  // namespace p2::engine
