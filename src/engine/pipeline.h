// The staged per-query executor behind the planning service
// (engine/service.h) and Engine::RunExperiment:
//
//   enumerate placements -> dedup by synthesis-hierarchy signature
//     -> synthesize once per signature (memoized in the service's shared
//        SynthesisCache, with cross-request in-flight dedup)
//     -> lower / predict / (guided-)measure every placement, in parallel
//     -> merge in placement order
//
// A Pipeline is stateless: it borrows the process-wide cache and worker
// pool from its PlannerService and holds only per-query options, so any
// number of pipelines (one per in-flight request) share synthesis results
// and threads. Placements are independent once their synthesis hierarchies
// are shared, so stages 3-4 run as work items on a ThreadPool::TaskGroup of
// the shared pool — concurrent requests' items interleave fairly — and
// results are written into preallocated slots and merged in enumeration
// order, which makes the parallel output byte-identical to the serial path
// (modulo wall-clock timing fields).
#ifndef P2_ENGINE_PIPELINE_H_
#define P2_ENGINE_PIPELINE_H_

#include <cstdint>
#include <span>

#include "common/cancel.h"
#include "engine/engine.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {

class PlannerService;

/// Per-query knobs. Process-wide concerns — thread count, cache
/// persistence — live in PlannerServiceOptions.
struct PipelineOptions {
  /// Memoize synthesis by hierarchy signature in the service's shared cache
  /// (stage 2/3). Off re-synthesizes per placement like the original
  /// monolith (the bench's baseline).
  bool cache_synthesis = true;
  /// < 0: measure every program iff the engine's options say so (the classic
  /// full-evaluation path). >= 0: simulator-guided evaluation — predict
  /// everything, measure only the default AllReduce plus the top-k programs
  /// by prediction (paper Section 5), early-stopping candidates whose
  /// prediction puts them provably behind the incumbent (see
  /// PlacementEvaluation::guided_skipped).
  int measure_top_k = -1;
  /// The requesting tenant's id (engine/service.h), passed through to the
  /// shared cache so cross-tenant reuse is attributable; kNoTenant for
  /// single-tenant callers.
  std::int64_t tenant = SynthesisCache::kNoTenant;
  /// This request's cooperative-cancellation token (common/cancel.h),
  /// checked between stages and between per-placement work items, and
  /// threaded into the synthesizer's frontier loop. An aborted run throws
  /// CancelledError / DeadlineExceededError out of Run(); work items of
  /// *other* requests sharing the pool are untouched. Null (the default)
  /// never cancels.
  CancelToken cancel;
  /// Defer instead of park on another request's in-flight synthesis: a
  /// signature group owned elsewhere re-enqueues itself through a
  /// SynthesisCache::TryLookup continuation while the worker runs other
  /// pending tasks — other placements, evaluations, even whole queued
  /// requests — so no pool thread ever blocks on a foreign synthesis
  /// (stats: cache_deferred_lookups up, cache_dedup_waits and the
  /// service-wide waiter_parks pinned to 0). Off falls back to the staged
  /// scheduler whose in-flight lookups park on the owner's condition
  /// variable (the tail-latency baseline bench_pipeline's contended
  /// variant measures against). Effective only with cache_synthesis on a
  /// threaded pool; outputs are byte-identical either way.
  bool defer_inflight = true;
};

class Pipeline {
 public:
  /// The service must outlive the pipeline (it supplies the cache and the
  /// pool; typically the service itself constructs one per request, after
  /// resolving `engine` from the request's cluster through the tenant
  /// registry).
  Pipeline(PlannerService& service, const Engine& engine,
           PipelineOptions options = {});

  const PipelineOptions& options() const { return options_; }

  /// Runs the full pipeline over every placement of `axes`. The result's
  /// `pipeline` field carries this run's stage statistics and this
  /// *request's* share of the cache activity (see PipelineStats).
  ExperimentResult Run(std::span<const std::int64_t> axes,
                       std::span<const int> reduction_axes);

  /// Single-placement entry point (stages 3-4 only, inline on the calling
  /// thread); shares the service's cache like any other query.
  PlacementEvaluation EvaluatePlacement(const core::ParallelismMatrix& matrix,
                                        std::span<const int> reduction_axes);

 private:
  PlacementEvaluation Evaluate(const core::ParallelismMatrix& matrix,
                               const core::SynthesisHierarchy& sh,
                               const core::SynthesisResult& synthesis) const;

  PlannerService& service_;
  const Engine& engine_;
  PipelineOptions options_;
};

/// Lowers, predicts and optionally measures one program on the engine's cost
/// model and runtime substrate (the shared per-program evaluation of every
/// pipeline stage and of Engine::EvaluateProgram).
ProgramEvaluation EvaluateProgramOnEngine(const Engine& engine,
                                          const core::SynthesisHierarchy& sh,
                                          const core::Program& program,
                                          bool measure);

}  // namespace p2::engine

#endif  // P2_ENGINE_PIPELINE_H_
