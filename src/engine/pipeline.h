// The staged evaluation pipeline behind Engine::RunExperiment:
//
//   enumerate placements -> dedup by synthesis-hierarchy signature
//     -> synthesize once per signature (memoized in a SynthesisCache)
//     -> lower / predict / (guided-)measure every placement, in parallel
//     -> merge in placement order
//
// Placements are independent once their synthesis hierarchies are shared, so
// stage 4 runs on a common::ThreadPool; results are written into
// preallocated slots and merged in enumeration order, which makes the
// parallel output byte-identical to the serial path (modulo wall-clock
// timing fields). A Pipeline owns its cache, so running several experiments
// through one Pipeline reuses synthesis results across experiments too.
#ifndef P2_ENGINE_PIPELINE_H_
#define P2_ENGINE_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "engine/cache_store.h"
#include "engine/engine.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {

struct PipelineOptions {
  /// Worker threads for the per-placement evaluation stage; <= 1 is serial.
  int threads = 1;
  /// Memoize synthesis by hierarchy signature (stage 2/3). Off re-synthesizes
  /// per placement like the original monolith (the bench's baseline).
  bool cache_synthesis = true;
  /// < 0: measure every program iff the engine's options say so (the classic
  /// full-evaluation path). >= 0: simulator-guided evaluation — predict
  /// everything, measure only the default AllReduce plus the top-k programs
  /// by prediction (paper Section 5).
  int measure_top_k = -1;
  /// Path of a persistent synthesis-cache file (engine/cache_store.h). The
  /// pipeline loads it at construction — corrupted or version-mismatched
  /// files fall back to a cold cache, never a crash — and SaveCache()
  /// atomically rewrites it with the merged in-memory entries. Empty
  /// disables persistence. A non-empty path forces cache_synthesis on:
  /// persistence *is* the signature cache on disk.
  std::string cache_file;
  /// With cache_file set: load only. SaveCache() becomes a no-op, so the
  /// file is never created or modified.
  bool cache_readonly = false;
};

class Pipeline {
 public:
  explicit Pipeline(const Engine& engine, PipelineOptions options = {});

  const Engine& engine() const { return engine_; }
  const PipelineOptions& options() const { return options_; }
  const SynthesisCache& cache() const { return cache_; }

  /// Runs the full pipeline over every placement of `axes`. The result's
  /// `pipeline` field carries this run's stage and cache statistics.
  ExperimentResult Run(std::span<const std::int64_t> axes,
                       std::span<const int> reduction_axes);

  /// Single-placement entry point (stages 3-4 only); shares the cache with
  /// previous calls on this Pipeline.
  PlacementEvaluation EvaluatePlacement(const core::ParallelismMatrix& matrix,
                                        std::span<const int> reduction_axes);

  /// How the cache-file load at construction went: kNotConfigured without a
  /// cache_file, kNoFile on a cold start, kOk, or a corruption status (the
  /// pipeline still runs — cold — but callers should surface a warning).
  CacheLoadStatus cache_load_status() const;
  /// Human-readable detail behind cache_load_status() (for warnings).
  const std::string& cache_load_message() const;
  /// Entries preloaded from the cache file at construction.
  std::int64_t cache_entries_loaded() const;

  /// Atomically rewrites options().cache_file with the merged cache (entries
  /// loaded from disk plus everything synthesized since). A no-op returning
  /// true when persistence is unconfigured or cache_readonly is set; returns
  /// false and fills `error` only on an IO failure.
  bool SaveCache(std::string* error = nullptr);

 private:
  PlacementEvaluation Evaluate(const core::ParallelismMatrix& matrix,
                               const core::SynthesisHierarchy& sh,
                               const core::SynthesisResult& synthesis) const;

  const Engine& engine_;
  PipelineOptions options_;
  SynthesisCache cache_;
  std::optional<CacheStore> store_;
};

/// Lowers, predicts and optionally measures one program on the engine's cost
/// model and runtime substrate (the shared per-program evaluation of every
/// pipeline stage and of Engine::EvaluateProgram).
ProgramEvaluation EvaluateProgramOnEngine(const Engine& engine,
                                          const core::SynthesisHierarchy& sh,
                                          const core::Program& program,
                                          bool measure);

}  // namespace p2::engine

#endif  // P2_ENGINE_PIPELINE_H_
