// The staged evaluation pipeline behind Engine::RunExperiment:
//
//   enumerate placements -> dedup by synthesis-hierarchy signature
//     -> synthesize once per signature (memoized in a SynthesisCache)
//     -> lower / predict / (guided-)measure every placement, in parallel
//     -> merge in placement order
//
// Placements are independent once their synthesis hierarchies are shared, so
// stage 4 runs on a common::ThreadPool; results are written into
// preallocated slots and merged in enumeration order, which makes the
// parallel output byte-identical to the serial path (modulo wall-clock
// timing fields). A Pipeline owns its cache, so running several experiments
// through one Pipeline reuses synthesis results across experiments too.
#ifndef P2_ENGINE_PIPELINE_H_
#define P2_ENGINE_PIPELINE_H_

#include <cstdint>
#include <span>

#include "engine/engine.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {

struct PipelineOptions {
  /// Worker threads for the per-placement evaluation stage; <= 1 is serial.
  int threads = 1;
  /// Memoize synthesis by hierarchy signature (stage 2/3). Off re-synthesizes
  /// per placement like the original monolith (the bench's baseline).
  bool cache_synthesis = true;
  /// < 0: measure every program iff the engine's options say so (the classic
  /// full-evaluation path). >= 0: simulator-guided evaluation — predict
  /// everything, measure only the default AllReduce plus the top-k programs
  /// by prediction (paper Section 5).
  int measure_top_k = -1;
};

class Pipeline {
 public:
  explicit Pipeline(const Engine& engine, PipelineOptions options = {});

  const Engine& engine() const { return engine_; }
  const PipelineOptions& options() const { return options_; }
  const SynthesisCache& cache() const { return cache_; }

  /// Runs the full pipeline over every placement of `axes`. The result's
  /// `pipeline` field carries this run's stage and cache statistics.
  ExperimentResult Run(std::span<const std::int64_t> axes,
                       std::span<const int> reduction_axes);

  /// Single-placement entry point (stages 3-4 only); shares the cache with
  /// previous calls on this Pipeline.
  PlacementEvaluation EvaluatePlacement(const core::ParallelismMatrix& matrix,
                                        std::span<const int> reduction_axes);

 private:
  PlacementEvaluation Evaluate(const core::ParallelismMatrix& matrix,
                               const core::SynthesisHierarchy& sh,
                               const core::SynthesisResult& synthesis) const;

  const Engine& engine_;
  PipelineOptions options_;
  SynthesisCache cache_;
};

/// Lowers, predicts and optionally measures one program on the engine's cost
/// model and runtime substrate (the shared per-program evaluation of every
/// pipeline stage and of Engine::EvaluateProgram).
ProgramEvaluation EvaluateProgramOnEngine(const Engine& engine,
                                          const core::SynthesisHierarchy& sh,
                                          const core::Program& program,
                                          bool measure);

}  // namespace p2::engine

#endif  // P2_ENGINE_PIPELINE_H_
