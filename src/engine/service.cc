#include "engine/service.h"

#include <memory>
#include <utility>

#include "engine/pipeline.h"

namespace p2::engine {

PlannerService::PlannerService(const Engine& engine,
                               PlannerServiceOptions options)
    : engine_(engine),
      options_(std::move(options)),
      pool_(options_.threads) {
  if (!options_.cache_file.empty()) {
    store_.emplace(options_.cache_file);
    // Any corruption leaves the cache cold and the status queryable; the
    // service itself never fails over a bad cache file.
    store_->LoadInto(&cache_);
  }
}

PlannerService::~PlannerService() {
  // request_tasks_ (declared last) drains outstanding requests first; the
  // pool then joins its workers. Nothing to do explicitly.
}

std::future<ExperimentResult> PlannerService::Submit(PlanRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.cache_file.empty()) {
    // Persistence is the signature cache on disk: bypassing it would
    // silently ignore the loaded entries and drop this request's results
    // from the rewrite on save.
    request.cache_synthesis = true;
  }
  // The request runs as a pool task so Submit returns immediately; the
  // pipeline's own work items join the pool through a separate TaskGroup,
  // and the orchestrating task *helps* execute them while waiting (see
  // ThreadPool::TaskGroup::Wait), so request tasks never deadlock the pool
  // they occupy. packaged_task routes the result — or the first exception —
  // into the future.
  auto task = std::make_shared<std::packaged_task<ExperimentResult()>>(
      [this, request = std::move(request)]() {
        Pipeline pipeline(*this,
                          PipelineOptions{
                              .cache_synthesis = request.cache_synthesis,
                              .measure_top_k = request.measure_top_k,
                          });
        return pipeline.Run(request.axes, request.reduction_axes);
      });
  auto future = task->get_future();
  request_tasks_.Submit([task] { (*task)(); });
  return future;
}

ExperimentResult PlannerService::Plan(PlanRequest request) {
  return Submit(std::move(request)).get();
}

ExperimentResult PlannerService::Plan(std::span<const std::int64_t> axes,
                                      std::span<const int> reduction_axes) {
  PlanRequest request;
  request.axes.assign(axes.begin(), axes.end());
  request.reduction_axes.assign(reduction_axes.begin(), reduction_axes.end());
  return Plan(std::move(request));
}

CacheLoadStatus PlannerService::cache_load_status() const {
  return store_.has_value() ? store_->last_load_status()
                            : CacheLoadStatus::kNotConfigured;
}

const std::string& PlannerService::cache_load_message() const {
  static const std::string kEmpty;
  return store_.has_value() ? store_->last_load_message() : kEmpty;
}

std::int64_t PlannerService::cache_entries_loaded() const {
  return store_.has_value() ? store_->entries_loaded() : 0;
}

bool PlannerService::SaveCache(std::string* error) {
  if (!store_.has_value() || options_.cache_readonly) return true;
  return store_->Save(cache_, error);
}

PlannerServiceStats PlannerService::stats() const {
  PlannerServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.cache_entries_loaded = cache_entries_loaded();
  stats.cache = cache_.stats();
  stats.threads = options_.threads > 1 ? options_.threads : 1;
  return stats;
}

}  // namespace p2::engine
