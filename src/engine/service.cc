#include "engine/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

#include "engine/pipeline.h"

namespace p2::engine {

namespace {

/// Digest of every EngineOptions field that can change a plan. Appended to
/// the cluster fingerprint in the tenant key so one machine under two
/// evaluation configurations gets two engines instead of silently sharing
/// one. `threads` and `cache_synthesis` are excluded: they are
/// execution-strategy knobs with byte-identical output at any setting.
std::string EngineOptionsDigest(const EngineOptions& options) {
  char payload[40];
  std::snprintf(payload, sizeof(payload), "%.17g", options.payload_bytes);
  std::string digest = "algo=";
  digest += core::ToString(options.algo);
  digest += ";payload=";
  digest += payload;
  digest += ";size<=" + std::to_string(options.synthesis.max_program_size);
  digest += ";cap=" + std::to_string(options.synthesis.max_programs);
  digest += ";collapse=" + std::to_string(options.collapse_hierarchy ? 1 : 0);
  digest += ";kind=";
  digest += core::ToString(options.hierarchy_kind);
  digest += ";measure=" + std::to_string(options.measure ? 1 : 0);
  return digest;
}

std::string TenantKey(const topology::Cluster& cluster,
                      const EngineOptions& options) {
  return cluster.Fingerprint() + "|" + EngineOptionsDigest(options);
}

}  // namespace

const char* ToString(PlanOutcome outcome) {
  switch (outcome) {
    case PlanOutcome::kOk:
      return "ok";
    case PlanOutcome::kRejected:
      return "rejected";
    case PlanOutcome::kCancelled:
      return "cancelled";
    case PlanOutcome::kDeadlineExceeded:
      return "deadline_exceeded";
    case PlanOutcome::kInvalidArgument:
      return "invalid_argument";
    case PlanOutcome::kInternal:
      return "internal";
  }
  return "internal";
}

PlanOutcome ClassifyPlanError(std::exception_ptr error) {
  if (error == nullptr) return PlanOutcome::kOk;
  try {
    std::rethrow_exception(error);
  } catch (const PlanRejected&) {
    return PlanOutcome::kRejected;
  } catch (const PlanDeadlineExceeded&) {
    return PlanOutcome::kDeadlineExceeded;
  } catch (const PlanCancelled&) {
    return PlanOutcome::kCancelled;
  } catch (const std::invalid_argument&) {
    return PlanOutcome::kInvalidArgument;
  } catch (...) {
    return PlanOutcome::kInternal;
  }
}

PlannerService::PlannerService(PlannerServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_max_entries),
      pool_(options_.threads) {
  cache_.set_remote(options_.remote_cache);
  if (!options_.cache_file.empty()) {
    store_.emplace(options_.cache_file);
    // TTL must be set before the load: expiry is a load-time policy (stale
    // entries are pruned as the file is read, never served once).
    store_->set_ttl_seconds(options_.cache_ttl_seconds);
    // Any corruption leaves the cache cold and the status queryable; the
    // service itself never fails over a bad cache file.
    store_->LoadInto(&cache_);
  }
}

PlannerService::PlannerService(const Engine& engine,
                               PlannerServiceOptions options)
    : PlannerService([&] {
        // Requests that *do* name a cluster should evaluate under the same
        // knobs as the borrowed default engine.
        options.engine = engine.options();
        return std::move(options);
      }()) {
  // Borrowed, not owned: the no-op deleter encodes the documented contract
  // that the engine outlives the service.
  default_tenant_ = &AdoptTenant(
      engine.cluster(), engine.options(),
      std::shared_ptr<const Engine>(&engine, [](const Engine*) {}));
}

PlannerService::~PlannerService() {
  // The same drain callers can run explicitly: reject new submissions, wait
  // for (or after the configured grace, cancel) in-flight requests, persist
  // the cache. request_tasks_ (declared last) then has nothing left and the
  // pool joins its workers.
  BeginDrain(options_.drain_grace);
}

const Engine* PlannerService::default_engine() const {
  std::unique_lock<std::mutex> lock(tenants_mu_);
  return default_tenant_ != nullptr ? default_tenant_->engine.get() : nullptr;
}

PlannerService::Tenant& PlannerService::RegisterTenantLocked(
    const std::string& key, const topology::Cluster& cluster) {
  auto tenant = std::make_unique<Tenant>();
  tenant->id = next_tenant_id_++;
  tenant->fingerprint = cluster.Fingerprint();
  tenant->cluster = cluster;
  tenant->stats.id = tenant->id;
  tenant->stats.fingerprint = tenant->fingerprint;
  tenant->stats.cluster = cluster.ToString();
  Tenant& ref = *tenant;
  tenant_by_key_.emplace(key, tenant.get());
  tenants_.push_back(std::move(tenant));
  return ref;
}

PlannerService::Tenant& PlannerService::AdoptTenant(
    const topology::Cluster& cluster, const EngineOptions& engine_options,
    std::shared_ptr<const Engine> engine) {
  const std::string key = TenantKey(cluster, engine_options);
  std::unique_lock<std::mutex> lock(tenants_mu_);
  const auto it = tenant_by_key_.find(key);
  if (it != tenant_by_key_.end()) {
    // Admission may have registered the record engine-less; adopt into it.
    if (it->second->engine == nullptr) it->second->engine = std::move(engine);
    return *it->second;
  }
  Tenant& tenant = RegisterTenantLocked(key, cluster);
  tenant.engine = std::move(engine);
  return tenant;
}

EngineOptions PlannerService::EffectiveEngineOptions(
    const PlanRequest& request) const {
  EngineOptions effective = options_.engine;
  if (request.max_programs > 0) {
    effective.synthesis.max_programs = request.max_programs;
  }
  return effective;
}

PlannerService::Tenant& PlannerService::ResolveTenant(
    const topology::Cluster& cluster, const EngineOptions& engine_options) {
  const std::string key = TenantKey(cluster, engine_options);
  std::unique_lock<std::mutex> lock(tenants_mu_);
  Tenant* record = nullptr;
  for (;;) {
    const auto it = tenant_by_key_.find(key);
    if (it == tenant_by_key_.end()) {
      record = &RegisterTenantLocked(key, cluster);
      break;
    }
    Tenant& tenant = *it->second;
    if (tenant.engine != nullptr) return tenant;
    if (!tenant.built.valid()) {
      // An engine-less record (registered by admission, or left behind by a
      // failed construction) nobody is building: claim the construction.
      record = &tenant;
      break;
    }
    // Another request is constructing this tenant's engine right now: wait
    // for it and re-check (a construction that threw leaves the record
    // engine-less and unclaimed, sending us around the loop into our own
    // attempt). Same in-flight-dedup pattern as the synthesis cache.
    const auto built = tenant.built;
    lock.unlock();
    built.wait();
    lock.lock();
  }

  // Announce the construction, run it outside the lock so other tenants'
  // requests proceed, then publish.
  std::promise<void> built_promise;
  record->built = built_promise.get_future().share();
  lock.unlock();

  std::shared_ptr<const Engine> engine;
  try {
    engine = std::make_shared<const Engine>(cluster, engine_options);
  } catch (...) {
    // Withdraw the claim — but keep the record, so the tenant's id and its
    // admission counters survive — and wake the racers; each retries the
    // construction (and presumably fails the same way, in its own future).
    lock.lock();
    record->built = {};
    lock.unlock();
    built_promise.set_value();
    throw;
  }

  lock.lock();
  record->engine = std::move(engine);
  ++engines_constructed_;
  lock.unlock();
  built_promise.set_value();
  return *record;
}

PlannerService::Tenant& PlannerService::TenantForRequest(
    const PlanRequest& request) {
  if (request.cluster.has_value()) {
    return ResolveTenant(*request.cluster, EffectiveEngineOptions(request));
  }
  if (request.max_programs > 0) {
    throw std::invalid_argument(
        "PlanRequest::max_programs overrides the tenant's synthesis cap and "
        "so requires PlanRequest::cluster; the borrowed default tenant's "
        "engine cannot be re-optioned");
  }
  std::unique_lock<std::mutex> lock(tenants_mu_);
  if (default_tenant_ != nullptr) return *default_tenant_;
  throw std::invalid_argument(
      "PlanRequest names no cluster and the PlannerService has no default "
      "tenant; set PlanRequest::cluster or construct the service with an "
      "Engine");
}

PlannerService::Tenant& PlannerService::AdmitTenantLocked(
    const PlanRequest& request) {
  if (!request.cluster.has_value()) {
    if (request.max_programs > 0) {
      throw std::invalid_argument(
          "PlanRequest::max_programs overrides the tenant's synthesis cap "
          "and so requires PlanRequest::cluster; the borrowed default "
          "tenant's engine cannot be re-optioned");
    }
    if (default_tenant_ != nullptr) return *default_tenant_;
    throw std::invalid_argument(
        "PlanRequest names no cluster and the PlannerService has no default "
        "tenant; set PlanRequest::cluster or construct the service with an "
        "Engine");
  }
  const std::string key =
      TenantKey(*request.cluster, EffectiveEngineOptions(request));
  const auto it = tenant_by_key_.find(key);
  if (it != tenant_by_key_.end()) return *it->second;
  // New fingerprint at Submit time: register the record engine-less so this
  // submission (and any rejection of it) is attributable; the request task
  // constructs the engine when it runs (ResolveTenant claims the record).
  return RegisterTenantLocked(key, *request.cluster);
}

void PlannerService::FinishRequest(
    std::int64_t id, Tenant& tenant, std::exception_ptr error,
    std::chrono::steady_clock::time_point submitted) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submitted)
          .count();
  std::unique_lock<std::mutex> lock(tenants_mu_);
  // Every finished request — aborted included — contributes a latency
  // sample; rejected submissions never reach here.
  latency_.Record(elapsed);
  active_.erase(id);
  --in_flight_;
  --tenant.in_flight;
  if (error != nullptr) {
    // Classify the abort for the stats; other failures (engine
    // construction, evaluation bugs) reach the caller through the future
    // but are not aborts.
    try {
      std::rethrow_exception(error);
    } catch (const PlanDeadlineExceeded&) {
      ++deadline_exceeded_;
      ++tenant.stats.deadline_exceeded;
    } catch (const PlanCancelled&) {
      ++cancelled_;
      ++tenant.stats.cancelled;
    } catch (...) {
    }
  }
  lock.unlock();
  drained_cv_.notify_all();
}

void PlannerService::AccumulateTenantStats(Tenant& tenant,
                                           const ExperimentResult& result) {
  std::unique_lock<std::mutex> lock(tenants_mu_);
  TenantStats& stats = tenant.stats;
  ++stats.requests;
  stats.placements += result.pipeline.num_placements;
  stats.cache_hits += result.pipeline.cache_hits;
  stats.cache_misses += result.pipeline.cache_misses;
  stats.cache_cross_tenant_hits += result.pipeline.cache_cross_tenant_hits;
  stats.cache_disk_hits += result.pipeline.cache_disk_hits;
  stats.synthesis_seconds_saved += result.pipeline.synthesis_seconds_saved;
}

PlanHandle PlannerService::Submit(PlanRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.cache_file.empty()) {
    // Persistence is the signature cache on disk: bypassing it would
    // silently ignore the loaded entries and drop this request's results
    // from the rewrite on save.
    request.cache_synthesis = true;
  }

  CancelSource source;
  if (request.deadline.has_value()) {
    // Relative to Submit, absolute from here on: the clock runs while the
    // request sits in the pool's queue too.
    source.SetDeadlineAfter(*request.deadline);
  }
  const auto fail = [&source](std::exception_ptr error) {
    std::promise<ExperimentResult> failed;
    failed.set_exception(std::move(error));
    return PlanHandle(failed.get_future(), std::move(source));
  };

  // Admission, under the registry lock: attribute the submission to its
  // tenant record — registering an engine-less one on a new fingerprint —
  // and check drain state and the in-flight caps. Over-limit fails fast
  // with PlanRejected through the (already-failed) handle: no silent
  // queuing, and Plan() = Submit().get() surfaces it uniformly.
  Tenant* tenant = nullptr;
  std::int64_t id = 0;
  {
    std::unique_lock<std::mutex> lock(tenants_mu_);
    try {
      tenant = &AdmitTenantLocked(request);
    } catch (...) {
      return fail(std::current_exception());
    }
    if (draining_) {
      ++rejected_;
      ++tenant->stats.rejected;
      return fail(std::make_exception_ptr(
          PlanRejected("PlannerService is draining; no new submissions")));
    }
    if (options_.max_in_flight > 0 && in_flight_ >= options_.max_in_flight) {
      ++rejected_;
      ++tenant->stats.rejected;
      return fail(std::make_exception_ptr(PlanRejected(
          "service-wide max_in_flight (" +
          std::to_string(options_.max_in_flight) + ") reached")));
    }
    if (options_.max_in_flight_per_tenant > 0 &&
        tenant->in_flight >= options_.max_in_flight_per_tenant) {
      ++rejected_;
      ++tenant->stats.rejected;
      return fail(std::make_exception_ptr(PlanRejected(
          "per-tenant max_in_flight (" +
          std::to_string(options_.max_in_flight_per_tenant) +
          ") reached for tenant " + std::to_string(tenant->id))));
    }
    ++in_flight_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
    ++tenant->in_flight;
    tenant->stats.peak_in_flight =
        std::max(tenant->stats.peak_in_flight, tenant->in_flight);
    id = next_request_id_++;
    active_.emplace(id, source);
  }

  // The request runs as a pool task so Submit returns immediately — tenant
  // resolution included, so a request racing onto a new fingerprint never
  // blocks the submitter behind an Engine construction. The pipeline's own
  // work items join the pool through a separate TaskGroup, and the
  // orchestrating task *helps* execute them while waiting (see
  // ThreadPool::TaskGroup::Wait), so request tasks never deadlock the pool
  // they occupy. packaged_task routes the result — or the first exception,
  // cancellation included — into the future; request_tasks_ therefore never
  // sees a throwing task, so one aborted request cannot fail-fast the
  // group's other requests.
  const auto submitted = std::chrono::steady_clock::now();
  auto task = std::make_shared<std::packaged_task<ExperimentResult()>>(
      [this, request = std::move(request), token = source.token(), tenant, id,
       submitted]() {
        try {
          // Aborted while queued (deadline already past, cancelled before a
          // worker picked it up): unwind before resolving anything.
          token.ThrowIfCancelled();
          Tenant& resolved = TenantForRequest(request);
          Pipeline pipeline(*this, *resolved.engine,
                            PipelineOptions{
                                .cache_synthesis = request.cache_synthesis,
                                .measure_top_k = request.measure_top_k,
                                .tenant = resolved.id,
                                .cancel = token,
                                .defer_inflight = options_.defer_inflight,
                            });
          ExperimentResult result =
              pipeline.Run(request.axes, request.reduction_axes);
          AccumulateTenantStats(resolved, result);
          FinishRequest(id, *tenant, nullptr, submitted);
          return result;
        } catch (...) {
          FinishRequest(id, *tenant, std::current_exception(), submitted);
          throw;
        }
      });
  auto future = task->get_future();
  request_tasks_.Submit([task] { (*task)(); });
  return PlanHandle(std::move(future), std::move(source));
}

void PlannerService::BeginDrain(
    std::optional<std::chrono::milliseconds> grace) {
  std::unique_lock<std::mutex> lock(tenants_mu_);
  draining_ = true;  // every later Submit rejects
  const auto idle = [this] { return in_flight_ == 0; };
  if (grace.has_value()) {
    if (!drained_cv_.wait_for(lock, *grace, idle)) {
      // Grace expired: fire every in-flight request's cancel lever, then
      // wait out the cooperative unwinds (checkpoints are frequent, so this
      // tail is short). Their futures carry PlanCancelled.
      for (auto& [id, source] : active_) source.Cancel();
      drained_cv_.wait(lock, idle);
    }
  } else {
    drained_cv_.wait(lock, idle);
  }
  lock.unlock();
  // Persist what this run learned (no-op without a cache_file or under
  // cache_readonly). Nobody is left to read a return value here — this
  // path is also the destructor's — so SaveCache records any failure in
  // stats() (save_errors / last_save_error), where a server's /stats
  // endpoint can surface it.
  SaveCache();
}

bool PlannerService::draining() const {
  std::unique_lock<std::mutex> lock(tenants_mu_);
  return draining_;
}

ExperimentResult PlannerService::Plan(PlanRequest request) {
  return Submit(std::move(request)).get();
}

ExperimentResult PlannerService::Plan(std::span<const std::int64_t> axes,
                                      std::span<const int> reduction_axes) {
  PlanRequest request;
  request.axes.assign(axes.begin(), axes.end());
  request.reduction_axes.assign(reduction_axes.begin(), reduction_axes.end());
  return Plan(std::move(request));
}

const Engine& PlannerService::EngineFor(const topology::Cluster& cluster) {
  return *ResolveTenant(cluster, options_.engine).engine;
}

CacheLoadStatus PlannerService::cache_load_status() const {
  return store_.has_value() ? store_->last_load_status()
                            : CacheLoadStatus::kNotConfigured;
}

const std::string& PlannerService::cache_load_message() const {
  static const std::string kEmpty;
  return store_.has_value() ? store_->last_load_message() : kEmpty;
}

std::int64_t PlannerService::cache_entries_loaded() const {
  return store_.has_value() ? store_->entries_loaded() : 0;
}

bool PlannerService::CacheLookupEntry(const std::string& base_key,
                                      std::int64_t cap, std::string* key,
                                      core::SynthesisResult* result,
                                      bool* in_flight) {
  return cache_.LookupByKey(base_key, cap, key, result, in_flight);
}

void PlannerService::CachePublishEntry(const std::string& key,
                                       core::SynthesisResult result) {
  cache_.PublishByKey(key, std::move(result));
}

bool PlannerService::SaveCache(std::string* error) {
  if (!store_.has_value() || options_.cache_readonly) return true;
  std::string detail;
  if (store_->Save(cache_, &detail)) return true;
  {
    // Record the failure even when the caller discards the return (the
    // drain-time save does): the counter is the durable trace.
    std::unique_lock<std::mutex> lock(tenants_mu_);
    ++save_errors_;
    last_save_error_ = detail;
  }
  if (error != nullptr) *error = std::move(detail);
  return false;
}

PlannerServiceStats PlannerService::stats() const {
  PlannerServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.cache_entries_loaded = cache_entries_loaded();
  stats.cache_entries_expired =
      store_.has_value() ? store_->entries_expired() : 0;
  stats.cache = cache_.stats();
  stats.threads = options_.threads > 1 ? options_.threads : 1;
  std::unique_lock<std::mutex> lock(tenants_mu_);
  stats.engines_constructed = engines_constructed_;
  stats.rejected = rejected_;
  stats.cancelled = cancelled_;
  stats.deadline_exceeded = deadline_exceeded_;
  stats.peak_in_flight = peak_in_flight_;
  stats.save_errors = save_errors_;
  stats.last_save_error = last_save_error_;
  stats.latency_count = latency_.count();
  stats.latency_p50_seconds = latency_.Percentile(50.0);
  stats.latency_p95_seconds = latency_.Percentile(95.0);
  stats.latency_p99_seconds = latency_.Percentile(99.0);
  stats.tenants.reserve(tenants_.size());
  for (const auto& tenant : tenants_) stats.tenants.push_back(tenant->stats);
  return stats;
}

}  // namespace p2::engine
