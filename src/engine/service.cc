#include "engine/service.h"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>

#include "engine/pipeline.h"

namespace p2::engine {

namespace {

/// Digest of every EngineOptions field that can change a plan. Appended to
/// the cluster fingerprint in the tenant key so one machine under two
/// evaluation configurations gets two engines instead of silently sharing
/// one. `threads` and `cache_synthesis` are excluded: they are
/// execution-strategy knobs with byte-identical output at any setting.
std::string EngineOptionsDigest(const EngineOptions& options) {
  char payload[40];
  std::snprintf(payload, sizeof(payload), "%.17g", options.payload_bytes);
  std::string digest = "algo=";
  digest += core::ToString(options.algo);
  digest += ";payload=";
  digest += payload;
  digest += ";size<=" + std::to_string(options.synthesis.max_program_size);
  digest += ";cap=" + std::to_string(options.synthesis.max_programs);
  digest += ";collapse=" + std::to_string(options.collapse_hierarchy ? 1 : 0);
  digest += ";kind=";
  digest += core::ToString(options.hierarchy_kind);
  digest += ";measure=" + std::to_string(options.measure ? 1 : 0);
  return digest;
}

std::string TenantKey(const topology::Cluster& cluster,
                      const EngineOptions& options) {
  return cluster.Fingerprint() + "|" + EngineOptionsDigest(options);
}

}  // namespace

PlannerService::PlannerService(PlannerServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_max_entries),
      pool_(options_.threads) {
  if (!options_.cache_file.empty()) {
    store_.emplace(options_.cache_file);
    // Any corruption leaves the cache cold and the status queryable; the
    // service itself never fails over a bad cache file.
    store_->LoadInto(&cache_);
  }
}

PlannerService::PlannerService(const Engine& engine,
                               PlannerServiceOptions options)
    : PlannerService([&] {
        // Requests that *do* name a cluster should evaluate under the same
        // knobs as the borrowed default engine.
        options.engine = engine.options();
        return std::move(options);
      }()) {
  // Borrowed, not owned: the no-op deleter encodes the documented contract
  // that the engine outlives the service.
  default_tenant_ = &AdoptTenant(
      engine.cluster(), engine.options(),
      std::shared_ptr<const Engine>(&engine, [](const Engine*) {}));
}

PlannerService::~PlannerService() {
  // request_tasks_ (declared last) drains outstanding requests first; the
  // pool then joins its workers. Nothing to do explicitly.
}

const Engine* PlannerService::default_engine() const {
  std::unique_lock<std::mutex> lock(tenants_mu_);
  return default_tenant_ != nullptr ? default_tenant_->engine.get() : nullptr;
}

PlannerService::Tenant& PlannerService::RegisterTenantLocked(
    const std::string& key, const topology::Cluster& cluster) {
  auto tenant = std::make_unique<Tenant>();
  tenant->id = next_tenant_id_++;
  tenant->fingerprint = cluster.Fingerprint();
  tenant->cluster = cluster;
  tenant->stats.id = tenant->id;
  tenant->stats.fingerprint = tenant->fingerprint;
  tenant->stats.cluster = cluster.ToString();
  Tenant& ref = *tenant;
  tenant_by_key_.emplace(key, tenant.get());
  tenants_.push_back(std::move(tenant));
  return ref;
}

PlannerService::Tenant& PlannerService::AdoptTenant(
    const topology::Cluster& cluster, const EngineOptions& engine_options,
    std::shared_ptr<const Engine> engine) {
  const std::string key = TenantKey(cluster, engine_options);
  std::unique_lock<std::mutex> lock(tenants_mu_);
  const auto it = tenant_by_key_.find(key);
  if (it != tenant_by_key_.end()) return *it->second;
  Tenant& tenant = RegisterTenantLocked(key, cluster);
  tenant.engine = std::move(engine);
  return tenant;
}

PlannerService::Tenant& PlannerService::ResolveTenant(
    const topology::Cluster& cluster) {
  const std::string key = TenantKey(cluster, options_.engine);
  std::unique_lock<std::mutex> lock(tenants_mu_);
  for (;;) {
    const auto it = tenant_by_key_.find(key);
    if (it == tenant_by_key_.end()) break;
    Tenant& tenant = *it->second;
    if (tenant.engine != nullptr) return tenant;
    // Another request is constructing this tenant's engine right now: wait
    // for it and re-check (the record disappears if that construction
    // threw, sending us around the loop into our own attempt). Same
    // in-flight-dedup pattern as the synthesis cache.
    const auto built = tenant.built;
    lock.unlock();
    built.wait();
    lock.lock();
  }

  // New fingerprint: announce the construction, run it outside the lock so
  // other tenants' requests proceed, then publish.
  std::promise<void> built_promise;
  Tenant* record = &RegisterTenantLocked(key, cluster);
  record->built = built_promise.get_future().share();
  lock.unlock();

  std::shared_ptr<const Engine> engine;
  try {
    engine = std::make_shared<const Engine>(cluster, options_.engine);
  } catch (...) {
    // Withdraw the announcement and wake the racers; each retries (and
    // presumably fails the same way, in its own future).
    lock.lock();
    tenant_by_key_.erase(key);
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
      if (it->get() == record) {
        tenants_.erase(it);
        break;
      }
    }
    lock.unlock();
    built_promise.set_value();
    throw;
  }

  lock.lock();
  record->engine = std::move(engine);
  ++engines_constructed_;
  lock.unlock();
  built_promise.set_value();
  return *record;
}

PlannerService::Tenant& PlannerService::TenantForRequest(
    const PlanRequest& request) {
  if (request.cluster.has_value()) return ResolveTenant(*request.cluster);
  std::unique_lock<std::mutex> lock(tenants_mu_);
  if (default_tenant_ != nullptr) return *default_tenant_;
  throw std::invalid_argument(
      "PlanRequest names no cluster and the PlannerService has no default "
      "tenant; set PlanRequest::cluster or construct the service with an "
      "Engine");
}

void PlannerService::AccumulateTenantStats(Tenant& tenant,
                                           const ExperimentResult& result) {
  std::unique_lock<std::mutex> lock(tenants_mu_);
  TenantStats& stats = tenant.stats;
  ++stats.requests;
  stats.placements += result.pipeline.num_placements;
  stats.cache_hits += result.pipeline.cache_hits;
  stats.cache_misses += result.pipeline.cache_misses;
  stats.cache_cross_tenant_hits += result.pipeline.cache_cross_tenant_hits;
  stats.cache_disk_hits += result.pipeline.cache_disk_hits;
  stats.synthesis_seconds_saved += result.pipeline.synthesis_seconds_saved;
}

std::future<ExperimentResult> PlannerService::Submit(PlanRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.cache_file.empty()) {
    // Persistence is the signature cache on disk: bypassing it would
    // silently ignore the loaded entries and drop this request's results
    // from the rewrite on save.
    request.cache_synthesis = true;
  }
  // The request runs as a pool task so Submit returns immediately — tenant
  // resolution included, so a request racing onto a new fingerprint never
  // blocks the submitter behind an Engine construction. The pipeline's own
  // work items join the pool through a separate TaskGroup, and the
  // orchestrating task *helps* execute them while waiting (see
  // ThreadPool::TaskGroup::Wait), so request tasks never deadlock the pool
  // they occupy. packaged_task routes the result — or the first exception —
  // into the future.
  auto task = std::make_shared<std::packaged_task<ExperimentResult()>>(
      [this, request = std::move(request)]() {
        Tenant& tenant = TenantForRequest(request);
        Pipeline pipeline(*this, *tenant.engine,
                          PipelineOptions{
                              .cache_synthesis = request.cache_synthesis,
                              .measure_top_k = request.measure_top_k,
                              .tenant = tenant.id,
                          });
        ExperimentResult result =
            pipeline.Run(request.axes, request.reduction_axes);
        AccumulateTenantStats(tenant, result);
        return result;
      });
  auto future = task->get_future();
  request_tasks_.Submit([task] { (*task)(); });
  return future;
}

ExperimentResult PlannerService::Plan(PlanRequest request) {
  return Submit(std::move(request)).get();
}

ExperimentResult PlannerService::Plan(std::span<const std::int64_t> axes,
                                      std::span<const int> reduction_axes) {
  PlanRequest request;
  request.axes.assign(axes.begin(), axes.end());
  request.reduction_axes.assign(reduction_axes.begin(), reduction_axes.end());
  return Plan(std::move(request));
}

const Engine& PlannerService::EngineFor(const topology::Cluster& cluster) {
  return *ResolveTenant(cluster).engine;
}

CacheLoadStatus PlannerService::cache_load_status() const {
  return store_.has_value() ? store_->last_load_status()
                            : CacheLoadStatus::kNotConfigured;
}

const std::string& PlannerService::cache_load_message() const {
  static const std::string kEmpty;
  return store_.has_value() ? store_->last_load_message() : kEmpty;
}

std::int64_t PlannerService::cache_entries_loaded() const {
  return store_.has_value() ? store_->entries_loaded() : 0;
}

bool PlannerService::SaveCache(std::string* error) {
  if (!store_.has_value() || options_.cache_readonly) return true;
  return store_->Save(cache_, error);
}

PlannerServiceStats PlannerService::stats() const {
  PlannerServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.cache_entries_loaded = cache_entries_loaded();
  stats.cache = cache_.stats();
  stats.threads = options_.threads > 1 ? options_.threads : 1;
  std::unique_lock<std::mutex> lock(tenants_mu_);
  stats.engines_constructed = engines_constructed_;
  stats.tenants.reserve(tenants_.size());
  for (const auto& tenant : tenants_) stats.tenants.push_back(tenant->stats);
  return stats;
}

}  // namespace p2::engine
