// Argument parsing and driver for the p2_plan command-line tool, kept in
// the library so it is unit-testable.
//
//   p2_plan --system=a100 --nodes=4 --axes=4,16 --reduce=0
//           [--algo=ring|tree] [--payload-mb=N] [--top-k=N] [--threads=N]
//           [--fuse] [--cache-file=PATH] [--cache-readonly]
#ifndef P2_ENGINE_CLI_H_
#define P2_ENGINE_CLI_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/collective.h"
#include "topology/cluster.h"

namespace p2::engine {

struct CliOptions {
  std::string system = "a100";  // "a100" or "v100"
  int nodes = 2;
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  core::NcclAlgo algo = core::NcclAlgo::kRing;
  double payload_mb = 0.0;  // 0 => the paper's default
  int top_k = 0;            // 0 => measure everything
  int threads = 1;          // pipeline evaluation threads
  int synth_threads = 1;    // synthesis frontier-expansion threads
  bool fuse = false;        // apply the fusion pass before evaluation
  std::string cache_file;   // persistent synthesis cache (empty = off)
  bool cache_readonly = false;  // load the cache file but never write it
};

/// Parses argv-style arguments. On error returns std::nullopt and fills
/// `error` with a message (also used for --help).
std::optional<CliOptions> ParseCliOptions(
    const std::vector<std::string>& args, std::string* error);

/// The --help text.
std::string CliUsage();

/// Builds the cluster the options describe.
topology::Cluster ClusterFromOptions(const CliOptions& options);

/// Runs the full plan and renders the report table. Returns the process
/// exit code.
int RunCli(const CliOptions& options, std::string* output);

}  // namespace p2::engine

#endif  // P2_ENGINE_CLI_H_
