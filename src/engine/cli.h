// Argument parsing and driver for the p2_plan command-line tool, kept in
// the library so it is unit-testable.
//
//   p2_plan --system=a100 --nodes=4 --axes=4,16 --reduce=0
//           [--algo=ring|tree] [--payload-mb=N] [--top-k=N]
//           [--service-threads=N] [--synth-threads=N] [--fuse]
//           [--cache-file=PATH] [--cache-readonly] [--cache-max-entries=N]
//           [--deadline-ms=N] [--max-in-flight=N] [--drain-grace-ms=N]
//   p2_plan --system=a100 --nodes=4 --grid [...]
//   p2_plan --topology=a100:4,v100:2 --grid [...]
//
// All planning goes through one PlannerService (engine/service.h) per
// invocation: --grid submits every experiment-grid config concurrently to
// the shared service instead of looping sequentially, so configs sharing
// synthesis hierarchies are synthesized once between them. --topology
// accepts multiple system:nodes presets — the service is multi-tenant, so
// one --grid run plans every preset's grid through one shared cache and
// pool, and presets with overlapping reduction factorizations synthesize
// shared hierarchies once *across clusters* (reported as cross-tenant
// hits).
#ifndef P2_ENGINE_CLI_H_
#define P2_ENGINE_CLI_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/collective.h"
#include "topology/cluster.h"

namespace p2::engine {

/// One `--topology` entry: a named system preset at a node count.
struct TopologyPreset {
  std::string system;  // "a100" or "v100"
  int nodes = 1;

  friend bool operator==(const TopologyPreset&, const TopologyPreset&) =
      default;
};

struct CliOptions {
  std::string system = "a100";  // "a100" or "v100"
  int nodes = 2;
  /// `--topology` presets. Empty = the classic single-cluster form
  /// (--system/--nodes). More than one preset requires --grid and plans
  /// every preset's grid through one multi-tenant service.
  std::vector<TopologyPreset> topologies;
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  core::NcclAlgo algo = core::NcclAlgo::kRing;
  double payload_mb = 0.0;  // 0 => the paper's default
  int top_k = 0;            // 0 => measure everything
  int threads = 1;          // legacy alias for service_threads
  int service_threads = 0;  // shared service pool; 0 => use `threads`
  int synth_threads = 1;    // synthesis frontier-expansion threads
  bool fuse = false;        // apply the fusion pass before evaluation
  bool grid = false;        // run the full experiment grid concurrently
  std::string cache_file;   // persistent synthesis cache (empty = off)
  bool cache_readonly = false;  // load the cache file but never write it
  std::int64_t cache_max_entries = 0;  // LRU cap; 0 = unbounded
  std::int64_t cache_ttl_seconds = 0;  // expire loaded entries; 0 = never
  std::int64_t deadline_ms = 0;     // per-request deadline; 0 = none
  std::int64_t max_in_flight = 0;   // service admission cap; 0 = unbounded
  std::int64_t drain_grace_ms = -1;  // shutdown grace; -1 = wait forever

  /// The shared pool size the service actually gets.
  int EffectiveServiceThreads() const {
    return service_threads > 0 ? service_threads : threads;
  }
};

/// Parses argv-style arguments. On error returns std::nullopt and fills
/// `error` with a message (also used for --help).
std::optional<CliOptions> ParseCliOptions(
    const std::vector<std::string>& args, std::string* error);

/// The --help text.
std::string CliUsage();

/// Builds the cluster the options describe (the --system/--nodes form; for
/// --topology presets see ClusterFromPreset).
topology::Cluster ClusterFromOptions(const CliOptions& options);

/// Builds the cluster one --topology preset describes.
topology::Cluster ClusterFromPreset(const TopologyPreset& preset);

/// Runs the full plan and renders the report table. Returns the process
/// exit code.
int RunCli(const CliOptions& options, std::string* output);

}  // namespace p2::engine

#endif  // P2_ENGINE_CLI_H_
