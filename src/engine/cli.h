// Argument parsing and driver for the p2_plan command-line tool, kept in
// the library so it is unit-testable.
//
//   p2_plan --system=a100 --nodes=4 --axes=4,16 --reduce=0
//           [--algo=ring|tree] [--payload-mb=N] [--top-k=N]
//           [--service-threads=N] [--synth-threads=N] [--fuse]
//           [--cache-file=PATH] [--cache-readonly]
//   p2_plan --system=a100 --nodes=4 --grid [...]
//
// All planning goes through one PlannerService (engine/service.h) per
// invocation: --grid submits every experiment-grid config concurrently to
// the shared service instead of looping sequentially, so configs sharing
// synthesis hierarchies are synthesized once between them.
#ifndef P2_ENGINE_CLI_H_
#define P2_ENGINE_CLI_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/collective.h"
#include "topology/cluster.h"

namespace p2::engine {

struct CliOptions {
  std::string system = "a100";  // "a100" or "v100"
  int nodes = 2;
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  core::NcclAlgo algo = core::NcclAlgo::kRing;
  double payload_mb = 0.0;  // 0 => the paper's default
  int top_k = 0;            // 0 => measure everything
  int threads = 1;          // legacy alias for service_threads
  int service_threads = 0;  // shared service pool; 0 => use `threads`
  int synth_threads = 1;    // synthesis frontier-expansion threads
  bool fuse = false;        // apply the fusion pass before evaluation
  bool grid = false;        // run the full experiment grid concurrently
  std::string cache_file;   // persistent synthesis cache (empty = off)
  bool cache_readonly = false;  // load the cache file but never write it

  /// The shared pool size the service actually gets.
  int EffectiveServiceThreads() const {
    return service_threads > 0 ? service_threads : threads;
  }
};

/// Parses argv-style arguments. On error returns std::nullopt and fills
/// `error` with a message (also used for --help).
std::optional<CliOptions> ParseCliOptions(
    const std::vector<std::string>& args, std::string* error);

/// The --help text.
std::string CliUsage();

/// Builds the cluster the options describe.
topology::Cluster ClusterFromOptions(const CliOptions& options);

/// Runs the full plan and renders the report table. Returns the process
/// exit code.
int RunCli(const CliOptions& options, std::string* output);

}  // namespace p2::engine

#endif  // P2_ENGINE_CLI_H_
