// JSON serialization of P2 results for downstream tooling (dashboards,
// notebooks, regression tracking). Hand-rolled emitter — results only
// contain numbers, short identifiers and program strings, so no external
// dependency is warranted.
#ifndef P2_ENGINE_JSON_EXPORT_H_
#define P2_ENGINE_JSON_EXPORT_H_

#include <string>

#include "engine/engine.h"

namespace p2::engine {

/// {"matrix": "[[1 2] [4 8]]", "synthesis_seconds": ...,
///  "programs": [{"text": ..., "shape": ..., "steps": N,
///                "predicted_seconds": ..., "measured_seconds": ...,
///                "measured": true, "default_allreduce": false}, ...]}
std::string ToJson(const PlacementEvaluation& eval);

/// {"axes": [4, 16], "reduction_axes": [0], "algo": "Ring",
///  "payload_bytes": ...,
///  "pipeline": {"placements": N, "unique_hierarchies": U, "cache_hits": H,
///               "cache_misses": M, "cache_disk_hits": D,
///               "cache_entries_loaded": L, "disk_seconds_saved": DS,
///               "synthesis_seconds_saved": S, "threads": T},
///  "placements": [...]}
std::string ToJson(const ExperimentResult& result);

/// Escapes a string for embedding in JSON output.
std::string JsonEscape(const std::string& s);

}  // namespace p2::engine

#endif  // P2_ENGINE_JSON_EXPORT_H_
