// JSON serialization of P2 results for downstream tooling (dashboards,
// notebooks, regression tracking). Hand-rolled emitter — results only
// contain numbers, short identifiers and program strings, so no external
// dependency is warranted.
#ifndef P2_ENGINE_JSON_EXPORT_H_
#define P2_ENGINE_JSON_EXPORT_H_

#include <string>

#include "engine/engine.h"
#include "engine/service.h"

namespace p2::engine {

/// {"matrix": "[[1 2] [4 8]]", "synthesis_seconds": ...,
///  "programs": [{"text": ..., "shape": ..., "steps": N,
///                "predicted_seconds": ..., "measured_seconds": ...,
///                "measured": true, "default_allreduce": false}, ...]}
std::string ToJson(const PlacementEvaluation& eval);

/// {"axes": [4, 16], "reduction_axes": [0], "algo": "Ring",
///  "payload_bytes": ...,
///  "pipeline": {"placements": N, "unique_hierarchies": U, "cache_hits": H,
///               "cache_misses": M, "cache_dedup_waits": W,
///               "cache_cross_tenant_hits": X, "cache_disk_hits": D,
///               "cache_remote_hits": RH,
///               "disk_seconds_saved": DS, "guided_skipped": G,
///               "synthesis_seconds_saved": S, "synthesis_seconds": SS,
///               "evaluation_seconds": ES, "total_seconds": TS,
///               "threads": T},
///  "placements": [...]}
/// The pipeline counters are the request's own share of the shared cache's
/// activity; service-wide figures (entries loaded from disk, totals across
/// requests and tenants) are exported once per service by the overload
/// below.
std::string ToJson(const ExperimentResult& result);

/// {"requests": N, "cache_entries_loaded": L, "cache_entries_expired": EX,
///  "engines_constructed": E,
///  "cache": {"hits": H, "misses": M, "disk_hits": D, "remote_hits": RH,
///            "remote_errors": RE, "subsumed_hits": SH,
///            "dedup_waits": W, "cross_tenant_hits": X, "evictions": EV,
///            "seconds_saved": S, "disk_seconds_saved": DS},
///  "threads": T,
///  "tenants": [{"id": 0, "fingerprint": ..., "cluster": ...,
///               "requests": R, "placements": P, "cache_hits": H,
///               "cache_misses": M, "cache_cross_tenant_hits": X,
///               "cache_disk_hits": D, "synthesis_seconds_saved": S}, ...]}
/// Emit this exactly once per PlannerService: cache_entries_loaded is the
/// service's one-time preload, so repeating it per experiment (the old
/// PipelineStats field) double-counted it in multi-config runs. The
/// per-tenant rows are what dashboards key cross-cluster sharing off.
std::string ToJson(const PlannerServiceStats& stats);

/// Escapes a string for embedding in JSON output.
std::string JsonEscape(const std::string& s);

}  // namespace p2::engine

#endif  // P2_ENGINE_JSON_EXPORT_H_
