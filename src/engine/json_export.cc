#include "engine/json_export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "engine/report.h"

namespace p2::engine {

namespace {

std::string Num(double v) {
  // JSON has no nan/inf literals; "%.9g" would emit them bare and corrupt
  // the whole document (a 0/0 ratio in stats is enough). null is the only
  // representation every consumer parses.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const PlacementEvaluation& eval) {
  std::ostringstream os;
  os << "{\"matrix\":\"" << JsonEscape(eval.matrix.ToString()) << "\","
     << "\"synthesis_seconds\":" << Num(eval.synthesis_seconds) << ","
     << "\"synthesis\":{"
     << "\"states_visited\":" << eval.synthesis_stats.states_visited << ","
     << "\"states_deduped\":" << eval.synthesis_stats.states_deduped << ","
     << "\"branches_pruned\":" << eval.synthesis_stats.branches_pruned << ","
     << "\"instructions_tried\":" << eval.synthesis_stats.instructions_tried
     << "},"
     << "\"guided_skipped\":" << eval.guided_skipped << ","
     << "\"programs\":[";
  for (std::size_t i = 0; i < eval.programs.size(); ++i) {
    const auto& p = eval.programs[i];
    if (i > 0) os << ',';
    os << "{\"text\":\"" << JsonEscape(p.text) << "\","
       << "\"shape\":\"" << JsonEscape(ProgramShape(p.program)) << "\","
       << "\"steps\":" << p.num_steps << ","
       << "\"predicted_seconds\":" << Num(p.predicted_seconds) << ","
       << "\"measured_seconds\":" << Num(p.measured_seconds) << ","
       << "\"measured\":" << (p.measured ? "true" : "false") << ","
       << "\"default_allreduce\":"
       << (p.is_default_allreduce ? "true" : "false") << '}';
  }
  os << "]}";
  return os.str();
}

std::string ToJson(const ExperimentResult& result) {
  std::ostringstream os;
  os << "{\"axes\":[";
  for (std::size_t i = 0; i < result.axes.size(); ++i) {
    if (i > 0) os << ',';
    os << result.axes[i];
  }
  os << "],\"reduction_axes\":[";
  for (std::size_t i = 0; i < result.reduction_axes.size(); ++i) {
    if (i > 0) os << ',';
    os << result.reduction_axes[i];
  }
  os << "],\"algo\":\"" << core::ToString(result.algo) << "\","
     << "\"payload_bytes\":" << Num(result.payload_bytes) << ","
     << "\"pipeline\":{"
     << "\"placements\":" << result.pipeline.num_placements << ","
     << "\"unique_hierarchies\":" << result.pipeline.unique_hierarchies << ","
     << "\"cache_hits\":" << result.pipeline.cache_hits << ","
     << "\"cache_misses\":" << result.pipeline.cache_misses << ","
     << "\"cache_dedup_waits\":" << result.pipeline.cache_dedup_waits << ","
     << "\"cache_deferred_lookups\":"
     << result.pipeline.cache_deferred_lookups << ","
     << "\"cache_cross_tenant_hits\":"
     << result.pipeline.cache_cross_tenant_hits << ","
     << "\"cache_disk_hits\":" << result.pipeline.cache_disk_hits << ","
     << "\"cache_remote_hits\":" << result.pipeline.cache_remote_hits << ","
     << "\"disk_seconds_saved\":" << Num(result.pipeline.disk_seconds_saved)
     << ","
     << "\"synth_states_visited\":" << result.pipeline.synth_states_visited
     << ","
     << "\"synth_states_deduped\":" << result.pipeline.synth_states_deduped
     << ","
     << "\"synth_branches_pruned\":" << result.pipeline.synth_branches_pruned
     << ","
     << "\"guided_skipped\":" << result.pipeline.guided_skipped << ","
     << "\"synthesis_seconds_saved\":"
     << Num(result.pipeline.synthesis_seconds_saved) << ","
     << "\"synthesis_seconds\":" << Num(result.pipeline.synthesis_seconds)
     << ","
     << "\"evaluation_seconds\":" << Num(result.pipeline.evaluation_seconds)
     << ","
     << "\"total_seconds\":" << Num(result.pipeline.total_seconds) << ","
     << "\"threads\":" << result.pipeline.threads << "},"
     << "\"placements\":[";
  for (std::size_t i = 0; i < result.placements.size(); ++i) {
    if (i > 0) os << ',';
    os << ToJson(result.placements[i]);
  }
  os << "]}";
  return os.str();
}

std::string ToJson(const PlannerServiceStats& stats) {
  std::ostringstream os;
  os << "{\"requests\":" << stats.requests << ","
     << "\"rejected\":" << stats.rejected << ","
     << "\"cancelled\":" << stats.cancelled << ","
     << "\"deadline_exceeded\":" << stats.deadline_exceeded << ","
     << "\"peak_in_flight\":" << stats.peak_in_flight << ","
     << "\"save_errors\":" << stats.save_errors << ","
     << "\"last_save_error\":\"" << JsonEscape(stats.last_save_error) << "\","
     << "\"cache_entries_loaded\":" << stats.cache_entries_loaded << ","
     << "\"cache_entries_expired\":" << stats.cache_entries_expired << ","
     << "\"engines_constructed\":" << stats.engines_constructed << ","
     << "\"cache\":{"
     << "\"hits\":" << stats.cache.hits << ","
     << "\"misses\":" << stats.cache.misses << ","
     << "\"disk_hits\":" << stats.cache.disk_hits << ","
     << "\"remote_hits\":" << stats.cache.remote_hits << ","
     << "\"remote_errors\":" << stats.cache.remote_errors << ","
     << "\"subsumed_hits\":" << stats.cache.subsumed_hits << ","
     << "\"dedup_waits\":" << stats.cache.dedup_waits << ","
     << "\"deferred_lookups\":" << stats.cache.deferred_lookups << ","
     << "\"continuations_fired\":" << stats.cache.continuations_fired << ","
     << "\"waiter_parks\":" << stats.cache.waiter_parks << ","
     << "\"cross_tenant_hits\":" << stats.cache.cross_tenant_hits << ","
     << "\"evictions\":" << stats.cache.evictions << ","
     << "\"seconds_saved\":" << Num(stats.cache.seconds_saved) << ","
     << "\"disk_seconds_saved\":" << Num(stats.cache.disk_seconds_saved)
     << "},"
     << "\"threads\":" << stats.threads << ","
     << "\"latency_count\":" << stats.latency_count << ","
     << "\"latency_p50_ms\":" << Num(stats.latency_p50_seconds * 1e3) << ","
     << "\"latency_p95_ms\":" << Num(stats.latency_p95_seconds * 1e3) << ","
     << "\"latency_p99_ms\":" << Num(stats.latency_p99_seconds * 1e3) << ","
     << "\"tenants\":[";
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const TenantStats& tenant = stats.tenants[i];
    if (i > 0) os << ',';
    os << "{\"id\":" << tenant.id << ","
       << "\"fingerprint\":\"" << JsonEscape(tenant.fingerprint) << "\","
       << "\"cluster\":\"" << JsonEscape(tenant.cluster) << "\","
       << "\"requests\":" << tenant.requests << ","
       << "\"placements\":" << tenant.placements << ","
       << "\"cache_hits\":" << tenant.cache_hits << ","
       << "\"cache_misses\":" << tenant.cache_misses << ","
       << "\"cache_cross_tenant_hits\":" << tenant.cache_cross_tenant_hits
       << ","
       << "\"cache_disk_hits\":" << tenant.cache_disk_hits << ","
       << "\"rejected\":" << tenant.rejected << ","
       << "\"cancelled\":" << tenant.cancelled << ","
       << "\"deadline_exceeded\":" << tenant.deadline_exceeded << ","
       << "\"peak_in_flight\":" << tenant.peak_in_flight << ","
       << "\"synthesis_seconds_saved\":"
       << Num(tenant.synthesis_seconds_saved) << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace p2::engine
