// The P2 tool, end to end (paper Sections 3-5): enumerate parallelism
// placements, synthesize reduction programs per placement, lower them,
// predict their cost with the analytic model and measure them on the
// runtime substrate, and rank the results.
#ifndef P2_ENGINE_ENGINE_H_
#define P2_ENGINE_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/collective.h"
#include "core/lowering.h"
#include "core/parallelism_matrix.h"
#include "core/synthesizer.h"
#include "cost/cost_model.h"
#include "runtime/executor.h"
#include "topology/cluster.h"

namespace p2::engine {

struct EngineOptions {
  core::NcclAlgo algo = core::NcclAlgo::kRing;
  /// Per-GPU payload in bytes. The paper uses 2^29 * num_nodes float32.
  double payload_bytes = 0.0;  // 0 => the paper's default for the cluster
  core::SynthesisOptions synthesis;
  /// Collapse same-hardware-level factors in the synthesis hierarchy
  /// (Table 1 step 3; the ablation bench turns this off).
  bool collapse_hierarchy = true;
  core::SynthesisHierarchyKind hierarchy_kind =
      core::SynthesisHierarchyKind::kReductionAxes;
  /// Skip the runtime-substrate measurement (prediction only).
  bool measure = true;
  /// Worker threads for the per-placement evaluation stage of RunExperiment
  /// (engine/pipeline.h); <= 1 evaluates serially. Results are merged in
  /// placement order, so the output is identical at any thread count.
  int threads = 1;
  /// Memoize synthesis by hierarchy signature across the placements of an
  /// experiment (engine/synthesis_cache.h).
  bool cache_synthesis = true;
};

/// Stage and cache statistics of the evaluation pipeline run that produced
/// an ExperimentResult (engine/pipeline.h). Wall-clock fields vary run to
/// run; the placements, programs and predictions are deterministic. The
/// cache counters are *this request's own lookups* — under concurrent
/// requests sharing one PlannerService, which request takes the miss for a
/// shared signature depends on arrival order, so sums across requests are
/// stable but the per-request split can vary. Service-wide figures (entries
/// preloaded from disk, totals across requests) live in
/// PlannerServiceStats, reported once per service instead of being repeated
/// per experiment.
struct PipelineStats {
  std::int64_t num_placements = 0;
  std::int64_t unique_hierarchies = 0;  ///< distinct synthesis signatures
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  /// Lookups that blocked on another request's in-flight synthesis of the
  /// same signature instead of re-synthesizing (each still counts as a hit
  /// or, if the finished entry could not serve this cap, a miss). Zero
  /// under the deferral-aware scheduler, which never blocks — see
  /// cache_deferred_lookups.
  std::int64_t cache_dedup_waits = 0;
  /// Lookups that found another request's in-flight synthesis and deferred
  /// (re-enqueued through a completion continuation while the worker ran
  /// other tasks) instead of parking — the non-blocking counterpart of
  /// cache_dedup_waits, taken by the deferral-aware scheduler
  /// (PipelineOptions::defer_inflight). Like cache_dedup_waits this count
  /// depends on cross-request arrival order; only the sum of hits+misses
  /// is per-request deterministic.
  std::int64_t cache_deferred_lookups = 0;
  /// Hits served by entries another tenant's query synthesized (a subset of
  /// cache_hits; zero on a single-tenant service) — the cross-cluster
  /// sharing a multi-tenant PlannerService exists for.
  std::int64_t cache_cross_tenant_hits = 0;
  /// Persistent-cache figures (engine/cache_store.h); all zero unless the
  /// service was given a cache file.
  std::int64_t cache_disk_hits = 0;  ///< hits served by on-disk entries
  /// Hits served by fetching a foreign worker's entry from the remote cache
  /// plane (engine/remote_cache.h; a subset of cache_hits). Zero unless the
  /// service was given a remote cache backend — the cross-process sharing
  /// the sharded grid runner (tools/p2_shard) exists for.
  std::int64_t cache_remote_hits = 0;
  /// Transposition-search totals (core::SynthesisStats) summed over the
  /// placements, counterfactually like TotalSynthesisSeconds: placements
  /// served from the signature cache contribute the stats of the shared
  /// run, so the sums are deterministic regardless of cache state.
  std::int64_t synth_states_visited = 0;
  std::int64_t synth_states_deduped = 0;
  std::int64_t synth_branches_pruned = 0;
  /// Guided-evaluation measurements skipped by early stopping: candidates
  /// within the top-k whose prediction already exceeded the incumbent's
  /// measurement by more than the model's observed overprediction bound
  /// (sum of PlacementEvaluation::guided_skipped; deterministic).
  std::int64_t guided_skipped = 0;
  double synthesis_seconds_saved = 0.0;  ///< re-synthesis avoided by the cache
  double disk_seconds_saved = 0.0;       ///< portion saved across runs (disk)
  /// Time actually spent synthesizing. Under the staged scheduler this is
  /// the synthesize stage's wall-clock; under the deferral-aware scheduler
  /// (where synthesis and evaluation tasks interleave) it is the summed
  /// per-task synthesis time instead.
  double synthesis_seconds = 0.0;
  /// Lower/predict/measure time, with the same staged-wall-clock vs
  /// summed-task-time split as synthesis_seconds.
  double evaluation_seconds = 0.0;
  double total_seconds = 0.0;
  int threads = 1;
};

/// One synthesized (or baseline) program, evaluated.
struct ProgramEvaluation {
  core::Program program;
  std::string text;                ///< human-readable DSL form
  int num_steps = 0;
  double predicted_seconds = 0.0;  ///< analytic model (the paper's simulator)
  double measured_seconds = 0.0;   ///< runtime substrate (the "testbed")
  bool measured = false;           ///< false under guided evaluation
  bool is_default_allreduce = false;
};

/// All programs of one parallelism placement.
struct PlacementEvaluation {
  core::ParallelismMatrix matrix;
  /// Wall-clock of synthesizing this placement's program set. When the
  /// pipeline serves the set from the signature cache this is the original
  /// synthesis time of the shared run (what a cacheless evaluation would
  /// have spent), so summing it across placements gives the counterfactual
  /// serial cost; the wall-clock actually spent synthesizing is
  /// ExperimentResult::pipeline.synthesis_seconds.
  double synthesis_seconds = 0.0;
  core::SynthesisStats synthesis_stats;
  /// Top-k candidates guided evaluation left unmeasured because their
  /// prediction put them provably behind the incumbent's measurement under
  /// the model's observed overprediction bound (engine/pipeline.cc). A pure
  /// function of the deterministic predictions and measurements — identical
  /// at any thread count and cache state. Always 0 outside guided mode.
  int guided_skipped = 0;
  std::vector<ProgramEvaluation> programs;  ///< [0] is the default AllReduce

  const ProgramEvaluation& DefaultAllReduce() const { return programs.front(); }
  /// Index of the measured-best program among those actually measured. When
  /// nothing was measured (measure = false, or guided evaluation with
  /// measure_top_k = 0 before the baseline) falls back to the predicted-best
  /// index, so the result is a valid index whenever `programs` is non-empty
  /// (as every evaluated placement is; both return -1 on an empty vector).
  int BestMeasuredIndex() const;
  int BestPredictedIndex() const;
  /// Programs measurably faster than the default AllReduce (with a small
  /// relative tolerance so that byte-identical schedules do not count).
  /// Zero when the default AllReduce itself was never measured.
  int NumOutperforming() const;
};

/// One experiment: a cluster + parallelism axes + reduction axes + algo.
struct ExperimentResult {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  core::NcclAlgo algo = core::NcclAlgo::kRing;
  double payload_bytes = 0.0;
  std::vector<PlacementEvaluation> placements;
  PipelineStats pipeline;  ///< statistics of the run that produced this

  std::int64_t TotalPrograms() const;
  std::int64_t TotalOutperforming() const;
  /// Counterfactual serial synthesis cost (see
  /// PlacementEvaluation::synthesis_seconds); the wall-clock actually spent
  /// is pipeline.synthesis_seconds.
  double TotalSynthesisSeconds() const;
};

class Engine {
 public:
  Engine(topology::Cluster cluster, EngineOptions options = {});

  const topology::Cluster& cluster() const { return cluster_; }
  const EngineOptions& options() const { return options_; }
  double payload_bytes() const { return payload_bytes_; }
  /// The analytic model and the runtime substrate. Both are const-thread-safe
  /// over their immutable topology::Network, so pipeline workers share them.
  const cost::CostModel& cost_model() const { return cost_model_; }
  const runtime::Executor& executor() const { return executor_; }

  /// The paper's payload: 2^29 * num_nodes float32 elements per GPU.
  static double DefaultPayloadBytes(const topology::Cluster& cluster);

  /// Enumerates every placement of `axes` on the cluster's hierarchy.
  std::vector<core::ParallelismMatrix> SynthesizePlacements(
      std::span<const std::int64_t> axes) const;

  /// Synthesizes, lowers, predicts and measures all programs (plus the
  /// default single-step AllReduce) for one placement.
  PlacementEvaluation EvaluatePlacement(const core::ParallelismMatrix& matrix,
                                        std::span<const int> reduction_axes) const;

  /// Simulator-guided evaluation (the paper's Section 5 workflow): predict
  /// every program with the analytic model, but *measure* only the top
  /// `measure_top_k` by prediction (plus the default AllReduce). This is how
  /// P2 avoids evaluating hundreds of candidates on the real system.
  PlacementEvaluation EvaluatePlacementGuided(
      const core::ParallelismMatrix& matrix,
      std::span<const int> reduction_axes, int measure_top_k) const;

  /// Full experiment over every placement of `axes`, through the staged
  /// pipeline (engine/pipeline.h): placements inducing isomorphic synthesis
  /// hierarchies share one synthesis run, and evaluation uses
  /// `options().threads` workers. Output is identical at any thread count.
  ExperimentResult RunExperiment(std::span<const std::int64_t> axes,
                                 std::span<const int> reduction_axes) const;

  /// Evaluates a single DSL program on a placement (used by examples).
  ProgramEvaluation EvaluateProgram(const core::SynthesisHierarchy& sh,
                                    const core::Program& program) const;

 private:
  topology::Cluster cluster_;
  EngineOptions options_;
  double payload_bytes_ = 0.0;
  cost::CostModel cost_model_;
  runtime::Executor executor_;
};

}  // namespace p2::engine

#endif  // P2_ENGINE_ENGINE_H_
