// The P2 tool, end to end (paper Sections 3-5): enumerate parallelism
// placements, synthesize reduction programs per placement, lower them,
// predict their cost with the analytic model and measure them on the
// runtime substrate, and rank the results.
#ifndef P2_ENGINE_ENGINE_H_
#define P2_ENGINE_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/collective.h"
#include "core/lowering.h"
#include "core/parallelism_matrix.h"
#include "core/synthesizer.h"
#include "cost/cost_model.h"
#include "runtime/executor.h"
#include "topology/cluster.h"

namespace p2::engine {

struct EngineOptions {
  core::NcclAlgo algo = core::NcclAlgo::kRing;
  /// Per-GPU payload in bytes. The paper uses 2^29 * num_nodes float32.
  double payload_bytes = 0.0;  // 0 => the paper's default for the cluster
  core::SynthesisOptions synthesis;
  /// Collapse same-hardware-level factors in the synthesis hierarchy
  /// (Table 1 step 3; the ablation bench turns this off).
  bool collapse_hierarchy = true;
  core::SynthesisHierarchyKind hierarchy_kind =
      core::SynthesisHierarchyKind::kReductionAxes;
  /// Skip the runtime-substrate measurement (prediction only).
  bool measure = true;
};

/// One synthesized (or baseline) program, evaluated.
struct ProgramEvaluation {
  core::Program program;
  std::string text;                ///< human-readable DSL form
  int num_steps = 0;
  double predicted_seconds = 0.0;  ///< analytic model (the paper's simulator)
  double measured_seconds = 0.0;   ///< runtime substrate (the "testbed")
  bool measured = false;           ///< false under guided evaluation
  bool is_default_allreduce = false;
};

/// All programs of one parallelism placement.
struct PlacementEvaluation {
  core::ParallelismMatrix matrix;
  double synthesis_seconds = 0.0;
  core::SynthesisStats synthesis_stats;
  std::vector<ProgramEvaluation> programs;  ///< [0] is the default AllReduce

  const ProgramEvaluation& DefaultAllReduce() const { return programs.front(); }
  /// Index of the measured-best program among those actually measured.
  int BestMeasuredIndex() const;
  int BestPredictedIndex() const;
  /// Programs measurably faster than the default AllReduce (with a small
  /// relative tolerance so that byte-identical schedules do not count).
  int NumOutperforming() const;
};

/// One experiment: a cluster + parallelism axes + reduction axes + algo.
struct ExperimentResult {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  core::NcclAlgo algo = core::NcclAlgo::kRing;
  double payload_bytes = 0.0;
  std::vector<PlacementEvaluation> placements;

  std::int64_t TotalPrograms() const;
  std::int64_t TotalOutperforming() const;
  double TotalSynthesisSeconds() const;
};

class Engine {
 public:
  Engine(topology::Cluster cluster, EngineOptions options = {});

  const topology::Cluster& cluster() const { return cluster_; }
  const EngineOptions& options() const { return options_; }
  double payload_bytes() const { return payload_bytes_; }

  /// The paper's payload: 2^29 * num_nodes float32 elements per GPU.
  static double DefaultPayloadBytes(const topology::Cluster& cluster);

  /// Enumerates every placement of `axes` on the cluster's hierarchy.
  std::vector<core::ParallelismMatrix> SynthesizePlacements(
      std::span<const std::int64_t> axes) const;

  /// Synthesizes, lowers, predicts and measures all programs (plus the
  /// default single-step AllReduce) for one placement.
  PlacementEvaluation EvaluatePlacement(const core::ParallelismMatrix& matrix,
                                        std::span<const int> reduction_axes) const;

  /// Simulator-guided evaluation (the paper's Section 5 workflow): predict
  /// every program with the analytic model, but *measure* only the top
  /// `measure_top_k` by prediction (plus the default AllReduce). This is how
  /// P2 avoids evaluating hundreds of candidates on the real system.
  PlacementEvaluation EvaluatePlacementGuided(
      const core::ParallelismMatrix& matrix,
      std::span<const int> reduction_axes, int measure_top_k) const;

  /// Full experiment over every placement of `axes`.
  ExperimentResult RunExperiment(std::span<const std::int64_t> axes,
                                 std::span<const int> reduction_axes) const;

  /// Evaluates a single DSL program on a placement (used by examples).
  ProgramEvaluation EvaluateProgram(const core::SynthesisHierarchy& sh,
                                    const core::Program& program) const;

 private:
  topology::Cluster cluster_;
  EngineOptions options_;
  double payload_bytes_ = 0.0;
  cost::CostModel cost_model_;
  runtime::Executor executor_;
};

}  // namespace p2::engine

#endif  // P2_ENGINE_ENGINE_H_
