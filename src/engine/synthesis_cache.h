// Memoization of SynthesizePrograms keyed by the canonical signature of the
// synthesis hierarchy (core::SynthesisHierarchy::Signature) plus the
// synthesis options. Under the paper's preferred kReductionAxes hierarchy
// many placements of one experiment induce isomorphic hierarchies — same
// level cardinalities, same goal groups — whose program sets are identical
// up to lowering, so synthesizing once per signature removes the dominant
// cost of a multi-placement experiment. Thread-safe; synthesis runs outside
// the lock so concurrent misses on different signatures do not serialize.
// The cache can also be warmed from and persisted to disk across processes
// via engine/cache_store.h (Preload/Snapshot below).
#ifndef P2_ENGINE_SYNTHESIS_CACHE_H_
#define P2_ENGINE_SYNTHESIS_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/synthesizer.h"

namespace p2::engine {

struct SynthesisCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Hits served by an entry that was preloaded from a persistent store
  /// (engine/cache_store.h) rather than synthesized by this process.
  std::int64_t disk_hits = 0;
  /// Sum of the original synthesis wall-clock of every entry served from the
  /// cache: the time a cacheless run would have spent re-synthesizing.
  double seconds_saved = 0.0;
  /// The portion of seconds_saved contributed by preloaded entries — the
  /// cross-run savings a persistent cache adds on top of in-process reuse.
  double disk_seconds_saved = 0.0;
};

class SynthesisCache {
 public:
  /// Returns the memoized synthesis result for `sh`'s signature, running
  /// core::SynthesizePrograms on a miss. Safe to call concurrently; if two
  /// threads miss the same signature simultaneously the first insert wins
  /// (both return the same programs — synthesis is deterministic — and both
  /// count as misses, since both actually synthesized).
  std::shared_ptr<const core::SynthesisResult> GetOrSynthesize(
      const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options);

  /// Cache key for a hierarchy under the given options.
  static std::string Key(const core::SynthesisHierarchy& sh,
                         const core::SynthesisOptions& options);

  /// Seeds the cache with entries decoded from a persistent store
  /// (engine/cache_store.h). Keys already present keep their in-memory entry
  /// (the contents are identical — synthesis is deterministic). Served
  /// results report stats.seconds == 0, because this process spent nothing
  /// synthesizing them; the persisted wall-clock is retained internally so
  /// the seconds-saved accounting still reflects the cross-run savings.
  /// Returns the number of entries inserted.
  std::int64_t Preload(
      std::vector<std::pair<std::string, core::SynthesisResult>> entries);

  /// Key-sorted copy of every entry for persistence. Each result carries its
  /// *original* synthesis wall-clock (even for entries that were themselves
  /// preloaded), so save/load round trips preserve the counterfactual cost.
  std::vector<std::pair<std::string, core::SynthesisResult>> Snapshot() const;

  SynthesisCacheStats stats() const;
  std::size_t size() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const core::SynthesisResult> result;
    /// stats.seconds as originally synthesized; differs from
    /// result->stats.seconds only for preloaded entries (zeroed on serve).
    double original_seconds = 0.0;
    bool from_disk = false;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  SynthesisCacheStats stats_;
};

}  // namespace p2::engine

#endif  // P2_ENGINE_SYNTHESIS_CACHE_H_
