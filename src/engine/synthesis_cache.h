// Memoization of SynthesizePrograms keyed by the canonical signature of the
// synthesis hierarchy (core::SynthesisHierarchy::Signature) plus the
// synthesis options. Under the paper's preferred kReductionAxes hierarchy
// many placements of one experiment induce isomorphic hierarchies — same
// level cardinalities, same goal groups — whose program sets are identical
// up to lowering, so synthesizing once per signature removes the dominant
// cost of a multi-placement experiment. The signature is also independent of
// the *cluster* a placement lives on, so tenants of a multi-tenant
// PlannerService (engine/service.h) with different machines but overlapping
// reduction factorizations dedup against each other too; lookups carry an
// opaque tenant tag so that cross-tenant reuse is observable in the stats.
//
// The cache is the process-wide shared core of the planning service
// (engine/service.h), so it is built for concurrent queries:
//
//  - In-flight deduplication: when two threads miss the same signature
//    simultaneously, exactly one runs the synthesis; the others block on it
//    and are then served the finished entry (one miss total, the rest are
//    hits that `waited`). An owner whose synthesis throws — including a
//    cooperative cancellation of *its* request — withdraws the in-flight
//    announcement before waking the waiters, so each waiter re-checks,
//    finds no flight, and dispatches the synthesis itself: a dead owner
//    never parks its waiters forever. Symmetrically, a waiter whose own
//    request aborts (SynthesisOptions::cancel) interrupts its wait and
//    unwinds instead of riding out a foreign owner's synthesis.
//  - Non-blocking lookups: TryLookup() is the deferral-capable face of the
//    same machinery. Instead of parking on a foreign in-flight synthesis it
//    registers a completion continuation and returns kInFlight, holding the
//    same eviction reservation a parked waiter would; owner completion AND
//    owner death fire the continuations (outside the cache lock), and the
//    caller retries with the same DeferredLookup handle — the retry
//    releases the reservation under the same lock acquisition as its
//    lookup, exactly the parked path's closed publish-to-read window. A
//    caller that loses interest settles with CancelDeferred(), which
//    releases the reservation like a cancelled parked waiter and withdraws
//    the continuation (one already extracted by a completing owner may
//    still fire late — callers guard with a fire-once flag). kOwned tells
//    the caller to synthesize itself and settle with CompleteOwned /
//    AbandonOwned. The pipeline's deferral scheduler (engine/pipeline.cc)
//    is built on this surface, so no pool thread ever parks on another
//    request's synthesis (`waiter_parks` counts the remaining blocking
//    waits of the GetOrSynthesize path).
//  - max_programs subsumption: an entry synthesized under a larger
//    max_programs cap serves smaller-cap queries by truncating its program
//    list. That is exact, not approximate: SynthesizePrograms keeps the
//    *smallest* max_programs programs — a prefix of the size-ordered list —
//    so the prefix of a big-cap run IS the small-cap result. An entry that
//    never hit its cap (programs.size() < cap) is complete and serves every
//    cap. A truncated entry cannot serve a larger cap; such a query
//    re-synthesizes and the bigger result replaces the entry.
//  - Bounded size (optional): constructed with max_entries > 0 the cache
//    holds at most that many entries, evicting the least-recently-used on
//    overflow (`evictions` stat). Eviction only ever costs re-synthesis —
//    results are unchanged — and it never drops an entry a concurrent
//    in-flight waiter is about to be served from: a waiter reserves its
//    base key before blocking and releases the reservation only after its
//    post-wake lookup, so a reserved base is immune to eviction for the
//    whole window between publication and the last waiter's read.
//
// The cache can also be warmed from and persisted to disk across processes
// via engine/cache_store.h (Preload/Snapshot below).
#ifndef P2_ENGINE_SYNTHESIS_CACHE_H_
#define P2_ENGINE_SYNTHESIS_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "core/synthesizer.h"
#include "engine/remote_cache.h"

namespace p2::engine {

struct SynthesisCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Hits served by an entry that was preloaded from a persistent store
  /// (engine/cache_store.h) rather than synthesized by this process.
  std::int64_t disk_hits = 0;
  /// Hits served by truncating an entry synthesized under a larger
  /// max_programs cap (a subset of `hits`).
  std::int64_t subsumed_hits = 0;
  /// Lookups that blocked on a concurrent in-flight synthesis of the same
  /// signature instead of running their own (a subset of `hits`).
  std::int64_t dedup_waits = 0;
  /// Hits served by an entry a *different tenant's* query synthesized (a
  /// subset of `hits`; see the tenant tag on GetOrSynthesize) — the
  /// cross-cluster sharing a multi-tenant service exists for.
  std::int64_t cross_tenant_hits = 0;
  /// Entries dropped by the LRU cap (max_entries in the constructor).
  std::int64_t evictions = 0;
  /// TryLookup calls that found a foreign in-flight synthesis and registered
  /// a completion continuation instead of parking (TryLookupState::kInFlight
  /// returns — the non-blocking counterpart of dedup_waits).
  std::int64_t deferred_lookups = 0;
  /// Continuations fired at owner completion or withdrawal.
  std::int64_t continuations_fired = 0;
  /// GetOrSynthesize calls that parked their thread behind a foreign
  /// in-flight synthesis (one per park, not per call). The deferral-aware
  /// pipeline keeps this at 0: its lookups go through TryLookup.
  std::int64_t waiter_parks = 0;
  /// Local misses served by fetching a foreign worker's entry from the
  /// remote cache plane (engine/remote_cache.h; a subset of `hits`). Zero
  /// without an attached backend.
  std::int64_t remote_hits = 0;
  /// Remote-plane operations that failed (unreachable server, malformed
  /// reply, exhausted retry budget behind a foreign grant). Each one
  /// degrades that lookup or publish to local-only — never an error for the
  /// caller.
  std::int64_t remote_errors = 0;
  /// Sum of the original synthesis wall-clock of every entry served from the
  /// cache: the time a cacheless run would have spent re-synthesizing.
  double seconds_saved = 0.0;
  /// The portion of seconds_saved contributed by preloaded entries — the
  /// cross-run savings a persistent cache adds on top of in-process reuse.
  double disk_seconds_saved = 0.0;
};

/// How a single GetOrSynthesize call was resolved, from the caller's
/// perspective. Concurrent queries sharing one cache cannot attribute the
/// global stats() deltas to themselves; this per-call outcome is what the
/// pipeline sums into its per-request PipelineStats instead.
struct CacheLookupOutcome {
  bool hit = false;        ///< served without synthesizing in this call
  bool from_disk = false;  ///< the serving entry was preloaded from disk
  /// Served by fetching a foreign worker's entry from the remote cache
  /// plane in this call (later local hits on the adopted entry are plain
  /// hits).
  bool from_remote = false;
  bool subsumed = false;   ///< served by truncating a larger-cap entry
  bool waited = false;     ///< blocked on a concurrent in-flight synthesis
  /// Served by an entry another tenant's query synthesized (see the tenant
  /// tag on GetOrSynthesize; never set for disk-preloaded entries, which
  /// belong to no tenant).
  bool cross_tenant = false;
  /// Original synthesis wall-clock of the serving entry (0.0 on a miss):
  /// what this call would have spent without the cache.
  double seconds_saved = 0.0;
};

class SynthesisCache {
 public:
  /// Lookups made outside any tenant (direct cache users, tests). Entries
  /// such lookups synthesize belong to no tenant and never count as
  /// cross-tenant when served.
  static constexpr std::int64_t kNoTenant = -1;

  /// How a non-blocking TryLookup resolved.
  enum class TryLookupState {
    kReady,     ///< served from the table; `result` is set
    kOwned,     ///< the caller claimed the synthesis: it must synthesize and
                ///< settle with CompleteOwned (or AbandonOwned on failure)
    kInFlight,  ///< a foreign call owns an in-flight synthesis; the
                ///< continuation was registered and `deferred` now holds the
                ///< reservation
  };

  struct TryLookupResult {
    TryLookupState state = TryLookupState::kOwned;
    /// The served result (truncated to the query's cap where subsumption
    /// applies); set only for kReady.
    std::shared_ptr<const core::SynthesisResult> result;
  };

  /// Handle of one deferred (kInFlight) TryLookup: while active() it holds
  /// an eviction reservation on the base key and a continuation
  /// registration on the flight. Passing the handle back into a retry
  /// TryLookup settles it under the same lock acquisition as the new
  /// lookup; CancelDeferred settles it without retrying. Not thread-safe —
  /// one logical waiter owns it at a time — and it must not be destroyed
  /// while active (the cache cannot release what it no longer knows about).
  class DeferredLookup {
   public:
    DeferredLookup() = default;
    DeferredLookup(const DeferredLookup&) = delete;
    DeferredLookup& operator=(const DeferredLookup&) = delete;

    /// True between a kInFlight TryLookup and the retry / CancelDeferred
    /// that settles it.
    bool active() const { return active_; }

   private:
    friend class SynthesisCache;
    bool active_ = false;
    std::string base_;      ///< reservation key while active
    std::uint64_t id_ = 0;  ///< continuation registration tag while active
  };

  /// `max_entries > 0` bounds the cache to that many entries with LRU
  /// eviction; <= 0 (the default) is unbounded.
  explicit SynthesisCache(std::int64_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// Attaches (or, with nullptr, detaches) the remote cache plane
  /// (engine/remote_cache.h). With a backend attached, every local miss
  /// consults the plane before synthesizing — adopting a foreign worker's
  /// entry as a hit (`remote_hits`), waiting out a foreign in-flight
  /// synthesis (bounded retries behind its ownership grant), or proceeding
  /// to a local synthesis whose completion is published back to the plane.
  /// Backend failures only ever count `remote_errors` and degrade to
  /// local-only behaviour. Set before concurrent use.
  void set_remote(std::shared_ptr<RemoteCacheBackend> remote);

  /// Returns the memoized synthesis result for `sh`'s signature under
  /// `options`, running core::SynthesizePrograms on a miss. Safe to call
  /// concurrently; see the file comment for the in-flight-dedup,
  /// max_programs-subsumption and LRU semantics. `outcome`, when non-null,
  /// receives how this particular call was resolved. `tenant` is an opaque
  /// caller identity (the service's tenant id) used only for the
  /// cross-tenant-reuse accounting.
  std::shared_ptr<const core::SynthesisResult> GetOrSynthesize(
      const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options,
      CacheLookupOutcome* outcome = nullptr, std::int64_t tenant = kNoTenant);

  /// Non-blocking lookup. kReady serves exactly like GetOrSynthesize's hit
  /// path (same stats and outcome attribution). kOwned announces this
  /// caller as the in-flight owner — it must run the synthesis itself and
  /// settle with CompleteOwned / AbandonOwned. kInFlight registers
  /// `on_resolved` to fire (outside the cache lock, from whichever thread
  /// settles the flight) when the current owner publishes or withdraws,
  /// takes an eviction reservation, and marks `deferred` active; the caller
  /// retries TryLookup with the same handle once the continuation fires —
  /// usually landing on kReady, though an owner death or a smaller-cap
  /// publish routes it to kOwned / kInFlight again. `on_resolved` must be
  /// safe to invoke at any later time from any thread, including after the
  /// caller lost interest (fire-once guards belong to the caller).
  /// `deferred` is required; `outcome` is reset on every call, so the
  /// settling call determines it.
  TryLookupResult TryLookup(const core::SynthesisHierarchy& sh,
                            const core::SynthesisOptions& options,
                            std::function<void()> on_resolved,
                            DeferredLookup* deferred,
                            CacheLookupOutcome* outcome = nullptr,
                            std::int64_t tenant = kNoTenant);

  /// Publishes the result of a kOwned TryLookup (the owner's miss — counted
  /// here), fires registered continuations, and wakes parked waiters.
  void CompleteOwned(const core::SynthesisHierarchy& sh,
                     const core::SynthesisOptions& options,
                     std::shared_ptr<const core::SynthesisResult> result,
                     std::int64_t tenant = kNoTenant);

  /// Withdraws a kOwned announcement whose synthesis failed (cancellation
  /// included): continuations fire and parked waiters wake, and each
  /// retries and re-dispatches — the dead-owner contract of the parked
  /// path, verbatim.
  void AbandonOwned(const core::SynthesisHierarchy& sh,
                    const core::SynthesisOptions& options);

  /// Settles an active deferred lookup without retrying: releases its
  /// eviction reservation — exactly like a cancelled parked waiter — and
  /// withdraws its continuation registration. A continuation already
  /// extracted by a settling owner may still fire afterwards; that late
  /// fire must be a no-op for the caller. No-op on an inactive handle.
  void CancelDeferred(DeferredLookup* deferred);

  /// Remote consult for a kOwned TryLookup, before the owner pays for a
  /// local synthesis. Non-null when the plane served the signature: the
  /// fetched result was adopted into the table, the owner's flight was
  /// settled (waking parked waiters and firing continuations), the fetch
  /// was counted as a hit + remote_hit, and `outcome` was filled — the
  /// caller must NOT call CompleteOwned/AbandonOwned and uses the returned
  /// (cap-truncated) result directly. Null — no backend, plane unavailable,
  /// plane miss with the grant now ours, or retry budget exhausted — leaves
  /// the flight untouched: synthesize locally and settle as usual
  /// (CompleteOwned publishes back to the plane). May block for bounded
  /// retry-after waits behind a foreign in-flight synthesis; returns early
  /// (null) when `options.cancel` fires.
  std::shared_ptr<const core::SynthesisResult> FetchRemoteOwned(
      const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options,
      CacheLookupOutcome* outcome = nullptr);

  /// Cache-plane (server-side) lookup by persisted base key, for the wire
  /// cache server (src/server/planner_server.h). Non-blocking: true when an
  /// entry serves `cap`, filling `key` (the entry's full persisted Key) and
  /// `result` (with stats.seconds restored to the original synthesis
  /// wall-clock, so the wire carries the cross-process counterfactual cost)
  /// and touching the LRU; the entry is returned whole — the querying
  /// worker truncates to its own cap. `in_flight`, when non-null, reports
  /// whether a local synthesis of the base is in flight on this process (a
  /// miss with in_flight is answered retry-after, not with a grant). Does
  /// not count hit/miss stats: wire lookups are foreign workers' queries,
  /// tallied by the server's own counters.
  bool LookupByKey(const std::string& base_key, std::int64_t cap,
                   std::string* key, core::SynthesisResult* result,
                   bool* in_flight = nullptr);

  /// Cache-plane publish of a wire entry under its persisted Key (cap
  /// parsed back out like Preload; an unparsable cap is taken to be the
  /// program count). False — and a no-op — when an existing entry already
  /// subsumes the incoming one, so a stale worker's smaller-cap publish
  /// never clobbers a bigger entry. Counts no miss: the synthesis ran on a
  /// foreign process.
  bool PublishByKey(const std::string& key, core::SynthesisResult result);

  /// The base-key prefix of a persisted Key() string (the key unchanged
  /// when it does not embed a cap) — what grant bookkeeping is keyed by.
  static std::string BaseOfKey(const std::string& key);

  /// Full cache key for a hierarchy under the given options — the
  /// persistence identity (engine/cache_store.h stores entries under it).
  /// Equal to BaseKey(sh, options) + ";cap=" + max_programs.
  static std::string Key(const core::SynthesisHierarchy& sh,
                         const core::SynthesisOptions& options);

  /// Lookup identity: the signature plus every option that subsumption
  /// cannot bridge (max_program_size). Queries differing only in
  /// max_programs share a base key and can serve each other by truncation.
  static std::string BaseKey(const core::SynthesisHierarchy& sh,
                             const core::SynthesisOptions& options);

  /// Seeds the cache with entries decoded from a persistent store
  /// (engine/cache_store.h), keyed by Key() strings; the max_programs cap
  /// each entry was synthesized under is parsed back out of its key (an
  /// unparsable cap is conservatively taken to be the entry's program count,
  /// so the entry never claims programs beyond the ones it holds). Bases
  /// already present keep their in-memory entry. Served results report
  /// stats.seconds == 0, because this process spent nothing synthesizing
  /// them; the persisted wall-clock is retained internally so the
  /// seconds-saved accounting still reflects the cross-run savings.
  /// Returns the number of entries inserted (an LRU cap applies afterwards:
  /// preloading more entries than the cap keeps only the last `max_entries`
  /// of the load order and counts the rest as evictions).
  std::int64_t Preload(
      std::vector<std::pair<std::string, core::SynthesisResult>> entries);

  /// Key-sorted copy of every entry for persistence, under full Key()
  /// strings. Each result carries its *original* synthesis wall-clock (even
  /// for entries that were themselves preloaded), so save/load round trips
  /// preserve the counterfactual cost.
  std::vector<std::pair<std::string, core::SynthesisResult>> Snapshot() const;

  SynthesisCacheStats stats() const;
  std::size_t size() const;
  std::int64_t max_entries() const { return max_entries_; }
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const core::SynthesisResult> result;
    /// stats.seconds as originally synthesized; differs from
    /// result->stats.seconds only for preloaded entries (zeroed on serve).
    double original_seconds = 0.0;
    bool from_disk = false;
    /// The max_programs cap the entry was synthesized under.
    std::int64_t max_programs = 0;
    /// The tenant whose query synthesized the entry (kNoTenant for
    /// preloaded or untagged entries).
    std::int64_t owner_tenant = kNoTenant;
    /// This base's position in lru_ (most-recently-used first).
    std::list<std::string>::iterator lru;

    /// True when the synthesis finished below its cap: the program list is
    /// the whole solution set, so any cap can be served from it.
    bool complete() const {
      return static_cast<std::int64_t>(result->programs.size()) < max_programs;
    }
    bool CanServe(std::int64_t cap) const {
      return complete() || cap <= max_programs;
    }
  };

  /// One signature currently being synthesized; later arrivals block in
  /// Wait() instead of synthesizing again. The owner signals completion (or
  /// withdrawal) with MarkDone(); a cancellable waiter additionally
  /// registers the cv with its own CancelToken (common/cancel.h), so a
  /// cancel of *its* request wakes it immediately — no poll interval.
  struct InFlight {
    void MarkDone();
    /// Blocks until MarkDone(); true then. False when `cancel` aborted
    /// first — including deadline expiry, which never notifies a cv, so the
    /// block is bounded by the token's armed deadline.
    bool Wait(const CancelToken& cancel);

    std::mutex m;
    std::condition_variable cv;
    bool done = false;

    /// One deferred waiter's completion callback. Guarded by the *cache's*
    /// mu_ (not by `m`): registration, withdrawal, and extraction all
    /// happen under the cache lock; firing happens outside every lock.
    struct Continuation {
      std::uint64_t id = 0;
      std::function<void()> fn;
    };
    std::vector<Continuation> continuations;
  };

  /// Inserts or replaces the entry at `base` (mu_ held), maintaining the
  /// LRU list.
  Entry& PublishLocked(const std::string& base, Entry entry);
  /// The shared hit path of GetOrSynthesize and TryLookup: LRU touch, hit
  /// stats and outcome attribution, then (unlocked) the exact subsumption
  /// truncation. `lock` must hold mu_ on entry; released on return.
  std::shared_ptr<const core::SynthesisResult> ServeHitLocked(
      std::unique_lock<std::mutex>& lock, Entry& entry, std::int64_t cap,
      std::int64_t tenant, bool waited, CacheLookupOutcome* outcome);
  /// Settles the flight at `base`: erases the announcement and extracts its
  /// continuations under `lock`, then (unlocked) wakes parked waiters and
  /// fires the continuations. `lock` must hold mu_ on entry; released on
  /// return.
  void SettleFlight(std::unique_lock<std::mutex>& lock,
                    const std::string& base);
  /// Moves `base` to the front of the LRU list (mu_ held).
  void TouchLocked(Entry& entry);
  /// The remote-plane lookup loop (no lock held): kHit fills
  /// `result`/`entry_cap` and returns true; kOwned returns false (the grant
  /// is ours — synthesize); kRetryAfter sleeps and retries within a bounded
  /// budget; kUnavailable / exhausted budget / malformed reply count
  /// remote_errors and return false. Checks `options.cancel` between
  /// rounds.
  bool ConsultRemote(RemoteCacheBackend& remote, const std::string& base,
                     const core::SynthesisOptions& options,
                     core::SynthesisResult* result, std::int64_t* entry_cap);
  /// Adopts a remote-plane hit while owning the flight at `base`: publishes
  /// the fetched entry (serve seconds zeroed, original retained), counts a
  /// hit + remote_hit, fills `outcome`, settles the flight, and returns the
  /// (cap-truncated) result. Takes mu_.
  std::shared_ptr<const core::SynthesisResult> AdoptRemoteHit(
      const std::string& base, core::SynthesisResult fetched,
      std::int64_t entry_cap, std::int64_t cap, bool waited,
      CacheLookupOutcome* outcome);
  /// Drops least-recently-used entries until the cap holds, skipping bases
  /// with outstanding waiter reservations (mu_ held); a no-op when
  /// max_entries_ <= 0.
  void EvictLocked();

  const std::int64_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  ///< by BaseKey
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  /// Bases with in-flight waiters parked on them (count of waiters): a
  /// reservation makes the base immune to LRU eviction until the waiter's
  /// post-wake lookup has run, closing the publish-to-read window.
  std::unordered_map<std::string, std::int64_t> reserved_;
  std::list<std::string> lru_;  ///< base keys, most-recently-used first
  /// Tags deferred-lookup continuation registrations so CancelDeferred can
  /// withdraw exactly its own from a flight (never reused, so a stale tag
  /// matches nothing on a successor flight).
  std::uint64_t next_continuation_id_ = 1;
  SynthesisCacheStats stats_;
  /// The remote cache plane; nullptr for the (default) local-only cache.
  /// Guarded by mu_ for the set; operations snapshot the shared_ptr under
  /// the lock and call the backend outside it.
  std::shared_ptr<RemoteCacheBackend> remote_;
};

}  // namespace p2::engine

#endif  // P2_ENGINE_SYNTHESIS_CACHE_H_
