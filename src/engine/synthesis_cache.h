// Memoization of SynthesizePrograms keyed by the canonical signature of the
// synthesis hierarchy (core::SynthesisHierarchy::Signature) plus the
// synthesis options. Under the paper's preferred kReductionAxes hierarchy
// many placements of one experiment induce isomorphic hierarchies — same
// level cardinalities, same goal groups — whose program sets are identical
// up to lowering, so synthesizing once per signature removes the dominant
// cost of a multi-placement experiment. Thread-safe; synthesis runs outside
// the lock so concurrent misses on different signatures do not serialize.
#ifndef P2_ENGINE_SYNTHESIS_CACHE_H_
#define P2_ENGINE_SYNTHESIS_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/synthesizer.h"

namespace p2::engine {

struct SynthesisCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Sum of the original synthesis wall-clock of every entry served from the
  /// cache: the time a cacheless run would have spent re-synthesizing.
  double seconds_saved = 0.0;
};

class SynthesisCache {
 public:
  /// Returns the memoized synthesis result for `sh`'s signature, running
  /// core::SynthesizePrograms on a miss. Safe to call concurrently; if two
  /// threads miss the same signature simultaneously the first insert wins
  /// (both return the same programs — synthesis is deterministic — and both
  /// count as misses, since both actually synthesized).
  std::shared_ptr<const core::SynthesisResult> GetOrSynthesize(
      const core::SynthesisHierarchy& sh, const core::SynthesisOptions& options);

  /// Cache key for a hierarchy under the given options.
  static std::string Key(const core::SynthesisHierarchy& sh,
                         const core::SynthesisOptions& options);

  SynthesisCacheStats stats() const;
  std::size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const core::SynthesisResult>>
      entries_;
  SynthesisCacheStats stats_;
};

}  // namespace p2::engine

#endif  // P2_ENGINE_SYNTHESIS_CACHE_H_
