// GPU cluster models matching the paper's Figure 9 systems: a node model
// (intra-node transports) replicated `num_nodes` times over a data-center
// network. Consumed by both the analytic cost model (src/cost) and the
// flow-level runtime substrate (src/runtime).
#ifndef P2_TOPOLOGY_CLUSTER_H_
#define P2_TOPOLOGY_CLUSTER_H_

#include <cstdint>
#include <string>

#include "topology/system.h"

namespace p2::topology {

/// How GPUs inside one node talk to each other.
enum class IntraNodeTransport {
  kNvSwitch,    // every GPU has full-bandwidth access to a shared switch (A100)
  kNvLinkRing,  // GPUs form a physical ring; subgroups fall back to PCIe (V100)
};

const char* ToString(IntraNodeTransport t);

/// One machine. Bandwidths are GB/s for a single direction; latencies are
/// seconds per message hop.
struct GpuNodeModel {
  std::string name;
  int gpus_per_node = 8;
  IntraNodeTransport transport = IntraNodeTransport::kNvSwitch;

  double local_bandwidth = 270.0;  ///< per-GPU local link, one direction
  double local_latency = 2e-6;

  /// PCIe fallback domains (V100: 2 domains of gpus_per_node/2 GPUs behind one
  /// PCIe switch each). 0 means no PCIe fallback (A100-style).
  int pcie_domains = 0;
  double pcie_bandwidth = 32.0;  ///< per-domain switch capacity, shared
  double pcie_latency = 5e-6;

  /// One NIC per node; its capacity is shared by every flow entering or
  /// leaving the node (and, for V100, by cross-PCIe-domain traffic —
  /// the paper's Fig. 9b modeling simplification).
  double nic_bandwidth = 7.5;  ///< 100 Gbps at 60% utilization ~ 7.5 GB/s
  double nic_latency = 1e-5;

  int PcieDomainOf(int local_rank) const;
};

/// A homogeneous cluster: `num_nodes` copies of `node` on a data-center
/// fabric. With `racks == 1` the fabric is non-blocking (per-path capacity =
/// NIC capacity; the NIC is the bottleneck, as in the paper's systems).
/// With `racks > 1` the nodes are distributed evenly over racks whose
/// uplinks to the core switch have `rack_uplink_bandwidth` capacity shared
/// by all cross-rack traffic of the rack — the classic oversubscribed
/// data-center topology, and a third hierarchy level for P2 to exploit.
struct Cluster {
  GpuNodeModel node;
  int num_nodes = 2;
  double dcn_latency = 2.5e-5;

  int racks = 1;
  double rack_uplink_bandwidth = 0.0;  ///< required when racks > 1
  double rack_uplink_latency = 5e-5;

  int num_devices() const { return num_nodes * node.gpus_per_node; }
  int NodeOf(int device) const { return device / node.gpus_per_node; }
  int LocalRank(int device) const { return device % node.gpus_per_node; }
  int nodes_per_rack() const { return num_nodes / racks; }
  int RackOf(int device) const { return NodeOf(device) / nodes_per_rack(); }

  /// The hierarchy the paper uses for these systems: [(node, N), (gpu, G)],
  /// or [(rack, R), (node, N/R), (gpu, G)] for racked clusters.
  SystemHierarchy hierarchy() const;

  /// Canonical identity of the *modeled* machine: every parameter the cost
  /// model or the runtime substrate reads, and nothing cosmetic. Two
  /// clusters with equal fingerprints produce identical plans for any
  /// query, so the planning service keys its engine registry by it
  /// (engine/service.h). Properties:
  ///   - renumbering/labelling-stable: the node `name` is display-only and
  ///     excluded, and parameters that cannot affect any plan are
  ///     normalized away (PCIe figures when there are no PCIe domains, rack
  ///     uplink figures when there is a single rack);
  ///   - cost-parameter-aware: every bandwidth and latency is rendered with
  ///     %.17g, so distinct values never collide.
  std::string Fingerprint() const;

  std::string ToString() const;
};

}  // namespace p2::topology

#endif  // P2_TOPOLOGY_CLUSTER_H_
