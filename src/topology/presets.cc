#include "topology/presets.h"

namespace p2::topology {

Cluster MakeA100Cluster(int num_nodes) {
  GpuNodeModel node;
  node.name = "A100";
  node.gpus_per_node = 16;
  node.transport = IntraNodeTransport::kNvSwitch;
  node.local_bandwidth = 270.0;  // 90% of nominal 300 GB/s, one direction
  node.local_latency = 2e-6;
  node.pcie_domains = 0;
  node.nic_bandwidth = 7.5;  // 100 Gbps at 60%
  node.nic_latency = 1e-5;
  return Cluster{node, num_nodes, /*dcn_latency=*/2.5e-5};
}

Cluster MakeV100Cluster(int num_nodes) {
  GpuNodeModel node;
  node.name = "V100";
  node.gpus_per_node = 8;
  node.transport = IntraNodeTransport::kNvLinkRing;
  node.local_bandwidth = 135.0;  // 90% of nominal 150 GB/s, one direction
  node.local_latency = 2e-6;
  node.pcie_domains = 2;
  node.pcie_bandwidth = 32.0;
  node.pcie_latency = 5e-6;
  node.nic_bandwidth = 7.5;
  node.nic_latency = 1e-5;
  return Cluster{node, num_nodes, /*dcn_latency=*/2.5e-5};
}

Cluster MakeRackedA100Cluster(int racks, int nodes_per_rack,
                              double oversubscription) {
  Cluster cluster = MakeA100Cluster(racks * nodes_per_rack);
  cluster.racks = racks;
  cluster.rack_uplink_bandwidth =
      nodes_per_rack * cluster.node.nic_bandwidth / oversubscription;
  return cluster;
}

SystemHierarchy MakeRunningExampleHierarchy() {
  return SystemHierarchy({Level{"rack", 1}, Level{"server", 2},
                          Level{"cpu", 2}, Level{"gpu", 4}});
}

}  // namespace p2::topology
