// The hierarchical system model of P2 (paper Section 2, Figure 2a):
// a system hierarchy is an ordered list of named levels with cardinalities,
// outermost level first, e.g. [(rack,1), (server,2), (cpu,2), (gpu,4)].
#ifndef P2_TOPOLOGY_SYSTEM_H_
#define P2_TOPOLOGY_SYSTEM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace p2::topology {

/// One level of the hardware hierarchy: `cardinality` children of this kind
/// per parent node (the outermost level's parent being the whole system).
struct Level {
  std::string name;
  std::int64_t cardinality = 1;

  friend bool operator==(const Level&, const Level&) = default;
};

/// An ordered hardware hierarchy. Devices live at the innermost level; the
/// total device count is the product of all cardinalities. Device ids are
/// mixed-radix indices over the level cardinalities, outermost level first.
class SystemHierarchy {
 public:
  SystemHierarchy() = default;
  explicit SystemHierarchy(std::vector<Level> levels);

  /// Convenience: unnamed levels "L0", "L1", ... from cardinalities.
  static SystemHierarchy FromCardinalities(std::span<const std::int64_t> cards);

  const std::vector<Level>& levels() const { return levels_; }
  int depth() const { return static_cast<int>(levels_.size()); }
  std::int64_t cardinality(int level) const;
  const std::string& name(int level) const;

  /// Product of all cardinalities (number of leaf devices).
  std::int64_t num_devices() const;

  /// Cardinalities as a plain vector, outermost first.
  std::vector<std::int64_t> cardinalities() const;

  /// Number of leaf devices under one node of `level`
  /// (= product of cardinalities strictly below `level`).
  std::int64_t subtree_size(int level) const;

  /// Hierarchy coordinates of a device id (digit per level, outermost first).
  std::vector<std::int64_t> coordinates(std::int64_t device) const;
  std::int64_t device_of(std::span<const std::int64_t> coords) const;

  /// "[1 2 2 4]"
  std::string ToShortString() const;
  /// "[(rack, 1), (server, 2), (cpu, 2), (gpu, 4)]"
  std::string ToString() const;

  friend bool operator==(const SystemHierarchy&, const SystemHierarchy&) =
      default;

 private:
  std::vector<Level> levels_;
};

}  // namespace p2::topology

#endif  // P2_TOPOLOGY_SYSTEM_H_
