#include "topology/cluster.h"

#include <sstream>
#include <stdexcept>

namespace p2::topology {

const char* ToString(IntraNodeTransport t) {
  switch (t) {
    case IntraNodeTransport::kNvSwitch:
      return "NVSwitch";
    case IntraNodeTransport::kNvLinkRing:
      return "NVLinkRing";
  }
  return "?";
}

int GpuNodeModel::PcieDomainOf(int local_rank) const {
  if (pcie_domains <= 0) return -1;
  if (local_rank < 0 || local_rank >= gpus_per_node) {
    throw std::out_of_range("GpuNodeModel::PcieDomainOf: bad rank");
  }
  const int per_domain = gpus_per_node / pcie_domains;
  return local_rank / per_domain;
}

SystemHierarchy Cluster::hierarchy() const {
  if (racks > 1) {
    if (num_nodes % racks != 0) {
      throw std::invalid_argument("Cluster: racks must divide num_nodes");
    }
    return SystemHierarchy({Level{"rack", racks},
                            Level{"node", num_nodes / racks},
                            Level{"gpu", node.gpus_per_node}});
  }
  return SystemHierarchy({Level{"node", num_nodes},
                          Level{"gpu", node.gpus_per_node}});
}

std::string Cluster::ToString() const {
  std::ostringstream os;
  if (racks > 1) os << racks << " racks of ";
  os << (racks > 1 ? nodes_per_rack() : num_nodes) << " nodes, each with "
     << node.gpus_per_node << ' ' << node.name << " ("
     << topology::ToString(node.transport) << ")";
  return os.str();
}

}  // namespace p2::topology
