#include "topology/cluster.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace p2::topology {

const char* ToString(IntraNodeTransport t) {
  switch (t) {
    case IntraNodeTransport::kNvSwitch:
      return "NVSwitch";
    case IntraNodeTransport::kNvLinkRing:
      return "NVLinkRing";
  }
  return "?";
}

int GpuNodeModel::PcieDomainOf(int local_rank) const {
  if (pcie_domains <= 0) return -1;
  if (local_rank < 0 || local_rank >= gpus_per_node) {
    throw std::out_of_range("GpuNodeModel::PcieDomainOf: bad rank");
  }
  const int per_domain = gpus_per_node / pcie_domains;
  return local_rank / per_domain;
}

SystemHierarchy Cluster::hierarchy() const {
  if (racks > 1) {
    if (num_nodes % racks != 0) {
      throw std::invalid_argument("Cluster: racks must divide num_nodes");
    }
    return SystemHierarchy({Level{"rack", racks},
                            Level{"node", num_nodes / racks},
                            Level{"gpu", node.gpus_per_node}});
  }
  return SystemHierarchy({Level{"node", num_nodes},
                          Level{"gpu", node.gpus_per_node}});
}

std::string Cluster::Fingerprint() const {
  // %.17g round-trips doubles exactly: clusters differing in any modeled
  // bandwidth or latency get distinct fingerprints.
  const auto f = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::ostringstream os;
  os << "gpu=" << node.gpus_per_node << ':'
     << topology::ToString(node.transport) << ";local=" << f(node.local_bandwidth)
     << ',' << f(node.local_latency);
  // Parameters that cannot reach the cost model or the flow simulator are
  // normalized away, not serialized: an A100-style node's PCIe figures and a
  // single-rack cluster's uplink figures describe hardware that does not
  // exist, so clusters differing only there are the same machine.
  if (node.pcie_domains > 0) {
    os << ";pcie=" << node.pcie_domains << ',' << f(node.pcie_bandwidth) << ','
       << f(node.pcie_latency);
  }
  os << ";nic=" << f(node.nic_bandwidth) << ',' << f(node.nic_latency)
     << ";nodes=" << num_nodes << ";dcn=" << f(dcn_latency);
  if (racks > 1) {
    os << ";racks=" << racks << ',' << f(rack_uplink_bandwidth) << ','
       << f(rack_uplink_latency);
  }
  return os.str();
}

std::string Cluster::ToString() const {
  std::ostringstream os;
  if (racks > 1) os << racks << " racks of ";
  os << (racks > 1 ? nodes_per_rack() : num_nodes) << " nodes, each with "
     << node.gpus_per_node << ' ' << node.name << " ("
     << topology::ToString(node.transport) << ")";
  return os.str();
}

}  // namespace p2::topology
