// The two GCP systems of the paper's evaluation (Figure 9) plus the running
// example of Figure 2a. Bandwidth assumptions follow Section 5: 100 Gbps NICs
// at 60% utilization (7.5-8 GB/s), PCIe switches at 32 GB/s, V100 NVLink ring
// at 135 GB/s per direction, A100 NVSwitch at 270 GB/s unidirectional.
#ifndef P2_TOPOLOGY_PRESETS_H_
#define P2_TOPOLOGY_PRESETS_H_

#include "topology/cluster.h"
#include "topology/system.h"

namespace p2::topology {

/// Fig. 9a: nodes of 16 A100s sharing one NVSwitch and one NIC.
Cluster MakeA100Cluster(int num_nodes);

/// Fig. 9b: nodes of 8 V100s forming an NVLink ring, two PCIe domains of 4
/// GPUs, one (modeled) shared NIC.
Cluster MakeV100Cluster(int num_nodes);

/// A rack-scale A100 cluster: `racks` racks of `nodes_per_rack` nodes, rack
/// uplinks oversubscribed by `oversubscription` (uplink capacity =
/// nodes_per_rack * NIC bandwidth / oversubscription). Gives P2 a three-level
/// hierarchy [(rack, R), (node, N), (gpu, 16)] to synthesize against — the
/// conclusion's "projections for new system hierarchies" use case.
Cluster MakeRackedA100Cluster(int racks, int nodes_per_rack,
                              double oversubscription = 4.0);

/// Fig. 2a running example: [(rack,1), (server,2), (cpu,2), (gpu,4)].
SystemHierarchy MakeRunningExampleHierarchy();

}  // namespace p2::topology

#endif  // P2_TOPOLOGY_PRESETS_H_
