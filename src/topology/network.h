// Explicit network graph of a cluster for the flow-level runtime substrate:
// GPUs, switches, NICs and the data-center fabric as vertices; directed
// capacity/latency links between them; shortest-path routing that never
// relays traffic through a GPU.
//
// This plays the role of the paper's physical testbed (Fig. 9 systems): the
// executor schedules collective transfers over these links and measures the
// simulated wall-clock, against which the analytic model (src/cost) is
// validated — exactly how the paper validates its simulator against GCP runs.
#ifndef P2_TOPOLOGY_NETWORK_H_
#define P2_TOPOLOGY_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "topology/cluster.h"

namespace p2::topology {

struct Link {
  int src = 0;
  int dst = 0;
  double bandwidth = 0.0;  ///< bytes per second
  double latency = 0.0;    ///< seconds per message
  /// Per-extra-flow capacity degradation (incast/packet-processing overhead):
  /// with f concurrent flows the effective capacity is
  /// bandwidth / (1 + congestion * (f - 1)). Non-zero only on NIC links of
  /// kMeasured-fidelity networks.
  double congestion = 0.0;
};

/// Which view of the hardware a network models.
///  - kNominal: datasheet bandwidths, ideal fabric. What the paper's analytic
///    simulator (src/cost) assumes.
///  - kMeasured: the "physical testbed" the runtime substrate executes on:
///    NIC links degrade under many concurrent flows and the data-center
///    fabric paths are mildly heterogeneous (deterministic per-NIC factors) —
///    real-world effects the analytic model does not capture, which is what
///    makes the paper's Table 5 accuracy study non-trivial.
enum class NetworkFidelity { kNominal, kMeasured };

class Network {
 public:
  /// Builds the graph for a cluster:
  ///  - NVSwitch nodes: gpu <-> switch <-> nic;
  ///  - NVLink-ring nodes: directed ring gpu_i -> gpu_(i+1) (both ways),
  ///    gpu <-> PCIe domain switch, PCIe switch <-> nic (the shared-NIC
  ///    cross-domain simplification of Fig. 9b);
  ///  - all NICs <-> one data-center switch.
  static Network Build(const Cluster& cluster,
                       NetworkFidelity fidelity = NetworkFidelity::kNominal);

  int num_vertices() const { return num_vertices_; }
  const std::vector<Link>& links() const { return links_; }
  int DeviceVertex(int device) const;
  int num_devices() const { return num_devices_; }

  /// Link indices of the routed path from device src to device dst.
  /// Routing minimizes hop count, breaking ties by total inverse bandwidth,
  /// and never transits *through* a GPU vertex. NVLink ring links are only
  /// usable as a direct single hop between physically adjacent GPUs.
  const std::vector<int>& PathLinks(int src_device, int dst_device) const;

 private:
  int AddVertex();
  int AddLink(int src, int dst, double gbps, double latency,
              double congestion = 0.0);
  void AddDuplex(int a, int b, double gbps, double latency,
                 double congestion = 0.0);
  void ComputeRoutes();

  int num_vertices_ = 0;
  int num_devices_ = 0;
  std::vector<Link> links_;
  std::vector<int> device_vertex_;
  std::vector<bool> is_gpu_vertex_;
  // routes_[src * num_devices + dst] = link indices.
  std::vector<std::vector<int>> routes_;
};

}  // namespace p2::topology

#endif  // P2_TOPOLOGY_NETWORK_H_
