#include "topology/network.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace p2::topology {

namespace {
constexpr double kGb = 1e9;
}

int Network::AddVertex() {
  is_gpu_vertex_.push_back(false);
  return num_vertices_++;
}

int Network::AddLink(int src, int dst, double gbps, double latency,
                     double congestion) {
  links_.push_back(Link{src, dst, gbps * kGb, latency, congestion});
  return static_cast<int>(links_.size()) - 1;
}

void Network::AddDuplex(int a, int b, double gbps, double latency,
                        double congestion) {
  AddLink(a, b, gbps, latency, congestion);
  AddLink(b, a, gbps, latency, congestion);
}

int Network::DeviceVertex(int device) const {
  return device_vertex_.at(static_cast<std::size_t>(device));
}

namespace {

// Deterministic per-NIC fabric factor in [0.92, 1.0]: the measured fabric's
// paths are not perfectly uniform (oversubscription, ECMP imbalance).
double FabricFactor(int node) {
  std::uint64_t h = static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 32;
  return 0.92 + 0.08 * static_cast<double>(h % 1000) / 999.0;
}

// Per-extra-flow NIC capacity degradation of the measured network.
constexpr double kNicCongestion = 0.02;

}  // namespace

Network Network::Build(const Cluster& cluster, NetworkFidelity fidelity) {
  Network net;
  const auto& node = cluster.node;
  net.num_devices_ = cluster.num_devices();
  const bool measured = fidelity == NetworkFidelity::kMeasured;

  const int core = net.AddVertex();  // core (data-center) switch

  // Rack switches: with racks > 1 every rack has an oversubscribed uplink
  // to the core shared by all its nodes' cross-rack traffic.
  std::vector<int> rack_switch;
  if (cluster.racks > 1) {
    if (cluster.rack_uplink_bandwidth <= 0.0) {
      throw std::invalid_argument(
          "Network: racked cluster needs rack_uplink_bandwidth");
    }
    for (int r = 0; r < cluster.racks; ++r) {
      const int sw = net.AddVertex();
      net.AddDuplex(sw, core, cluster.rack_uplink_bandwidth,
                    cluster.rack_uplink_latency,
                    measured ? kNicCongestion : 0.0);
      rack_switch.push_back(sw);
    }
  }

  for (int n = 0; n < cluster.num_nodes; ++n) {
    // NICs attach to their rack's switch, or directly to the core.
    const int dc = cluster.racks > 1
                       ? rack_switch[static_cast<std::size_t>(
                             n / cluster.nodes_per_rack())]
                       : core;
    std::vector<int> gpus;
    gpus.reserve(static_cast<std::size_t>(node.gpus_per_node));
    for (int g = 0; g < node.gpus_per_node; ++g) {
      const int v = net.AddVertex();
      net.is_gpu_vertex_[static_cast<std::size_t>(v)] = true;
      net.device_vertex_.push_back(v);
      gpus.push_back(v);
    }
    const int nic = net.AddVertex();
    const double nic_bw =
        measured ? node.nic_bandwidth * FabricFactor(n) : node.nic_bandwidth;
    const double nic_cong = measured ? kNicCongestion : 0.0;
    net.AddDuplex(nic, dc, nic_bw, cluster.dcn_latency, nic_cong);

    if (node.transport == IntraNodeTransport::kNvSwitch) {
      const int sw = net.AddVertex();
      for (int g = 0; g < node.gpus_per_node; ++g) {
        net.AddDuplex(gpus[static_cast<std::size_t>(g)], sw,
                      node.local_bandwidth, node.local_latency);
      }
      net.AddDuplex(sw, nic, node.nic_bandwidth, node.nic_latency, nic_cong);
    } else {
      // Physical NVLink ring.
      for (int g = 0; g < node.gpus_per_node; ++g) {
        const int next = (g + 1) % node.gpus_per_node;
        net.AddDuplex(gpus[static_cast<std::size_t>(g)],
                      gpus[static_cast<std::size_t>(next)],
                      node.local_bandwidth, node.local_latency);
      }
      // PCIe domains, each behind one switch, joined via the shared NIC.
      const int domains = std::max(1, node.pcie_domains);
      const int per_domain = node.gpus_per_node / domains;
      for (int d = 0; d < domains; ++d) {
        const int sw = net.AddVertex();
        for (int g = d * per_domain; g < (d + 1) * per_domain; ++g) {
          net.AddDuplex(gpus[static_cast<std::size_t>(g)], sw,
                        node.pcie_bandwidth, node.pcie_latency);
        }
        net.AddDuplex(sw, nic, node.nic_bandwidth, node.nic_latency,
                      nic_cong);
      }
    }
  }
  net.ComputeRoutes();
  return net;
}

void Network::ComputeRoutes() {
  // Adjacency.
  std::vector<std::vector<int>> out(static_cast<std::size_t>(num_vertices_));
  for (int l = 0; l < static_cast<int>(links_.size()); ++l) {
    out[static_cast<std::size_t>(links_[static_cast<std::size_t>(l)].src)]
        .push_back(l);
  }

  routes_.assign(
      static_cast<std::size_t>(num_devices_) *
          static_cast<std::size_t>(num_devices_),
      {});

  // Per-source Dijkstra over (hops, inverse-bandwidth sum); GPU vertices are
  // terminal (no transit).
  for (int s = 0; s < num_devices_; ++s) {
    const int sv = DeviceVertex(s);
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::pair<double, double>> dist(
        static_cast<std::size_t>(num_vertices_), {inf, inf});
    std::vector<int> via_link(static_cast<std::size_t>(num_vertices_), -1);
    using Item = std::pair<std::pair<double, double>, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[static_cast<std::size_t>(sv)] = {0.0, 0.0};
    pq.push({{0.0, 0.0}, sv});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(v)]) continue;
      // No transit through GPUs other than the source itself.
      if (v != sv && is_gpu_vertex_[static_cast<std::size_t>(v)]) continue;
      for (int l : out[static_cast<std::size_t>(v)]) {
        const Link& link = links_[static_cast<std::size_t>(l)];
        const std::pair<double, double> nd = {d.first + 1.0,
                                              d.second + 1.0 / link.bandwidth};
        if (nd < dist[static_cast<std::size_t>(link.dst)]) {
          dist[static_cast<std::size_t>(link.dst)] = nd;
          via_link[static_cast<std::size_t>(link.dst)] = l;
          pq.push({nd, link.dst});
        }
      }
    }
    for (int t = 0; t < num_devices_; ++t) {
      if (t == s) continue;
      std::vector<int> path;
      int v = DeviceVertex(t);
      while (v != sv) {
        const int l = via_link[static_cast<std::size_t>(v)];
        if (l < 0) throw std::logic_error("Network: disconnected graph");
        path.push_back(l);
        v = links_[static_cast<std::size_t>(l)].src;
      }
      std::reverse(path.begin(), path.end());
      routes_[static_cast<std::size_t>(s) *
                  static_cast<std::size_t>(num_devices_) +
              static_cast<std::size_t>(t)] = std::move(path);
    }
  }
}

const std::vector<int>& Network::PathLinks(int src_device,
                                           int dst_device) const {
  if (src_device == dst_device) {
    throw std::invalid_argument("Network::PathLinks: src == dst");
  }
  return routes_.at(static_cast<std::size_t>(src_device) *
                        static_cast<std::size_t>(num_devices_) +
                    static_cast<std::size_t>(dst_device));
}

}  // namespace p2::topology
