#include "topology/system.h"

#include <sstream>
#include <stdexcept>

#include "common/math.h"

namespace p2::topology {

SystemHierarchy::SystemHierarchy(std::vector<Level> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) {
    throw std::invalid_argument("SystemHierarchy: needs at least one level");
  }
  for (const Level& l : levels_) {
    if (l.cardinality < 1) {
      throw std::invalid_argument("SystemHierarchy: cardinality must be >= 1");
    }
  }
}

SystemHierarchy SystemHierarchy::FromCardinalities(
    std::span<const std::int64_t> cards) {
  std::vector<Level> levels;
  levels.reserve(cards.size());
  for (std::size_t i = 0; i < cards.size(); ++i) {
    levels.push_back(Level{"L" + std::to_string(i), cards[i]});
  }
  return SystemHierarchy(std::move(levels));
}

std::int64_t SystemHierarchy::cardinality(int level) const {
  return levels_.at(static_cast<std::size_t>(level)).cardinality;
}

const std::string& SystemHierarchy::name(int level) const {
  return levels_.at(static_cast<std::size_t>(level)).name;
}

std::int64_t SystemHierarchy::num_devices() const {
  std::int64_t p = 1;
  for (const Level& l : levels_) p *= l.cardinality;
  return p;
}

std::vector<std::int64_t> SystemHierarchy::cardinalities() const {
  std::vector<std::int64_t> cards;
  cards.reserve(levels_.size());
  for (const Level& l : levels_) cards.push_back(l.cardinality);
  return cards;
}

std::int64_t SystemHierarchy::subtree_size(int level) const {
  if (level < 0 || level >= depth()) {
    throw std::out_of_range("SystemHierarchy::subtree_size: bad level");
  }
  std::int64_t p = 1;
  for (int l = level + 1; l < depth(); ++l) p *= cardinality(l);
  return p;
}

std::vector<std::int64_t> SystemHierarchy::coordinates(
    std::int64_t device) const {
  auto cards = cardinalities();
  return IndexToDigits(device, cards);
}

std::int64_t SystemHierarchy::device_of(
    std::span<const std::int64_t> coords) const {
  auto cards = cardinalities();
  return DigitsToIndex(coords, cards);
}

std::string SystemHierarchy::ToShortString() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (i > 0) os << ' ';
    os << levels_[i].cardinality;
  }
  os << ']';
  return os.str();
}

std::string SystemHierarchy::ToString() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (i > 0) os << ", ";
    os << '(' << levels_[i].name << ", " << levels_[i].cardinality << ')';
  }
  os << ']';
  return os.str();
}

}  // namespace p2::topology
