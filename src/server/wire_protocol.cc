#include "server/wire_protocol.h"

#include <bit>
#include <cmath>

namespace p2::server {

namespace {

// FNV-1a 64-bit, as in engine/cache_store.cc: all a frame needs is
// corruption *detection* — any flipped byte changes the digest.
std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// --- little-endian primitives ---------------------------------------------

void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendI32(std::string* out, std::int32_t v) {
  AppendU32(out, static_cast<std::uint32_t>(v));
}

void AppendI64(std::string* out, std::int64_t v) {
  AppendU64(out, static_cast<std::uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked sequential reader (the cache_store idiom): every Read*
// returns false on exhaustion, so a truncated or lying payload can never
// walk off the buffer.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  bool ReadU8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  bool ReadU32(std::uint32_t* v) {
    if (remaining() < 4) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                bytes_[pos_ + static_cast<std::size_t>(i)]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (remaining() < 8) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                bytes_[pos_ + static_cast<std::size_t>(i)]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool ReadI32(std::int32_t* v) {
    std::uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<std::int32_t>(u);
    return true;
  }

  bool ReadI64(std::int64_t* v) {
    std::uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

  bool ReadString(std::string* v) {
    std::uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (remaining() < len) return false;
    v->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// Sanity bounds for counts and sizes a decoder would otherwise trust from
// the wire. Generous for every real request, tight enough that a forged
// payload cannot demand pathological work.
constexpr std::size_t kMaxAxes = 64;
constexpr int kMaxNodes = 1 << 16;
constexpr int kMaxGpusPerNode = 1 << 12;

void EncodeCluster(std::string* out, const topology::Cluster& cluster) {
  const topology::GpuNodeModel& node = cluster.node;
  AppendString(out, node.name);
  AppendI32(out, node.gpus_per_node);
  AppendU8(out, static_cast<std::uint8_t>(node.transport));
  AppendF64(out, node.local_bandwidth);
  AppendF64(out, node.local_latency);
  AppendI32(out, node.pcie_domains);
  AppendF64(out, node.pcie_bandwidth);
  AppendF64(out, node.pcie_latency);
  AppendF64(out, node.nic_bandwidth);
  AppendF64(out, node.nic_latency);
  AppendI32(out, cluster.num_nodes);
  AppendF64(out, cluster.dcn_latency);
  AppendI32(out, cluster.racks);
  AppendF64(out, cluster.rack_uplink_bandwidth);
  AppendF64(out, cluster.rack_uplink_latency);
}

bool Fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

// Semantic validation mirrors the cache store's decode policy: every
// precondition the engine (hierarchy derivation, cost model) relies on is
// checked here, so a forged request becomes kInvalidArgument, not a crash.
bool DecodeCluster(Reader* r, topology::Cluster* cluster, std::string* error) {
  topology::GpuNodeModel& node = cluster->node;
  std::uint8_t transport = 0;
  if (!r->ReadString(&node.name) || !r->ReadI32(&node.gpus_per_node) ||
      !r->ReadU8(&transport) || !r->ReadF64(&node.local_bandwidth) ||
      !r->ReadF64(&node.local_latency) || !r->ReadI32(&node.pcie_domains) ||
      !r->ReadF64(&node.pcie_bandwidth) || !r->ReadF64(&node.pcie_latency) ||
      !r->ReadF64(&node.nic_bandwidth) || !r->ReadF64(&node.nic_latency) ||
      !r->ReadI32(&cluster->num_nodes) || !r->ReadF64(&cluster->dcn_latency) ||
      !r->ReadI32(&cluster->racks) ||
      !r->ReadF64(&cluster->rack_uplink_bandwidth) ||
      !r->ReadF64(&cluster->rack_uplink_latency)) {
    return Fail(error, "truncated cluster");
  }
  if (transport >
      static_cast<std::uint8_t>(topology::IntraNodeTransport::kNvLinkRing)) {
    return Fail(error, "unknown intra-node transport");
  }
  node.transport = static_cast<topology::IntraNodeTransport>(transport);
  if (node.gpus_per_node < 1 || node.gpus_per_node > kMaxGpusPerNode) {
    return Fail(error, "gpus_per_node out of range");
  }
  if (cluster->num_nodes < 1 || cluster->num_nodes > kMaxNodes) {
    return Fail(error, "num_nodes out of range");
  }
  if (node.pcie_domains < 0 || node.pcie_domains > node.gpus_per_node) {
    return Fail(error, "pcie_domains out of range");
  }
  if (cluster->racks < 1 || cluster->racks > cluster->num_nodes ||
      cluster->num_nodes % cluster->racks != 0) {
    return Fail(error, "racks must evenly divide num_nodes");
  }
  const double finite_checks[] = {
      node.local_bandwidth,  node.local_latency,
      node.pcie_bandwidth,   node.pcie_latency,
      node.nic_bandwidth,    node.nic_latency,
      cluster->dcn_latency,  cluster->rack_uplink_bandwidth,
      cluster->rack_uplink_latency};
  for (double v : finite_checks) {
    if (!std::isfinite(v) || v < 0.0) {
      return Fail(error, "non-finite or negative cluster parameter");
    }
  }
  if (node.local_bandwidth <= 0.0 || node.nic_bandwidth <= 0.0) {
    return Fail(error, "zero link bandwidth");
  }
  return true;
}

void EncodePipelineStats(std::string* out, const engine::PipelineStats& s) {
  AppendI64(out, s.num_placements);
  AppendI64(out, s.unique_hierarchies);
  AppendI64(out, s.cache_hits);
  AppendI64(out, s.cache_misses);
  AppendI64(out, s.cache_dedup_waits);
  AppendI64(out, s.cache_deferred_lookups);
  AppendI64(out, s.cache_cross_tenant_hits);
  AppendI64(out, s.cache_disk_hits);
  AppendI64(out, s.cache_remote_hits);
  AppendI64(out, s.synth_states_visited);
  AppendI64(out, s.synth_states_deduped);
  AppendI64(out, s.synth_branches_pruned);
  AppendI64(out, s.guided_skipped);
  AppendF64(out, s.synthesis_seconds_saved);
  AppendF64(out, s.disk_seconds_saved);
  AppendF64(out, s.synthesis_seconds);
  AppendF64(out, s.evaluation_seconds);
  AppendF64(out, s.total_seconds);
  AppendI32(out, s.threads);
}

bool DecodePipelineStats(Reader* r, engine::PipelineStats* s) {
  return r->ReadI64(&s->num_placements) && r->ReadI64(&s->unique_hierarchies) &&
         r->ReadI64(&s->cache_hits) && r->ReadI64(&s->cache_misses) &&
         r->ReadI64(&s->cache_dedup_waits) &&
         r->ReadI64(&s->cache_deferred_lookups) &&
         r->ReadI64(&s->cache_cross_tenant_hits) &&
         r->ReadI64(&s->cache_disk_hits) &&
         r->ReadI64(&s->cache_remote_hits) &&
         r->ReadI64(&s->synth_states_visited) &&
         r->ReadI64(&s->synth_states_deduped) &&
         r->ReadI64(&s->synth_branches_pruned) &&
         r->ReadI64(&s->guided_skipped) &&
         r->ReadF64(&s->synthesis_seconds_saved) &&
         r->ReadF64(&s->disk_seconds_saved) &&
         r->ReadF64(&s->synthesis_seconds) &&
         r->ReadF64(&s->evaluation_seconds) && r->ReadF64(&s->total_seconds) &&
         r->ReadI32(&s->threads);
}

}  // namespace

const char* ToString(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kCancelled:
      return "CANCELLED";
    case WireStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireStatus::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case WireStatus::kInternal:
      return "INTERNAL";
  }
  return "INTERNAL";
}

const char* ToString(FrameDecodeStatus status) {
  switch (status) {
    case FrameDecodeStatus::kOk:
      return "ok";
    case FrameDecodeStatus::kNeedMore:
      return "need more bytes";
    case FrameDecodeStatus::kBadMagic:
      return "bad frame magic";
    case FrameDecodeStatus::kBadVersion:
      return "unsupported wire version";
    case FrameDecodeStatus::kBadType:
      return "unknown frame type";
    case FrameDecodeStatus::kOversized:
      return "frame payload exceeds the size limit";
    case FrameDecodeStatus::kBadChecksum:
      return "frame checksum mismatch";
  }
  return "unknown decode status";
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  out.append(kFrameMagic);
  AppendU32(&out, kWireVersion);
  AppendU8(&out, static_cast<std::uint8_t>(frame.type));
  AppendU32(&out, static_cast<std::uint32_t>(frame.payload.size()));
  AppendU64(&out, Fnv1a64(frame.payload));
  out.append(frame.payload);
  return out;
}

FrameDecodeStatus DecodeFrame(std::string_view buffer, Frame* frame,
                              std::size_t* consumed) {
  *consumed = 0;
  // Validate the fixed header eagerly — a corrupt magic/version/type fails
  // as soon as those bytes are present, instead of stalling on kNeedMore
  // waiting for a payload length that is itself garbage.
  if (buffer.size() < kFrameMagic.size()) return FrameDecodeStatus::kNeedMore;
  if (buffer.substr(0, kFrameMagic.size()) != kFrameMagic) {
    return FrameDecodeStatus::kBadMagic;
  }
  if (buffer.size() < kFrameHeaderBytes) return FrameDecodeStatus::kNeedMore;
  Reader header(buffer.substr(kFrameMagic.size(),
                              kFrameHeaderBytes - kFrameMagic.size()));
  std::uint32_t version = 0;
  std::uint8_t type = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t checksum = 0;
  header.ReadU32(&version);
  header.ReadU8(&type);
  header.ReadU32(&payload_len);
  header.ReadU64(&checksum);
  if (version != kWireVersion) return FrameDecodeStatus::kBadVersion;
  if (type < static_cast<std::uint8_t>(FrameType::kPlanRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kCachePublishResponse)) {
    return FrameDecodeStatus::kBadType;
  }
  if (payload_len > kMaxFramePayload) return FrameDecodeStatus::kOversized;
  if (buffer.size() < kFrameHeaderBytes + payload_len) {
    return FrameDecodeStatus::kNeedMore;
  }
  const std::string_view payload =
      buffer.substr(kFrameHeaderBytes, payload_len);
  if (Fnv1a64(payload) != checksum) return FrameDecodeStatus::kBadChecksum;
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(payload);
  *consumed = kFrameHeaderBytes + payload_len;
  return FrameDecodeStatus::kOk;
}

std::string EncodePlanRequest(const PlanWireRequest& request) {
  std::string out;
  AppendU8(&out, request.has_cluster ? 1 : 0);
  if (request.has_cluster) {
    EncodeCluster(&out, request.cluster);
  } else {
    AppendString(&out, request.preset_system);
    AppendI32(&out, request.preset_nodes);
  }
  AppendU32(&out, static_cast<std::uint32_t>(request.axes.size()));
  for (std::int64_t a : request.axes) AppendI64(&out, a);
  AppendU32(&out, static_cast<std::uint32_t>(request.reduction_axes.size()));
  for (int a : request.reduction_axes) AppendI32(&out, a);
  AppendI64(&out, request.max_programs);
  AppendI32(&out, request.measure_top_k);
  AppendI64(&out, request.deadline_ms);
  return out;
}

bool DecodePlanRequest(std::string_view payload, PlanWireRequest* request,
                       std::string* error) {
  *request = PlanWireRequest{};
  Reader r(payload);
  std::uint8_t cluster_kind = 0;
  if (!r.ReadU8(&cluster_kind)) return Fail(error, "truncated request");
  if (cluster_kind > 1) return Fail(error, "unknown cluster encoding");
  request->has_cluster = cluster_kind == 1;
  if (request->has_cluster) {
    if (!DecodeCluster(&r, &request->cluster, error)) return false;
  } else {
    if (!r.ReadString(&request->preset_system) ||
        !r.ReadI32(&request->preset_nodes)) {
      return Fail(error, "truncated topology preset");
    }
    if (request->preset_system != "a100" && request->preset_system != "v100") {
      return Fail(error, "unknown topology preset (want a100 or v100)");
    }
    if (request->preset_nodes < 1 || request->preset_nodes > kMaxNodes) {
      return Fail(error, "preset node count out of range");
    }
  }
  std::uint32_t num_axes = 0;
  if (!r.ReadU32(&num_axes)) return Fail(error, "truncated request");
  if (num_axes == 0 || num_axes > kMaxAxes) {
    return Fail(error, "axis count out of range");
  }
  request->axes.reserve(num_axes);
  for (std::uint32_t i = 0; i < num_axes; ++i) {
    std::int64_t axis = 0;
    if (!r.ReadI64(&axis)) return Fail(error, "truncated axes");
    if (axis < 1) return Fail(error, "axis extent must be positive");
    request->axes.push_back(axis);
  }
  std::uint32_t num_reduce = 0;
  if (!r.ReadU32(&num_reduce)) return Fail(error, "truncated request");
  if (num_reduce > num_axes) {
    return Fail(error, "more reduction axes than axes");
  }
  request->reduction_axes.reserve(num_reduce);
  for (std::uint32_t i = 0; i < num_reduce; ++i) {
    std::int32_t axis = 0;
    if (!r.ReadI32(&axis)) return Fail(error, "truncated reduction axes");
    if (axis < 0 || axis >= static_cast<std::int32_t>(num_axes)) {
      return Fail(error, "reduction axis out of range");
    }
    request->reduction_axes.push_back(axis);
  }
  if (!r.ReadI64(&request->max_programs) ||
      !r.ReadI32(&request->measure_top_k) ||
      !r.ReadI64(&request->deadline_ms)) {
    return Fail(error, "truncated request options");
  }
  if (request->max_programs < 0) {
    return Fail(error, "max_programs must be >= 0");
  }
  if (request->deadline_ms < 0) {
    return Fail(error, "deadline_ms must be >= 0");
  }
  if (!r.AtEnd()) return Fail(error, "trailing bytes after request");
  return true;
}

std::string EncodePlanResponse(const PlanWireResponse& response) {
  std::string out;
  AppendU32(&out, static_cast<std::uint32_t>(response.status));
  AppendString(&out, response.message);
  AppendString(&out, response.body);
  EncodePipelineStats(&out, response.stats);
  return out;
}

bool DecodePlanResponse(std::string_view payload, PlanWireResponse* response,
                        std::string* error) {
  *response = PlanWireResponse{};
  Reader r(payload);
  std::uint32_t status = 0;
  if (!r.ReadU32(&status) || !r.ReadString(&response->message) ||
      !r.ReadString(&response->body) ||
      !DecodePipelineStats(&r, &response->stats) || !r.AtEnd()) {
    return Fail(error, "malformed plan response");
  }
  response->status = static_cast<WireStatus>(status);
  return true;
}

std::string EncodeStatusPayload(WireStatus status, std::string_view text) {
  std::string out;
  AppendU32(&out, static_cast<std::uint32_t>(status));
  AppendString(&out, text);
  return out;
}

bool DecodeStatusPayload(std::string_view payload, WireStatus* status,
                         std::string* text) {
  Reader r(payload);
  std::uint32_t raw = 0;
  if (!r.ReadU32(&raw) || !r.ReadString(text) || !r.AtEnd()) return false;
  *status = static_cast<WireStatus>(raw);
  return true;
}

std::string EncodeCacheLookupRequest(const CacheLookupWireRequest& request) {
  std::string out;
  AppendString(&out, request.base_key);
  AppendI64(&out, request.cap);
  return out;
}

bool DecodeCacheLookupRequest(std::string_view payload,
                              CacheLookupWireRequest* request,
                              std::string* error) {
  *request = CacheLookupWireRequest{};
  Reader r(payload);
  if (!r.ReadString(&request->base_key) || !r.ReadI64(&request->cap)) {
    return Fail(error, "truncated cache lookup");
  }
  if (request->base_key.empty()) {
    return Fail(error, "empty cache lookup key");
  }
  if (request->cap < 0) return Fail(error, "cache lookup cap must be >= 0");
  if (!r.AtEnd()) return Fail(error, "trailing bytes after cache lookup");
  return true;
}

std::string EncodeCacheLookupResponse(const CacheLookupWireResponse& response) {
  std::string out;
  AppendU8(&out, static_cast<std::uint8_t>(response.kind));
  AppendI32(&out, response.retry_after_ms);
  if (response.kind == CacheLookupWireResponse::Kind::kHit) {
    AppendString(&out, engine::CacheStore::EncodeEntry(response.entry));
  } else {
    AppendString(&out, std::string_view{});
  }
  return out;
}

bool DecodeCacheLookupResponse(std::string_view payload,
                               CacheLookupWireResponse* response,
                               std::string* error) {
  *response = CacheLookupWireResponse{};
  Reader r(payload);
  std::uint8_t kind = 0;
  std::string entry_bytes;
  if (!r.ReadU8(&kind) || !r.ReadI32(&response->retry_after_ms) ||
      !r.ReadString(&entry_bytes)) {
    return Fail(error, "truncated cache lookup response");
  }
  if (kind < static_cast<std::uint8_t>(CacheLookupWireResponse::Kind::kHit) ||
      kind >
          static_cast<std::uint8_t>(CacheLookupWireResponse::Kind::kRetryAfter)) {
    return Fail(error, "unknown cache lookup response kind");
  }
  response->kind = static_cast<CacheLookupWireResponse::Kind>(kind);
  if (response->retry_after_ms < 0) {
    return Fail(error, "negative retry-after");
  }
  if (response->kind == CacheLookupWireResponse::Kind::kHit) {
    // The disk codec's semantic validation applies to the wire entry too:
    // a checksum-valid but forged hit decodes false here, never reaches
    // lowering.
    if (!engine::CacheStore::DecodeEntry(entry_bytes, &response->entry)) {
      return Fail(error, "malformed cache entry in lookup response");
    }
  } else if (!entry_bytes.empty()) {
    return Fail(error, "unexpected entry bytes in a non-hit response");
  }
  if (!r.AtEnd()) {
    return Fail(error, "trailing bytes after cache lookup response");
  }
  return true;
}

std::string EncodeCachePublishRequest(const engine::CacheFileEntry& entry) {
  return engine::CacheStore::EncodeEntry(entry);
}

bool DecodeCachePublishRequest(std::string_view payload,
                               engine::CacheFileEntry* entry,
                               std::string* error) {
  if (!engine::CacheStore::DecodeEntry(payload, entry)) {
    return Fail(error, "malformed cache entry in publish");
  }
  return true;
}

}  // namespace p2::server
