#include "server/remote_cache_client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace p2::server {

namespace {

constexpr std::size_t kRecvChunk = 64 * 1024;

}  // namespace

RemoteCacheClient::RemoteCacheClient(int port) : port_(port) {}

RemoteCacheClient::~RemoteCacheClient() {
  std::unique_lock<std::mutex> lock(mu_);
  CloseLocked();
}

void RemoteCacheClient::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool RemoteCacheClient::EnsureConnectedLocked() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  buffer_.clear();
  return true;
}

bool RemoteCacheClient::SendRawLocked(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool RemoteCacheClient::ReceiveFrameLocked(Frame* frame) {
  std::string chunk(kRecvChunk, '\0');
  for (;;) {
    std::size_t consumed = 0;
    const FrameDecodeStatus status = DecodeFrame(buffer_, frame, &consumed);
    if (status == FrameDecodeStatus::kOk) {
      buffer_.erase(0, consumed);
      return true;
    }
    if (status != FrameDecodeStatus::kNeedMore) return false;
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer_.append(chunk.data(), static_cast<std::size_t>(n));
  }
}

bool RemoteCacheClient::RoundTripLocked(const Frame& request, Frame* reply) {
  if (!EnsureConnectedLocked()) return false;
  if (!SendRawLocked(EncodeFrame(request)) || !ReceiveFrameLocked(reply)) {
    // The connection is unusable (peer gone, or framing lost mid-stream);
    // drop it so the next call reconnects from a clean slate.
    CloseLocked();
    return false;
  }
  return true;
}

engine::RemoteLookupResult RemoteCacheClient::Lookup(
    const std::string& base_key, std::int64_t cap) {
  engine::RemoteLookupResult result;  // kUnavailable until proven otherwise
  CacheLookupWireRequest request;
  request.base_key = base_key;
  request.cap = cap;
  Frame frame;
  frame.type = FrameType::kCacheLookupRequest;
  frame.payload = EncodeCacheLookupRequest(request);
  Frame reply;
  std::unique_lock<std::mutex> lock(mu_);
  if (!RoundTripLocked(frame, &reply)) return result;
  if (reply.type != FrameType::kCacheLookupResponse) {
    // An Error frame (e.g. the server is not a cache server) or any other
    // type: this plane cannot serve us. The connection itself is still
    // framed correctly, so keep it — the failure is semantic, not
    // transport.
    return result;
  }
  CacheLookupWireResponse wire;
  std::string error;
  if (!DecodeCacheLookupResponse(reply.payload, &wire, &error)) {
    CloseLocked();
    return result;
  }
  switch (wire.kind) {
    case CacheLookupWireResponse::Kind::kHit:
      result.kind = engine::RemoteLookupResult::Kind::kHit;
      result.key = std::move(wire.entry.key);
      result.result = std::move(wire.entry.result);
      break;
    case CacheLookupWireResponse::Kind::kOwned:
      result.kind = engine::RemoteLookupResult::Kind::kOwned;
      break;
    case CacheLookupWireResponse::Kind::kRetryAfter:
      result.kind = engine::RemoteLookupResult::Kind::kRetryAfter;
      result.retry_after_ms = wire.retry_after_ms;
      break;
  }
  return result;
}

bool RemoteCacheClient::Publish(const std::string& key,
                                const core::SynthesisResult& result) {
  engine::CacheFileEntry entry;
  entry.key = key;
  entry.result = result;
  // Stamp 0 = "unknown age": the plane's persistent store stamps the entry
  // at its next save, exactly as it does for v1 files.
  Frame frame;
  frame.type = FrameType::kCachePublishRequest;
  frame.payload = EncodeCachePublishRequest(entry);
  Frame reply;
  std::unique_lock<std::mutex> lock(mu_);
  if (!RoundTripLocked(frame, &reply)) return false;
  if (reply.type != FrameType::kCachePublishResponse) return false;
  WireStatus status = WireStatus::kInternal;
  std::string text;
  if (!DecodeStatusPayload(reply.payload, &status, &text)) {
    CloseLocked();
    return false;
  }
  return status == WireStatus::kOk;
}

}  // namespace p2::server
