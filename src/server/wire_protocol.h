// The planner's wire format: length-prefixed frames in the same codec idiom
// as the on-disk cache (engine/cache_store.cc) — versioned magic,
// little-endian integers, a per-frame FNV-1a-64 checksum, and a
// never-crash decode policy (every malformation is a status, the reader is
// bounds-checked, counts are sanity-bounded before any reserve).
//
//   frame  := magic "P2RF" | version u32 | type u8 | payload_len u32
//             | checksum u64 (FNV-1a-64 of payload) | payload bytes
//
// Frame types (u8):
//   1 PlanRequest          2 PlanResponse
//   3 StatsRequest         4 StatsResponse
//   5 Error                6 ShutdownRequest     7 ShutdownResponse
//   8 CacheLookupRequest   9 CacheLookupResponse
//  10 CachePublishRequest 11 CachePublishResponse
//
// Types 8-11 are the cache-server plane (`p2_server --cache-server`): a
// lookup miss answers with an ownership grant (kOwned) or a retry-after for
// a foreign in-flight synthesis, so two workers never synthesize one
// signature; a publish carries a completed entry in the persisted
// engine/cache_store.h payload encoding — the wire reuses the disk codec,
// semantic validation included.
//
// Statuses are gRPC-style codes so the abort taxonomy of engine/service.h
// maps 1:1: PlanRejected -> kResourceExhausted, PlanCancelled ->
// kCancelled, PlanDeadlineExceeded -> kDeadlineExceeded, codec/validation
// errors -> kInvalidArgument, everything else -> kInternal.
//
// A PlanRequest payload carries either a topology preset ("a100"/"v100" at
// a node count) or a fully serialized topology::Cluster, the experiment
// axes, and the per-request knobs (max_programs, measure_top_k,
// deadline-ms). A PlanResponse carries the wire status, the
// CanonicalResultText body (the byte-identity oracle — equal bytes mean
// equal plans), and the request's PipelineStats.
#ifndef P2_SERVER_WIRE_PROTOCOL_H_
#define P2_SERVER_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/cache_store.h"
#include "engine/engine.h"
#include "topology/cluster.h"

namespace p2::server {

inline constexpr std::string_view kFrameMagic = "P2RF";
/// Bumped to 2 with the cache-server frames: the PlanResponse stats payload
/// grew two counters, so a version-1 peer must fail fast with kBadVersion
/// instead of misparsing.
inline constexpr std::uint32_t kWireVersion = 2;
/// magic + version u32 + type u8 + payload_len u32 + checksum u64.
inline constexpr std::size_t kFrameHeaderBytes = 21;
/// Upper bound a decoder trusts from a length prefix; anything larger is
/// kOversized before a single payload byte is read (a lying length field
/// must not become an allocation).
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kPlanRequest = 1,
  kPlanResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kError = 5,
  kShutdownRequest = 6,
  kShutdownResponse = 7,
  kCacheLookupRequest = 8,
  kCacheLookupResponse = 9,
  kCachePublishRequest = 10,
  kCachePublishResponse = 11,
};

/// gRPC-style status codes (the subset the planner can produce).
enum class WireStatus : std::uint32_t {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kResourceExhausted = 8,
  kInternal = 13,
};

const char* ToString(WireStatus status);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// How far DecodeFrame got. kNeedMore is the only non-terminal status: the
/// buffer simply does not hold a whole frame yet. Every other non-kOk value
/// is a protocol violation the connection cannot recover from (framing is
/// lost), so the server answers with an Error frame and closes.
enum class FrameDecodeStatus {
  kOk,
  kNeedMore,
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,
  kBadChecksum,
};

const char* ToString(FrameDecodeStatus status);

std::string EncodeFrame(const Frame& frame);

/// Decodes the first frame of `buffer`. On kOk fills `frame` and sets
/// `consumed` to the bytes to drop from the buffer; on kNeedMore nothing is
/// consumed; on any error `consumed` is meaningless (the connection is done
/// for). Never throws, never reads out of bounds.
FrameDecodeStatus DecodeFrame(std::string_view buffer, Frame* frame,
                              std::size_t* consumed);

/// The body of a PlanRequest frame. Exactly one of `preset_system` (with
/// `preset_nodes`) or `cluster` (with has_cluster) names the machine.
struct PlanWireRequest {
  bool has_cluster = false;
  topology::Cluster cluster;   ///< used when has_cluster
  std::string preset_system;   ///< "a100" or "v100" otherwise
  int preset_nodes = 1;
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
  std::int64_t max_programs = 0;  ///< 0 = the server engine's default cap
  int measure_top_k = -1;         ///< -1 = the server engine's default
  std::int64_t deadline_ms = 0;   ///< 0 = no deadline
};

std::string EncodePlanRequest(const PlanWireRequest& request);
/// Semantic validation included (known preset system, positive node count,
/// bounded axis counts): a checksum-valid but nonsensical payload decodes
/// false with a reason, never constructs a cluster.
bool DecodePlanRequest(std::string_view payload, PlanWireRequest* request,
                       std::string* error);

/// The body of a PlanResponse frame: `body`/`stats` are meaningful only
/// when status == kOk; `message` only when it is not.
struct PlanWireResponse {
  WireStatus status = WireStatus::kOk;
  std::string message;
  std::string body;  ///< engine::CanonicalResultText of the result
  engine::PipelineStats stats;
};

std::string EncodePlanResponse(const PlanWireResponse& response);
bool DecodePlanResponse(std::string_view payload, PlanWireResponse* response,
                        std::string* error);

/// StatsResponse / Error / CachePublishResponse payloads share one shape:
/// status + a string (the stats JSON document, or the error detail).
std::string EncodeStatusPayload(WireStatus status, std::string_view text);
bool DecodeStatusPayload(std::string_view payload, WireStatus* status,
                         std::string* text);

/// The body of a CacheLookupRequest frame: a SynthesisCache base key (the
/// cap-less lookup identity) plus the querying worker's max_programs cap.
struct CacheLookupWireRequest {
  std::string base_key;
  std::int64_t cap = 0;
};

std::string EncodeCacheLookupRequest(const CacheLookupWireRequest& request);
bool DecodeCacheLookupRequest(std::string_view payload,
                              CacheLookupWireRequest* request,
                              std::string* error);

/// The body of a CacheLookupResponse frame — the ownership-grant protocol:
/// kHit carries an entry that serves the requested cap; kOwned grants the
/// asker the synthesis (no other worker will be granted the base until the
/// grant expires or a publish lands); kRetryAfter means a foreign worker
/// holds the grant (or the server itself is synthesizing the base) — ask
/// again after retry_after_ms.
struct CacheLookupWireResponse {
  enum class Kind : std::uint8_t {
    kHit = 1,
    kOwned = 2,
    kRetryAfter = 3,
  };
  Kind kind = Kind::kOwned;
  std::int32_t retry_after_ms = 0;  ///< meaningful only for kRetryAfter
  /// Meaningful only for kHit; carried in the persisted
  /// engine/cache_store.h entry encoding (semantic validation included on
  /// decode, so a forged hit can never feed the lowering path).
  engine::CacheFileEntry entry;
};

std::string EncodeCacheLookupResponse(const CacheLookupWireResponse& response);
bool DecodeCacheLookupResponse(std::string_view payload,
                               CacheLookupWireResponse* response,
                               std::string* error);

/// A CachePublishRequest payload is exactly one persisted cache entry
/// (engine::CacheStore entry payload bytes); the response is a status
/// payload. Decoding inherits the cache store's semantic validation.
std::string EncodeCachePublishRequest(const engine::CacheFileEntry& entry);
bool DecodeCachePublishRequest(std::string_view payload,
                               engine::CacheFileEntry* entry,
                               std::string* error);

}  // namespace p2::server

#endif  // P2_SERVER_WIRE_PROTOCOL_H_
