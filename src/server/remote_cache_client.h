// Worker-side client for the cache plane served by `p2_server
// --cache-server`: an engine::RemoteCacheBackend that speaks the framed
// protocol of server/wire_protocol.h (frame types 8-11) over one TCP
// connection to the loopback interface.
//
// The backend contract (engine/remote_cache.h) is "never throw, never
// wedge": construction does not connect (the ctor cannot fail), the first
// call connects lazily, and every transport or protocol failure closes the
// connection and degrades to kUnavailable / false — the SynthesisCache then
// proceeds local-only and counts remote_errors. A later call retries the
// connection, so a plane that restarts is picked back up without any
// client-side state management.
//
// Round trips are serialized under an internal mutex: the plane protocol is
// strictly request/response on one connection, and workers consult the
// plane at most once per signature (the local cache's in-flight dedup sits
// in front), so contention here is not a throughput concern.
#ifndef P2_SERVER_REMOTE_CACHE_CLIENT_H_
#define P2_SERVER_REMOTE_CACHE_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "engine/remote_cache.h"
#include "server/wire_protocol.h"

namespace p2::server {

class RemoteCacheClient : public engine::RemoteCacheBackend {
 public:
  /// Remembers the port; does not connect (lazy, on first use).
  explicit RemoteCacheClient(int port);
  ~RemoteCacheClient() override;

  RemoteCacheClient(const RemoteCacheClient&) = delete;
  RemoteCacheClient& operator=(const RemoteCacheClient&) = delete;

  engine::RemoteLookupResult Lookup(const std::string& base_key,
                                    std::int64_t cap) override;
  bool Publish(const std::string& key,
               const core::SynthesisResult& result) override;

 private:
  /// Connects if not connected; false when the plane is unreachable.
  bool EnsureConnectedLocked();
  /// One request/response exchange; any failure closes the connection and
  /// returns false. `reply` holds a well-formed frame on true.
  bool RoundTripLocked(const Frame& request, Frame* reply);
  bool SendRawLocked(const std::string& bytes);
  bool ReceiveFrameLocked(Frame* frame);
  void CloseLocked();

  const int port_;
  std::mutex mu_;
  int fd_ = -1;         ///< guarded by mu_
  std::string buffer_;  ///< guarded by mu_; bytes beyond the last frame
};

}  // namespace p2::server

#endif  // P2_SERVER_REMOTE_CACHE_CLIENT_H_
