// Blocking client for the planner's wire protocol (server/wire_protocol.h):
// one TCP connection, requests served strictly in order. Concurrency is
// modeled as one client per thread — connections are cheap and the server
// is thread-per-connection, so this keeps the client free of any
// multiplexing state. Used by tools/p2_client and tests/server_test.cc.
#ifndef P2_SERVER_PLANNER_CLIENT_H_
#define P2_SERVER_PLANNER_CLIENT_H_

#include <string>
#include <string_view>

#include "server/wire_protocol.h"

namespace p2::server {

class PlannerClient {
 public:
  /// Connects to the server on the loopback interface; throws
  /// std::runtime_error when the connection cannot be established.
  explicit PlannerClient(int port);
  ~PlannerClient();

  PlannerClient(const PlannerClient&) = delete;
  PlannerClient& operator=(const PlannerClient&) = delete;

  /// One round trip: sends the request, blocks for the response. A
  /// transport failure (server gone, connection dropped) or a protocol
  /// violation comes back as kInternal with a message — the caller never
  /// needs a second error channel.
  PlanWireResponse Plan(const PlanWireRequest& request);

  struct StatsResult {
    WireStatus status = WireStatus::kInternal;
    std::string json;  ///< {"server":{...},"service":{...}} when kOk
  };
  StatsResult Stats();

  /// Requests a server shutdown; true once the ack arrived — which the
  /// server sends only after its service drained, so a true return means
  /// every in-flight request finished and the cache was persisted.
  bool Shutdown();

  // --- low-level surface for protocol tests ---------------------------------

  /// Sends raw bytes as-is (corruption tests forge frames with this).
  bool SendRaw(std::string_view bytes);
  /// Blocks for the next well-formed frame; false on EOF or a decode
  /// failure (the connection is unusable either way).
  bool ReceiveFrame(Frame* frame);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received beyond the last decoded frame
};

}  // namespace p2::server

#endif  // P2_SERVER_PLANNER_CLIENT_H_
