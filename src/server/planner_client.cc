#include "server/planner_client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace p2::server {

namespace {

constexpr std::size_t kRecvChunk = 64 * 1024;

}  // namespace

PlannerClient::PlannerClient(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("connect: ") +
                             std::strerror(saved));
  }
}

PlannerClient::~PlannerClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool PlannerClient::SendRaw(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool PlannerClient::ReceiveFrame(Frame* frame) {
  std::string chunk(kRecvChunk, '\0');
  for (;;) {
    std::size_t consumed = 0;
    const FrameDecodeStatus status = DecodeFrame(buffer_, frame, &consumed);
    if (status == FrameDecodeStatus::kOk) {
      buffer_.erase(0, consumed);
      return true;
    }
    if (status != FrameDecodeStatus::kNeedMore) return false;
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer_.append(chunk.data(), static_cast<std::size_t>(n));
  }
}

PlanWireResponse PlannerClient::Plan(const PlanWireRequest& request) {
  PlanWireResponse response;
  const auto transport_error = [&response](const char* what) {
    response = PlanWireResponse{};
    response.status = WireStatus::kInternal;
    response.message = what;
    return response;
  };
  Frame frame;
  frame.type = FrameType::kPlanRequest;
  frame.payload = EncodePlanRequest(request);
  if (!SendRaw(EncodeFrame(frame))) return transport_error("send failed");
  Frame reply;
  if (!ReceiveFrame(&reply)) return transport_error("connection closed");
  if (reply.type == FrameType::kError) {
    WireStatus status = WireStatus::kInternal;
    std::string message;
    if (DecodeStatusPayload(reply.payload, &status, &message)) {
      response.status = status;
      response.message = message;
      return response;
    }
    return transport_error("malformed error frame");
  }
  if (reply.type != FrameType::kPlanResponse) {
    return transport_error("unexpected frame type");
  }
  std::string error;
  if (!DecodePlanResponse(reply.payload, &response, &error)) {
    return transport_error("malformed plan response");
  }
  return response;
}

PlannerClient::StatsResult PlannerClient::Stats() {
  StatsResult result;
  Frame frame;
  frame.type = FrameType::kStatsRequest;
  if (!SendRaw(EncodeFrame(frame))) {
    result.json = "send failed";
    return result;
  }
  Frame reply;
  if (!ReceiveFrame(&reply) || reply.type != FrameType::kStatsResponse) {
    result.json = "no stats response";
    return result;
  }
  if (!DecodeStatusPayload(reply.payload, &result.status, &result.json)) {
    result.status = WireStatus::kInternal;
    result.json = "malformed stats response";
  }
  return result;
}

bool PlannerClient::Shutdown() {
  Frame frame;
  frame.type = FrameType::kShutdownRequest;
  if (!SendRaw(EncodeFrame(frame))) return false;
  Frame reply;
  return ReceiveFrame(&reply) &&
         reply.type == FrameType::kShutdownResponse;
}

}  // namespace p2::server
