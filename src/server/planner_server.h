// The planning service on the wire: a blocking-accept TCP front end over
// engine/service.h speaking the framed protocol of server/wire_protocol.h.
//
//   PlannerService service(options);          // the in-process service
//   PlannerServer server(service, {.port = 0});
//   server.port();                            // the bound (ephemeral) port
//   ...
//   server.Shutdown();                        // BeginDrain, close, join
//
// One thread blocks in accept(); each connection gets its own thread that
// decodes frames and serves them in order. Every plan request goes through
// PlannerService::Submit, so admission control, per-tenant accounting,
// deadlines and drain apply to wire traffic exactly as to in-process
// callers; the response carries the CanonicalResultText body (byte-equal
// across servers, thread counts and request interleavings) or the wire
// status its abort maps to. A stats request answers with the service's
// ToJson(PlannerServiceStats) wrapped together with the server's own
// counters. A shutdown request drains the service first and acknowledges
// only after the drain — a client that got the ack knows every in-flight
// request finished and the cache was persisted.
//
// Malformed frames never crash the server: the connection gets one Error
// frame with the decode reason and is closed (framing is lost, nothing
// after the bad bytes can be trusted). Malformed *payloads* inside a valid
// frame are answered with INVALID_ARGUMENT and the connection lives on.
//
// With options.cache_server on, the server additionally serves the cache
// plane (frames 8-11 of server/wire_protocol.h): lookups answer from the
// service's SynthesisCache with a hit, an ownership grant, or a retry-after
// for a base another worker is synthesizing (grants expire after
// options.grant_ttl so a dead worker never wedges the plane), and publishes
// land completed entries in the shared cache — so the server's own plans,
// its persistent cache file, and every connected worker share one
// memoization plane.
#ifndef P2_SERVER_PLANNER_SERVER_H_
#define P2_SERVER_PLANNER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/service.h"
#include "server/wire_protocol.h"

namespace p2::server {

/// PlanOutcome -> wire status, 1:1 (the abort taxonomy on the wire).
WireStatus WireStatusFor(engine::PlanOutcome outcome);

struct PlannerServerOptions {
  /// TCP port to bind on the loopback interface; 0 picks an ephemeral port
  /// (read it back via port()).
  int port = 0;
  /// Grace passed to PlannerService::BeginDrain at shutdown: in-flight
  /// requests get this long to finish before being cooperatively cancelled.
  /// nullopt waits for them indefinitely.
  std::optional<std::chrono::milliseconds> drain_grace;
  /// Serve the cache plane (frame types 8-11): sharded workers
  /// (tools/p2_shard) look synthesis entries up here before synthesizing
  /// and publish completions back. Off by default; cache frames on a
  /// non-cache server answer INVALID_ARGUMENT (the connection lives).
  bool cache_server = false;
  /// How long an ownership grant shields a base key from being granted to
  /// another worker. A worker that dies mid-synthesis stops publishing;
  /// after this long the next asker is granted the synthesis instead of
  /// retrying forever.
  std::chrono::milliseconds grant_ttl{10000};
};

/// The server's own counters, separate from (and served alongside) the
/// service's PlannerServiceStats.
struct PlannerServerStats {
  std::int64_t connections = 0;      ///< accepted so far
  std::int64_t requests = 0;         ///< plan requests served (any status)
  std::int64_t plan_ok = 0;          ///< ... of which completed OK
  std::int64_t plan_errors = 0;      ///< ... of which carried a non-OK status
  std::int64_t stats_requests = 0;   ///< stats frames served
  std::int64_t malformed_frames = 0; ///< connections dropped on bad frames
  // Cache-plane counters (all zero unless cache_server is on).
  std::int64_t cache_lookups = 0;    ///< lookup frames served (any answer)
  std::int64_t cache_hits = 0;       ///< ... answered with an entry
  std::int64_t cache_grants = 0;     ///< ... answered with an ownership grant
  std::int64_t cache_retries = 0;    ///< ... answered retry-after
  std::int64_t cache_publishes = 0;  ///< publish frames accepted
};

class PlannerServer {
 public:
  /// Binds and starts accepting immediately; throws std::runtime_error when
  /// the socket cannot be created or bound. `service` is borrowed and must
  /// outlive the server.
  PlannerServer(engine::PlannerService& service,
                PlannerServerOptions options = {});
  /// Shutdown() (idempotent) then joins every thread.
  ~PlannerServer();

  PlannerServer(const PlannerServer&) = delete;
  PlannerServer& operator=(const PlannerServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  int port() const { return port_; }

  /// Graceful stop, callable from any non-connection thread: drains the
  /// service (BeginDrain with options.drain_grace), stops accepting, closes
  /// every connection and joins all threads. Idempotent.
  void Shutdown();

  /// Blocks until a shutdown is requested — by Shutdown() or by a client's
  /// shutdown frame. tools/p2_server parks its main thread here.
  void Wait();

  PlannerServerStats stats() const;

 private:
  /// The drain-and-stop half of Shutdown(), safe to call from a connection
  /// thread (does not join). `keep_fd` is exempted from the connection
  /// close, so the shutdown frame's own connection can still send its ack.
  void RequestShutdown(int keep_fd);
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Serves one decoded frame; false means "close this connection now".
  bool HandleFrame(int fd, const Frame& frame);
  bool SendFrame(int fd, const Frame& frame);
  std::string StatsJson();

  engine::PlannerService& service_;
  const PlannerServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;

  /// Ownership grants of the cache plane: base key -> grant expiry. A base
  /// is granted to the first asker whose lookup misses; later askers get
  /// retry-after until the grant expires or a publish / local synthesis
  /// lands an entry for it. No per-connection identity is needed — the
  /// protocol only promises that at most one *live* worker holds a base's
  /// grant at a time, and a dead worker's grant times out.
  std::mutex grants_mu_;
  std::unordered_map<std::string, std::chrono::steady_clock::time_point>
      grants_;

  std::atomic<bool> shutting_down_{false};
  std::mutex mu_;  ///< guards conn_fds_ and threads_
  /// Serializes shutdown requests (held across the drain, so a racing
  /// second request blocks until the first finished) and backs Wait().
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> threads_;  ///< connection threads
  std::thread accept_thread_;

  std::atomic<std::int64_t> connections_{0};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> plan_ok_{0};
  std::atomic<std::int64_t> plan_errors_{0};
  std::atomic<std::int64_t> stats_requests_{0};
  std::atomic<std::int64_t> malformed_frames_{0};
  std::atomic<std::int64_t> cache_lookups_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::atomic<std::int64_t> cache_grants_{0};
  std::atomic<std::int64_t> cache_retries_{0};
  std::atomic<std::int64_t> cache_publishes_{0};
};

}  // namespace p2::server

#endif  // P2_SERVER_PLANNER_SERVER_H_
