#include "server/planner_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/cli.h"
#include "engine/json_export.h"
#include "engine/report.h"

namespace p2::server {

namespace {

constexpr std::size_t kRecvChunk = 64 * 1024;

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

WireStatus WireStatusFor(engine::PlanOutcome outcome) {
  switch (outcome) {
    case engine::PlanOutcome::kOk:
      return WireStatus::kOk;
    case engine::PlanOutcome::kRejected:
      return WireStatus::kResourceExhausted;
    case engine::PlanOutcome::kCancelled:
      return WireStatus::kCancelled;
    case engine::PlanOutcome::kDeadlineExceeded:
      return WireStatus::kDeadlineExceeded;
    case engine::PlanOutcome::kInvalidArgument:
      return WireStatus::kInvalidArgument;
    case engine::PlanOutcome::kInternal:
      return WireStatus::kInternal;
  }
  return WireStatus::kInternal;
}

PlannerServer::PlannerServer(engine::PlannerService& service,
                             PlannerServerOptions options)
    : service_(service), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Loopback only: the planner has no authentication; exposing it beyond
  // the machine is a deployment decision a proxy should make, not a default.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    ThrowErrno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    ThrowErrno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    ThrowErrno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

PlannerServer::~PlannerServer() {
  Shutdown();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void PlannerServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() on the listener (RequestShutdown) lands here.
      return;
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      ::close(fd);
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.insert(fd);
    threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

bool PlannerServer::SendFrame(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void PlannerServer::ServeConnection(int fd) {
  std::string buffer;
  std::string chunk(kRecvChunk, '\0');
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed, or our shutdown woke the read
    }
    buffer.append(chunk.data(), static_cast<std::size_t>(n));
    // Frames are served strictly in arrival order per connection; a client
    // wanting concurrency opens more connections (tools/p2_client does).
    for (;;) {
      Frame frame;
      std::size_t consumed = 0;
      const FrameDecodeStatus status = DecodeFrame(buffer, &frame, &consumed);
      if (status == FrameDecodeStatus::kNeedMore) break;
      if (status != FrameDecodeStatus::kOk) {
        // Framing is lost: one Error frame with the reason, then close.
        malformed_frames_.fetch_add(1, std::memory_order_relaxed);
        Frame error;
        error.type = FrameType::kError;
        error.payload = EncodeStatusPayload(WireStatus::kInvalidArgument,
                                            ToString(status));
        SendFrame(fd, error);
        open = false;
        break;
      }
      buffer.erase(0, consumed);
      if (!HandleFrame(fd, frame)) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(fd);
}

bool PlannerServer::HandleFrame(int fd, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPlanRequest: {
      requests_.fetch_add(1, std::memory_order_relaxed);
      PlanWireResponse out;
      PlanWireRequest wire;
      std::string decode_error;
      if (!DecodePlanRequest(frame.payload, &wire, &decode_error)) {
        out.status = WireStatus::kInvalidArgument;
        out.message = "bad plan request: " + decode_error;
      } else {
        engine::PlanRequest request;
        request.axes = std::move(wire.axes);
        request.reduction_axes = std::move(wire.reduction_axes);
        request.measure_top_k = wire.measure_top_k;
        request.max_programs = wire.max_programs;
        if (wire.deadline_ms > 0) {
          request.deadline = std::chrono::milliseconds(wire.deadline_ms);
        }
        request.cluster =
            wire.has_cluster
                ? wire.cluster
                : engine::ClusterFromPreset(engine::TopologyPreset{
                      wire.preset_system, wire.preset_nodes});
        try {
          engine::ExperimentResult result =
              service_.Submit(std::move(request)).get();
          out.status = WireStatus::kOk;
          out.body = engine::CanonicalResultText(result);
          out.stats = result.pipeline;
        } catch (const std::exception& e) {
          out.status =
              WireStatusFor(engine::ClassifyPlanError(std::current_exception()));
          out.message = e.what();
        }
      }
      if (out.status == WireStatus::kOk) {
        plan_ok_.fetch_add(1, std::memory_order_relaxed);
      } else {
        plan_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      Frame response;
      response.type = FrameType::kPlanResponse;
      response.payload = EncodePlanResponse(out);
      return SendFrame(fd, response);
    }
    case FrameType::kStatsRequest: {
      // Incremented before rendering, so the served document always reports
      // at least the request it answers — the CI smoke greps for that.
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      Frame response;
      response.type = FrameType::kStatsResponse;
      response.payload = EncodeStatusPayload(WireStatus::kOk, StatsJson());
      return SendFrame(fd, response);
    }
    case FrameType::kShutdownRequest: {
      // Drain first, acknowledge after: the client's ack therefore implies
      // every in-flight request finished and the cache was persisted.
      RequestShutdown(fd);
      Frame response;
      response.type = FrameType::kShutdownResponse;
      SendFrame(fd, response);
      return false;
    }
    case FrameType::kCacheLookupRequest: {
      cache_lookups_.fetch_add(1, std::memory_order_relaxed);
      CacheLookupWireRequest wire;
      std::string decode_error;
      if (!options_.cache_server) {
        decode_error = "cache-server mode disabled on this server";
      } else if (!DecodeCacheLookupRequest(frame.payload, &wire,
                                           &decode_error)) {
        decode_error = "bad cache lookup: " + decode_error;
      } else {
        CacheLookupWireResponse out;
        std::string key;
        core::SynthesisResult result;
        bool in_flight = false;
        if (service_.CacheLookupEntry(wire.base_key, wire.cap, &key, &result,
                                      &in_flight)) {
          out.kind = CacheLookupWireResponse::Kind::kHit;
          out.entry.key = std::move(key);
          out.entry.result = std::move(result);
          cache_hits_.fetch_add(1, std::memory_order_relaxed);
          // The entry exists now; whoever held the grant no longer needs
          // protection and the base can be granted again if the entry is
          // ever evicted.
          std::lock_guard<std::mutex> lock(grants_mu_);
          grants_.erase(wire.base_key);
        } else {
          const auto now = std::chrono::steady_clock::now();
          std::lock_guard<std::mutex> lock(grants_mu_);
          const auto it = grants_.find(wire.base_key);
          const bool foreign_grant = it != grants_.end() && it->second > now;
          if (in_flight || foreign_grant) {
            // Someone — a foreign worker under grant, or this server's own
            // in-flight synthesis — is already searching this signature:
            // the asker retries instead of duplicating the work.
            out.kind = CacheLookupWireResponse::Kind::kRetryAfter;
            std::int64_t suggest_ms = 20;
            if (foreign_grant) {
              suggest_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               it->second - now)
                               .count();
            }
            out.retry_after_ms = static_cast<std::int32_t>(
                std::clamp<std::int64_t>(suggest_ms, 1, 1000));
            cache_retries_.fetch_add(1, std::memory_order_relaxed);
          } else {
            grants_[wire.base_key] = now + options_.grant_ttl;
            out.kind = CacheLookupWireResponse::Kind::kOwned;
            cache_grants_.fetch_add(1, std::memory_order_relaxed);
          }
        }
        Frame response;
        response.type = FrameType::kCacheLookupResponse;
        response.payload = EncodeCacheLookupResponse(out);
        return SendFrame(fd, response);
      }
      // Valid frame, unusable payload (or mode off): INVALID_ARGUMENT, and
      // the connection lives on.
      Frame error;
      error.type = FrameType::kError;
      error.payload =
          EncodeStatusPayload(WireStatus::kInvalidArgument, decode_error);
      return SendFrame(fd, error);
    }
    case FrameType::kCachePublishRequest: {
      engine::CacheFileEntry entry;
      std::string decode_error;
      if (!options_.cache_server) {
        decode_error = "cache-server mode disabled on this server";
      } else if (!DecodeCachePublishRequest(frame.payload, &entry,
                                            &decode_error)) {
        decode_error = "bad cache publish: " + decode_error;
      } else {
        cache_publishes_.fetch_add(1, std::memory_order_relaxed);
        const std::string base = engine::SynthesisCache::BaseOfKey(entry.key);
        service_.CachePublishEntry(entry.key, std::move(entry.result));
        {
          // The publish settles the grant for its base: the next asker is
          // served the entry instead of a retry-after.
          std::lock_guard<std::mutex> lock(grants_mu_);
          grants_.erase(base);
        }
        Frame response;
        response.type = FrameType::kCachePublishResponse;
        response.payload = EncodeStatusPayload(WireStatus::kOk, "");
        return SendFrame(fd, response);
      }
      Frame error;
      error.type = FrameType::kError;
      error.payload =
          EncodeStatusPayload(WireStatus::kInvalidArgument, decode_error);
      return SendFrame(fd, error);
    }
    case FrameType::kPlanResponse:
    case FrameType::kStatsResponse:
    case FrameType::kError:
    case FrameType::kShutdownResponse:
    case FrameType::kCacheLookupResponse:
    case FrameType::kCachePublishResponse: {
      // Client-to-server traffic must never carry response types.
      Frame error;
      error.type = FrameType::kError;
      error.payload = EncodeStatusPayload(WireStatus::kInvalidArgument,
                                          "unexpected frame type");
      SendFrame(fd, error);
      return false;
    }
  }
  return false;
}

std::string PlannerServer::StatsJson() {
  const PlannerServerStats server = stats();
  std::ostringstream os;
  os << "{\"server\":{"
     << "\"connections\":" << server.connections << ","
     << "\"requests\":" << server.requests << ","
     << "\"plan_ok\":" << server.plan_ok << ","
     << "\"plan_errors\":" << server.plan_errors << ","
     << "\"stats_requests\":" << server.stats_requests << ","
     << "\"malformed_frames\":" << server.malformed_frames << ","
     << "\"cache_lookups\":" << server.cache_lookups << ","
     << "\"cache_hits\":" << server.cache_hits << ","
     << "\"cache_grants\":" << server.cache_grants << ","
     << "\"cache_retries\":" << server.cache_retries << ","
     << "\"cache_publishes\":" << server.cache_publishes << "},"
     << "\"service\":" << engine::ToJson(service_.stats()) << "}";
  return os.str();
}

void PlannerServer::RequestShutdown(int keep_fd) {
  // shutdown_cv_'s mutex also serializes concurrent shutdown requests: a
  // second caller blocks here until the first finished draining, so nobody
  // acknowledges a shutdown before the drain is actually complete.
  std::lock_guard<std::mutex> serialize(shutdown_mu_);
  if (!shutting_down_.exchange(true, std::memory_order_acq_rel)) {
    service_.BeginDrain(options_.drain_grace);
    // Wakes the accept() with an error; the accept loop exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    // SHUT_RD, not RDWR: blocked reads wake (the connection loop exits at
    // its next recv) while responses already being written still flush —
    // BeginDrain above waited for those requests to finish.
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : conn_fds_) {
      if (fd != keep_fd) ::shutdown(fd, SHUT_RD);
    }
  }
  shutdown_cv_.notify_all();
}

void PlannerServer::Shutdown() {
  RequestShutdown(-1);
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is gone, so threads_ can no longer grow; joining a
  // snapshot under the lock is therefore complete.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void PlannerServer::Wait() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutting_down_.load(std::memory_order_acquire);
  });
}

PlannerServerStats PlannerServer::stats() const {
  PlannerServerStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.plan_ok = plan_ok_.load(std::memory_order_relaxed);
  stats.plan_errors = plan_errors_.load(std::memory_order_relaxed);
  stats.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  stats.malformed_frames = malformed_frames_.load(std::memory_order_relaxed);
  stats.cache_lookups = cache_lookups_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_grants = cache_grants_.load(std::memory_order_relaxed);
  stats.cache_retries = cache_retries_.load(std::memory_order_relaxed);
  stats.cache_publishes = cache_publishes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace p2::server
