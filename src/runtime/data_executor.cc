#include "runtime/data_executor.h"

#include <cmath>
#include <sstream>

#include "core/collective_semantics.h"
#include "core/device_state.h"

namespace p2::runtime {

namespace {

using core::Collective;
using core::DeviceState;
using core::StateContext;

std::vector<float> SumBuffers(const std::vector<std::vector<float>>& buffers,
                              const std::vector<std::int64_t>& group) {
  std::vector<float> sum(buffers[static_cast<std::size_t>(group[0])].size(),
                         0.0f);
  for (std::int64_t d : group) {
    const auto& b = buffers[static_cast<std::size_t>(d)];
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += b[i];
  }
  return sum;
}

std::vector<float> MaskToRows(const std::vector<float>& buffer,
                              const DeviceState& state, int elems_per_chunk) {
  std::vector<float> out(buffer.size(), 0.0f);
  for (int r : state.NonEmptyRows()) {
    const std::size_t begin =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(elems_per_chunk);
    for (std::size_t i = 0; i < static_cast<std::size_t>(elems_per_chunk);
         ++i) {
      out[begin + i] = buffer[begin + i];
    }
  }
  return out;
}

}  // namespace

std::vector<float> DataExecutor::InitialBuffer(int device, int num_devices,
                                               int elems_per_chunk) {
  std::vector<float> buffer(static_cast<std::size_t>(num_devices) *
                            static_cast<std::size_t>(elems_per_chunk));
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    // Distinct, exactly-representable values so float sums are exact.
    buffer[i] = static_cast<float>((device + 1) * 1000 +
                                   static_cast<int>(i % 977));
  }
  return buffer;
}

bool DataExecutor::ExecuteAndVerify(const core::SynthesisHierarchy& sh,
                                    const core::LoweredProgram& lowered,
                                    int elems_per_chunk, std::string* error) {
  const int k = static_cast<int>(sh.num_global_devices());
  StateContext ctx = core::MakeInitialContext(k);
  std::vector<std::vector<float>> buffers;
  buffers.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    buffers.push_back(InitialBuffer(d, k, elems_per_chunk));
  }

  for (std::size_t si = 0; si < lowered.steps.size(); ++si) {
    const core::LoweredStep& step = lowered.steps[si];
    for (const auto& group : step.groups) {
      const auto r = core::ApplyCollectiveToGroup(step.op, ctx, group);
      if (!r.ok()) {
        if (error != nullptr) {
          std::ostringstream os;
          os << "step " << si << ": semantics rejected "
             << core::ToString(step.op) << ": " << core::ToString(r.error);
          *error = os.str();
        }
        return false;
      }
      switch (step.op) {
        case Collective::kAllReduce:
        case Collective::kAllGather: {
          const auto sum = SumBuffers(buffers, group);
          for (std::int64_t d : group) {
            buffers[static_cast<std::size_t>(d)] = sum;
          }
          break;
        }
        case Collective::kReduceScatter: {
          const auto sum = SumBuffers(buffers, group);
          for (std::int64_t d : group) {
            buffers[static_cast<std::size_t>(d)] = MaskToRows(
                sum, ctx[static_cast<std::size_t>(d)], elems_per_chunk);
          }
          break;
        }
        case Collective::kReduce: {
          const auto sum = SumBuffers(buffers, group);
          buffers[static_cast<std::size_t>(group[0])] = sum;
          for (std::size_t i = 1; i < group.size(); ++i) {
            auto& b = buffers[static_cast<std::size_t>(group[i])];
            std::fill(b.begin(), b.end(), 0.0f);
          }
          break;
        }
        case Collective::kBroadcast: {
          const auto& root = buffers[static_cast<std::size_t>(group[0])];
          for (std::size_t i = 1; i < group.size(); ++i) {
            buffers[static_cast<std::size_t>(group[i])] = root;
          }
          break;
        }
      }
    }
  }

  // Expected: every device holds the sum of its reduction group.
  std::vector<std::vector<float>> init;
  init.reserve(static_cast<std::size_t>(k));
  for (int d = 0; d < k; ++d) {
    init.push_back(InitialBuffer(d, k, elems_per_chunk));
  }
  const auto groups = sh.layout().ReductionGroups(sh.reduction_axes());
  for (const auto& group : groups) {
    const auto expected = SumBuffers(init, group);
    for (std::int64_t d : group) {
      const auto& got = buffers[static_cast<std::size_t>(d)];
      for (std::size_t i = 0; i < expected.size(); ++i) {
        if (got[i] != expected[i]) {
          if (error != nullptr) {
            std::ostringstream os;
            os << "device " << d << " elem " << i << ": got " << got[i]
               << ", want " << expected[i];
            *error = os.str();
          }
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace p2::runtime
