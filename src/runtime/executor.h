// The runtime substrate's program executor: runs a lowered reduction program
// on the simulated cluster, step by step (barrier between steps, groups of a
// step contending concurrently for the network), and reports the simulated
// wall-clock. This is the stand-in for the paper's XLA->NCCL-on-GCP
// measurements — see DESIGN.md, substitutions.
#ifndef P2_RUNTIME_EXECUTOR_H_
#define P2_RUNTIME_EXECUTOR_H_

#include <memory>

#include "core/lowering.h"
#include "runtime/collective_schedule.h"
#include "topology/network.h"
#include "topology/cluster.h"

namespace p2::runtime {

/// Observability record for one executed step.
struct StepTrace {
  core::Collective op = core::Collective::kAllReduce;
  int num_groups = 0;
  int group_size = 0;
  double bytes_in = 0.0;   ///< per-participant payload entering the step
  double seconds = 0.0;
  std::int64_t flows_completed = 0;
};

class Executor {
 public:
  explicit Executor(topology::Cluster cluster, ScheduleOptions options = {});

  const topology::Cluster& cluster() const { return cluster_; }
  const Network& network() const { return network_; }

  /// Simulated seconds to run one step: every group executes `op`
  /// concurrently on the shared network.
  double MeasureStep(const core::LoweredStep& step, double payload_bytes,
                     core::NcclAlgo algo, StepTrace* trace = nullptr) const;

  /// Simulated seconds for the whole program (steps run back-to-back).
  /// When `trace` is non-null it receives one StepTrace per step.
  double MeasureProgram(const core::LoweredProgram& program,
                        double payload_bytes, core::NcclAlgo algo,
                        std::vector<StepTrace>* trace = nullptr) const;

 private:
  topology::Cluster cluster_;
  ScheduleOptions options_;
  Network network_;
};

}  // namespace p2::runtime

#endif  // P2_RUNTIME_EXECUTOR_H_
