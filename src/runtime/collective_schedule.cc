#include "runtime/collective_schedule.h"

#include <algorithm>
#include <stdexcept>

namespace p2::runtime {

namespace {

using core::Collective;
using core::NcclAlgo;

Flow MakeFlow(int src, int dst, double bytes, const Network& net) {
  Flow f;
  f.links = net.PathLinks(src, dst);
  f.bytes = bytes;
  for (int l : f.links) {
    f.latency += net.links()[static_cast<std::size_t>(l)].latency;
  }
  return f;
}

// Ring rounds: `num_rounds` rounds in which every member forwards one chunk
// to its ring successor.
TaskSequence RingRounds(const std::vector<int>& order, int num_rounds,
                        double chunk_bytes, const Network& net) {
  TaskSequence seq;
  const int n = static_cast<int>(order.size());
  seq.rounds.reserve(static_cast<std::size_t>(num_rounds));
  for (int r = 0; r < num_rounds; ++r) {
    Round round;
    round.flows.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int src = order[static_cast<std::size_t>(i)];
      const int dst = order[static_cast<std::size_t>((i + 1) % n)];
      round.flows.push_back(MakeFlow(src, dst, chunk_bytes, net));
    }
    seq.rounds.push_back(std::move(round));
  }
  return seq;
}

// Pipelined chain: in each of `chunks` rounds every chain edge forwards one
// chunk. `edges` are (src, dst) pairs.
TaskSequence ChainRounds(const std::vector<std::pair<int, int>>& edges,
                         int chunks, double chunk_bytes, const Network& net) {
  TaskSequence seq;
  seq.rounds.reserve(static_cast<std::size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    Round round;
    round.flows.reserve(edges.size());
    for (const auto& [src, dst] : edges) {
      round.flows.push_back(MakeFlow(src, dst, chunk_bytes, net));
    }
    seq.rounds.push_back(std::move(round));
  }
  return seq;
}

struct TreeEdges {
  std::vector<std::pair<int, int>> up;    // child -> parent
  std::vector<std::pair<int, int>> down;  // parent -> child
};

// Hierarchical tree: chains inside nodes, balanced binary tree across node
// heads. The root is the head of group[0]'s node.
TreeEdges BuildTree(const std::vector<int>& members,
                    const topology::Cluster& cluster) {
  TreeEdges t;
  std::vector<std::vector<int>> per_node;
  for (int m : members) {
    if (per_node.empty() ||
        cluster.NodeOf(per_node.back().front()) != cluster.NodeOf(m)) {
      per_node.push_back({m});
    } else {
      per_node.back().push_back(m);
    }
  }
  std::vector<int> heads;
  heads.reserve(per_node.size());
  for (const auto& local : per_node) {
    heads.push_back(local.front());
    for (std::size_t i = 1; i < local.size(); ++i) {
      t.up.emplace_back(local[i], local[i - 1]);
    }
  }
  // Balanced binary tree over heads: parent(i) = (i-1)/2.
  for (std::size_t i = 1; i < heads.size(); ++i) {
    t.up.emplace_back(heads[i], heads[(i - 1) / 2]);
  }
  t.down.reserve(t.up.size());
  for (const auto& [c, p] : t.up) t.down.emplace_back(p, c);
  return t;
}

}  // namespace

TaskSequence CompileCollective(Collective op, NcclAlgo algo,
                               const std::vector<std::int64_t>& group,
                               double bytes_in, double bytes_out,
                               const topology::Cluster& cluster,
                               const Network& network,
                               const ScheduleOptions& options) {
  if (group.size() < 2) {
    throw std::invalid_argument("CompileCollective: group too small");
  }
  const int n = static_cast<int>(group.size());
  // Members in id order; the DSL's root (group[0]) is also the smallest id
  // under the lowering's deterministic group construction, but sort defensively
  // while keeping the root first for Reduce/Broadcast chains.
  std::vector<int> order;
  order.reserve(group.size());
  for (std::int64_t d : group) order.push_back(static_cast<int>(d));
  std::sort(order.begin(), order.end());

  const int chunks = std::max(1, options.pipeline_chunks);
  const bool ring_only =
      op == Collective::kReduceScatter || op == Collective::kAllGather;
  const bool use_ring = algo == NcclAlgo::kRing || ring_only;

  switch (op) {
    case Collective::kAllReduce: {
      if (use_ring) {
        return RingRounds(order, 2 * (n - 1), bytes_in / n, network);
      }
      const TreeEdges tree = BuildTree(order, cluster);
      // Pipelined up+down: every round carries one chunk in both directions.
      TaskSequence seq;
      const double chunk = bytes_in / chunks;
      for (int c = 0; c < chunks; ++c) {
        Round round;
        for (const auto& [s, d] : tree.up) {
          round.flows.push_back(MakeFlow(s, d, chunk, network));
        }
        for (const auto& [s, d] : tree.down) {
          round.flows.push_back(MakeFlow(s, d, chunk, network));
        }
        seq.rounds.push_back(std::move(round));
      }
      return seq;
    }
    case Collective::kReduceScatter:
      return RingRounds(order, n - 1, bytes_in / n, network);
    case Collective::kAllGather:
      return RingRounds(order, n - 1, bytes_out / n, network);
    case Collective::kReduce: {
      if (use_ring) {
        // Pipelined chain toward the root along the ring.
        std::vector<std::pair<int, int>> edges;
        for (int i = n - 1; i > 0; --i) {
          edges.emplace_back(order[static_cast<std::size_t>(i)],
                             order[static_cast<std::size_t>(i - 1)]);
        }
        return ChainRounds(edges, chunks, bytes_in / chunks, network);
      }
      const TreeEdges tree = BuildTree(order, cluster);
      return ChainRounds(tree.up, chunks, bytes_in / chunks, network);
    }
    case Collective::kBroadcast: {
      if (use_ring) {
        std::vector<std::pair<int, int>> edges;
        for (int i = 0; i + 1 < n; ++i) {
          edges.emplace_back(order[static_cast<std::size_t>(i)],
                             order[static_cast<std::size_t>(i + 1)]);
        }
        return ChainRounds(edges, chunks, bytes_out / chunks, network);
      }
      const TreeEdges tree = BuildTree(order, cluster);
      return ChainRounds(tree.down, chunks, bytes_out / chunks, network);
    }
  }
  throw std::logic_error("CompileCollective: unknown op");
}

}  // namespace p2::runtime
