#include "runtime/executor.h"

#include "runtime/flow_sim.h"

namespace p2::runtime {

Executor::Executor(topology::Cluster cluster, ScheduleOptions options)
    : cluster_(std::move(cluster)),
      options_(options),
      network_(topology::Network::Build(
          cluster_, topology::NetworkFidelity::kMeasured)) {}

double Executor::MeasureStep(const core::LoweredStep& step,
                             double payload_bytes, core::NcclAlgo algo,
                             StepTrace* trace) const {
  std::vector<TaskSequence> tasks;
  tasks.reserve(step.groups.size());
  const double bytes_in = step.in_fraction * payload_bytes;
  const double bytes_out = step.out_fraction * payload_bytes;
  for (const auto& group : step.groups) {
    tasks.push_back(CompileCollective(step.op, algo, group, bytes_in,
                                      bytes_out, cluster_, network_,
                                      options_));
  }
  FlowSimulator sim(network_);
  FlowSimStats stats;
  const double seconds = sim.Run(tasks, &stats);
  if (trace != nullptr) {
    trace->op = step.op;
    trace->num_groups = static_cast<int>(step.groups.size());
    trace->group_size =
        step.groups.empty() ? 0 : static_cast<int>(step.groups[0].size());
    trace->bytes_in = bytes_in;
    trace->seconds = seconds;
    trace->flows_completed = stats.flows_completed;
  }
  return seconds;
}

double Executor::MeasureProgram(const core::LoweredProgram& program,
                                double payload_bytes, core::NcclAlgo algo,
                                std::vector<StepTrace>* trace) const {
  double total = 0.0;
  for (const auto& step : program.steps) {
    StepTrace step_trace;
    total += MeasureStep(step, payload_bytes, algo,
                         trace != nullptr ? &step_trace : nullptr);
    if (trace != nullptr) trace->push_back(step_trace);
  }
  return total;
}

}  // namespace p2::runtime
