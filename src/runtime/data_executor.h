// Numeric execution of lowered reduction programs: every device gets a real
// float buffer, the collectives are executed on the buffers (sum + the
// masking the state semantics dictates), and the final buffers are verified
// against the mathematically expected per-group reductions. This is the
// end-to-end "does the synthesized program compute the right all-reduce"
// check — the runtime analogue of NCCL executing the XLA collectives.
#ifndef P2_RUNTIME_DATA_EXECUTOR_H_
#define P2_RUNTIME_DATA_EXECUTOR_H_

#include <string>
#include <vector>

#include "core/lowering.h"
#include "core/synthesis_hierarchy.h"

namespace p2::runtime {

class DataExecutor {
 public:
  /// Runs `lowered` on per-device buffers of `elems_per_chunk` floats per
  /// data chunk (chunk = state-matrix row; buffers have
  /// num_devices * elems_per_chunk floats). Returns true iff every device
  /// ends with exactly the sum of its reduction group's initial buffers.
  static bool ExecuteAndVerify(const core::SynthesisHierarchy& sh,
                               const core::LoweredProgram& lowered,
                               int elems_per_chunk = 4,
                               std::string* error = nullptr);

  /// The deterministic initial buffer of `device` used by ExecuteAndVerify.
  static std::vector<float> InitialBuffer(int device, int num_devices,
                                          int elems_per_chunk);
};

}  // namespace p2::runtime

#endif  // P2_RUNTIME_DATA_EXECUTOR_H_
