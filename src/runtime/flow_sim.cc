#include "runtime/flow_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace p2::runtime {

namespace {

constexpr double kEps = 1e-12;

struct ActiveFlow {
  int task = -1;
  const Flow* spec = nullptr;
  double remaining = 0.0;
  double rate = 0.0;
};

// Progressive filling: assigns max-min fair rates to the active flows.
void ComputeRates(std::vector<ActiveFlow>& flows,
                  const std::vector<Link>& links) {
  std::vector<int> count(links.size(), 0);
  std::vector<bool> frozen(flows.size(), false);
  std::size_t unfrozen = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].spec->links.empty()) {
      // Degenerate flow with no links: drains instantly.
      flows[f].rate = std::numeric_limits<double>::infinity();
      frozen[f] = true;
      continue;
    }
    ++unfrozen;
    for (int l : flows[f].spec->links) {
      ++count[static_cast<std::size_t>(l)];
    }
  }
  // Effective capacities: congested links (NICs of the measured network)
  // lose throughput as concurrent flows pile up.
  std::vector<double> cap(links.size());
  for (std::size_t l = 0; l < links.size(); ++l) {
    const double degrade =
        1.0 + links[l].congestion * std::max(0, count[l] - 1);
    cap[l] = links[l].bandwidth / degrade;
  }

  while (unfrozen > 0) {
    // Bottleneck share.
    double share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < links.size(); ++l) {
      if (count[l] > 0) share = std::min(share, cap[l] / count[l]);
    }
    if (!std::isfinite(share)) {
      throw std::logic_error("FlowSimulator: no bottleneck found");
    }
    // Freeze every unfrozen flow crossing a bottleneck link.
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      bool bottlenecked = false;
      for (int l : flows[f].spec->links) {
        const auto li = static_cast<std::size_t>(l);
        if (count[li] > 0 && cap[li] / count[li] <= share * (1.0 + 1e-9)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      flows[f].rate = share;
      frozen[f] = true;
      --unfrozen;
      for (int l : flows[f].spec->links) {
        const auto li = static_cast<std::size_t>(l);
        cap[li] -= share;
        if (cap[li] < 0) cap[li] = 0;
        --count[li];
      }
    }
  }
}

}  // namespace

double FlowSimulator::Run(const std::vector<TaskSequence>& tasks,
                          FlowSimStats* stats) const {
  const auto& links = network_.links();

  struct TaskState {
    std::size_t next_round = 0;
    int inflight = 0;
  };
  std::vector<TaskState> task_state(tasks.size());

  std::vector<ActiveFlow> active;
  // (start_time, task) pending round starts.
  using Pending = std::pair<double, std::size_t>;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending;

  double now = 0.0;
  double makespan = 0.0;

  auto start_round = [&](std::size_t task, double t) {
    const TaskSequence& seq = tasks[task];
    TaskState& st = task_state[task];
    // Empty rounds complete instantly; chain until a round has real flows.
    while (st.next_round < seq.rounds.size() && st.inflight == 0) {
      const Round& round = seq.rounds[st.next_round];
      ++st.next_round;
      for (const Flow& f : round.flows) {
        if (f.bytes <= 0.0) continue;
        active.push_back(
            ActiveFlow{static_cast<int>(task), &f, f.bytes, 0.0});
        ++st.inflight;
      }
      makespan = std::max(makespan, t);
    }
  };

  for (std::size_t t = 0; t < tasks.size(); ++t) pending.push({0.0, t});

  bool dirty = true;
  while (!active.empty() || !pending.empty()) {
    // Admit every round scheduled at or before `now` when nothing is active,
    // or exactly at `now` otherwise.
    if (active.empty() && !pending.empty() && pending.top().first > now) {
      now = pending.top().first;
    }
    while (!pending.empty() && pending.top().first <= now + kEps) {
      const auto [t0, task] = pending.top();
      pending.pop();
      start_round(task, now);
      dirty = true;
    }
    if (active.empty()) continue;

    if (dirty) {
      ComputeRates(active, links);
      if (stats != nullptr) ++stats->rate_recomputations;
      dirty = false;
    }

    // Earliest flow completion, capped by the next pending round start.
    double dt = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& f : active) {
      if (f.rate > 0) dt = std::min(dt, f.remaining / f.rate);
    }
    if (!pending.empty()) {
      dt = std::min(dt, pending.top().first - now);
    }
    if (!std::isfinite(dt)) {
      throw std::logic_error("FlowSimulator: stalled flows");
    }
    dt = std::max(dt, 0.0);
    now += dt;

    // Drain and collect completions.
    std::vector<char> task_completed(tasks.size(), 0);
    std::size_t w = 0;
    for (std::size_t f = 0; f < active.size(); ++f) {
      ActiveFlow& af = active[f];
      af.remaining -= af.rate * dt;
      if (af.remaining <= kEps * std::max(1.0, af.spec->bytes)) {
        TaskState& st = task_state[static_cast<std::size_t>(af.task)];
        --st.inflight;
        if (stats != nullptr) ++stats->flows_completed;
        dirty = true;
        // Round complete when the last inflight flow of this task drains.
        if (st.inflight == 0) {
          task_completed[static_cast<std::size_t>(af.task)] = 1;
        }
      } else {
        active[w++] = af;
      }
    }
    active.resize(w);

    for (std::size_t task = 0; task < tasks.size(); ++task) {
      if (task_completed[task] == 0) continue;
      // Latency of the just-finished round: rounds pay their (max) message
      // latency once, before the next round may start.
      const TaskSequence& seq = tasks[task];
      const std::size_t done = task_state[task].next_round - 1;
      double latency = 0.0;
      for (const Flow& f : seq.rounds[done].flows) {
        latency = std::max(latency, f.latency);
      }
      const double end = now + latency;
      makespan = std::max(makespan, end);
      if (task_state[task].next_round < seq.rounds.size()) {
        pending.push({end, task});
      }
    }
  }
  return std::max(makespan, now);
}

}  // namespace p2::runtime
