// Flow-level discrete-event simulator with max-min fair bandwidth sharing.
//
// Work is expressed as *task sequences*: a task is a list of rounds executed
// in order (round r+1 starts only after round r's flows all complete, plus
// the round's message latency); different tasks progress independently and
// their flows contend for link bandwidth. This matches the structure of
// chunked collective schedules: one task per reduction group, one round per
// pipeline step.
//
// Rates are recomputed by progressive filling (classic max-min water-filling)
// at every flow arrival/completion, so shared links (e.g. a node's NIC
// carrying 16 concurrent reduction rings) slow every crossing flow down —
// the effect responsible for the paper's 448x placement gap.
#ifndef P2_RUNTIME_FLOW_SIM_H_
#define P2_RUNTIME_FLOW_SIM_H_

#include <vector>

#include "topology/network.h"

namespace p2::runtime {

using topology::Link;
using topology::Network;

struct Flow {
  std::vector<int> links;  ///< link indices along the routed path
  double bytes = 0.0;
  double latency = 0.0;    ///< end-to-end message latency of the path
};

struct Round {
  std::vector<Flow> flows;
};

struct TaskSequence {
  std::vector<Round> rounds;
};

struct FlowSimStats {
  std::int64_t rate_recomputations = 0;
  std::int64_t flows_completed = 0;
};

class FlowSimulator {
 public:
  explicit FlowSimulator(const Network& network) : network_(network) {}

  /// Runs all task sequences concurrently from t=0; returns the makespan in
  /// seconds. Deterministic.
  double Run(const std::vector<TaskSequence>& tasks,
             FlowSimStats* stats = nullptr) const;

 private:
  const Network& network_;
};

}  // namespace p2::runtime

#endif  // P2_RUNTIME_FLOW_SIM_H_
