// Compiles one collective over one device group into a chunked transfer
// schedule (a TaskSequence) over the network graph — the runtime substrate's
// equivalent of NCCL's ring and tree algorithms:
//
//  * Ring: members in id order (the physical order on a full NVLink-ring
//    node); AllReduce runs the classic 2(n-1)-round reduce-scatter +
//    all-gather pipeline with chunk size S/n; ReduceScatter/AllGather run
//    their (n-1)-round halves; Reduce/Broadcast run pipelined chains.
//  * Tree: GPUs chain inside each node; the first member of each node joins
//    a balanced binary tree across nodes (NCCL-style hierarchical tree).
//    AllReduce pipelines chunks up (reduce) and down (broadcast);
//    ReduceScatter/AllGather always use rings, as in NCCL.
#ifndef P2_RUNTIME_COLLECTIVE_SCHEDULE_H_
#define P2_RUNTIME_COLLECTIVE_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "core/collective.h"
#include "runtime/flow_sim.h"
#include "topology/network.h"
#include "topology/cluster.h"

namespace p2::runtime {

struct ScheduleOptions {
  /// Pipeline depth for tree and chain schedules.
  int pipeline_chunks = 8;
};

/// `bytes_in` is the per-member payload entering the step; `bytes_out` the
/// per-member payload after it (used by AllGather/Broadcast whose traffic is
/// proportional to the output). group[0] is the root for Reduce/Broadcast.
TaskSequence CompileCollective(core::Collective op, core::NcclAlgo algo,
                               const std::vector<std::int64_t>& group,
                               double bytes_in, double bytes_out,
                               const topology::Cluster& cluster,
                               const Network& network,
                               const ScheduleOptions& options = {});

}  // namespace p2::runtime

#endif  // P2_RUNTIME_COLLECTIVE_SCHEDULE_H_
