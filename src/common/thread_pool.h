// A fixed-size thread pool shared by every concurrent planning query of a
// process (engine/service.h): each query submits its independent work items
// through its own TaskGroup, the workers drain the groups round-robin — so
// overlapping queries interleave fairly instead of queueing behind each
// other — and TaskGroup::Wait blocks on exactly its own subset of tasks.
// While waiting, a thread *helps*: it keeps executing pending tasks (from
// any group) instead of sleeping, which makes it safe for a pool task to
// submit further tasks and wait on them — the pattern the planning service
// uses to run whole requests as pool tasks without deadlocking.
//
// Callers that need ordered output write to preallocated slot i and merge in
// index order afterwards; the parallel result is then byte-identical to the
// serial path.
#ifndef P2_COMMON_THREAD_POOL_H_
#define P2_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancel.h"

namespace p2 {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. With num_threads <= 1 no workers are
  /// spawned and Submit runs tasks inline — the serial path stays free of
  /// synchronization and of thread-creation cost.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// An independently waitable subset of the pool's tasks. Groups sharing a
  /// pool are scheduled round-robin: one task from each group with pending
  /// work, repeatedly, so no group's backlog starves another's. Errors are
  /// isolated per group — a throwing task fail-fasts the *rest of its own
  /// group* (remaining tasks are drained unrun) and Wait() rethrows the
  /// first one, while other groups keep running unaffected.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
    /// Waits for any in-flight tasks (a destroyed group must not leave
    /// workers holding pointers into it); a pending error is swallowed —
    /// call Wait() first if you care.
    ~TaskGroup();

    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Enqueues a task onto the shared pool under this group. Tasks may
    /// themselves submit to and wait on *other* groups of the same pool
    /// (waiting helps, see Wait); submitting to their own group and then
    /// waiting on it from inside a task of that group is not supported.
    void Submit(std::function<void()> task);

    /// Blocks until every task submitted to *this group* has finished, then
    /// rethrows the first exception any of them threw. Other groups' tasks
    /// do not delay the return beyond fair scheduling. While this group has
    /// unfinished tasks the calling thread executes pending pool tasks
    /// (its own group's first, by round-robin position) instead of
    /// sleeping, so calling Wait from inside a pool task cannot deadlock.
    void Wait();

    /// Runs fn(0..n-1) as n tasks of this group and waits for completion.
    /// Iterations must be independent; callers that need ordered output
    /// should write to slot i and merge afterwards.
    void ParallelFor(std::int64_t n,
                     const std::function<void(std::int64_t)>& fn);

    /// Reserves a slot for a task that is not enqueued yet: Wait() keeps
    /// blocking (and helping) until the reservation is settled by exactly
    /// one CommitDeferred (which enqueues the follow-up task) or
    /// AbandonDeferred. This is the deferral primitive behind non-blocking
    /// cache lookups: a task that must pause for an external event reserves
    /// its slot, returns (freeing the worker to run other groups' tasks),
    /// and the event's continuation commits the follow-up — no thread ever
    /// parks in between. Reserve BEFORE registering the continuation, or a
    /// fast continuation could commit against a reservation that does not
    /// exist yet. On an inline (<= 1 thread) pool deferral degenerates
    /// (nothing runs concurrently that could fire a continuation), so the
    /// reserve/abandon pair is a no-op and CommitDeferred runs inline.
    void ReserveDeferred();
    /// Enqueues `task` against one earlier ReserveDeferred(). Safe from any
    /// thread, including callbacks running outside the pool; the task is
    /// scheduled like a Submit()ted one (round-robin, per-group fail-fast,
    /// helpable from Wait).
    void CommitDeferred(std::function<void()> task);
    /// Releases one earlier ReserveDeferred() without enqueueing anything.
    void AbandonDeferred();

    /// Cancel-aware Wait: like Wait(), but when `token` aborts (explicit
    /// cancel, or deadline expiry — which never notifies a condition
    /// variable, so the sleep is bounded by the armed deadline instead)
    /// `on_abort` is invoked exactly once, outside the pool lock. Its job
    /// is to flush this group's deferred reservations back into the queue
    /// — their tasks observe the cancellation and unwind — because this
    /// Wait, like the plain one, returns only once in-flight work AND
    /// reservations have drained. With a token that cannot be cancelled
    /// this is exactly Wait().
    void Wait(const CancelToken& token, const std::function<void()>& on_abort);

   private:
    friend class ThreadPool;

    ThreadPool& pool_;
    // All fields below are guarded by pool_.mu_.
    std::deque<std::function<void()>> queue_;
    std::int64_t in_flight_ = 0;  ///< queued + currently running tasks
    bool scheduled_ = false;      ///< linked into pool_.ready_
    std::exception_ptr first_error_;
  };

  /// Enqueues a task on the pool's built-in default group (the single-query
  /// legacy interface; the synthesizer's frontier fan-out uses it).
  void Submit(std::function<void()> task);

  /// Waits for the default group (see TaskGroup::Wait).
  void Wait();

  /// ParallelFor on the default group.
  void ParallelFor(std::int64_t n, const std::function<void(std::int64_t)>& fn);

 private:
  void WorkerLoop();
  /// Pops the next (round-robin) task and runs it. `lock` must hold mu_ on
  /// entry and holds it again on return; the task itself runs unlocked.
  void RunOneTask(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  /// Signals workers: a group gained work, or the pool is shutting down.
  std::condition_variable work_available_;
  /// Signals group waiters: a task finished or new help is available.
  std::condition_variable progress_;
  /// Groups with queued tasks, in round-robin order. A group appears at most
  /// once; the scheduler pops the front group's next task and requeues the
  /// group at the back while it still has work.
  std::deque<TaskGroup*> ready_;
  bool shutting_down_ = false;
  /// Must be declared after the scheduler state: it is destroyed (and
  /// drained) first.
  TaskGroup default_group_{*this};
};

}  // namespace p2

#endif  // P2_COMMON_THREAD_POOL_H_
