// A small fixed-size thread pool for the evaluation pipeline: placements of
// one experiment are independent once their synthesis hierarchies are
// deduplicated, so they are evaluated by `threads` workers writing into
// preallocated result slots (the caller merges in deterministic placement
// order — parallel output is byte-identical to the serial path).
#ifndef P2_COMMON_THREAD_POOL_H_
#define P2_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace p2 {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. With num_threads <= 1 no workers are
  /// spawned and Submit runs tasks inline — the serial path stays free of
  /// synchronization and of thread-creation cost.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not Submit to the same pool recursively.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the first
  /// exception any task threw (if one did).
  void Wait();

  /// Runs fn(0..n-1), distributing iterations over the pool's workers, and
  /// waits for completion. Iterations must be independent; callers that need
  /// ordered output should write to slot i and merge afterwards.
  void ParallelFor(std::int64_t n, const std::function<void(std::int64_t)>& fn);

 private:
  void WorkerLoop();
  void RunTask(const std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::int64_t in_flight_ = 0;  ///< queued + currently running tasks
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

}  // namespace p2

#endif  // P2_COMMON_THREAD_POOL_H_
