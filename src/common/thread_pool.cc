#include "common/thread_pool.h"

#include <utility>

namespace p2 {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Members (default_group_ included) are destroyed only after this body,
  // so queued tasks may still exist here. The workers drain them: the wait
  // predicate below lets a worker exit only once ready_ is empty, so every
  // queued task of every surviving group runs before the joins return, and
  // default_group_'s destructor (the first member teardown) finds nothing
  // left to wait for. The pool must outlive caller-owned groups — their
  // destructors touch pool state — so destroy every group before its pool
  // (as PlannerService does by declaring request_tasks_ after pool_).
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  TaskGroup* group = ready_.front();
  ready_.pop_front();
  std::function<void()> task = std::move(group->queue_.front());
  group->queue_.pop_front();
  if (group->queue_.empty()) {
    group->scheduled_ = false;
  } else {
    // Round-robin: the group goes to the back so other groups' tasks
    // interleave with its remaining backlog.
    ready_.push_back(group);
  }
  // Fail fast *within the group*: once one of its tasks has thrown, drain
  // the rest of that group unrun — its Wait() is about to rethrow anyway.
  const bool skip = group->first_error_ != nullptr;
  lock.unlock();
  if (!skip) {
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> error_lock(mu_);
      if (group->first_error_ == nullptr) {
        group->first_error_ = std::current_exception();
      }
    }
  }
  lock.lock();
  --group->in_flight_;
  // Wake group waiters: either their group just completed, or (if this task
  // submitted work) there is something new to help with.
  progress_.notify_all();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return shutting_down_ || !ready_.empty(); });
    if (ready_.empty()) return;  // shutting down and fully drained
    RunOneTask(lock);
  }
}

ThreadPool::TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // A group destroyed without Wait() drops its error; destructors must
    // not throw.
  }
}

void ThreadPool::TaskGroup::Submit(std::function<void()> task) {
  if (pool_.workers_.empty()) {
    // Inline mode: run immediately, honouring the same per-group fail-fast
    // and first-error-wins contracts as the workers.
    {
      std::unique_lock<std::mutex> lock(pool_.mu_);
      if (first_error_ != nullptr) return;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(pool_.mu_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(pool_.mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    if (!scheduled_) {
      scheduled_ = true;
      pool_.ready_.push_back(this);
    }
  }
  pool_.work_available_.notify_one();
  // Helping waiters sleep on progress_, not work_available_.
  pool_.progress_.notify_all();
}

void ThreadPool::TaskGroup::Wait() {
  std::exception_ptr error;
  if (pool_.workers_.empty()) {
    // Inline mode already ran everything at Submit time.
    std::unique_lock<std::mutex> lock(pool_.mu_);
    error = std::exchange(first_error_, nullptr);
  } else {
    std::unique_lock<std::mutex> lock(pool_.mu_);
    while (in_flight_ > 0) {
      if (!pool_.ready_.empty()) {
        // Help instead of sleeping: run the next round-robin task (possibly
        // another group's). This is what lets a pool task wait on a group
        // it populated without idling a worker — or deadlocking when every
        // worker is itself a waiter.
        pool_.RunOneTask(lock);
        continue;
      }
      pool_.progress_.wait(lock, [this] {
        return in_flight_ == 0 || !pool_.ready_.empty();
      });
    }
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::TaskGroup::ReserveDeferred() {
  if (pool_.workers_.empty()) return;  // inline: CommitDeferred runs inline
  std::unique_lock<std::mutex> lock(pool_.mu_);
  ++in_flight_;
}

void ThreadPool::TaskGroup::CommitDeferred(std::function<void()> task) {
  if (pool_.workers_.empty()) {
    // Inline pools never defer; run under the same contracts as Submit.
    Submit(std::move(task));
    return;
  }
  {
    std::unique_lock<std::mutex> lock(pool_.mu_);
    // in_flight_ already counts this task, since ReserveDeferred.
    queue_.push_back(std::move(task));
    if (!scheduled_) {
      scheduled_ = true;
      pool_.ready_.push_back(this);
    }
  }
  pool_.work_available_.notify_one();
  pool_.progress_.notify_all();
}

void ThreadPool::TaskGroup::AbandonDeferred() {
  if (pool_.workers_.empty()) return;
  {
    std::unique_lock<std::mutex> lock(pool_.mu_);
    --in_flight_;
  }
  pool_.progress_.notify_all();
}

void ThreadPool::TaskGroup::Wait(const CancelToken& token,
                                 const std::function<void()>& on_abort) {
  if (!token.CanBeCancelled()) {
    Wait();
    return;
  }
  std::exception_ptr error;
  if (pool_.workers_.empty()) {
    // Inline mode ran everything at Submit time; nothing can be deferred.
    std::unique_lock<std::mutex> lock(pool_.mu_);
    error = std::exchange(first_error_, nullptr);
  } else {
    // Register before the first predicate check (the AddCancelWaiter
    // contract): Cancel() notifies progress_, so an explicit abort wakes
    // this waiter promptly. Deadline expiry never notifies — the sleep is
    // bounded by the armed deadline, and the next iteration's
    // cancel_requested() latches the expiry. Declared before `lock` so the
    // lock releases mu_ before the waiter unregisters.
    CancelWaiter waiter(token, &pool_.mu_, &pool_.progress_);
    std::unique_lock<std::mutex> lock(pool_.mu_);
    bool abort_observed = false;
    while (in_flight_ > 0) {
      // Safe while holding a registered mutex: cancel_requested() latches
      // but never notifies.
      if (!abort_observed && token.cancel_requested()) {
        abort_observed = true;
        lock.unlock();
        on_abort();
        lock.lock();
        continue;
      }
      if (!pool_.ready_.empty()) {
        pool_.RunOneTask(lock);
        continue;
      }
      const auto wake = [&] {
        return in_flight_ == 0 || !pool_.ready_.empty() ||
               (!abort_observed && token.cancel_requested());
      };
      const auto deadline = token.deadline();
      if (!abort_observed && deadline.has_value()) {
        // An elapsed deadline falls straight through; the loop above then
        // latches it and runs the abort hook — no spin, because once
        // abort_observed is set this branch is never taken again.
        pool_.progress_.wait_until(lock, *deadline, wake);
      } else {
        pool_.progress_.wait(lock, wake);
      }
    }
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::TaskGroup::ParallelFor(
    std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  for (std::int64_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

void ThreadPool::Submit(std::function<void()> task) {
  default_group_.Submit(std::move(task));
}

void ThreadPool::Wait() { default_group_.Wait(); }

void ThreadPool::ParallelFor(std::int64_t n,
                             const std::function<void(std::int64_t)>& fn) {
  default_group_.ParallelFor(n, fn);
}

}  // namespace p2
