#include "common/thread_pool.h"

#include <utility>

namespace p2 {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 1) return;  // inline mode
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunTask(const std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::unique_lock<std::mutex> lock(mu_);
    if (first_error_ == nullptr) first_error_ = std::current_exception();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    bool skip = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      // Fail fast: once a task has thrown, drain the remaining queue without
      // running it — Wait() is about to rethrow anyway.
      skip = first_error_ != nullptr;
    }
    if (!skip) RunTask(task);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    RunTask(task);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::ParallelFor(std::int64_t n,
                             const std::function<void(std::int64_t)>& fn) {
  if (workers_.empty()) {
    // Inline mode still honours the first-error-wins contract of Wait(),
    // and fails fast like the workers do.
    for (std::int64_t i = 0; i < n; ++i) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (first_error_ != nullptr) break;
      }
      RunTask([&fn, i] { fn(i); });
    }
    Wait();
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

}  // namespace p2
