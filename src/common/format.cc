#include "common/format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace p2 {

namespace {

template <typename T>
std::string BracketJoinImpl(std::span<const T> xs) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) os << ' ';
    os << xs[i];
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string BracketJoin(std::span<const std::int64_t> xs) {
  return BracketJoinImpl(xs);
}

std::string BracketJoin(std::span<const int> xs) { return BracketJoinImpl(xs); }

std::string NestedBracketJoin(
    std::span<const std::vector<std::int64_t>> rows) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) os << ' ';
    os << BracketJoin(std::span<const std::int64_t>(rows[i]));
  }
  os << ']';
  return os.str();
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (!std::isfinite(seconds)) return "inf";
  if (seconds >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", seconds);
  } else if (seconds >= 0.01) {
    std::snprintf(buf, sizeof(buf), "%.2f", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", seconds);
  }
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::AddRow: wrong arity");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace p2
