#include "common/math.h"

#include <limits>
#include <stdexcept>

namespace p2 {

namespace {

std::int64_t CheckedMul(std::int64_t a, std::int64_t b) {
  if (a != 0 && b > std::numeric_limits<std::int64_t>::max() / a) {
    throw std::overflow_error("p2::Product: 64-bit overflow");
  }
  return a * b;
}

void FactorizeRec(std::int64_t remaining, int parts_left,
                  std::vector<std::int64_t>& prefix,
                  std::vector<std::vector<std::int64_t>>& out) {
  if (parts_left == 1) {
    prefix.push_back(remaining);
    out.push_back(prefix);
    prefix.pop_back();
    return;
  }
  for (std::int64_t d = 1; d <= remaining; ++d) {
    if (remaining % d != 0) continue;
    prefix.push_back(d);
    FactorizeRec(remaining / d, parts_left - 1, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

std::int64_t Product(std::span<const std::int64_t> xs) {
  std::int64_t p = 1;
  for (std::int64_t x : xs) {
    if (x < 0) throw std::invalid_argument("p2::Product: negative factor");
    p = CheckedMul(p, x);
  }
  return p;
}

std::int64_t Product(std::span<const int> xs) {
  std::int64_t p = 1;
  for (int x : xs) {
    if (x < 0) throw std::invalid_argument("p2::Product: negative factor");
    p = CheckedMul(p, x);
  }
  return p;
}

std::vector<std::vector<std::int64_t>> OrderedFactorizations(std::int64_t n,
                                                             int parts) {
  if (n <= 0) throw std::invalid_argument("OrderedFactorizations: n must be positive");
  if (parts <= 0) throw std::invalid_argument("OrderedFactorizations: parts must be positive");
  std::vector<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> prefix;
  prefix.reserve(static_cast<std::size_t>(parts));
  FactorizeRec(n, parts, prefix, out);
  return out;
}

std::vector<std::int64_t> Divisors(std::int64_t n) {
  if (n <= 0) throw std::invalid_argument("Divisors: n must be positive");
  std::vector<std::int64_t> lo, hi;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d != 0) continue;
    lo.push_back(d);
    if (d != n / d) hi.push_back(n / d);
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

std::int64_t DigitsToIndex(std::span<const std::int64_t> digits,
                           std::span<const std::int64_t> radices) {
  if (digits.size() != radices.size()) {
    throw std::invalid_argument("DigitsToIndex: size mismatch");
  }
  std::int64_t idx = 0;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (digits[i] < 0 || digits[i] >= radices[i]) {
      throw std::out_of_range("DigitsToIndex: digit out of range");
    }
    idx = idx * radices[i] + digits[i];
  }
  return idx;
}

std::vector<std::int64_t> IndexToDigits(std::int64_t index,
                                        std::span<const std::int64_t> radices) {
  std::vector<std::int64_t> digits(radices.size(), 0);
  for (std::size_t i = radices.size(); i-- > 0;) {
    if (radices[i] <= 0) throw std::invalid_argument("IndexToDigits: bad radix");
    digits[i] = index % radices[i];
    index /= radices[i];
  }
  if (index != 0) throw std::out_of_range("IndexToDigits: index out of range");
  return digits;
}

int CeilLog2(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("CeilLog2: n must be >= 1");
  int bits = 0;
  std::int64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace p2
