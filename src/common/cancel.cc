#include "common/cancel.h"

namespace p2 {

namespace internal {

CancelReason CancelState::Check() {
  int r = reason.load(std::memory_order_acquire);
  if (r != static_cast<int>(CancelReason::kNone)) {
    return static_cast<CancelReason>(r);
  }
  const std::int64_t deadline = deadline_ns.load(std::memory_order_acquire);
  if (deadline != kNoDeadline) {
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now >= deadline) {
      // First observer latches the expiry; losing the CAS means an explicit
      // Cancel() (or another observer) got there first — their reason wins.
      int expected = static_cast<int>(CancelReason::kNone);
      reason.compare_exchange_strong(
          expected, static_cast<int>(CancelReason::kDeadlineExceeded),
          std::memory_order_acq_rel, std::memory_order_acquire);
      r = reason.load(std::memory_order_acquire);
    }
  }
  return static_cast<CancelReason>(r);
}

void CancelState::NotifyWaiters() {
  // The whole loop runs under waiters_mu: RemoveCancelWaiter therefore
  // blocks until an in-progress notification round is over, so a registered
  // cv/mutex pair is never touched after its guard's destructor returned —
  // the registrant controls the lifetime. Lock order is waiters_mu -> the
  // waiter's mutex, and Add/RemoveCancelWaiter require the caller NOT to
  // hold the waiter's mutex, so the order is acyclic.
  std::lock_guard<std::mutex> lock(waiters_mu);
  for (const Waiter& w : waiters) {
    // Locking (and dropping) the waiter's mutex before notifying closes the
    // lost-wakeup window: a waiter that checked its predicate under that
    // mutex and is about to block either observed the latched reason or
    // blocks before this lock succeeds and so receives the notification.
    { std::lock_guard<std::mutex> waiter_lock(*w.m); }
    w.cv->notify_all();
  }
}

}  // namespace internal

void CancelToken::AddCancelWaiter(std::mutex* m,
                                  std::condition_variable* cv) const {
  if (state_ == nullptr) return;
  std::lock_guard<std::mutex> lock(state_->waiters_mu);
  state_->waiters.push_back(internal::CancelState::Waiter{m, cv});
}

void CancelToken::RemoveCancelWaiter(const std::condition_variable* cv) const {
  if (state_ == nullptr) return;
  std::lock_guard<std::mutex> lock(state_->waiters_mu);
  auto& waiters = state_->waiters;
  for (auto it = waiters.begin(); it != waiters.end(); ++it) {
    if (it->cv == cv) {
      waiters.erase(it);
      return;
    }
  }
}

std::optional<std::chrono::steady_clock::time_point> CancelToken::deadline()
    const {
  if (state_ == nullptr) return std::nullopt;
  const std::int64_t ns = state_->deadline_ns.load(std::memory_order_acquire);
  if (ns == internal::CancelState::kNoDeadline) return std::nullopt;
  return std::chrono::steady_clock::time_point(
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

void CancelToken::ThrowIfCancelled() const {
  switch (reason()) {
    case CancelReason::kNone:
      return;
    case CancelReason::kCancelled:
      throw CancelledError("request cancelled");
    case CancelReason::kDeadlineExceeded:
      throw DeadlineExceededError("request deadline exceeded");
  }
}

}  // namespace p2
