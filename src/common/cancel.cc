#include "common/cancel.h"

namespace p2 {

namespace internal {

CancelReason CancelState::Check() {
  int r = reason.load(std::memory_order_acquire);
  if (r != static_cast<int>(CancelReason::kNone)) {
    return static_cast<CancelReason>(r);
  }
  const std::int64_t deadline = deadline_ns.load(std::memory_order_acquire);
  if (deadline != kNoDeadline) {
    const std::int64_t now =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now >= deadline) {
      // First observer latches the expiry; losing the CAS means an explicit
      // Cancel() (or another observer) got there first — their reason wins.
      int expected = static_cast<int>(CancelReason::kNone);
      reason.compare_exchange_strong(
          expected, static_cast<int>(CancelReason::kDeadlineExceeded),
          std::memory_order_acq_rel, std::memory_order_acquire);
      r = reason.load(std::memory_order_acquire);
    }
  }
  return static_cast<CancelReason>(r);
}

}  // namespace internal

void CancelToken::ThrowIfCancelled() const {
  switch (reason()) {
    case CancelReason::kNone:
      return;
    case CancelReason::kCancelled:
      throw CancelledError("request cancelled");
    case CancelReason::kDeadlineExceeded:
      throw DeadlineExceededError("request deadline exceeded");
  }
}

}  // namespace p2
