// A tiny fixed-bucket latency histogram for percentile reporting
// (engine/service.h records per-request submit→complete latency in one).
//
// Buckets are log2-spaced upper bounds starting at 1 µs, so ~40 buckets
// cover sub-microsecond to ~10 minutes with bounded memory and no
// allocation on the record path. Percentile() returns the upper bound of
// the bucket containing the requested rank — a deterministic function of
// the recorded counts, so reports render identically across runs with the
// same traffic (unlike an exact-quantile estimate over reordered samples).
// Not thread-safe; callers guard it with their own lock.
#ifndef P2_COMMON_HISTOGRAM_H_
#define P2_COMMON_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace p2 {

class LatencyHistogram {
 public:
  /// Bucket b holds samples in (upper(b-1), upper(b)] with
  /// upper(b) = 1e-6 * 2^b seconds; the last bucket is the overflow
  /// catch-all (upper ≈ 9.2 minutes).
  static constexpr int kNumBuckets = 40;

  /// Records one sample. Negative or NaN values (a clock hiccup) land in
  /// the smallest bucket rather than being dropped, so count() always
  /// equals the number of Record calls.
  void Record(double seconds);

  std::int64_t count() const { return count_; }

  /// The upper bound (seconds) of the bucket holding the p-th percentile
  /// sample (rank ceil(p/100 * count), clamped to [1, count]); 0 when
  /// empty. p is clamped to [0, 100].
  double Percentile(double p) const;

  /// Adds another histogram's counts into this one (bucket-wise).
  void Merge(const LatencyHistogram& other);

 private:
  std::array<std::int64_t, kNumBuckets> buckets_{};
  std::int64_t count_ = 0;
};

}  // namespace p2

#endif  // P2_COMMON_HISTOGRAM_H_
