// Cooperative cancellation with optional deadlines — the request-abort
// primitive behind the planning service's robustness contract
// (engine/service.h).
//
//   CancelSource source;                  // owner side
//   source.SetDeadlineAfter(250ms);       // optional
//   CancelToken token = source.token();   // worker side, freely copyable
//   ...
//   token.ThrowIfCancelled();             // checkpoint between units of work
//   ...
//   source.Cancel();                      // any thread, any time
//
// Cancellation is *cooperative*: nothing is interrupted, workers observe the
// token at checkpoints they choose (between pipeline stages, between
// synthesis frontier layers) and unwind by throwing. The first abort reason
// wins and is latched — a request cancelled a microsecond before its
// deadline expires reports kCancelled everywhere, deterministically, no
// matter which thread checks first.
//
// A default-constructed CancelToken is *null*: it never reports
// cancellation and costs one pointer test per check, so call sites can
// thread a token unconditionally and single-shot callers pay nothing.
#ifndef P2_COMMON_CANCEL_H_
#define P2_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

namespace p2 {

/// Why a request was aborted. kNone means "still live".
enum class CancelReason : int {
  kNone = 0,
  kCancelled = 1,         ///< explicit Cancel() call
  kDeadlineExceeded = 2,  ///< the SetDeadline* point passed
};

/// Base of the abort taxonomy: catch this to treat "caller gave up" (either
/// flavor) uniformly; catch the siblings to distinguish them.
class RequestAborted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The request was explicitly cancelled (CancelSource::Cancel).
class CancelledError : public RequestAborted {
 public:
  using RequestAborted::RequestAborted;
};

/// The request's deadline passed before it finished.
class DeadlineExceededError : public RequestAborted {
 public:
  using RequestAborted::RequestAborted;
};

namespace internal {

/// Shared between one CancelSource and its tokens. The reason is a latch:
/// the first transition away from kNone (explicit cancel or observed
/// deadline expiry, whichever CAS wins) is the reason forever.
struct CancelState {
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  std::atomic<int> reason{static_cast<int>(CancelReason::kNone)};
  /// Absolute steady_clock deadline in nanoseconds since the clock's epoch;
  /// kNoDeadline when unset.
  std::atomic<std::int64_t> deadline_ns{kNoDeadline};

  CancelReason Check();

  /// One condition variable parked on this state, paired with the mutex it
  /// is waited under (see CancelToken::AddCancelWaiter).
  struct Waiter {
    std::mutex* m;
    std::condition_variable* cv;
  };
  /// Wakes every registered waiter, locking (and dropping) each waiter's
  /// mutex before notifying so a waiter between its predicate check and its
  /// block never misses the wake-up. Never called with waiters_mu held
  /// while a waiter's mutex is wanted, so lock order stays acyclic.
  void NotifyWaiters();

  std::mutex waiters_mu;
  std::vector<Waiter> waiters;
};

}  // namespace internal

/// The worker-side view: cheap to copy, cheap to poll. Null (default
/// constructed) tokens never cancel.
class CancelToken {
 public:
  CancelToken() = default;

  /// False for a null token: no source can ever cancel it, so loops may
  /// skip per-iteration checks entirely.
  bool CanBeCancelled() const { return state_ != nullptr; }

  /// The latched abort reason, observing deadline expiry as a side effect
  /// (the first observer latches kDeadlineExceeded). kNone while live.
  CancelReason reason() const {
    return state_ == nullptr ? CancelReason::kNone : state_->Check();
  }

  bool cancel_requested() const { return reason() != CancelReason::kNone; }

  /// The checkpoint: throws CancelledError or DeadlineExceededError once the
  /// source aborted, returns otherwise. Place between units of work.
  void ThrowIfCancelled() const;

  /// Registers `cv` (waited under `m`) to be notified when the source
  /// cancels, so a blocked waiter wakes in microseconds instead of polling.
  /// Register *before* the first predicate check under `m`: a cancel landing
  /// any time after registration either notifies `cv` or is already visible
  /// to cancel_requested(), so the check-then-block window is closed.
  /// Deadlines do NOT notify — a deadline-aware waiter bounds its block with
  /// deadline() (cv.wait_until) and latches the expiry through reason() on
  /// wake-up. No-op on a null token. Pair with RemoveCancelWaiter before
  /// `cv` is destroyed (CancelWaiter below does both).
  ///
  /// This cv contract also adapts to continuation-style consumers: a waiter
  /// that must never park adapts the wake-up into a callback by sleeping in
  /// a helpable scheduler loop instead (ThreadPool::TaskGroup::Wait(token,
  /// on_abort) is the canonical adapter — on wake it invokes the abort hook
  /// once and keeps executing other work rather than blocking).
  void AddCancelWaiter(std::mutex* m, std::condition_variable* cv) const;
  void RemoveCancelWaiter(const std::condition_variable* cv) const;

  /// The armed deadline as an absolute steady_clock time point; nullopt when
  /// no deadline was set (or on a null token).
  std::optional<std::chrono::steady_clock::time_point> deadline() const;

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::CancelState> state_;
};

/// The owner-side handle: creates tokens, requests cancellation, sets the
/// deadline. Copyable — copies share one state, so a service can keep one
/// copy in its in-flight registry and hand another to the submitter.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

  CancelToken token() const { return CancelToken(state_); }

  /// Latches kCancelled unless the request already aborted for another
  /// reason, then wakes every registered cv waiter. Safe from any thread,
  /// idempotent.
  void Cancel() {
    int expected = static_cast<int>(CancelReason::kNone);
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(CancelReason::kCancelled),
        std::memory_order_acq_rel, std::memory_order_acquire);
    state_->NotifyWaiters();
  }

  /// Arms the deadline; checks after `deadline` passes latch
  /// kDeadlineExceeded. A second call replaces an unexpired deadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    state_->deadline_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count(),
        std::memory_order_release);
  }

  void SetDeadlineAfter(std::chrono::nanoseconds delay) {
    SetDeadline(std::chrono::steady_clock::now() + delay);
  }

  CancelReason reason() const { return state_->Check(); }
  bool cancel_requested() const { return reason() != CancelReason::kNone; }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

/// RAII registration of a cv waiter on a token: for the guard's lifetime a
/// Cancel() of the token's source notifies `cv` (under `m`). Construct
/// before the first predicate check under `m` (see AddCancelWaiter); holds
/// nothing for a null token.
class CancelWaiter {
 public:
  CancelWaiter(const CancelToken& token, std::mutex* m,
               std::condition_variable* cv)
      : token_(token), cv_(cv) {
    token_.AddCancelWaiter(m, cv);
  }
  ~CancelWaiter() { token_.RemoveCancelWaiter(cv_); }

  CancelWaiter(const CancelWaiter&) = delete;
  CancelWaiter& operator=(const CancelWaiter&) = delete;

 private:
  CancelToken token_;
  std::condition_variable* cv_;
};

}  // namespace p2

#endif  // P2_COMMON_CANCEL_H_
