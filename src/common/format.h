// Lightweight text formatting helpers used by printers, reports and benches.
#ifndef P2_COMMON_FORMAT_H_
#define P2_COMMON_FORMAT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace p2 {

/// "[1 2 2 4]"
std::string BracketJoin(std::span<const std::int64_t> xs);
std::string BracketJoin(std::span<const int> xs);

/// "[[1 2] [4 8]]" given rows.
std::string NestedBracketJoin(
    std::span<const std::vector<std::int64_t>> rows);

/// Seconds with sensible precision, e.g. "0.17", "89.70", "0.003".
std::string FormatSeconds(double seconds);

/// Fixed-width column table printer for benches and reports.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Renders with column alignment and a separator under the header.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace p2

#endif  // P2_COMMON_FORMAT_H_
