#include "common/histogram.h"

#include <cmath>

namespace p2 {

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative → smallest bucket
  int bucket = 0;
  double upper = 1e-6;
  // Loop-doubling instead of log2: exact at bucket boundaries and free of
  // libm rounding differences across platforms — determinism is the point.
  while (bucket < kNumBuckets - 1 && seconds > upper) {
    upper *= 2.0;
    ++bucket;
  }
  ++buckets_[static_cast<std::size_t>(bucket)];
  ++count_;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  std::int64_t rank =
      static_cast<std::int64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::int64_t cumulative = 0;
  double upper = 1e-6;
  for (int bucket = 0; bucket < kNumBuckets; ++bucket) {
    cumulative += buckets_[static_cast<std::size_t>(bucket)];
    if (cumulative >= rank) return upper;
    upper *= 2.0;
  }
  return upper;  // unreachable: cumulative reaches count_ by the last bucket
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int bucket = 0; bucket < kNumBuckets; ++bucket) {
    buckets_[static_cast<std::size_t>(bucket)] +=
        other.buckets_[static_cast<std::size_t>(bucket)];
  }
  count_ += other.count_;
}

}  // namespace p2
