// Test-only fault injection for the planning stack. Library code marks
// interesting points — synthesis frontier layers, pipeline stages,
// cache-store I/O — with MaybeInjectFault("point.name"); tests and benches
// install a process-wide hook that can stall (sleep) or fail (throw) at
// chosen points, which is how tests/service_faults_test.cc holds a request
// in flight long enough to cancel it, or makes a cache owner's synthesis
// die so its waiters must re-dispatch.
//
// Production builds carry the call sites but never install a hook, so a
// checkpoint costs a single relaxed atomic load — the mechanism is inert
// unless a test arms it. Installation is not synchronized against in-flight
// work: install before submitting the requests you want to perturb and
// uninstall after draining them (FaultScope does both).
#ifndef P2_COMMON_FAULT_INJECTION_H_
#define P2_COMMON_FAULT_INJECTION_H_

#include <functional>
#include <string_view>
#include <utility>

namespace p2 {

class FaultInjector {
 public:
  /// Called with the point name; may sleep to stall the caller or throw to
  /// fail it (the exception propagates out of MaybeInjectFault as if the
  /// instrumented code itself threw). Must be thread-safe: points fire
  /// concurrently from pool workers.
  using Hook = std::function<void(std::string_view point)>;

  /// Installs `hook` process-wide, replacing any previous hook.
  static void Install(Hook hook);
  /// Removes the hook; later checkpoints are inert again.
  static void Uninstall();
};

/// The checkpoint library code plants. No-op (one relaxed atomic load)
/// unless a hook is installed.
void MaybeInjectFault(std::string_view point);

/// RAII installer for tests: installs on construction, uninstalls on
/// destruction, so a throwing test never leaks its hook into later tests.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector::Hook hook) {
    FaultInjector::Install(std::move(hook));
  }
  ~FaultScope() { FaultInjector::Uninstall(); }

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace p2

#endif  // P2_COMMON_FAULT_INJECTION_H_
