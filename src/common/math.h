// Small integer-math helpers shared across P2: products, divisibility,
// ordered factorizations and mixed-radix coordinate conversions.
#ifndef P2_COMMON_MATH_H_
#define P2_COMMON_MATH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace p2 {

/// Product of a span of non-negative integers. Throws std::overflow_error on
/// 64-bit overflow.
std::int64_t Product(std::span<const std::int64_t> xs);
std::int64_t Product(std::span<const int> xs);

/// All ordered factorizations of `n` into exactly `parts` positive factors
/// (factors may be 1). E.g. OrderedFactorizations(4, 2) = {{1,4},{2,2},{4,1}}.
std::vector<std::vector<std::int64_t>> OrderedFactorizations(std::int64_t n,
                                                             int parts);

/// All divisors of n in increasing order.
std::vector<std::int64_t> Divisors(std::int64_t n);

/// Mixed-radix helpers. `radices` are ordered outermost-first, so the flat
/// index of digits (d0, d1, ..., dk) is ((d0*r1 + d1)*r2 + d2)*...
/// Digits must satisfy 0 <= di < radices[i].
std::int64_t DigitsToIndex(std::span<const std::int64_t> digits,
                           std::span<const std::int64_t> radices);
std::vector<std::int64_t> IndexToDigits(std::int64_t index,
                                        std::span<const std::int64_t> radices);

/// Ceiling of log2(n) for n >= 1.
int CeilLog2(std::int64_t n);

}  // namespace p2

#endif  // P2_COMMON_MATH_H_
