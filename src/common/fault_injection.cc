#include "common/fault_injection.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace p2 {

namespace {

// The hook lives behind a shared_ptr copied under a mutex, so a checkpoint
// can keep calling a hook that Uninstall concurrently swaps out. The `armed`
// flag is the fast path: uninstalled (the production state) costs exactly
// one relaxed load.
std::atomic<bool> armed{false};
std::shared_ptr<const FaultInjector::Hook>& HookSlot() {
  static std::shared_ptr<const FaultInjector::Hook> slot;
  return slot;
}
std::mutex& HookMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

void FaultInjector::Install(Hook hook) {
  std::lock_guard<std::mutex> lock(HookMutex());
  HookSlot() = std::make_shared<const Hook>(std::move(hook));
  armed.store(true, std::memory_order_release);
}

void FaultInjector::Uninstall() {
  std::lock_guard<std::mutex> lock(HookMutex());
  armed.store(false, std::memory_order_release);
  HookSlot().reset();
}

void MaybeInjectFault(std::string_view point) {
  if (!armed.load(std::memory_order_relaxed)) return;
  std::shared_ptr<const FaultInjector::Hook> hook;
  {
    std::lock_guard<std::mutex> lock(HookMutex());
    hook = HookSlot();
  }
  if (hook != nullptr && *hook) (*hook)(point);
}

}  // namespace p2
