// Rack-scale planning: a third hierarchy level. Two racks of two 16-GPU
// A100 nodes, rack uplinks 4x oversubscribed. A 16-way data-parallel axis
// spans rack x node x gpu; P2 synthesizes *staged* reductions (gpu-local,
// then node-local, then cross-rack) that a flat AllReduce cannot match, and
// quantifies how much rack oversubscription amplifies the advantage.
#include <cstdio>

#include "engine/engine.h"
#include "engine/report.h"
#include "topology/presets.h"

int main() {
  using namespace p2;

  const core::ParallelismMatrix placement({{2, 2, 4}, {1, 1, 4}});
  const std::vector<int> reduction_axes = {0};

  std::printf(
      "Rack-scale planning: 2 racks x 2 nodes x 16 A100, axes [16 4],\n"
      "placement [[2 2 4] [1 1 4]] (reduction axis spans rack/node/gpu),\n"
      "payload 1 GB per GPU.\n\n");

  std::printf("%-8s %12s %12s %9s  %-14s %s\n", "oversub", "AllReduce(s)",
              "best(s)", "speedup", "best shape", "steps");
  for (double oversub : {1.0, 2.0, 4.0, 8.0}) {
    const auto cluster = topology::MakeRackedA100Cluster(2, 2, oversub);
    engine::EngineOptions options;
    options.payload_bytes = 1e9;
    const engine::Engine eng(cluster, options);

    const auto eval = eng.EvaluatePlacement(placement, reduction_axes);
    const auto& best =
        eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
    const double t_ar = eval.DefaultAllReduce().measured_seconds;
    std::printf("%-8.1f %12.4f %12.4f %8.2fx  %-14s %d\n", oversub, t_ar,
                best.measured_seconds, t_ar / best.measured_seconds,
                engine::ProgramShape(best.program).c_str(), best.num_steps);
  }

  std::printf(
      "\nStaged programs that reduce locally before touching the uplink beat\n"
      "the flat AllReduce throughout; as oversubscription moves the\n"
      "bottleneck from the NICs to the rack uplink, the *shape* of the best\n"
      "strategy changes (Reduce-AllReduce-Broadcast gives way to a\n"
      "scatter-based pipeline that puts fewer bytes on the uplink). This is\n"
      "what three-level hierarchy-aware synthesis is for.\n");
  return 0;
}
