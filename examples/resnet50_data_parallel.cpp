// The paper's introduction case study: speeding up ResNet-50 data-parallel
// training on 4 nodes x 8 V100 by replacing the default gradient AllReduce
// with a P2-synthesized reduction (paper: ~15% end-to-end step improvement).
//
// ResNet-50 has ~25.6M parameters; with float32 gradients that is ~102 MB
// reduced once per step. We model the cluster, synthesize reduction
// strategies for the single data-parallel axis, and report the communication
// speedup plus the end-to-end step improvement for a typical compute time.
#include <algorithm>
#include <cstdio>

#include "engine/engine.h"
#include "engine/report.h"
#include "topology/presets.h"

int main() {
  using namespace p2;

  const topology::Cluster cluster = topology::MakeV100Cluster(4);
  constexpr double kResnet50Params = 25.6e6;
  constexpr double kBytesPerParam = 4.0;  // float32 gradients
  constexpr double kComputeSecondsPerStep = 0.045;  // fwd+bwd, batch 64/GPU

  engine::EngineOptions options;
  options.algo = core::NcclAlgo::kRing;
  options.payload_bytes = kResnet50Params * kBytesPerParam;
  const engine::Engine eng(cluster, options);

  std::printf("ResNet-50 data-parallel gradient reduction on %s\n",
              cluster.ToString().c_str());
  std::printf("gradient buffer: %.1f MB per GPU\n\n",
              options.payload_bytes / 1e6);

  // Pure data parallelism: one axis covering all 32 GPUs.
  const std::vector<std::int64_t> axes = {32};
  const std::vector<int> reduction_axes = {0};

  double best_time = 1e30;
  std::string best_desc;
  double allreduce_time = 0.0;

  for (const auto& matrix : eng.SynthesizePlacements(axes)) {
    const auto eval = eng.EvaluatePlacement(matrix, reduction_axes);
    allreduce_time = eval.DefaultAllReduce().measured_seconds;
    for (const auto& p : eval.programs) {
      if (p.measured_seconds < best_time) {
        best_time = p.measured_seconds;
        best_desc = engine::ProgramShape(p.program) + "  " + p.text;
      }
    }
    std::printf("placement %s: %zu candidate programs\n",
                matrix.ToString().c_str(), eval.programs.size());
  }

  const double comm_speedup = allreduce_time / best_time;
  const double step_default = kComputeSecondsPerStep + allreduce_time;
  const double step_best = kComputeSecondsPerStep + best_time;

  std::printf("\ndefault AllReduce : %6.1f ms per step\n",
              1e3 * allreduce_time);
  std::printf("best synthesized  : %6.1f ms per step (%.2fx communication)\n",
              1e3 * best_time, comm_speedup);
  std::printf("  %s\n", best_desc.c_str());
  std::printf(
      "\nend-to-end: %.1f ms -> %.1f ms per training step (%.1f%% faster;\n"
      "paper reports ~15%% for this system)\n",
      1e3 * step_default, 1e3 * step_best,
      100.0 * (step_default - step_best) / step_default);
  return 0;
}
