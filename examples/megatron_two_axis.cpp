// Megatron-style parameter sharding combined with data parallelism
// (Shoeybi et al. 2020; paper Section 4.1, Result 1 discussion): sharded
// transformer layers AllReduce along the *tensor-parallel* axis inside every
// layer's forward and backward pass, while gradient reduction happens along
// the *data-parallel* axis once per step. The right placement must weigh
// both reductions — the placement that is optimal for one axis can be
// catastrophic for the other (B1 vs B3 in Table 3).
//
// This example plans a 64-GPU A100 job with tensor parallelism 16 and data
// parallelism 4 using P2's multi-demand planner, which scores each placement
// by the weighted per-step cost of its best synthesized strategies.
#include <cstdio>

#include "engine/engine.h"
#include "engine/planner.h"
#include "engine/report.h"
#include "topology/presets.h"

int main() {
  using namespace p2;

  const topology::Cluster cluster = topology::MakeA100Cluster(4);

  // Transformer block ~ GPT-3 13B scale per shard group.
  constexpr double kActivationBytes = 0.4e9;  // per tensor-parallel AllReduce
  constexpr double kShardedReductionsPerStep = 48;  // 2 per layer, 24 layers
  constexpr double kGradientBytes = 3.2e9;    // data-parallel gradients

  const std::vector<std::int64_t> axes = {4, 16};  // data x tensor
  const std::vector<engine::ReductionDemand> demands = {
      // Demand 0: tensor-parallel activation reductions, many per step.
      engine::ReductionDemand{{1}, kActivationBytes,
                              kShardedReductionsPerStep},
      // Demand 1: one data-parallel gradient reduction per step.
      engine::ReductionDemand{{0}, kGradientBytes, 1.0},
  };

  std::printf("Megatron-style planning on %s\n", cluster.ToString().c_str());
  std::printf(
      "tensor parallelism 16 (%.0f AllReduce of %.1f GB per step), data\n"
      "parallelism 4 (1 gradient reduction of %.1f GB per step)\n\n",
      kShardedReductionsPerStep, kActivationBytes / 1e9,
      kGradientBytes / 1e9);

  const engine::Engine eng(cluster, {});
  const auto plans = engine::PlanPlacements(eng, axes, demands);

  std::printf("%-16s %12s %12s %12s  %s\n", "placement", "tensor(s)",
              "data(s)", "total(s)", "programs (tensor, data)");
  for (const auto& plan : plans) {
    std::printf("%-16s %12.3f %12.3f %12.3f  %s, %s\n",
                plan.matrix.ToString().c_str(),
                plan.demands[0].seconds_per_step,
                plan.demands[1].seconds_per_step,
                plan.total_seconds_per_step,
                engine::ProgramShape(plan.demands[0].program).c_str(),
                engine::ProgramShape(plan.demands[1].program).c_str());
  }

  const auto& best = plans.front();
  const auto& worst = plans.back();
  std::printf(
      "\nbest placement %s is %.1fx faster per step than worst %s —\n"
      "single-axis tuning would have picked differently: the placement\n"
      "minimizing only the data reduction maximizes tensor-parallel cost\n"
      "(the paper's B1-vs-B3 effect).\n",
      best.matrix.ToString().c_str(),
      worst.total_seconds_per_step / best.total_seconds_per_step,
      worst.matrix.ToString().c_str());
  return 0;
}
