// Quickstart: the paper's running example end to end.
//
// A system [(rack,1),(server,2),(cpu,2),(gpu,4)] runs a model with data
// parallelism of size 4 and 4 parameter shards (Figure 2). We want to reduce
// gradients along the parameter-sharding axis. P2:
//   1. enumerates the parallelism placements (parallelism matrices),
//   2. synthesizes reduction programs per placement,
//   3. predicts each program's time with the analytic model and measures it
//      on the simulated cluster,
//   4. ranks everything.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "engine/engine.h"
#include "engine/report.h"
#include "topology/presets.h"

int main() {
  using namespace p2;

  // The running example has 16 GPUs; model it as 2 servers ("nodes") of 8
  // GPUs on the V100-style preset so the interconnects are realistic.
  const topology::Cluster cluster = topology::MakeV100Cluster(2);

  engine::EngineOptions options;
  options.algo = core::NcclAlgo::kRing;
  options.payload_bytes = 100e6;  // 25M float32 gradients
  const engine::Engine p2_engine(cluster, options);

  const std::vector<std::int64_t> axes = {4, 4};  // data x shards
  const std::vector<int> reduction_axes = {1};    // reduce along sharding

  std::printf("System: %s, hierarchy %s\n", cluster.ToString().c_str(),
              cluster.hierarchy().ToShortString().c_str());
  std::printf("Parallelism axes [4 4], reducing along axis 1 (shards)\n\n");

  const auto placements = p2_engine.SynthesizePlacements(axes);
  std::printf("P2 found %zu placements:\n\n", placements.size());

  for (const auto& matrix : placements) {
    const auto eval = p2_engine.EvaluatePlacement(matrix, reduction_axes);
    const auto& best =
        eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
    std::printf("placement %s  (%zu programs, synthesized in %.3fs)\n",
                matrix.ToString().c_str(), eval.programs.size(),
                eval.synthesis_seconds);
    std::printf("  default AllReduce : %8.2f ms\n",
                1e3 * eval.DefaultAllReduce().measured_seconds);
    std::printf("  best synthesized  : %8.2f ms  (%s)\n",
                1e3 * best.measured_seconds,
                engine::ProgramShape(best.program).c_str());
    std::printf("    program: %s\n\n", best.text.c_str());
  }

  std::printf(
      "Tip: rank placements by the reductions your model actually performs —\n"
      "see examples/megatron_two_axis for a multi-axis workload.\n");
  return 0;
}
