// "Establishing projections about communication costs when investigating
// new system hierarchies" (paper's conclusion): sweep hypothetical
// interconnect configurations and watch the optimal reduction strategy flip.
//
// Scenario: a Megatron-style job uses tensor parallelism 4 inside nodes and
// data parallelism 16 spanning all 4 nodes (placement [[4 4] [1 4]] on
// 4 x 16 A100), so the gradient reduction mixes intra- and inter-node
// communication. How does the best reduction strategy —
// and the value of strategy synthesis — change as the per-node NIC gets
// faster?
#include <cstdio>
#include <vector>

#include "engine/engine.h"
#include "engine/report.h"
#include "topology/presets.h"

int main() {
  using namespace p2;

  std::printf(
      "Topology exploration: 4 nodes x 16 GPUs, placement [[4 4] [1 4]]\n"
      "(tensor parallelism inside nodes, data parallelism spanning nodes),\n"
      "reducing the data-parallel axis 0, sweeping the per-node NIC bandwidth.\n\n");

  const core::ParallelismMatrix matrix({{4, 4}, {1, 4}});
  const std::vector<int> reduction_axes = {0};

  std::printf("%-10s %12s %12s %9s  %-12s\n", "NIC GB/s", "AllReduce(s)",
              "best(s)", "speedup", "best program");
  for (double nic_gbps : {2.5, 7.5, 25.0, 75.0, 200.0}) {
    topology::Cluster cluster = topology::MakeA100Cluster(4);
    cluster.node.nic_bandwidth = nic_gbps;

    engine::EngineOptions options;
    options.payload_bytes = 1e9;
    const engine::Engine eng(cluster, options);

    const auto eval = eng.EvaluatePlacement(matrix, reduction_axes);
    const auto& best =
        eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
    const double t_ar = eval.DefaultAllReduce().measured_seconds;
    std::printf("%-10.1f %12.4f %12.4f %8.2fx  %-12s\n", nic_gbps, t_ar,
                best.measured_seconds, t_ar / best.measured_seconds,
                engine::ProgramShape(best.program).c_str());
  }

  std::printf(
      "\nReading the sweep: the slower the NIC, the more a synthesized\n"
      "low-NIC-traffic program buys over the default AllReduce; once the\n"
      "NIC approaches NVSwitch bandwidth the advantage collapses and the\n"
      "flat AllReduce is fine. This is the paper's conclusion use-case:\n"
      "projecting communication cost for hierarchies you have not built.\n");
  return 0;
}
