#include "engine/report.h"

#include <gtest/gtest.h>

namespace p2::engine {
namespace {

ExperimentResult MakeResult(
    const std::vector<std::vector<std::pair<double, double>>>& placements) {
  ExperimentResult result;
  for (const auto& progs : placements) {
    PlacementEvaluation pe;
    pe.matrix =
        core::ParallelismMatrix(std::vector<std::vector<std::int64_t>>{{1}});
    for (const auto& [pred, meas] : progs) {
      ProgramEvaluation p;
      p.predicted_seconds = pred;
      p.measured_seconds = meas;
      pe.programs.push_back(p);
    }
    result.placements.push_back(std::move(pe));
  }
  return result;
}

TEST(Report, CollectPairsFlattens) {
  const auto result = MakeResult({{{1, 1}, {2, 2}}, {{3, 3}}});
  const auto pairs = CollectPairs(result);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[2].placement_index, 1);
  EXPECT_EQ(pairs[2].program_index, 0);
}

TEST(Report, PerfectPredictionRankZero) {
  const auto result = MakeResult({{{2, 2}, {1, 1}, {3, 3}}});
  EXPECT_EQ(MeasuredRankOfPredictedBest(CollectPairs(result)), 0);
}

TEST(Report, MispredictionGetsPositiveRank) {
  // Predicted best is the pair with pred=1 (meas=10); two pairs measure
  // faster than 10 => rank 2.
  const auto result = MakeResult({{{1, 10}, {2, 3}, {3, 5}, {4, 20}}});
  EXPECT_EQ(MeasuredRankOfPredictedBest(CollectPairs(result)), 2);
}

TEST(Report, AccuracyCounterTopK) {
  AccuracyCounter counter({1, 2, 10});
  counter.AddExperiment(MakeResult({{{1, 1}, {2, 2}}}));        // rank 0
  counter.AddExperiment(MakeResult({{{1, 10}, {2, 3}}}));        // rank 1
  counter.AddExperiment(MakeResult(
      {{{1, 10}, {2, 3}, {3, 4}, {4, 5}}}));                     // rank 3
  EXPECT_EQ(counter.total(), 3);
  EXPECT_DOUBLE_EQ(counter.Rate(0), 1.0 / 3.0);  // top-1
  EXPECT_DOUBLE_EQ(counter.Rate(1), 2.0 / 3.0);  // top-2
  EXPECT_DOUBLE_EQ(counter.Rate(2), 1.0);        // top-10
}

TEST(Report, AccuracyRatesMonotoneInK) {
  AccuracyCounter counter;
  counter.AddExperiment(MakeResult({{{1, 5}, {2, 3}, {3, 1}}}));
  for (std::size_t i = 1; i < counter.ks().size(); ++i) {
    EXPECT_GE(counter.Rate(i), counter.Rate(i - 1));
  }
}

TEST(Report, FormatSpeedup) {
  EXPECT_EQ(FormatSpeedup(1.0), "1x");
  EXPECT_EQ(FormatSpeedup(1.83), "1.83x");
  EXPECT_EQ(FormatSpeedup(2.044), "2.04x");
}

TEST(Report, ProgramShape) {
  const core::Program p = {
      core::Instruction{1, core::Form::InsideGroup(),
                        core::Collective::kReduceScatter},
      core::Instruction{1, core::Form::Parallel(0),
                        core::Collective::kAllReduce},
      core::Instruction{1, core::Form::InsideGroup(),
                        core::Collective::kAllGather}};
  EXPECT_EQ(ProgramShape(p), "RS-AR-AG");
}

TEST(Report, RankThrowsOnEmpty) {
  EXPECT_THROW(MeasuredRankOfPredictedBest({}), std::invalid_argument);
}

TEST(Report, ServiceStatsRenderRobustnessCountersOnlyWhenNonzero) {
  PlannerServiceStats stats;
  stats.requests = 3;
  // A clean run renders the classic footer, no robustness lines.
  const auto clean = RenderServiceStats(stats);
  EXPECT_EQ(clean.find("admission:"), std::string::npos);
  EXPECT_EQ(clean.find("aborted:"), std::string::npos);

  stats.rejected = 2;
  stats.peak_in_flight = 4;
  stats.cancelled = 1;
  stats.deadline_exceeded = 3;
  const auto hardened = RenderServiceStats(stats);
  EXPECT_NE(hardened.find("admission: 2 rejected, peak 4 in flight"),
            std::string::npos)
      << hardened;
  EXPECT_NE(hardened.find("aborted: 1 cancelled, 3 deadline-exceeded"),
            std::string::npos)
      << hardened;
}

TEST(Report, TenantRowsRenderRobustnessCounters) {
  PlannerServiceStats stats;
  stats.requests = 2;
  TenantStats calm;
  calm.id = 0;
  calm.cluster = "calm";
  calm.requests = 1;
  TenantStats noisy;
  noisy.id = 1;
  noisy.cluster = "noisy";
  noisy.requests = 1;
  noisy.rejected = 5;
  noisy.cancelled = 2;
  noisy.deadline_exceeded = 1;
  stats.tenants = {calm, noisy};

  const auto rendered = RenderServiceStats(stats);
  EXPECT_NE(rendered.find("5 rejected"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("2 cancelled"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("1 deadline-exceeded"), std::string::npos)
      << rendered;
  // The calm tenant's row stays free of robustness segments.
  const auto calm_row = rendered.find("tenant 0 [calm]");
  const auto noisy_row = rendered.find("tenant 1 [noisy]");
  ASSERT_NE(calm_row, std::string::npos);
  ASSERT_NE(noisy_row, std::string::npos);
  EXPECT_EQ(rendered.substr(calm_row, noisy_row - calm_row).find("rejected"),
            std::string::npos);
}

}  // namespace
}  // namespace p2::engine
