#include "engine/engine.h"

#include <gtest/gtest.h>

#include "engine/report.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.payload_bytes = 1e9;  // smaller payload to keep tests quick
  return opts;
}

TEST(Engine, DefaultPayloadMatchesPaper) {
  // (2^29 * nodes) float32 per GPU.
  const auto c4 = topology::MakeA100Cluster(4);
  EXPECT_DOUBLE_EQ(Engine::DefaultPayloadBytes(c4), 4.0 * 536870912.0 * 4);
  const auto c2 = topology::MakeV100Cluster(2);
  EXPECT_DOUBLE_EQ(Engine::DefaultPayloadBytes(c2), 4.0 * 536870912.0 * 2);
}

TEST(Engine, EvaluatePlacementStructure) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  ASSERT_GE(eval.programs.size(), 3u);
  EXPECT_TRUE(eval.programs.front().is_default_allreduce);
  for (const auto& p : eval.programs) {
    EXPECT_GT(p.predicted_seconds, 0.0);
    EXPECT_GT(p.measured_seconds, 0.0);
    EXPECT_GE(p.num_steps, 1);
    EXPECT_FALSE(p.text.empty());
  }
  EXPECT_GE(eval.synthesis_seconds, 0.0);
}

TEST(Engine, DefaultAllReduceNotDuplicated) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  int defaults = 0;
  for (const auto& p : eval.programs) {
    if (p.num_steps == 1 &&
        p.program[0].op == core::Collective::kAllReduce &&
        p.program[0].form.kind == core::Form::Kind::kInsideGroup) {
      // Only the explicitly marked default may be a root AllReduce.
      ++defaults;
    }
  }
  EXPECT_EQ(defaults, 1);
}

TEST(Engine, BestIndicesConsistent) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  const int best = eval.BestMeasuredIndex();
  for (const auto& p : eval.programs) {
    EXPECT_GE(p.measured_seconds,
              eval.programs[static_cast<std::size_t>(best)].measured_seconds);
  }
  const int best_pred = eval.BestPredictedIndex();
  for (const auto& p : eval.programs) {
    EXPECT_GE(
        p.predicted_seconds,
        eval.programs[static_cast<std::size_t>(best_pred)].predicted_seconds);
  }
}

TEST(Engine, CrossNodePlacementBenefitsFromSynthesis) {
  // Paper Result 5: cross-node reductions are where synthesized programs win.
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  EXPECT_GT(eval.NumOutperforming(), 0);
  const auto& best =
      eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
  const double speedup =
      eval.DefaultAllReduce().measured_seconds / best.measured_seconds;
  EXPECT_GT(speedup, 1.1);
  EXPECT_LT(speedup, 4.0);  // the paper sees up to ~2x
}

TEST(Engine, IntraNodePlacementKeepsAllReduce) {
  // Paper Result 3: if the reduction axis fits in a node, AllReduce wins.
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{1, 8}, {2, 2}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  const auto& best =
      eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
  const double ratio =
      best.measured_seconds / eval.DefaultAllReduce().measured_seconds;
  EXPECT_GT(ratio, 0.95);  // nothing meaningfully beats local AllReduce
}

TEST(Engine, RunExperimentAggregates) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<int> raxes = {0};
  const auto result = eng.RunExperiment(axes, raxes);
  ASSERT_EQ(result.placements.size(), 2u);  // Table 4 F1/F2
  EXPECT_GT(result.TotalPrograms(), 10);
  EXPECT_GE(result.TotalOutperforming(), 0);
  EXPECT_GT(result.TotalSynthesisSeconds(), 0.0);
  EXPECT_EQ(result.algo, core::NcclAlgo::kRing);
}

TEST(Engine, MeasureCanBeDisabled) {
  EngineOptions opts = FastOptions();
  opts.measure = false;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const core::ParallelismMatrix m({{1, 8}, {2, 2}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  for (const auto& p : eval.programs) {
    EXPECT_EQ(p.measured_seconds, 0.0);
    EXPECT_GT(p.predicted_seconds, 0.0);
  }
}

TEST(Engine, SynthesisSizeLimitFlowsThrough) {
  EngineOptions opts = FastOptions();
  opts.synthesis.max_program_size = 1;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacement(m, axes);
  for (const auto& p : eval.programs) EXPECT_EQ(p.num_steps, 1);
}

}  // namespace
}  // namespace p2::engine
