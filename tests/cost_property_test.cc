// Parameterized property sweeps of the analytic cost model across clusters,
// collectives and algorithms, plus the classic latency/bandwidth crossover:
// with tiny payloads the tree's O(log n) rounds beat the ring's O(n), with
// huge payloads the ring's better bandwidth efficiency wins — the reason the
// paper evaluates with 2^29 x nodes floats (to stay bandwidth-bound).
#include <gtest/gtest.h>

#include <sstream>

#include "cost/cost_model.h"
#include "engine/baselines.h"
#include "runtime/executor.h"
#include "topology/presets.h"

namespace p2::cost {
namespace {

using core::Collective;
using core::NcclAlgo;

struct SweepCase {
  std::string cluster;  // "a100-2", "a100-4", "v100-2", "v100-4"
  Collective op;
  NcclAlgo algo;
};

topology::Cluster MakeCluster(const std::string& name) {
  if (name == "a100-2") return topology::MakeA100Cluster(2);
  if (name == "a100-4") return topology::MakeA100Cluster(4);
  if (name == "v100-2") return topology::MakeV100Cluster(2);
  return topology::MakeV100Cluster(4);
}

core::LoweredStep CrossNodeStep(const topology::Cluster& cluster,
                                Collective op) {
  // Pairs (i, i + gpus_per_node): one partner per node boundary.
  core::LoweredStep step;
  step.op = op;
  const int g = cluster.node.gpus_per_node;
  for (int i = 0; i < g; ++i) {
    step.groups.push_back({i, i + g});
  }
  step.in_fraction = 1.0;
  step.out_fraction = 1.0;
  return step;
}

std::string SweepName(const testing::TestParamInfo<SweepCase>& info) {
  std::ostringstream os;
  os << info.param.cluster << '_' << core::ShortName(info.param.op) << '_'
     << core::ToString(info.param.algo);
  std::string s = os.str();
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class CostModelSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(CostModelSweep, PositiveAndMonotoneInPayload) {
  const auto& param = GetParam();
  const auto cluster = MakeCluster(param.cluster);
  const CostModel model(cluster);
  const auto step = CrossNodeStep(cluster, param.op);
  double prev = 0.0;
  for (double payload : {1e6, 1e8, 1e9, 8e9}) {
    const double t = model.PredictStep(step, payload, param.algo);
    EXPECT_GT(t, 0.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_P(CostModelSweep, SubstrateAgreesWithinFactorTwo) {
  // The analytic model and the substrate share the topology; for a single
  // homogeneous step they must agree within a factor of two (the paper's
  // simulator is "very close" on A100 and cruder on V100).
  const auto& param = GetParam();
  const auto cluster = MakeCluster(param.cluster);
  const CostModel model(cluster);
  const runtime::Executor exec(cluster);
  const auto step = CrossNodeStep(cluster, param.op);
  const double payload = 4e9;
  const double predicted = model.PredictStep(step, payload, param.algo);
  const double measured = exec.MeasureStep(step, payload, param.algo);
  EXPECT_GT(measured, predicted * 0.5);
  EXPECT_LT(measured, predicted * 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostModelSweep,
    testing::Values(
        SweepCase{"a100-2", Collective::kAllReduce, NcclAlgo::kRing},
        SweepCase{"a100-2", Collective::kAllReduce, NcclAlgo::kTree},
        SweepCase{"a100-2", Collective::kReduceScatter, NcclAlgo::kRing},
        SweepCase{"a100-2", Collective::kAllGather, NcclAlgo::kRing},
        SweepCase{"a100-2", Collective::kReduce, NcclAlgo::kRing},
        SweepCase{"a100-2", Collective::kReduce, NcclAlgo::kTree},
        SweepCase{"a100-2", Collective::kBroadcast, NcclAlgo::kRing},
        SweepCase{"a100-2", Collective::kBroadcast, NcclAlgo::kTree},
        SweepCase{"a100-4", Collective::kAllReduce, NcclAlgo::kRing},
        SweepCase{"a100-4", Collective::kAllReduce, NcclAlgo::kTree},
        SweepCase{"v100-2", Collective::kAllReduce, NcclAlgo::kRing},
        SweepCase{"v100-2", Collective::kAllReduce, NcclAlgo::kTree},
        SweepCase{"v100-4", Collective::kAllReduce, NcclAlgo::kRing},
        SweepCase{"v100-4", Collective::kReduceScatter, NcclAlgo::kRing},
        SweepCase{"v100-4", Collective::kBroadcast, NcclAlgo::kTree}),
    SweepName);

TEST(CostModelCrossover, TreeWinsTinyMessagesRingWinsHugeOnes) {
  // Intra-node AllReduce over all 16 GPUs of one A100 node.
  const auto cluster = topology::MakeA100Cluster(2);
  const CostModel model(cluster);
  core::LoweredStep step;
  step.op = Collective::kAllReduce;
  step.groups.push_back({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                         15});
  step.in_fraction = step.out_fraction = 1.0;

  const double tiny = 1e3;  // 1 KB: latency-bound
  EXPECT_LT(model.PredictStep(step, tiny, NcclAlgo::kTree),
            model.PredictStep(step, tiny, NcclAlgo::kRing));

  const double huge = 8e9;  // 8 GB: bandwidth-bound
  EXPECT_LT(model.PredictStep(step, huge, NcclAlgo::kRing),
            model.PredictStep(step, huge, NcclAlgo::kTree));
}

TEST(CostModelCrossover, LatencyTermScalesWithRounds) {
  const auto cluster = topology::MakeA100Cluster(2);
  const CostModel model(cluster);
  // Two group sizes at negligible payload: the bigger ring pays ~2(n-1)
  // round latencies.
  core::LoweredStep small, large;
  small.op = large.op = Collective::kAllReduce;
  small.groups.push_back({0, 1});
  large.groups.push_back({0, 1, 2, 3, 4, 5, 6, 7});
  small.in_fraction = small.out_fraction = 1.0;
  large.in_fraction = large.out_fraction = 1.0;
  const double t_small = model.PredictStep(small, 1.0, NcclAlgo::kRing);
  const double t_large = model.PredictStep(large, 1.0, NcclAlgo::kRing);
  EXPECT_NEAR(t_large / t_small, 14.0 / 2.0, 1.0);  // 2(n-1) ratio
}

}  // namespace
}  // namespace p2::cost
