#include "topology/cluster.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::topology {
namespace {

TEST(Cluster, A100Preset) {
  const Cluster c = MakeA100Cluster(4);
  EXPECT_EQ(c.num_devices(), 64);
  EXPECT_EQ(c.node.gpus_per_node, 16);
  EXPECT_EQ(c.node.transport, IntraNodeTransport::kNvSwitch);
  EXPECT_EQ(c.node.pcie_domains, 0);
  EXPECT_GT(c.node.local_bandwidth, c.node.nic_bandwidth);
  // Paper hierarchy for 4 A100 nodes: [4 16].
  EXPECT_EQ(c.hierarchy().ToShortString(), "[4 16]");
}

TEST(Cluster, V100Preset) {
  const Cluster c = MakeV100Cluster(2);
  EXPECT_EQ(c.num_devices(), 16);
  EXPECT_EQ(c.node.transport, IntraNodeTransport::kNvLinkRing);
  EXPECT_EQ(c.node.pcie_domains, 2);
  EXPECT_EQ(c.hierarchy().ToShortString(), "[2 8]");
}

TEST(Cluster, NodeAndRank) {
  const Cluster c = MakeV100Cluster(4);
  EXPECT_EQ(c.NodeOf(0), 0);
  EXPECT_EQ(c.NodeOf(7), 0);
  EXPECT_EQ(c.NodeOf(8), 1);
  EXPECT_EQ(c.NodeOf(31), 3);
  EXPECT_EQ(c.LocalRank(13), 5);
}

TEST(Cluster, PcieDomains) {
  const Cluster c = MakeV100Cluster(2);
  EXPECT_EQ(c.node.PcieDomainOf(0), 0);
  EXPECT_EQ(c.node.PcieDomainOf(3), 0);
  EXPECT_EQ(c.node.PcieDomainOf(4), 1);
  EXPECT_EQ(c.node.PcieDomainOf(7), 1);
  const Cluster a = MakeA100Cluster(2);
  EXPECT_EQ(a.node.PcieDomainOf(3), -1);
}

TEST(Cluster, PcieDomainRejectsBadRank) {
  const Cluster c = MakeV100Cluster(2);
  EXPECT_THROW(c.node.PcieDomainOf(8), std::out_of_range);
}

TEST(Cluster, ToStringMentionsShape) {
  const Cluster c = MakeA100Cluster(2);
  EXPECT_NE(c.ToString().find("2 nodes"), std::string::npos);
  EXPECT_NE(c.ToString().find("A100"), std::string::npos);
}

TEST(ClusterFingerprint, EqualForIdenticallyModeledMachines) {
  EXPECT_EQ(MakeA100Cluster(4).Fingerprint(), MakeA100Cluster(4).Fingerprint());
  EXPECT_EQ(MakeRackedA100Cluster(2, 2).Fingerprint(),
            MakeRackedA100Cluster(2, 2).Fingerprint());
}

TEST(ClusterFingerprint, IgnoresTheCosmeticNodeName) {
  // Two clusters differing only in the display name are the same machine to
  // the cost model and the flow simulator; a service must not build two
  // engines for them.
  Cluster a = MakeA100Cluster(4);
  Cluster b = a;
  b.node.name = "A100-renamed";
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(ClusterFingerprint, NormalizesUnreachableParameters) {
  // PCIe figures without PCIe domains, and rack-uplink figures on a
  // single-rack cluster, describe hardware that does not exist.
  Cluster a = MakeA100Cluster(4);  // pcie_domains == 0, racks == 1
  Cluster b = a;
  b.node.pcie_bandwidth = 999.0;
  b.rack_uplink_bandwidth = 123.0;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(ClusterFingerprint, CoversEveryCostParameter) {
  const Cluster base = MakeV100Cluster(4);  // has PCIe domains
  std::vector<Cluster> variants(10, base);
  variants[0].node.gpus_per_node = 4;
  variants[1].node.transport = IntraNodeTransport::kNvSwitch;
  variants[2].node.local_bandwidth += 1.0;
  variants[3].node.local_latency *= 2.0;
  variants[4].node.pcie_bandwidth += 1.0;
  variants[5].node.nic_bandwidth += 0.5;
  variants[6].node.nic_latency *= 2.0;
  variants[7].num_nodes = 8;
  variants[8].dcn_latency *= 2.0;
  variants[9].racks = 2;
  variants[9].rack_uplink_bandwidth = 10.0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(variants[i].Fingerprint(), base.Fingerprint()) << "variant " << i;
  }
  // And distinct variants are pairwise distinct, too.
  for (std::size_t i = 0; i < variants.size(); ++i) {
    for (std::size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_NE(variants[i].Fingerprint(), variants[j].Fingerprint())
          << i << " vs " << j;
    }
  }
}

TEST(ClusterFingerprint, RackUplinkMattersOnRackedClusters) {
  const Cluster a = MakeRackedA100Cluster(2, 2, 4.0);
  const Cluster b = MakeRackedA100Cluster(2, 2, 8.0);  // tighter uplinks
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

}  // namespace
}  // namespace p2::topology
