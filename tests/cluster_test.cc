#include "topology/cluster.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::topology {
namespace {

TEST(Cluster, A100Preset) {
  const Cluster c = MakeA100Cluster(4);
  EXPECT_EQ(c.num_devices(), 64);
  EXPECT_EQ(c.node.gpus_per_node, 16);
  EXPECT_EQ(c.node.transport, IntraNodeTransport::kNvSwitch);
  EXPECT_EQ(c.node.pcie_domains, 0);
  EXPECT_GT(c.node.local_bandwidth, c.node.nic_bandwidth);
  // Paper hierarchy for 4 A100 nodes: [4 16].
  EXPECT_EQ(c.hierarchy().ToShortString(), "[4 16]");
}

TEST(Cluster, V100Preset) {
  const Cluster c = MakeV100Cluster(2);
  EXPECT_EQ(c.num_devices(), 16);
  EXPECT_EQ(c.node.transport, IntraNodeTransport::kNvLinkRing);
  EXPECT_EQ(c.node.pcie_domains, 2);
  EXPECT_EQ(c.hierarchy().ToShortString(), "[2 8]");
}

TEST(Cluster, NodeAndRank) {
  const Cluster c = MakeV100Cluster(4);
  EXPECT_EQ(c.NodeOf(0), 0);
  EXPECT_EQ(c.NodeOf(7), 0);
  EXPECT_EQ(c.NodeOf(8), 1);
  EXPECT_EQ(c.NodeOf(31), 3);
  EXPECT_EQ(c.LocalRank(13), 5);
}

TEST(Cluster, PcieDomains) {
  const Cluster c = MakeV100Cluster(2);
  EXPECT_EQ(c.node.PcieDomainOf(0), 0);
  EXPECT_EQ(c.node.PcieDomainOf(3), 0);
  EXPECT_EQ(c.node.PcieDomainOf(4), 1);
  EXPECT_EQ(c.node.PcieDomainOf(7), 1);
  const Cluster a = MakeA100Cluster(2);
  EXPECT_EQ(a.node.PcieDomainOf(3), -1);
}

TEST(Cluster, PcieDomainRejectsBadRank) {
  const Cluster c = MakeV100Cluster(2);
  EXPECT_THROW(c.node.PcieDomainOf(8), std::out_of_range);
}

TEST(Cluster, ToStringMentionsShape) {
  const Cluster c = MakeA100Cluster(2);
  EXPECT_NE(c.ToString().find("2 nodes"), std::string::npos);
  EXPECT_NE(c.ToString().find("A100"), std::string::npos);
}

}  // namespace
}  // namespace p2::topology
