#include "core/fusion.h"

#include <gtest/gtest.h>

#include "core/lowering.h"
#include "core/synthesizer.h"
#include "runtime/data_executor.h"

namespace p2::core {
namespace {

SynthesisHierarchy Fig2dHierarchy() {
  const ParallelismMatrix m({{1, 1, 2, 2}, {1, 2, 1, 2}});
  const std::vector<int> axes = {1};
  return SynthesisHierarchy::Build(m, axes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

TEST(Fusion, TwoAllReducesCollapseToOne) {
  // The paper's XLA observation: AllReduce(local) ; AllReduce(across) is one
  // AllReduce over the full groups.
  const auto sh = Fig2dHierarchy();
  const Program two_step = {
      Instruction{2, Form::InsideGroup(), Collective::kAllReduce},
      Instruction{2, Form::Parallel(0), Collective::kAllReduce}};
  const auto fused = FuseProgram(sh, two_step);
  EXPECT_EQ(fused.steps_removed, 1);
  ASSERT_EQ(fused.program.size(), 1u);
  EXPECT_EQ(fused.program[0].op, Collective::kAllReduce);
}

TEST(Fusion, FusedProgramStillValid) {
  const auto sh = Fig2dHierarchy();
  const Program two_step = {
      Instruction{2, Form::InsideGroup(), Collective::kAllReduce},
      Instruction{2, Form::Parallel(0), Collective::kAllReduce}};
  const auto fused = FuseProgram(sh, two_step);
  const auto lowered = LowerProgram(sh, fused.program);
  std::string err;
  EXPECT_TRUE(CheckLoweredOnFullSystem(sh, lowered, &err)) << err;
  EXPECT_TRUE(runtime::DataExecutor::ExecuteAndVerify(sh, lowered, 2, &err))
      << err;
}

TEST(Fusion, ReduceScatterAllGatherCollapsesToAllReduce) {
  const auto sh = Fig2dHierarchy();
  const Program rs_ag = {
      Instruction{2, Form::InsideGroup(), Collective::kReduceScatter},
      Instruction{2, Form::InsideGroup(), Collective::kAllGather}};
  const auto fused = FuseProgram(sh, rs_ag);
  // RS(g);AG(g) produces exactly AR(g)'s context.
  EXPECT_EQ(fused.steps_removed, 1);
  ASSERT_EQ(fused.program.size(), 1u);
  EXPECT_EQ(fused.program[0].op, Collective::kAllReduce);
}

TEST(Fusion, HeterogeneousProgramsSurvive) {
  // BlueConnect cannot be fused: no single collective reproduces any of its
  // adjacent pairs.
  const auto sh = Fig2dHierarchy();
  const Program blueconnect = {
      Instruction{2, Form::InsideGroup(), Collective::kReduceScatter},
      Instruction{2, Form::Parallel(0), Collective::kAllReduce},
      Instruction{2, Form::InsideGroup(), Collective::kAllGather}};
  const auto fused = FuseProgram(sh, blueconnect);
  EXPECT_EQ(fused.steps_removed, 0);
  EXPECT_EQ(fused.program, blueconnect);
}

TEST(Fusion, SingleStepProgramsUntouched) {
  const auto sh = Fig2dHierarchy();
  const Program ar = {Instruction{0, Form::InsideGroup(),
                                  Collective::kAllReduce}};
  const auto fused = FuseProgram(sh, ar);
  EXPECT_EQ(fused.steps_removed, 0);
  EXPECT_EQ(fused.program, ar);
}

TEST(Fusion, CascadesAcrossThreeSteps) {
  // Three nested AllReduces over a 2x2x2 reduction axis collapse fully.
  const ParallelismMatrix m({{2, 2, 2}, {1, 1, 1}});
  const std::vector<int> axes = {0};
  const auto sh =
      SynthesisHierarchy::Build(m, axes, SynthesisHierarchyKind::kReductionAxes);
  // Find the 3-step all-AllReduce program via the synthesizer.
  const auto result = SynthesizePrograms(sh);
  Program three_ar;
  for (const auto& p : result.programs) {
    if (p.size() == 3 && p[0].op == Collective::kAllReduce &&
        p[1].op == Collective::kAllReduce &&
        p[2].op == Collective::kAllReduce) {
      three_ar = p;
      break;
    }
  }
  ASSERT_FALSE(three_ar.empty());
  const auto fused = FuseProgram(sh, three_ar);
  EXPECT_EQ(fused.steps_removed, 2);
  EXPECT_EQ(fused.program.size(), 1u);
}

TEST(Fusion, AllSynthesizedProgramsRemainCorrectAfterFusion) {
  const auto sh = Fig2dHierarchy();
  const auto result = SynthesizePrograms(sh);
  int total_removed = 0;
  for (const auto& p : result.programs) {
    const auto fused = FuseProgram(sh, p);
    total_removed += fused.steps_removed;
    const auto lowered = LowerProgram(sh, fused.program);
    std::string err;
    ASSERT_TRUE(CheckLoweredOnFullSystem(sh, lowered, &err))
        << ToString(p) << " fused to " << ToString(fused.program) << ": "
        << err;
  }
  EXPECT_GT(total_removed, 0);  // at least the AR;AR chains fuse
}

TEST(Fusion, RejectsInvalidPrograms) {
  const auto sh = Fig2dHierarchy();
  const Program bad = {
      Instruction{2, Form::InsideGroup(), Collective::kReduceScatter},
      Instruction{2, Form::InsideGroup(), Collective::kAllReduce}};
  EXPECT_THROW(FuseProgram(sh, bad), std::invalid_argument);
}

}  // namespace
}  // namespace p2::core
