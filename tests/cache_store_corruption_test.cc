// Corruption suite for the persistent synthesis cache (ISSUE 3): a truncated
// file, a flipped payload or checksum byte, a wrong magic or format version,
// an empty file, and trailing garbage must each load as a *cold* cache with
// the stats flagging the reason — never an abort, never a partial load — and
// saving over a corrupt file must recover a valid one.
#include "engine/cache_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include "test_temp_path.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/synthesis_hierarchy.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {
namespace {

using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

std::string TempPath(const std::string& tag) {
  return p2::test::TempPath("p2_cache_corruption_test", tag);
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SynthesisHierarchy SmallHierarchy(std::int64_t inner) {
  const ParallelismMatrix m({{2, inner}});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

// A valid two-entry cache file image to corrupt.
std::string ValidImage() {
  core::SynthesisOptions options;
  options.max_program_size = 2;
  SynthesisCache cache;
  cache.GetOrSynthesize(SmallHierarchy(2), options);
  cache.GetOrSynthesize(SmallHierarchy(3), options);
  std::vector<CacheFileEntry> entries;
  for (auto& [key, result] : cache.Snapshot()) {
    entries.push_back(CacheFileEntry{std::move(key), std::move(result)});
  }
  return CacheStore::EncodeFile(entries);
}

// Every corruption must (a) report the expected status, (b) yield zero
// entries, and (c) leave a SynthesisCache cold and usable via LoadInto.
void ExpectColdLoad(const std::string& bytes, CacheLoadStatus expected,
                    const std::string& tag) {
  const std::string path = TempPath(tag);
  WriteFile(path, bytes);
  CacheStore store(path);

  const CacheFileContents contents = store.Load();
  EXPECT_EQ(contents.status, expected) << tag << ": " << contents.message;
  EXPECT_TRUE(IsCorrupt(contents.status)) << tag;
  EXPECT_FALSE(contents.message.empty()) << tag;
  EXPECT_TRUE(contents.entries.empty()) << tag;

  SynthesisCache cache;
  EXPECT_EQ(store.LoadInto(&cache), expected) << tag;
  EXPECT_EQ(store.last_load_status(), expected) << tag;
  EXPECT_EQ(store.entries_loaded(), 0) << tag;
  EXPECT_EQ(cache.size(), 0u) << tag;
  // The cold cache still synthesizes on demand — corruption never wedges it.
  core::SynthesisOptions options;
  options.max_program_size = 2;
  const auto result = cache.GetOrSynthesize(SmallHierarchy(2), options);
  EXPECT_FALSE(result->programs.empty()) << tag;
  EXPECT_EQ(cache.stats().misses, 1) << tag;
  std::filesystem::remove(path);
}

TEST(CacheStoreCorruption, EmptyFileLoadsCold) {
  ExpectColdLoad("", CacheLoadStatus::kTruncated, "empty");
}

TEST(CacheStoreCorruption, TruncatedHeaderLoadsCold) {
  ExpectColdLoad(ValidImage().substr(0, 10), CacheLoadStatus::kTruncated,
                 "short_header");
}

TEST(CacheStoreCorruption, TruncatedEntryLoadsCold) {
  const std::string image = ValidImage();
  ExpectColdLoad(image.substr(0, image.size() - 7),
                 CacheLoadStatus::kTruncated, "short_entry");
  // Cutting exactly at an entry frame boundary is still a truncation: the
  // header promises more entries than the file holds.
  ExpectColdLoad(image.substr(0, 16), CacheLoadStatus::kTruncated,
                 "frame_boundary");
}

TEST(CacheStoreCorruption, FlippedPayloadByteFailsTheChecksum) {
  std::string image = ValidImage();
  image.back() = static_cast<char>(image.back() ^ 0x40);
  ExpectColdLoad(image, CacheLoadStatus::kChecksumMismatch, "payload_flip");
}

TEST(CacheStoreCorruption, FlippedChecksumByteFailsTheChecksum) {
  std::string image = ValidImage();
  // Byte 20 sits inside the first entry's stored checksum (header is 16
  // bytes, then 4 bytes of payload length).
  image[20] = static_cast<char>(image[20] ^ 0x01);
  ExpectColdLoad(image, CacheLoadStatus::kChecksumMismatch, "checksum_flip");
}

TEST(CacheStoreCorruption, WrongMagicLoadsCold) {
  std::string image = ValidImage();
  image[0] = 'X';
  ExpectColdLoad(image, CacheLoadStatus::kBadMagic, "magic");
  ExpectColdLoad("garbage that is clearly not a cache file",
                 CacheLoadStatus::kBadMagic, "garbage");
}

TEST(CacheStoreCorruption, WrongVersionLoadsCold) {
  std::string image = ValidImage();
  image[4] = static_cast<char>(image[4] ^ 0xff);  // first format-version byte
  ExpectColdLoad(image, CacheLoadStatus::kBadVersion, "version");
}

TEST(CacheStoreCorruption, NeverOverwritesAVersionMismatchedFile) {
  // A version-mismatched file was written by a *different binary*, not
  // corrupted: an old planner must not clobber a newer fleet-shared cache.
  const std::string path = TempPath("version_guard");
  std::string image = ValidImage();
  image[4] = static_cast<char>(image[4] ^ 0xff);
  WriteFile(path, image);

  CacheStore store(path);
  SynthesisCache cache;
  EXPECT_EQ(store.LoadInto(&cache), CacheLoadStatus::kBadVersion);
  core::SynthesisOptions options;
  options.max_program_size = 2;
  cache.GetOrSynthesize(SmallHierarchy(2), options);
  std::string error;
  EXPECT_FALSE(store.Save(cache, &error));
  EXPECT_NE(error.find("refusing"), std::string::npos);
  EXPECT_EQ(ReadFile(path), image);  // byte-for-byte untouched
  std::filesystem::remove(path);
}

TEST(CacheStoreCorruption, TrailingGarbageLoadsCold) {
  ExpectColdLoad(ValidImage() + "junk", CacheLoadStatus::kBadPayload,
                 "trailing");
}

TEST(CacheStoreCorruption, LyingEntryCountLoadsCold) {
  std::string image = ValidImage();
  image[8] = static_cast<char>(0xff);  // low byte of the entry count
  ExpectColdLoad(image, CacheLoadStatus::kTruncated, "entry_count");
}

TEST(CacheStoreCorruption, ChecksummedButMalformedPayloadLoadsCold) {
  // A payload that passes its checksum yet decodes to an out-of-enum
  // collective: the range checks must reject it, not materialize it.
  CacheFileEntry entry;
  entry.key = "levels:1,2;goal:[0,1];size<=5;cap=1048576";
  entry.result.programs.push_back(
      core::Program{core::Instruction{0, core::Form::InsideGroup(),
                                      core::Collective::kAllReduce}});
  std::vector<CacheFileEntry> entries;
  entries.push_back(entry);
  std::string image = CacheStore::EncodeFile(entries);
  // The collective opcode is the last payload byte before the v2 save-stamp
  // trailer (8 bytes); forge it past the enum and re-stamp the checksum so
  // only the payload validation can catch it.
  const std::size_t payload_begin = 16 + 12;  // header + entry frame
  std::string payload = image.substr(payload_begin);
  const std::size_t opcode_at = payload.size() - 1 - 8;
  payload[opcode_at] = static_cast<char>(200);
  CacheFileEntry decoded;
  EXPECT_FALSE(CacheStore::DecodeEntry(payload, &decoded));

  // Through the file layer the same forgery reads as kBadPayload (checksum
  // re-stamped by rebuilding the frame by hand).
  std::uint64_t h = 14695981039346656037ull;
  for (char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  for (int i = 0; i < 8; ++i) {
    image[16 + 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((h >> (8 * i)) & 0xff);
  }
  image[payload_begin + opcode_at] = static_cast<char>(200);
  ExpectColdLoad(image, CacheLoadStatus::kBadPayload, "forged_op");
}

TEST(CacheStoreCorruption, SemanticallyInvalidProgramsLoadCold) {
  // Checksum-valid entries whose programs violate the lowering path's
  // preconditions (out-of-depth slice, non-ancestor form level, junk key)
  // must be rejected at decode time — served as-is they would throw inside
  // core::DeriveGroups and crash the planner.
  const auto image_with = [](const std::string& key,
                             const core::Instruction& instr) {
    CacheFileEntry entry;
    entry.key = key;
    entry.result.programs.push_back(core::Program{instr});
    std::vector<CacheFileEntry> entries;
    entries.push_back(std::move(entry));
    return CacheStore::EncodeFile(entries);
  };
  const std::string key = "levels:1,2;goal:[0,1];size<=5;cap=1048576";

  // Slice level beyond the key's two-level hierarchy.
  ExpectColdLoad(
      image_with(key, core::Instruction{7, core::Form::InsideGroup(),
                                        core::Collective::kAllReduce}),
      CacheLoadStatus::kBadPayload, "slice_out_of_depth");
  // Parallel form whose level is not a strict ancestor of the slice.
  ExpectColdLoad(
      image_with(key, core::Instruction{1, core::Form::Parallel(1),
                                        core::Collective::kAllReduce}),
      CacheLoadStatus::kBadPayload, "non_ancestor_form");
  // InsideGroup must not smuggle an ancestor level.
  ExpectColdLoad(
      image_with(key, core::Instruction{1, core::Form{
                                               core::Form::Kind::kInsideGroup,
                                               0},
                                        core::Collective::kAllReduce}),
      CacheLoadStatus::kBadPayload, "inside_group_ancestor");
  // A key that is not a hierarchy signature gives no depth to validate
  // against, so the entry is rejected outright.
  ExpectColdLoad(
      image_with("not-a-signature",
                 core::Instruction{0, core::Form::InsideGroup(),
                                   core::Collective::kAllReduce}),
      CacheLoadStatus::kBadPayload, "junk_key");
}

TEST(CacheStoreCorruption, SaveOverCorruptFileRecoversAValidOne) {
  const std::string path = TempPath("recover");
  WriteFile(path, "definitely not a cache file");
  CacheStore store(path);
  SynthesisCache cache;
  EXPECT_EQ(store.LoadInto(&cache), CacheLoadStatus::kBadMagic);
  EXPECT_EQ(cache.size(), 0u);

  core::SynthesisOptions options;
  options.max_program_size = 2;
  cache.GetOrSynthesize(SmallHierarchy(2), options);
  ASSERT_TRUE(store.Save(cache));

  SynthesisCache recovered;
  CacheStore reader(path);
  EXPECT_EQ(reader.LoadInto(&recovered), CacheLoadStatus::kOk)
      << reader.last_load_message();
  EXPECT_EQ(recovered.size(), 1u);
  std::filesystem::remove(path);
}

TEST(CacheStoreCorruption, SaveToUnwritablePathFailsGracefully) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "p2_no_such_dir" /
       "deeper" / "cache.bin")
          .string();
  CacheStore store(path);
  SynthesisCache cache;
  std::string error;
  EXPECT_FALSE(store.Save(cache, &error));
  EXPECT_FALSE(error.empty());
}

TEST(CacheStoreCorruption, SaveIsAtomicAgainstConcurrentReaders) {
  // The save protocol's observable contract: after Save the path holds a
  // complete, checksum-valid file and no temp file is left behind — the
  // rename either happened in full or not at all.
  const std::string path = TempPath("atomic");
  core::SynthesisOptions options;
  options.max_program_size = 2;
  SynthesisCache cache;
  cache.GetOrSynthesize(SmallHierarchy(2), options);
  CacheStore store(path);
  ASSERT_TRUE(store.Save(cache));
  const auto contents = store.Load();
  EXPECT_EQ(contents.status, CacheLoadStatus::kOk);
  for (const auto& dir_entry : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    EXPECT_EQ(dir_entry.path().string().find(path + ".tmp."),
              std::string::npos)
        << "temp file left behind: " << dir_entry.path();
  }
  const std::string bytes = ReadFile(path);
  EXPECT_EQ(CacheStore::DecodeFile(bytes).status, CacheLoadStatus::kOk);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace p2::engine
