// Shared helper for tests that write temp files: a collision-free path per
// (test binary, tag, call), so parallel ctest runs never race on a file.
#ifndef P2_TESTS_TEST_TEMP_PATH_H_
#define P2_TESTS_TEST_TEMP_PATH_H_

#include <unistd.h>

#include <filesystem>
#include <string>

namespace p2::test {

/// "<tmpdir>/<prefix>_<pid>_<tag>_<n>.bin", unique per call.
inline std::string TempPath(const std::string& prefix,
                            const std::string& tag) {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          (prefix + "_" + std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++) + ".bin"))
      .string();
}

}  // namespace p2::test

#endif  // P2_TESTS_TEST_TEMP_PATH_H_
