// Production hardening of the PlannerService (ISSUE 7), proven under
// injected chaos: deadlines and cooperative cancellation abort exactly the
// requests they target (with the right error from the service's abort
// taxonomy), admission control fails fast instead of queuing silently,
// BeginDrain stops intake and settles in-flight work, and none of it ever
// perturbs a surviving request — survivors' outputs stay byte-identical to
// dedicated serial runs at any thread count and under any submission order.
//
// The chaos itself comes from common/fault_injection.h: hooks stall or kill
// library code at the checkpoints the planning stack plants (synthesis
// layers, pipeline stages, cache-store I/O), which is how a request is held
// in flight long enough to be cancelled deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "engine/report.h"
#include "engine/service.h"
#include "test_temp_path.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

using namespace std::chrono_literals;

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  return opts;
}

struct Config {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

std::vector<Config> Configs() {
  return {
      {{8, 2, 2}, {0}},
      {{8, 4}, {0}},
      {{4, 8}, {1}},
      {{16, 2}, {0}},
  };
}

PlanRequest RequestFor(const Config& config) {
  PlanRequest request;
  request.axes = config.axes;
  request.reduction_axes = config.reduction_axes;
  return request;
}

/// A hook that parks the first `pipeline.synthesize` checkpoint it sees
/// until the test releases it — the standard way to hold one request in
/// flight at a known point. `entered` flips once the request is parked.
class StallGate {
 public:
  FaultInjector::Hook Hook() {
    return [this](std::string_view point) {
      if (point != "pipeline.synthesize") return;
      if (armed_.exchange(false)) {
        entered_.store(true);
        while (!release_.load()) std::this_thread::sleep_for(1ms);
      }
    };
  }
  void AwaitEntered() const {
    while (!entered_.load()) std::this_thread::sleep_for(1ms);
  }
  void Release() { release_.store(true); }

 private:
  std::atomic<bool> armed_{true};  ///< only the first checkpoint stalls
  std::atomic<bool> entered_{false};
  std::atomic<bool> release_{false};
};

TEST(ServiceFaults, DeadlineExpiresMidFlight) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 2});
  // Every synthesis stage dawdles past the deadline; whichever checkpoint
  // the request reaches next classifies the abort as deadline-exceeded.
  FaultScope scope([](std::string_view point) {
    if (point == "pipeline.synthesize") std::this_thread::sleep_for(50ms);
  });
  PlanRequest request = RequestFor(Configs()[0]);
  request.deadline = 5ms;
  auto handle = service.Submit(std::move(request));
  EXPECT_THROW(handle.get(), PlanDeadlineExceeded);

  const auto stats = service.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1);
  EXPECT_EQ(stats.cancelled, 0);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].deadline_exceeded, 1);

  // The slot was released and the service keeps serving.
  EXPECT_GT(service.Plan(RequestFor(Configs()[1])).placements.size(), 0u);
}

TEST(ServiceFaults, CancelAbortsMidFlightAndReleasesItsSlot) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 2});
  StallGate gate;
  FaultScope scope(gate.Hook());

  auto handle = service.Submit(RequestFor(Configs()[0]));
  gate.AwaitEntered();  // the request is provably in flight...
  handle.Cancel();      // ...when the cancel lands
  gate.Release();
  EXPECT_THROW(handle.get(), PlanCancelled);

  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.deadline_exceeded, 0);
  EXPECT_EQ(stats.peak_in_flight, 1);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].cancelled, 1);

  // Cancellation released the in-flight slot: later requests run normally.
  EXPECT_GT(service.Plan(RequestFor(Configs()[1])).placements.size(), 0u);
  EXPECT_EQ(service.stats().cancelled, 1);
}

TEST(ServiceFaults, CancellingAFinishedRequestIsANoOp) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 2});
  auto handle = service.Submit(RequestFor(Configs()[0]));
  handle.wait();
  handle.Cancel();  // completion beats abortion
  EXPECT_GT(handle.get().placements.size(), 0u);
  EXPECT_EQ(service.stats().cancelled, 0);
}

TEST(ServiceFaults, AdmissionRejectsBeyondTheServiceCap) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerServiceOptions options;
  options.threads = 2;
  options.max_in_flight = 1;
  PlannerService service(engine, options);
  StallGate gate;
  FaultScope scope(gate.Hook());

  auto first = service.Submit(RequestFor(Configs()[0]));
  auto second = service.Submit(RequestFor(Configs()[1]));
  EXPECT_THROW(second.get(), PlanRejected);  // fail fast, no queuing

  gate.Release();
  EXPECT_GT(first.get().placements.size(), 0u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.peak_in_flight, 1);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].rejected, 1);
  EXPECT_EQ(stats.tenants[0].peak_in_flight, 1);

  // The slot freed: the same request is admitted now.
  EXPECT_GT(service.Plan(RequestFor(Configs()[1])).placements.size(), 0u);
  EXPECT_EQ(service.stats().rejected, 1);
}

TEST(ServiceFaults, AdmissionRejectsBeyondThePerTenantCap) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerServiceOptions options;
  options.threads = 2;
  options.max_in_flight_per_tenant = 1;
  PlannerService service(engine, options);
  StallGate gate;
  FaultScope scope(gate.Hook());

  auto first = service.Submit(RequestFor(Configs()[0]));
  auto second = service.Submit(RequestFor(Configs()[1]));
  EXPECT_THROW(second.get(), PlanRejected);
  gate.Release();
  EXPECT_GT(first.get().placements.size(), 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected, 1);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].rejected, 1);
}

TEST(ServiceFaults, DrainWaitsForInFlightWorkThenRejectsNewSubmissions) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 2});
  auto handle = service.Submit(RequestFor(Configs()[0]));
  service.BeginDrain();  // no grace: waits for the request
  EXPECT_TRUE(service.draining());
  EXPECT_GT(handle.get().placements.size(), 0u);

  auto late = service.Submit(RequestFor(Configs()[1]));
  EXPECT_THROW(late.get(), PlanRejected);
  EXPECT_EQ(service.stats().rejected, 1);

  service.BeginDrain();  // idempotent
  EXPECT_TRUE(service.draining());
}

TEST(ServiceFaults, DrainGraceCancelsStragglers) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 2});
  std::atomic<bool> parked{false};
  // The straggler stalls until it sees the drain begin, lingers long enough
  // for the zero-grace cancel to land, then runs into its next checkpoint.
  FaultScope scope([&](std::string_view point) {
    if (point != "pipeline.synthesize") return;
    parked.store(true);
    while (!service.draining()) std::this_thread::sleep_for(1ms);
    std::this_thread::sleep_for(50ms);
  });
  auto handle = service.Submit(RequestFor(Configs()[0]));
  while (!parked.load()) std::this_thread::sleep_for(1ms);
  service.BeginDrain(0ms);  // grace expires immediately: cancel stragglers
  EXPECT_THROW(handle.get(), PlanCancelled);
  EXPECT_EQ(service.stats().cancelled, 1);
}

// The tentpole's acceptance gate: a chaos tenant randomly cancelling
// requests mid-flight never perturbs the survivors. At 1, 4 and 8 threads
// and under randomized submission order, every request that completes
// returns byte-for-byte the result of a dedicated serial run — and after
// the chaos the shared cache still serves correct results.
TEST(ServiceFaults, RandomCancellationNeverPerturbsSurvivors) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const auto configs = Configs();

  std::vector<std::string> reference;
  for (const auto& config : configs) {
    PlannerService service(engine, PlannerServiceOptions{.threads = 1});
    reference.push_back(CanonicalResultText(service.Plan(RequestFor(config))));
  }

  std::mt19937 rng(20260729);
  for (const int threads : {1, 4, 8}) {
    for (int round = 0; round < 3; ++round) {
      std::vector<std::size_t> order(configs.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (round > 0) std::shuffle(order.begin(), order.end(), rng);
      std::vector<bool> storm(configs.size());
      for (std::size_t i = 0; i < storm.size(); ++i) storm[i] = rng() % 2 == 0;

      PlannerService service(engine,
                             PlannerServiceOptions{.threads = threads});
      std::vector<PlanHandle> handles(configs.size());
      for (const std::size_t index : order) {
        handles[index] = service.Submit(RequestFor(configs[index]));
      }
      // Cancel the storm set while the rest are (possibly) in flight.
      for (std::size_t i = 0; i < handles.size(); ++i) {
        if (storm[i]) handles[i].Cancel();
      }
      for (std::size_t i = 0; i < handles.size(); ++i) {
        try {
          // Survivors — and cancelled requests that won the race and
          // completed anyway — must match the serial reference exactly.
          EXPECT_EQ(CanonicalResultText(handles[i].get()), reference[i])
              << "config " << i << ", threads=" << threads
              << ", round=" << round;
        } catch (const PlanCancelled&) {
          EXPECT_TRUE(storm[i])
              << "request " << i << " aborted without being cancelled"
              << ", threads=" << threads << ", round=" << round;
        }
      }
      // Post-chaos the cache is sane: a fresh request on the same service
      // still reproduces the serial result.
      EXPECT_EQ(CanonicalResultText(service.Plan(RequestFor(configs[0]))),
                reference[0])
          << "threads=" << threads << ", round=" << round;
    }
  }
}

TEST(ServiceFaults, InjectedSaveFailureIsReportedNotThrown) {
  const std::string path =
      p2::test::TempPath("p2_service_faults_test", "save_fault");
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerServiceOptions options;
  options.cache_file = path;
  PlannerService service(engine, options);
  EXPECT_GT(service.Plan(RequestFor(Configs()[0])).placements.size(), 0u);
  {
    FaultScope scope([](std::string_view point) {
      if (point == "cache_store.save") throw std::runtime_error("disk died");
    });
    std::string error;
    EXPECT_FALSE(service.SaveCache(&error));
    EXPECT_NE(error.find("injected fault"), std::string::npos) << error;
  }
  // With the fault gone the same save succeeds (and the destructor's
  // drain-time save will too).
  std::string error;
  EXPECT_TRUE(service.SaveCache(&error)) << error;
}

TEST(ServiceFaults, DrainTimeSaveFailureSurfacesInStats) {
  // ISSUE 8: BeginDrain discards SaveCache's error return — nobody is left
  // to read it on the destructor path, and a server's operator would never
  // learn the cache stopped persisting. Every save failure is now recorded
  // in the service stats (counter + last-error detail), where the /stats
  // endpoint and the report renderer surface it.
  const std::string path =
      p2::test::TempPath("p2_service_faults_test", "drain_save_fault");
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerServiceOptions options;
  options.cache_file = path;
  PlannerService service(engine, options);
  EXPECT_GT(service.Plan(RequestFor(Configs()[0])).placements.size(), 0u);
  {
    FaultScope scope([](std::string_view point) {
      if (point == "cache_store.save") throw std::runtime_error("disk died");
    });
    service.BeginDrain();  // the drain-time save fails silently...
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.save_errors, 1);  // ...but not unaccountably
  EXPECT_NE(stats.last_save_error.find("injected fault"), std::string::npos)
      << stats.last_save_error;
  // The failure is rendered for humans too, not just exported.
  const std::string report = RenderServiceStats(stats);
  EXPECT_NE(report.find("cache save errors: 1"), std::string::npos) << report;
}

TEST(ServiceFaults, InjectedLoadFailureFallsBackToAColdCache) {
  const std::string path =
      p2::test::TempPath("p2_service_faults_test", "load_fault");
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  // Seed a valid cache file.
  {
    PlannerServiceOptions options;
    options.cache_file = path;
    PlannerService service(engine, options);
    EXPECT_GT(service.Plan(RequestFor(Configs()[0])).placements.size(), 0u);
    EXPECT_TRUE(service.SaveCache());
  }
  // A reader whose load I/O dies starts cold — degraded, never crashed —
  // and still serves correct plans.
  FaultScope scope([](std::string_view point) {
    if (point == "cache_store.load") throw std::runtime_error("disk died");
  });
  PlannerServiceOptions options;
  options.cache_file = path;
  options.cache_readonly = true;  // don't clobber the file on destruction
  PlannerService service(engine, options);
  EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kIoError);
  EXPECT_NE(service.cache_load_message().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(service.cache_entries_loaded(), 0);
  EXPECT_GT(service.Plan(RequestFor(Configs()[0])).placements.size(), 0u);
}

}  // namespace
}  // namespace p2::engine
