// The process-wide planning service (ISSUE 4): concurrent Submit()s share
// one synthesis cache and one worker pool, their work items interleave on
// it, and yet every query's output is byte-identical to a serial run — at
// any service thread count and under any submission order. Two queries
// racing on one uncached signature synthesize it exactly once (in-flight
// dedup), asserted via cache_misses.
#include "engine/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  return opts;
}

struct Config {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

// Four configs of one 2-node A100 system (32 GPUs) whose placements share
// synthesis hierarchies within and across configs.
std::vector<Config> Configs() {
  return {
      {{8, 2, 2}, {0}},
      {{8, 4}, {0}},
      {{4, 8}, {1}},
      {{16, 2}, {0}},
  };
}

PlanRequest RequestFor(const Config& config) {
  PlanRequest request;
  request.axes = config.axes;
  request.reduction_axes = config.reduction_axes;
  return request;
}

TEST(PlannerService, ConcurrentSubmissionIsDeterministic) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const auto configs = Configs();

  // Reference: each config on its own cold, single-threaded service — the
  // fully serial path, unaffected by sharing of any kind.
  std::vector<std::string> reference;
  for (const auto& config : configs) {
    PlannerService service(engine, PlannerServiceOptions{.threads = 1});
    reference.push_back(CanonicalResultText(service.Plan(RequestFor(config))));
  }

  std::mt19937 rng(20260729);
  for (const int threads : {1, 4, 8}) {
    // Identity order plus two random submission orders per thread count:
    // neither scheduling nor submission order may leak into any result.
    for (int round = 0; round < 3; ++round) {
      std::vector<std::size_t> order(configs.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (round > 0) std::shuffle(order.begin(), order.end(), rng);

      PlannerService service(engine,
                             PlannerServiceOptions{.threads = threads});
      std::vector<PlanHandle> futures(configs.size());
      for (const std::size_t index : order) {
        futures[index] = service.Submit(RequestFor(configs[index]));
      }
      for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(CanonicalResultText(futures[i].get()), reference[i])
            << "config " << i << ", threads=" << threads
            << ", round=" << round;
      }
    }
  }
}

TEST(PlannerService, RacingQueriesSynthesizeEachSignatureExactlyOnce) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  // Repeat the race: every round, four copies of the same uncached query
  // land on a fresh 4-thread service at once. Whoever gets to a signature
  // first synthesizes it; the in-flight dedup makes everyone else wait and
  // then serves them — so across ALL requests each unique signature is
  // missed exactly once, deterministically, no matter how the race goes.
  for (int round = 0; round < 5; ++round) {
    PlannerService service(engine, PlannerServiceOptions{.threads = 4});
    PlanRequest request;
    request.axes = {8, 2, 2};  // 3 placements, 2 unique signatures
    request.reduction_axes = {0};
    std::vector<PlanHandle> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(service.Submit(request));

    std::int64_t per_request_misses = 0;
    std::int64_t per_request_hits = 0;
    for (auto& future : futures) {
      const auto result = future.get();
      EXPECT_EQ(result.pipeline.unique_hierarchies, 2);
      per_request_misses += result.pipeline.cache_misses;
      per_request_hits += result.pipeline.cache_hits;
    }
    const auto stats = service.stats();
    // Synthesis ran exactly once per unique signature across the race.
    EXPECT_EQ(stats.cache.misses, 2) << "round " << round;
    // The per-request attribution varies with the race, but sums match the
    // service totals: 4 requests x 3 placements = 12 lookups.
    EXPECT_EQ(per_request_misses, stats.cache.misses) << "round " << round;
    EXPECT_EQ(per_request_hits, stats.cache.hits) << "round " << round;
    EXPECT_EQ(per_request_misses + per_request_hits, 12) << "round " << round;
    EXPECT_EQ(stats.requests, 4);
  }
}

// ---- deferral-aware scheduler (ISSUE 9) -----------------------------------

// The deferral determinism suite: duplicated configs (so signatures overlap
// across requests) in randomized submission orders on 1/4/8 threads, with a
// fault hook stalling every synthesis frontier layer ~1ms — wide in-flight
// windows, so requests constantly observe each other's open flights and the
// deferred queue is actually exercised. Every output must stay
// byte-identical to the serial reference, and on threaded services no pool
// thread may ever park behind a foreign synthesis (waiter_parks == 0).
TEST(PlannerService, DeferralSchedulingIsDeterministicUnderStalledOwners) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const auto configs = Configs();

  std::vector<std::string> reference;
  for (const auto& config : configs) {
    PlannerService service(engine, PlannerServiceOptions{.threads = 1});
    reference.push_back(CanonicalResultText(service.Plan(RequestFor(config))));
  }

  FaultScope stall([](std::string_view point) {
    if (point == "synth.layer") {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Each config twice per round: duplicated signatures guarantee in-flight
  // overlap somewhere in every threaded round.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    order.push_back(i);
    order.push_back(i);
  }
  std::mt19937 rng(20260808);
  for (const int threads : {1, 4, 8}) {
    for (int round = 0; round < 3; ++round) {
      if (round > 0) std::shuffle(order.begin(), order.end(), rng);
      PlannerService service(engine,
                             PlannerServiceOptions{.threads = threads});
      std::vector<PlanHandle> futures;
      futures.reserve(order.size());
      for (const std::size_t index : order) {
        futures.push_back(service.Submit(RequestFor(configs[index])));
      }
      for (std::size_t f = 0; f < futures.size(); ++f) {
        EXPECT_EQ(CanonicalResultText(futures[f].get()), reference[order[f]])
            << "config " << order[f] << ", threads=" << threads
            << ", round=" << round;
      }
      EXPECT_EQ(service.stats().cache.waiter_parks, 0)
          << "threads=" << threads << ", round=" << round
          << ": a pool thread parked behind a foreign synthesis";
    }
  }

  // The parked-waiter scheduler must still be selectable and identical —
  // it is the bench's tail-latency baseline.
  PlannerServiceOptions parked;
  parked.threads = 4;
  parked.defer_inflight = false;
  PlannerService service(engine, parked);
  std::vector<PlanHandle> futures;
  for (const std::size_t index : order) {
    futures.push_back(service.Submit(RequestFor(configs[index])));
  }
  for (std::size_t f = 0; f < futures.size(); ++f) {
    EXPECT_EQ(CanonicalResultText(futures[f].get()), reference[order[f]])
        << "parked scheduler, config " << order[f];
  }
  EXPECT_EQ(service.stats().cache.deferred_lookups, 0);
}

// A deterministic deferral window: the first synthesis is held open until
// the test has *observed* other requests deferring behind it. Proves the
// non-blocking path actually engages (deferred_lookups > 0) and resolves
// without parking or perturbing any output.
TEST(PlannerService, DeferredRequestsResolveOnOwnerCompletion) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlanRequest request;
  request.axes = {8, 2, 2};  // 3 placements, 2 unique signatures
  request.reduction_axes = {0};

  std::string reference;
  {
    PlannerService serial(engine, PlannerServiceOptions{.threads = 1});
    reference = CanonicalResultText(serial.Plan(request));
  }

  PlannerService service(engine, PlannerServiceOptions{.threads = 4});
  std::atomic<bool> armed{true};
  std::atomic<bool> release{false};
  FaultScope gate([&](std::string_view point) {
    if (point != "synth.layer") return;
    if (!armed.exchange(false)) return;  // only the first owner stalls
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<PlanHandle> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(service.Submit(request));
  // Wait until at least one racer has registered a continuation against the
  // stalled owner's flight, then let the owner finish. The timeout bounds
  // the test if deferral never engages (that itself fails the assertion
  // below, with the futures still drained).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (service.stats().cache.deferred_lookups == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true);

  for (auto& future : futures) {
    EXPECT_EQ(CanonicalResultText(future.get()), reference);
  }
  const auto stats = service.stats();
  EXPECT_GT(stats.cache.deferred_lookups, 0)
      << "no racer ever deferred behind the held-open flight";
  EXPECT_EQ(stats.cache.continuations_fired, stats.cache.deferred_lookups);
  EXPECT_EQ(stats.cache.waiter_parks, 0);
  EXPECT_EQ(stats.cache.misses, 2);  // each signature synthesized once
  EXPECT_EQ(stats.latency_count, 4);
  EXPECT_GT(stats.latency_p99_seconds, 0.0);
  EXPECT_GE(stats.latency_p99_seconds, stats.latency_p50_seconds);
}

TEST(PlannerService, SubmitIsAsynchronousAndFuturesCarryResults) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 2});
  PlanRequest request;
  request.axes = {8, 4};
  request.reduction_axes = {0};
  auto future = service.Submit(std::move(request));
  const auto result = future.get();
  EXPECT_GT(result.placements.size(), 0u);
  EXPECT_EQ(result.pipeline.threads, 2);
}

TEST(PlannerService, FuturesPropagateEvaluationErrors) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  for (const int threads : {1, 2}) {
    PlannerService service(engine,
                           PlannerServiceOptions{.threads = threads});
    PlanRequest request;
    request.axes = {0};  // EnumeratePlacements rejects axes < 1
    request.reduction_axes = {0};
    auto future = service.Submit(std::move(request));
    EXPECT_THROW(future.get(), std::invalid_argument) << threads;
    // The service survives a failed request and keeps serving.
    PlanRequest good;
    good.axes = {8, 4};
    good.reduction_axes = {0};
    EXPECT_GT(service.Plan(std::move(good)).placements.size(), 0u);
  }
}

TEST(PlannerService, DestructorDrainsOutstandingRequests) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlanHandle future;
  {
    PlannerService service(engine, PlannerServiceOptions{.threads = 2});
    future = service.Submit(RequestFor(Configs()[0]));
    // The service goes out of scope with the request possibly in flight;
    // its destructor must drain it, not abandon or crash.
  }
  EXPECT_GT(future.get().placements.size(), 0u);
}

// ---- multi-tenant service (ISSUE 5) ---------------------------------------

// Three distinct machines. The A100(2) and V100(4) clusters both hold 32
// devices, so the same configs run on both; V100(2) gets its own smaller
// configs. A100/V100 reduction factorizations overlap (e.g. an 8-wide axis
// split (2,4) or (1,8)), which is the cross-tenant sharing the shared cache
// must mine.
struct TenantConfig {
  topology::Cluster cluster;
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

std::vector<TenantConfig> TenantConfigs() {
  const auto a100_2 = topology::MakeA100Cluster(2);
  const auto v100_4 = topology::MakeV100Cluster(4);
  const auto v100_2 = topology::MakeV100Cluster(2);
  return {
      {a100_2, {8, 2, 2}, {0}}, {a100_2, {8, 4}, {0}},
      {v100_4, {8, 2, 2}, {0}}, {v100_4, {8, 4}, {0}},
      {v100_2, {8, 2}, {0}},    {v100_2, {4, 4}, {1}},
  };
}

PlanRequest RequestFor(const TenantConfig& config) {
  PlanRequest request;
  request.axes = config.axes;
  request.reduction_axes = config.reduction_axes;
  request.cluster = config.cluster;
  return request;
}

TEST(MultiTenantService, InterleavedClustersMatchDedicatedServices) {
  const auto configs = TenantConfigs();

  // Reference: every config on its own dedicated single-cluster,
  // single-threaded service — the strongest possible isolation.
  std::vector<std::string> reference;
  for (const auto& config : configs) {
    const Engine engine(config.cluster, FastOptions());
    PlannerService service(engine, PlannerServiceOptions{.threads = 1});
    reference.push_back(CanonicalResultText(
        service.Plan(config.axes, config.reduction_axes)));
  }

  std::mt19937 rng(20260729);
  for (const int threads : {1, 4, 8}) {
    for (int round = 0; round < 3; ++round) {
      std::vector<std::size_t> order(configs.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (round > 0) std::shuffle(order.begin(), order.end(), rng);

      // One multi-tenant service, requests from three clusters interleaved
      // in randomized submission order: neither the scheduling, nor the
      // order, nor the cross-tenant cache sharing may leak into any result.
      PlannerServiceOptions options;
      options.threads = threads;
      options.engine = FastOptions();
      PlannerService service(options);
      std::vector<PlanHandle> futures(configs.size());
      for (const std::size_t index : order) {
        futures[index] = service.Submit(RequestFor(configs[index]));
      }
      for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(CanonicalResultText(futures[i].get()), reference[i])
            << "config " << i << ", threads=" << threads
            << ", round=" << round;
      }
      // Three tenants, each engine constructed exactly once.
      const auto stats = service.stats();
      EXPECT_EQ(stats.tenants.size(), 3u);
      EXPECT_EQ(stats.engines_constructed, 3);
    }
  }
}

TEST(MultiTenantService, RacingRequestsConstructEachEngineOnce) {
  // Every round, four requests for the same *unregistered* cluster land on
  // a fresh 4-thread service at once: whoever arrives first builds the
  // engine, everyone else blocks on the in-flight construction — one engine
  // total, never four.
  for (int round = 0; round < 5; ++round) {
    PlannerServiceOptions options;
    options.threads = 4;
    options.engine = FastOptions();
    PlannerService service(options);
    PlanRequest request;
    request.axes = {8, 4};
    request.reduction_axes = {0};
    request.cluster = topology::MakeA100Cluster(2);
    std::vector<PlanHandle> futures;
    for (int i = 0; i < 4; ++i) futures.push_back(service.Submit(request));
    for (auto& future : futures) {
      EXPECT_GT(future.get().placements.size(), 0u);
    }
    const auto stats = service.stats();
    EXPECT_EQ(stats.engines_constructed, 1) << "round " << round;
    ASSERT_EQ(stats.tenants.size(), 1u);
    EXPECT_EQ(stats.tenants[0].requests, 4);
  }
}

TEST(MultiTenantService, SharedCacheDedupsAcrossTenants) {
  // Both tenants pose the same synthesis problems (equal reduction
  // factorizations on equally-deep hierarchies), so the second tenant's
  // requests are served from the first's entries — cross-tenant hits, and
  // strictly fewer misses than two dedicated services would pay.
  PlannerServiceOptions options;
  options.threads = 1;  // serial: the attribution below is deterministic
  options.engine = FastOptions();
  PlannerService service(options);

  PlanRequest first;
  first.axes = {8, 4};
  first.reduction_axes = {0};
  first.cluster = topology::MakeA100Cluster(2);
  PlanRequest second = first;
  second.cluster = topology::MakeV100Cluster(4);

  const auto a = service.Plan(std::move(first));
  const auto b = service.Plan(std::move(second));
  EXPECT_EQ(a.pipeline.cache_cross_tenant_hits, 0);
  EXPECT_GT(b.pipeline.cache_cross_tenant_hits, 0);
  EXPECT_LT(b.pipeline.cache_misses, a.pipeline.cache_misses)
      << "the second tenant must reuse the first tenant's synthesis";

  const auto stats = service.stats();
  EXPECT_EQ(stats.cache.cross_tenant_hits, b.pipeline.cache_cross_tenant_hits);
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].cache_cross_tenant_hits, 0);
  EXPECT_EQ(stats.tenants[1].cache_cross_tenant_hits,
            b.pipeline.cache_cross_tenant_hits);
  EXPECT_EQ(stats.tenants[0].requests, 1);
  EXPECT_EQ(stats.tenants[1].requests, 1);
  // Sums across tenants match the service-wide cache totals.
  EXPECT_EQ(stats.tenants[0].cache_hits + stats.tenants[1].cache_hits,
            stats.cache.hits);
  EXPECT_EQ(stats.tenants[0].cache_misses + stats.tenants[1].cache_misses,
            stats.cache.misses);
}

TEST(MultiTenantService, DefaultTenantAndExplicitClusterCoexist) {
  // The compatibility constructor's borrowed engine is tenant 0; a request
  // naming the same cluster (and options) resolves to it instead of
  // constructing a second engine.
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 2});
  const auto implicit = service.Plan(std::vector<std::int64_t>{8, 4},
                                     std::vector<int>{0});
  PlanRequest explicit_request;
  explicit_request.axes = {8, 4};
  explicit_request.reduction_axes = {0};
  explicit_request.cluster = topology::MakeA100Cluster(2);
  const auto explicit_result = service.Plan(std::move(explicit_request));
  EXPECT_EQ(CanonicalResultText(explicit_result),
            CanonicalResultText(implicit));
  const auto stats = service.stats();
  EXPECT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.engines_constructed, 0);  // the borrowed engine served both
  EXPECT_EQ(stats.tenants[0].requests, 2);

  // A *different* cluster still gets its own engine.
  PlanRequest other;
  other.axes = {8, 2};
  other.reduction_axes = {0};
  other.cluster = topology::MakeV100Cluster(2);
  EXPECT_GT(service.Plan(std::move(other)).placements.size(), 0u);
  EXPECT_EQ(service.stats().tenants.size(), 2u);
  EXPECT_EQ(service.stats().engines_constructed, 1);
}

TEST(MultiTenantService, RequestWithoutClusterNeedsADefaultTenant) {
  PlannerServiceOptions options;
  options.engine = FastOptions();
  PlannerService service(options);  // no default tenant
  EXPECT_EQ(service.default_engine(), nullptr);
  PlanRequest request;
  request.axes = {8, 4};
  request.reduction_axes = {0};
  auto future = service.Submit(std::move(request));
  EXPECT_THROW(future.get(), std::invalid_argument);
  // The service survives and serves requests that do name a cluster.
  PlanRequest good;
  good.axes = {8, 4};
  good.reduction_axes = {0};
  good.cluster = topology::MakeA100Cluster(2);
  EXPECT_GT(service.Plan(std::move(good)).placements.size(), 0u);
}

TEST(MultiTenantService, EngineForRegistersAndMemoizes) {
  PlannerServiceOptions options;
  options.engine = FastOptions();
  PlannerService service(options);
  const auto cluster = topology::MakeA100Cluster(2);
  const Engine& first = service.EngineFor(cluster);
  const Engine& second = service.EngineFor(cluster);
  EXPECT_EQ(&first, &second);  // one engine per fingerprint
  EXPECT_EQ(first.cluster().Fingerprint(), cluster.Fingerprint());
  EXPECT_EQ(service.stats().engines_constructed, 1);
}

TEST(PlannerService, StatsAggregateOncePerService) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(engine, PlannerServiceOptions{.threads = 1});
  const auto first = service.Plan(std::vector<std::int64_t>{8, 2, 2},
                                  std::vector<int>{0});
  const auto second = service.Plan(std::vector<std::int64_t>{8, 2, 2},
                                   std::vector<int>{0});
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.cache.misses,
            first.pipeline.cache_misses + second.pipeline.cache_misses);
  EXPECT_EQ(stats.cache.hits,
            first.pipeline.cache_hits + second.pipeline.cache_hits);
  EXPECT_EQ(stats.cache_entries_loaded, 0);  // no cache file configured
  EXPECT_EQ(stats.threads, 1);
}

}  // namespace
}  // namespace p2::engine
