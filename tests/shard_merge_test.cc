// The shard/merge layer of distributed grid execution (ISSUE 10): index
// sharding covers the grid exactly once for any worker count, rendered
// shard blocks survive the parse round trip, and a merge of 2 or 4 shards
// handed over in randomized order is byte-identical to the serial
// rendering — while every malformation (stray text, unparsable headers,
// missing / duplicate / out-of-range indices) fails with a reason instead
// of corrupting the merged grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "engine/service.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

TEST(ShardIndices, EveryWorkerCountCoversTheGridExactlyOnce) {
  for (std::size_t grid_size : {0u, 1u, 5u, 12u, 13u}) {
    for (int num_shards : {1, 2, 3, 4, 7}) {
      std::vector<bool> covered(grid_size, false);
      for (int shard = 0; shard < num_shards; ++shard) {
        for (std::size_t i : ShardIndices(grid_size, shard, num_shards)) {
          ASSERT_LT(i, grid_size);
          EXPECT_FALSE(covered[i]) << "index " << i << " owned twice ("
                                   << num_shards << " shards)";
          covered[i] = true;
        }
      }
      EXPECT_EQ(std::count(covered.begin(), covered.end(), false), 0)
          << grid_size << " configs over " << num_shards << " shards";
    }
  }
  // More shards than configs: the surplus shards simply own nothing.
  EXPECT_TRUE(ShardIndices(3, 4, 6).empty());
}

TEST(ShardBlocks, RenderParseRoundTripsMultiLineBodies) {
  const std::vector<ShardBlock> blocks = {
      {0, "axes 8 2; reduce 0", "line one\nline two\n"},
      {7, "axes 4 8; reduce 1", "axes 4 8; reduce 1; Ring\n  body\n"},
  };
  std::string text;
  for (const ShardBlock& block : blocks) text += RenderShardBlock(block);
  std::vector<ShardBlock> parsed;
  std::string error;
  ASSERT_TRUE(ParseShardBlocks(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(parsed[i].index, blocks[i].index);
    EXPECT_EQ(parsed[i].config, blocks[i].config);
    EXPECT_EQ(parsed[i].body, blocks[i].body);
  }
}

TEST(ShardBlocks, MalformationsParseFalseWithAReason) {
  std::vector<ShardBlock> parsed;
  std::string error;
  // Text before the first header has no block to belong to.
  EXPECT_FALSE(
      ParseShardBlocks("stray\n== config 0: c ==\nbody\n", &parsed, &error));
  EXPECT_FALSE(error.empty());
  // Headers with a non-numeric index, a missing separator, or a missing
  // terminator are malformations, not configs.
  EXPECT_FALSE(ParseShardBlocks("== config x: c ==\n", &parsed, &error));
  EXPECT_FALSE(ParseShardBlocks("== config 0 c ==\n", &parsed, &error));
  EXPECT_FALSE(ParseShardBlocks("== config 0: c\n", &parsed, &error));
}

TEST(ShardBlocks, MergeRejectsMissingDuplicateAndOutOfRangeIndices) {
  const auto block = [](std::int64_t index) {
    return ShardBlock{index, "c" + std::to_string(index), "body\n"};
  };
  std::string merged, error;
  EXPECT_FALSE(
      MergeShardBlocks({block(0), block(2)}, 3, &merged, &error));  // 1 gone
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(MergeShardBlocks({block(0), block(1), block(1)}, 3, &merged,
                                &error));  // 1 twice
  EXPECT_FALSE(MergeShardBlocks({block(0), block(1), block(3)}, 3, &merged,
                                &error));  // 3 beyond the grid
  ASSERT_TRUE(
      MergeShardBlocks({block(2), block(0), block(1)}, 3, &merged, &error))
      << error;
  EXPECT_EQ(merged, RenderShardBlock(block(0)) + RenderShardBlock(block(1)) +
                        RenderShardBlock(block(2)));
}

/// The determinism oracle: real engine bodies for the full a100:2 appendix
/// grid, computed once. The shard/merge layer is purely textual, so the
/// same bodies feed the serial reference and every sharded rendering.
std::vector<ShardBlock> GridBlocks() {
  const topology::Cluster cluster = topology::MakeA100Cluster(2);
  const std::vector<ExperimentConfig> grid = FullGrid(cluster);
  PlannerServiceOptions options;
  options.threads = 2;
  options.engine.payload_bytes = 1e8;
  PlannerService service(options);
  std::vector<ShardBlock> blocks;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    PlanRequest request;
    request.axes = grid[i].axes;
    request.reduction_axes = grid[i].reduction_axes;
    request.cluster = cluster;
    blocks.push_back(ShardBlock{static_cast<std::int64_t>(i),
                                grid[i].ToString(),
                                CanonicalResultText(service.Plan(
                                    std::move(request)))});
  }
  return blocks;
}

TEST(ShardBlocks, ShardedMergesAreByteIdenticalToSerialForAnyShardOrder) {
  const std::vector<ShardBlock> grid = GridBlocks();
  ASSERT_GT(grid.size(), 4u);
  std::string serial;
  for (const ShardBlock& block : grid) serial += RenderShardBlock(block);

  std::mt19937 rng(20260808);  // fixed seed: failures must reproduce
  for (int num_shards : {2, 4}) {
    // Each worker renders its own shard file...
    std::vector<std::string> shard_files(
        static_cast<std::size_t>(num_shards));
    for (int shard = 0; shard < num_shards; ++shard) {
      for (std::size_t i : ShardIndices(grid.size(), shard, num_shards)) {
        shard_files[static_cast<std::size_t>(shard)] +=
            RenderShardBlock(grid[i]);
      }
    }
    // ...and the merge must not care which order the files arrive in.
    for (int trial = 0; trial < 3; ++trial) {
      std::shuffle(shard_files.begin(), shard_files.end(), rng);
      std::vector<ShardBlock> collected;
      std::string error;
      for (const std::string& file : shard_files) {
        std::vector<ShardBlock> parsed;
        ASSERT_TRUE(ParseShardBlocks(file, &parsed, &error)) << error;
        collected.insert(collected.end(), parsed.begin(), parsed.end());
      }
      std::string merged;
      ASSERT_TRUE(MergeShardBlocks(std::move(collected),
                                   static_cast<std::int64_t>(grid.size()),
                                   &merged, &error))
          << error;
      EXPECT_EQ(merged, serial)
          << num_shards << " shards, trial " << trial;
    }
  }
}

}  // namespace
}  // namespace p2::engine
