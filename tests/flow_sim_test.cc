#include "runtime/flow_sim.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::runtime {
namespace {

using topology::MakeA100Cluster;
using topology::Network;
using topology::NetworkFidelity;

Flow FlowBetween(const Network& net, int src, int dst, double bytes) {
  Flow f;
  f.links = net.PathLinks(src, dst);
  f.bytes = bytes;
  for (int l : f.links) {
    f.latency += net.links()[static_cast<std::size_t>(l)].latency;
  }
  return f;
}

TEST(FlowSimulator, SingleFlowBandwidthBound) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  FlowSimulator sim(net);
  // 270 GB over a 270 GB/s path: exactly 1 second + latency.
  TaskSequence seq;
  seq.rounds.push_back(Round{{FlowBetween(net, 0, 1, 270e9)}});
  const double t = sim.Run({seq});
  EXPECT_NEAR(t, 1.0, 1e-3);
}

TEST(FlowSimulator, TwoFlowsShareALink) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  FlowSimulator sim(net);
  // Both flows leave GPU 0: they share its single uplink, so each gets half.
  TaskSequence seq;
  seq.rounds.push_back(Round{{FlowBetween(net, 0, 1, 270e9),
                              FlowBetween(net, 0, 2, 270e9)}});
  const double t = sim.Run({seq});
  EXPECT_NEAR(t, 2.0, 1e-3);
}

TEST(FlowSimulator, DisjointFlowsRunInParallel) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  FlowSimulator sim(net);
  TaskSequence seq;
  seq.rounds.push_back(Round{{FlowBetween(net, 0, 1, 270e9),
                              FlowBetween(net, 2, 3, 270e9)}});
  const double t = sim.Run({seq});
  EXPECT_NEAR(t, 1.0, 1e-3);
}

TEST(FlowSimulator, RoundsAreSequential) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  FlowSimulator sim(net);
  TaskSequence seq;
  seq.rounds.push_back(Round{{FlowBetween(net, 0, 1, 270e9)}});
  seq.rounds.push_back(Round{{FlowBetween(net, 0, 1, 270e9)}});
  const double t = sim.Run({seq});
  EXPECT_NEAR(t, 2.0, 1e-3);
}

TEST(FlowSimulator, IndependentTasksOverlap) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  FlowSimulator sim(net);
  TaskSequence a, b;
  a.rounds.push_back(Round{{FlowBetween(net, 0, 1, 270e9)}});
  b.rounds.push_back(Round{{FlowBetween(net, 2, 3, 270e9)}});
  const double t = sim.Run({a, b});
  EXPECT_NEAR(t, 1.0, 1e-3);
}

TEST(FlowSimulator, MaxMinSharingIsFairAcrossBottleneck) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  FlowSimulator sim(net);
  // One cross-node flow (bottleneck NIC 7.5 GB/s) and one local flow from a
  // different GPU: the local flow must not be slowed by the NIC flow.
  TaskSequence cross, local;
  cross.rounds.push_back(Round{{FlowBetween(net, 0, 16, 7.5e9)}});
  local.rounds.push_back(Round{{FlowBetween(net, 1, 2, 270e9)}});
  const double t = sim.Run({cross, local});
  EXPECT_NEAR(t, 1.0, 1e-2);  // both take ~1s concurrently
}

TEST(FlowSimulator, LatencyPaidPerRound) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  FlowSimulator sim(net);
  // Tiny flows: time is dominated by per-round latency (2 local hops).
  TaskSequence seq;
  const int rounds = 100;
  for (int r = 0; r < rounds; ++r) {
    seq.rounds.push_back(Round{{FlowBetween(net, 0, 1, 1.0)}});
  }
  const double t = sim.Run({seq});
  const double per_round = 2 * c.node.local_latency;
  EXPECT_GE(t, rounds * per_round * 0.9);
}

TEST(FlowSimulator, EmptyRoundsComplete) {
  const auto net = Network::Build(MakeA100Cluster(2));
  FlowSimulator sim(net);
  TaskSequence seq;
  seq.rounds.push_back(Round{});
  seq.rounds.push_back(Round{});
  EXPECT_DOUBLE_EQ(sim.Run({seq}), 0.0);
  EXPECT_DOUBLE_EQ(sim.Run({}), 0.0);
}

TEST(FlowSimulator, CongestionSlowsManyFlowNics) {
  const auto c = MakeA100Cluster(2);
  const auto nominal = Network::Build(c, NetworkFidelity::kNominal);
  const auto measured = Network::Build(c, NetworkFidelity::kMeasured);
  auto run = [&](const Network& net) {
    FlowSimulator sim(net);
    // 8 concurrent cross-node flows through one NIC.
    TaskSequence seq;
    Round round;
    for (int i = 0; i < 8; ++i) {
      round.flows.push_back(FlowBetween(net, i, 16 + i, 1e9));
    }
    seq.rounds.push_back(std::move(round));
    return sim.Run({seq});
  };
  // Measured network: NIC capacity degrades with flow count (and fabric
  // factor <= 1), so the same workload takes strictly longer.
  EXPECT_GT(run(measured), run(nominal) * 1.05);
}

TEST(FlowSimulator, StatsAreReported) {
  const auto net = Network::Build(MakeA100Cluster(2));
  FlowSimulator sim(net);
  TaskSequence seq;
  seq.rounds.push_back(Round{{FlowBetween(net, 0, 1, 1e9)}});
  FlowSimStats stats;
  sim.Run({seq}, &stats);
  EXPECT_EQ(stats.flows_completed, 1);
  EXPECT_GE(stats.rate_recomputations, 1);
}

TEST(FlowSimulator, DeterministicAcrossRuns) {
  const auto c = MakeA100Cluster(4);
  const auto net = Network::Build(c, NetworkFidelity::kMeasured);
  FlowSimulator sim(net);
  std::vector<TaskSequence> tasks;
  for (int g = 0; g < 4; ++g) {
    TaskSequence seq;
    for (int r = 0; r < 3; ++r) {
      Round round;
      for (int i = 0; i < 4; ++i) {
        round.flows.push_back(
            FlowBetween(net, g * 4 + i, (g * 4 + i + 16) % 64, 1e8));
      }
      seq.rounds.push_back(std::move(round));
    }
    tasks.push_back(std::move(seq));
  }
  EXPECT_DOUBLE_EQ(sim.Run(tasks), sim.Run(tasks));
}

}  // namespace
}  // namespace p2::runtime
