#include "runtime/collective_schedule.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::runtime {
namespace {

using core::Collective;
using core::NcclAlgo;
using topology::MakeA100Cluster;
using topology::MakeV100Cluster;

double TotalBytes(const TaskSequence& seq) {
  double total = 0.0;
  for (const auto& round : seq.rounds) {
    for (const auto& flow : round.flows) total += flow.bytes;
  }
  return total;
}

TEST(CompileCollective, RingAllReduceStructure) {
  const auto c = MakeA100Cluster(2);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0, 1, 2, 3};
  const auto seq = CompileCollective(Collective::kAllReduce, NcclAlgo::kRing,
                                     group, 4e9, 4e9, c, net);
  // 2(n-1) rounds of n flows, each S/n bytes.
  ASSERT_EQ(seq.rounds.size(), 6u);
  for (const auto& round : seq.rounds) {
    ASSERT_EQ(round.flows.size(), 4u);
    for (const auto& f : round.flows) EXPECT_DOUBLE_EQ(f.bytes, 1e9);
  }
  // Total traffic = n * 2(n-1)/n * S = 2(n-1) S.
  EXPECT_DOUBLE_EQ(TotalBytes(seq), 2 * 3 * 4e9);
}

TEST(CompileCollective, RingReduceScatterAndAllGatherHalves) {
  const auto c = MakeA100Cluster(2);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0, 1, 2, 3};
  const auto rs = CompileCollective(Collective::kReduceScatter,
                                    NcclAlgo::kRing, group, 4e9, 1e9, c, net);
  const auto ag = CompileCollective(Collective::kAllGather, NcclAlgo::kRing,
                                    group, 1e9, 4e9, c, net);
  EXPECT_EQ(rs.rounds.size(), 3u);
  EXPECT_EQ(ag.rounds.size(), 3u);
  // RS+AG together move exactly what one AllReduce moves.
  EXPECT_DOUBLE_EQ(TotalBytes(rs) + TotalBytes(ag), 2 * 3 * 4e9);
}

TEST(CompileCollective, TreeAllReduceUsesBothDirections) {
  const auto c = MakeA100Cluster(4);
  const auto net = topology::Network::Build(c);
  // One GPU per node: pure cross-node tree.
  const std::vector<std::int64_t> group = {0, 16, 32, 48};
  ScheduleOptions opts;
  opts.pipeline_chunks = 4;
  const auto seq = CompileCollective(Collective::kAllReduce, NcclAlgo::kTree,
                                     group, 4e9, 4e9, c, net, opts);
  ASSERT_EQ(seq.rounds.size(), 4u);
  // 3 tree edges x 2 directions per round.
  for (const auto& round : seq.rounds) {
    EXPECT_EQ(round.flows.size(), 6u);
  }
  // Every edge carries S up + S down: total 2 * 3 * S.
  EXPECT_DOUBLE_EQ(TotalBytes(seq), 2 * 3 * 4e9);
}

TEST(CompileCollective, TreeReduceOnlyGoesUp) {
  const auto c = MakeA100Cluster(4);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0, 16, 32, 48};
  const auto seq = CompileCollective(Collective::kReduce, NcclAlgo::kTree,
                                     group, 4e9, 4e9, c, net);
  EXPECT_DOUBLE_EQ(TotalBytes(seq), 3 * 4e9);
}

TEST(CompileCollective, ReduceScatterIgnoresTreeAlgo) {
  const auto c = MakeA100Cluster(2);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0, 1, 2, 3};
  const auto ring = CompileCollective(Collective::kReduceScatter,
                                      NcclAlgo::kRing, group, 4e9, 1e9, c, net);
  const auto tree = CompileCollective(Collective::kReduceScatter,
                                      NcclAlgo::kTree, group, 4e9, 1e9, c, net);
  EXPECT_EQ(ring.rounds.size(), tree.rounds.size());
  EXPECT_DOUBLE_EQ(TotalBytes(ring), TotalBytes(tree));
}

TEST(CompileCollective, BroadcastChainFromRoot) {
  const auto c = MakeA100Cluster(2);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0, 1, 2};
  ScheduleOptions opts;
  opts.pipeline_chunks = 2;
  const auto seq = CompileCollective(Collective::kBroadcast, NcclAlgo::kRing,
                                     group, 0.0, 6e9, c, net, opts);
  // 2 chunks x 2 chain edges; each edge carries S total.
  ASSERT_EQ(seq.rounds.size(), 2u);
  EXPECT_EQ(seq.rounds[0].flows.size(), 2u);
  EXPECT_DOUBLE_EQ(TotalBytes(seq), 2 * 6e9);
}

TEST(CompileCollective, V100FullNodeRingStaysOnNvLink) {
  const auto c = MakeV100Cluster(1);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto seq = CompileCollective(Collective::kAllReduce, NcclAlgo::kRing,
                                     group, 8e9, 8e9, c, net);
  // Every flow is a single NVLink hop (members are ring-adjacent).
  for (const auto& round : seq.rounds) {
    for (const auto& f : round.flows) {
      ASSERT_EQ(f.links.size(), 1u);
      EXPECT_DOUBLE_EQ(net.links()[static_cast<std::size_t>(f.links[0])].bandwidth,
                       c.node.local_bandwidth * 1e9);
    }
  }
}

TEST(CompileCollective, V100SubgroupFallsBackToPcie) {
  const auto c = MakeV100Cluster(1);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0, 2};  // non-adjacent
  const auto seq = CompileCollective(Collective::kAllReduce, NcclAlgo::kRing,
                                     group, 8e9, 8e9, c, net);
  for (const auto& round : seq.rounds) {
    for (const auto& f : round.flows) {
      EXPECT_GT(f.links.size(), 1u);
    }
  }
}

TEST(CompileCollective, RejectsTrivialGroup) {
  const auto c = MakeA100Cluster(2);
  const auto net = topology::Network::Build(c);
  const std::vector<std::int64_t> group = {0};
  EXPECT_THROW(CompileCollective(Collective::kAllReduce, NcclAlgo::kRing,
                                 group, 1e9, 1e9, c, net),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2::runtime
