#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancel.h"

namespace p2 {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsTasksImmediately) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);  // no workers: Submit runs inline
  int count = 0;
  pool.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);
  pool.Wait();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> seen(257);
    pool.ParallelFor(257, [&seen](std::int64_t i) {
      seen[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(ThreadPool, ParallelForWritesSlotsDeterministically) {
  // The pipeline's contract: iteration i writes slot i, so the merged output
  // is independent of scheduling.
  ThreadPool pool(8);
  std::vector<std::int64_t> out(1000);
  pool.ParallelFor(1000, [&out](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * i; });
  for (std::int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, WaitRethrowsFirstTaskError) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(10,
                                  [](std::int64_t i) {
                                    if (i == 3) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
    // The pool survives an error and keeps accepting work.
    std::atomic<int> count{0};
    pool.ParallelFor(5, [&count](std::int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 5);
  }
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int wave = 0; wave < 5; ++wave) {
    pool.ParallelFor(10, [&sum](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 5 * 45);
}

TEST(TaskGroup, WaitCoversOnlyItsOwnSubset) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup slow(pool);
  ThreadPool::TaskGroup fast(pool);
  std::atomic<int> slow_done{0};
  std::atomic<int> fast_done{0};
  for (int i = 0; i < 8; ++i) {
    slow.Submit([&slow_done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      slow_done.fetch_add(1);
    });
    fast.Submit([&fast_done] { fast_done.fetch_add(1); });
  }
  fast.Wait();
  EXPECT_EQ(fast_done.load(), 8);  // waits on its subset, not the pool
  slow.Wait();
  EXPECT_EQ(slow_done.load(), 8);
}

TEST(TaskGroup, GroupsInterleaveRoundRobin) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<char> sequence;
  ThreadPool::TaskGroup a(pool);
  ThreadPool::TaskGroup b(pool);
  // A floods the pool first; B's single task must not queue behind all of
  // A's backlog — round-robin picks it within roughly one task per group.
  for (int i = 0; i < 20; ++i) {
    a.Submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mu);
      sequence.push_back('a');
    });
  }
  b.Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    sequence.push_back('b');
  });
  a.Wait();
  b.Wait();
  ASSERT_EQ(sequence.size(), 21u);
  const auto b_pos =
      std::find(sequence.begin(), sequence.end(), 'b') - sequence.begin();
  EXPECT_LT(b_pos, 12) << "b starved behind a's backlog";
}

TEST(TaskGroup, ErrorsAreIsolatedPerGroup) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    ThreadPool::TaskGroup failing(pool);
    ThreadPool::TaskGroup healthy(pool);
    std::atomic<int> healthy_done{0};
    for (int i = 0; i < 10; ++i) {
      failing.Submit([i] {
        if (i == 3) throw std::runtime_error("boom");
      });
      healthy.Submit([&healthy_done] { healthy_done.fetch_add(1); });
    }
    EXPECT_THROW(failing.Wait(), std::runtime_error);
    healthy.Wait();  // unaffected by the other group's failure
    EXPECT_EQ(healthy_done.load(), 10);
    // A failed group keeps working afterwards (first-error-wins, then reset).
    std::atomic<int> again{0};
    failing.ParallelFor(5, [&again](std::int64_t) { again.fetch_add(1); });
    EXPECT_EQ(again.load(), 5);
  }
}

TEST(TaskGroup, WaitHelpsFromInsideAPoolTask) {
  // Two orchestration tasks occupy both workers, then each fans out onto
  // the same pool and waits. Without help-while-waiting this deadlocks:
  // every worker would be blocked in Wait with the subtasks queued behind
  // them. The planning service runs whole requests exactly like this.
  ThreadPool pool(2);
  std::atomic<int> subtasks_done{0};
  ThreadPool::TaskGroup orchestrations(pool);
  for (int r = 0; r < 2; ++r) {
    orchestrations.Submit([&pool, &subtasks_done] {
      ThreadPool::TaskGroup items(pool);
      for (int i = 0; i < 16; ++i) {
        items.Submit([&subtasks_done] { subtasks_done.fetch_add(1); });
      }
      items.Wait();
    });
  }
  orchestrations.Wait();
  EXPECT_EQ(subtasks_done.load(), 32);
}

TEST(TaskGroup, InlineModeRunsTasksImmediately) {
  ThreadPool pool(1);
  ThreadPool::TaskGroup group(pool);
  int count = 0;
  group.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);
  group.Wait();
  // Inline tasks capture errors like workers do; Wait rethrows.
  group.Submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

// ---- deferred tasks (ISSUE 9) ---------------------------------------------

TEST(TaskGroup, DeferredReservationHoldsWaitUntilCommitted) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(pool);
  std::atomic<bool> ran{false};
  group.ReserveDeferred();  // Wait must not return while this is pending
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    group.CommitDeferred([&ran] { ran.store(true); });
  });
  group.Wait();  // returns only after the committed task actually ran
  EXPECT_TRUE(ran.load());
  committer.join();
}

TEST(TaskGroup, AbandonDeferredReleasesTheReservation) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(pool);
  group.ReserveDeferred();
  std::thread abandoner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    group.AbandonDeferred();
  });
  group.Wait();  // unblocked by the abandonment, with nothing to run
  abandoner.join();
}

TEST(TaskGroup, InlineModeCommitsDeferredTasksImmediately) {
  ThreadPool pool(1);
  ThreadPool::TaskGroup group(pool);
  group.ReserveDeferred();  // no-op without workers
  int count = 0;
  group.CommitDeferred([&count] { ++count; });
  EXPECT_EQ(count, 1);  // ran inline, like Submit
  group.AbandonDeferred();  // no-op
  group.Wait();
}

TEST(TaskGroup, CancellableWaitInvokesAbortHookOnceAndDrains) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(pool);
  CancelSource source;
  std::atomic<int> aborts{0};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  // The waiter may help-run this task itself, so its release must not
  // depend on the abort hook (which only the waiter can run): the
  // canceller thread releases it right after cancelling.
  group.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    done.fetch_add(1);
  });
  // A reservation a continuation will commit later — the abort hook plays
  // that continuation's role, the way the pipeline's kick commits every
  // pending deferred member on cancellation. Wait cannot return before the
  // hook runs: only the committed task releases this reservation.
  group.ReserveDeferred();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    source.Cancel();
    release.store(true);
  });
  group.Wait(source.token(), [&] {
    aborts.fetch_add(1);
    group.CommitDeferred([&done] { done.fetch_add(1); });
  });
  canceller.join();
  EXPECT_EQ(aborts.load(), 1);  // the hook fires exactly once
  EXPECT_EQ(done.load(), 2);    // both the task and the committed deferral ran
}

TEST(TaskGroup, CancellableWaitWithNullTokenIsPlainWait) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    group.Submit([&done] { done.fetch_add(1); });
  }
  bool aborted = false;
  group.Wait(CancelToken(), [&aborted] { aborted = true; });
  EXPECT_EQ(done.load(), 8);
  EXPECT_FALSE(aborted);
}

TEST(TaskGroup, DestructorDrainsInFlightTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  {
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 32; ++i) {
      group.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
    // No Wait(): the destructor must drain, or workers would run tasks of a
    // dead group.
  }
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace p2
