#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace p2 {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsTasksImmediately) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);  // no workers: Submit runs inline
  int count = 0;
  pool.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);
  pool.Wait();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> seen(257);
    pool.ParallelFor(257, [&seen](std::int64_t i) {
      seen[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(ThreadPool, ParallelForWritesSlotsDeterministically) {
  // The pipeline's contract: iteration i writes slot i, so the merged output
  // is independent of scheduling.
  ThreadPool pool(8);
  std::vector<std::int64_t> out(1000);
  pool.ParallelFor(1000, [&out](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * i; });
  for (std::int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(ThreadPool, WaitRethrowsFirstTaskError) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.ParallelFor(10,
                                  [](std::int64_t i) {
                                    if (i == 3) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
    // The pool survives an error and keeps accepting work.
    std::atomic<int> count{0};
    pool.ParallelFor(5, [&count](std::int64_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 5);
  }
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int wave = 0; wave < 5; ++wave) {
    pool.ParallelFor(10, [&sum](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 5 * 45);
}

}  // namespace
}  // namespace p2
