// Differential tests for the transposition-table synthesis search (ISSUE 2):
// the seed's blind DFS (SynthesizeProgramsReference) is the oracle, and the
// search must reproduce its program list byte for byte over a grid of
// synthesis hierarchies — every depth up to 4 and every goal form (the
// single-group kReductionAxes goal and the multi-group kSystem /
// kColumnMajor / kRowMajor goals) — and must stay identical, programs and
// stats alike, at any thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/synthesizer.h"

namespace p2::core {
namespace {

struct GridCase {
  std::string name;
  ParallelismMatrix matrix;
  std::vector<int> reduction_axes;
  SynthesisHierarchyKind kind = SynthesisHierarchyKind::kReductionAxes;
  bool collapse = true;
  int max_program_size = 5;
};

// Depths here count the synthesis hierarchy's levels below the root. The
// deep cases cap the program size so the *oracle* stays test-sized; the
// bench (bench/bench_synth.cc) runs the full paper-default size 5 on them.
std::vector<GridCase> Grid() {
  std::vector<GridCase> grid;
  // Depth 1: reduction axis inside one level; programs are AR / RS-AG /
  // RD-BC only.
  grid.push_back({"d1-trivial", ParallelismMatrix({{1, 8}, {2, 2}}), {0}});
  // Depth 2: the paper's Fig 2d running example.
  grid.push_back(
      {"d2-fig2d", ParallelismMatrix({{1, 1, 2, 2}, {1, 2, 1, 2}}), {1}});
  // Depth 2 with unequal factors.
  grid.push_back({"d2-4x2", ParallelismMatrix({{4, 2}, {1, 2}}), {0}});
  // Depth 3, k = 8.
  grid.push_back({"d3-2x2x2", ParallelismMatrix({{2, 2, 2}, {1, 1, 1}}), {0}});
  // Depth 4, k = 16 (size-limited: the oracle is exponential here).
  grid.push_back({"d4-2x2x2x2",
                  ParallelismMatrix({{2, 2, 2, 2}, {1, 1, 1, 1}}),
                  {0},
                  SynthesisHierarchyKind::kReductionAxes,
                  true,
                  4});
  // Multi-axis reduction: factors of two axes interleave into one hierarchy.
  grid.push_back(
      {"d2-multi-axis", ParallelismMatrix({{2, 2}, {2, 2}}), {0, 1}});
  // collapse = false keeps same-hardware-level factors apart (deeper
  // hierarchy from the same matrix — the ablation configuration).
  grid.push_back({"d3-uncollapsed",
                  ParallelismMatrix({{2, 2, 2}, {1, 1, 1}}),
                  {0},
                  SynthesisHierarchyKind::kReductionAxes,
                  false});
  // Multi-group goal forms: hierarchy variants (a)-(c) keep one goal group
  // per non-reduction coordinate, exercising goal contexts the
  // kReductionAxes cases never build.
  grid.push_back({"d2-system", ParallelismMatrix({{1, 2}, {2, 1}}), {0},
                  SynthesisHierarchyKind::kSystem});
  grid.push_back({"d2-colmajor", ParallelismMatrix({{2, 2}, {1, 2}}), {0},
                  SynthesisHierarchyKind::kColumnMajor, true, 4});
  grid.push_back({"d2-rowmajor", ParallelismMatrix({{2, 2}, {1, 2}}), {0},
                  SynthesisHierarchyKind::kRowMajor, true, 4});
  return grid;
}

SynthesisHierarchy BuildCase(const GridCase& c) {
  return SynthesisHierarchy::Build(c.matrix, c.reduction_axes, c.kind,
                                   c.collapse);
}

TEST(SynthDifferential, MatchesReferenceDfsAcrossTheGrid) {
  for (const GridCase& c : Grid()) {
    SCOPED_TRACE(c.name);
    const auto sh = BuildCase(c);
    SynthesisOptions options;
    options.max_program_size = c.max_program_size;
    const auto oracle = SynthesizeProgramsReference(sh, options);
    const auto fast = SynthesizePrograms(sh, options);
    // Byte-identical program lists: same programs, same order.
    ASSERT_EQ(fast.programs.size(), oracle.programs.size());
    for (std::size_t i = 0; i < fast.programs.size(); ++i) {
      EXPECT_EQ(fast.programs[i], oracle.programs[i]) << "program " << i;
    }
    EXPECT_EQ(fast.stats.alphabet_size, oracle.stats.alphabet_size);
  }
}

TEST(SynthDifferential, EveryProgramSizeLimitMatches) {
  // The iterative-deepening emission must agree with the oracle's stable
  // size sort at every depth bound, not just the default.
  const auto sh = BuildCase(
      {"d3", ParallelismMatrix({{2, 2, 2}, {1, 1, 1}}), {0}});
  for (int size = 0; size <= 5; ++size) {
    SCOPED_TRACE(size);
    SynthesisOptions options;
    options.max_program_size = size;
    EXPECT_EQ(SynthesizePrograms(sh, options).programs,
              SynthesizeProgramsReference(sh, options).programs);
  }
}

TEST(SynthDifferential, DeterministicAcrossThreadCounts) {
  // The frontier fan-out merges deterministically: programs *and* stats are
  // a pure function of the synthesis problem, at any thread count. (This is
  // also what lets SynthesisCache::Key ignore `threads`.)
  const GridCase deep{"d4",
                      ParallelismMatrix({{2, 2, 2, 2}, {1, 1, 1, 1}}),
                      {0}};
  const auto sh = BuildCase(deep);
  SynthesisOptions options;
  options.threads = 1;
  const auto reference = SynthesizePrograms(sh, options);
  for (int threads : {4, 8}) {
    SCOPED_TRACE(threads);
    options.threads = threads;
    const auto result = SynthesizePrograms(sh, options);
    EXPECT_EQ(result.programs, reference.programs);
    EXPECT_EQ(result.stats.instructions_tried,
              reference.stats.instructions_tried);
    EXPECT_EQ(result.stats.applications_succeeded,
              reference.stats.applications_succeeded);
    EXPECT_EQ(result.stats.states_visited, reference.stats.states_visited);
    EXPECT_EQ(result.stats.states_deduped, reference.stats.states_deduped);
    EXPECT_EQ(result.stats.branches_pruned, reference.stats.branches_pruned);
  }
}

TEST(SynthDifferential, CapReturnsSizeOrderedPrefix) {
  const auto sh = BuildCase(
      {"d3", ParallelismMatrix({{2, 2, 2}, {1, 1, 1}}), {0}});
  SynthesisOptions full;
  const auto all = SynthesizePrograms(sh, full);
  ASSERT_GT(all.programs.size(), 16u);
  for (std::int64_t cap : {1, 7, 100}) {
    SynthesisOptions capped;
    capped.max_programs = cap;
    const auto some = SynthesizePrograms(sh, capped);
    ASSERT_EQ(some.programs.size(), static_cast<std::size_t>(cap));
    for (std::size_t i = 0; i < some.programs.size(); ++i) {
      EXPECT_EQ(some.programs[i], all.programs[i]);
    }
  }
}

}  // namespace
}  // namespace p2::core
