// The fixed-bucket latency histogram behind the service's percentile
// reporting (ISSUE 9): log2-spaced bucket upper bounds, rank-based
// percentiles, deterministic for a given set of counts.
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <limits>

namespace p2 {
namespace {

TEST(LatencyHistogram, EmptyReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(99.0), 0.0);
}

TEST(LatencyHistogram, PercentileIsTheBucketUpperBound) {
  LatencyHistogram h;
  h.Record(0.5e-6);  // bucket 0: upper 1e-6
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 1e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 1e-6);

  h.Record(3e-6);  // (2e-6, 4e-6] -> upper 4e-6
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 1e-6);   // rank 1 of 2
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 4e-6);  // rank 2 of 2
}

TEST(LatencyHistogram, BoundaryValuesStayInTheirBucket) {
  // upper(b) is inclusive: a sample exactly at a bucket's upper bound must
  // not spill into the next bucket.
  LatencyHistogram h;
  h.Record(1e-6);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1e-6);
  LatencyHistogram g;
  g.Record(2e-6);
  EXPECT_DOUBLE_EQ(g.Percentile(100.0), 2e-6);
}

TEST(LatencyHistogram, TailPercentilesFindTheSlowSample) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(1e-3);  // (0.512ms, 1.024ms] band
  h.Record(10.0);                               // one ~10s outlier
  EXPECT_EQ(h.count(), 100);
  EXPECT_LT(h.Percentile(50.0), 0.01);
  EXPECT_LT(h.Percentile(99.0), 0.01);  // rank 99 of 100: still the fast band
  EXPECT_GT(h.Percentile(100.0), 1.0);  // rank 100: the outlier's bucket
}

TEST(LatencyHistogram, DegenerateInputsLandInTheSmallestBucket) {
  LatencyHistogram h;
  h.Record(-1.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 2);  // never dropped: count() == number of records
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1e-6);
}

TEST(LatencyHistogram, OverflowSamplesUseTheLastBucket) {
  LatencyHistogram h;
  h.Record(1e9);  // far beyond the last bucket's natural range
  EXPECT_EQ(h.count(), 1);
  EXPECT_GT(h.Percentile(50.0), 100.0);  // the catch-all's upper bound
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a;
  a.Record(1e-3);
  LatencyHistogram b;
  b.Record(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_LT(a.Percentile(50.0), 0.01);
  EXPECT_GT(a.Percentile(100.0), 0.5);
}

}  // namespace
}  // namespace p2
