// Differential test for cross-run cache persistence (ISSUE 3, re-homed
// under the planning service in ISSUE 4): a cold experiment grid is run,
// saved, and re-run warm from disk by a fresh PlannerService (standing in
// for a second planner process). The warm run must be byte-identical modulo
// wall-clock — same programs, predictions and measurements, same report
// table — while reporting synthesis_seconds == 0 for every cached signature
// and serving every hierarchy as a disk hit.
#include <gtest/gtest.h>

#include <unistd.h>

#include "test_temp_path.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/cli.h"
#include "engine/json_export.h"
#include "engine/report.h"
#include "engine/service.h"
#include "engine/synthesis_cache.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

std::string TempPath(const std::string& tag) {
  return p2::test::TempPath("p2_pipeline_persistence_test", tag);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  return opts;
}

// A small grid whose experiments share synthesis hierarchies, exercising
// in-run dedup and cross-run persistence together.
struct GridConfig {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

std::vector<GridConfig> SmallGrid() {
  return {{{8, 2, 2}, {0}}, {{8, 4}, {0}}, {{4, 8}, {1}}};
}

// Strips the wall-clock fields (the only run-to-run nondeterminism, plus the
// cache-state-dependent hit counters) so cold and warm runs can be compared
// byte for byte via their JSON form.
ExperimentResult WithoutTimings(ExperimentResult result) {
  for (auto& p : result.placements) {
    p.synthesis_seconds = 0.0;
    p.synthesis_stats.seconds = 0.0;
  }
  result.pipeline = PipelineStats{};
  return result;
}

PlannerServiceOptions PersistentOptions(const std::string& path,
                                        bool readonly = false) {
  PlannerServiceOptions options;
  options.threads = 2;
  options.cache_file = path;
  options.cache_readonly = readonly;
  return options;
}

TEST(PipelinePersistence, WarmRunIsByteIdenticalWithZeroSynthesisSeconds) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const std::string path = TempPath("differential");
  const auto grid = SmallGrid();

  // Cold run: nothing on disk yet.
  std::vector<ExperimentResult> cold;
  {
    PlannerService service(engine, PersistentOptions(path));
    EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kNoFile);
    EXPECT_EQ(service.cache_entries_loaded(), 0);
    for (const auto& cfg : grid) {
      cold.push_back(service.Plan(cfg.axes, cfg.reduction_axes));
    }
    for (const auto& result : cold) {
      EXPECT_EQ(result.pipeline.cache_disk_hits, 0);
    }
    ASSERT_TRUE(service.SaveCache());
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // Warm run: a fresh service — a different "process" — reads the file.
  PlannerService service(engine, PersistentOptions(path));
  EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kOk);
  EXPECT_GT(service.cache_entries_loaded(), 0);
  std::vector<ExperimentResult> warm;
  for (const auto& cfg : grid) {
    warm.push_back(service.Plan(cfg.axes, cfg.reduction_axes));
  }

  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t e = 0; e < warm.size(); ++e) {
    // Byte-identical results once wall-clock is stripped.
    EXPECT_EQ(ToJson(WithoutTimings(warm[e])), ToJson(WithoutTimings(cold[e])))
        << "experiment " << e;
    // Every signature came off disk: no synthesis ran at all...
    EXPECT_EQ(warm[e].pipeline.cache_misses, 0) << "experiment " << e;
    EXPECT_EQ(warm[e].pipeline.cache_disk_hits,
              warm[e].pipeline.cache_hits)
        << "experiment " << e;
    EXPECT_GT(warm[e].pipeline.cache_disk_hits, 0) << "experiment " << e;
    EXPECT_GE(warm[e].pipeline.disk_seconds_saved, 0.0);
    // ...so every cached placement reports zero synthesis time.
    for (const auto& p : warm[e].placements) {
      EXPECT_EQ(p.synthesis_seconds, 0.0) << "experiment " << e;
      EXPECT_EQ(p.synthesis_stats.seconds, 0.0) << "experiment " << e;
    }
  }
  // The preload is a property of the service, reported once — not repeated
  // per experiment like the old PipelineStats field.
  EXPECT_EQ(service.stats().cache_entries_loaded,
            service.cache_entries_loaded());
  std::filesystem::remove(path);
}

TEST(PipelinePersistence, ReportTableIsByteIdenticalColdVsWarm) {
  const std::string path = TempPath("report");
  std::string error;
  const std::vector<std::string> args = {
      "--axes=8,4",    "--reduce=0",
      "--nodes=2",     "--payload-mb=100",
      "--top-k=3",     "--cache-file=" + path};
  const auto options = ParseCliOptions(args, &error);
  ASSERT_TRUE(options.has_value()) << error;

  std::string cold_output;
  ASSERT_EQ(RunCli(*options, &cold_output), 0);
  std::string warm_output;
  ASSERT_EQ(RunCli(*options, &warm_output), 0);

  // The ranked table (everything before the pipeline-stats footer) is fully
  // deterministic and must not change when synthesis is skipped.
  const auto table_of = [](const std::string& output) {
    const auto footer = output.find("\npipeline:");
    return output.substr(0, footer);
  };
  EXPECT_EQ(table_of(warm_output), table_of(cold_output));
  // The warm footer reports the disk hits the cold run could not have had.
  EXPECT_EQ(cold_output.find("disk hits"), std::string::npos);
  EXPECT_NE(warm_output.find("disk hits"), std::string::npos);
  EXPECT_NE(warm_output.find("entries loaded"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(PipelinePersistence, ReadonlyNeverCreatesOrModifiesTheFile) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<int> reduce = {0};

  // Readonly against a missing file: runs cold, never creates the file.
  const std::string missing = TempPath("readonly_missing");
  {
    PlannerService service(engine,
                           PersistentOptions(missing, /*readonly=*/true));
    EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kNoFile);
    const auto result = service.Plan(axes, reduce);
    EXPECT_GT(result.pipeline.cache_misses, 0);
    EXPECT_TRUE(service.SaveCache());  // a successful no-op
  }
  EXPECT_FALSE(std::filesystem::exists(missing));

  // Readonly against an existing file: serves disk hits, leaves the bytes
  // untouched even though the run synthesized nothing new to add.
  const std::string path = TempPath("readonly");
  {
    PlannerService writer(engine, PersistentOptions(path));
    writer.Plan(axes, reduce);
    ASSERT_TRUE(writer.SaveCache());
  }
  const std::string bytes_before = ReadFile(path);
  {
    PlannerService reader(engine, PersistentOptions(path, /*readonly=*/true));
    EXPECT_EQ(reader.cache_load_status(), CacheLoadStatus::kOk);
    const auto result = reader.Plan(axes, reduce);
    EXPECT_EQ(result.pipeline.cache_misses, 0);
    EXPECT_GT(result.pipeline.cache_disk_hits, 0);
    // Even new synthesis results must not leak to disk under readonly.
    const std::vector<std::int64_t> other_axes = {4, 8};
    const std::vector<int> other_reduce = {1};
    reader.Plan(other_axes, other_reduce);
    EXPECT_TRUE(reader.SaveCache());
  }
  EXPECT_EQ(ReadFile(path), bytes_before);
  std::filesystem::remove(path);
}

TEST(PipelinePersistence, CorruptFileRunsColdAndIsRepairedOnSave) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const std::string path = TempPath("corrupt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a cache file";
  }
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<int> reduce = {0};
  {
    PlannerService service(engine, PersistentOptions(path));
    EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kBadMagic);
    EXPECT_TRUE(IsCorrupt(service.cache_load_status()));
    EXPECT_FALSE(service.cache_load_message().empty());
    const auto result = service.Plan(axes, reduce);  // cold, not a crash
    EXPECT_GT(result.pipeline.cache_misses, 0);
    ASSERT_TRUE(service.SaveCache());  // save-over-corrupt recovers
  }
  PlannerService service(engine, PersistentOptions(path));
  EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kOk);
  const auto result = service.Plan(axes, reduce);
  EXPECT_EQ(result.pipeline.cache_misses, 0);
  EXPECT_GT(result.pipeline.cache_disk_hits, 0);
  std::filesystem::remove(path);
}

TEST(PipelinePersistence, CacheFileImpliesTheSignatureCache) {
  // cache_synthesis=false on a request against a persistent service would
  // silently ignore the loaded entries and drop the run's results from the
  // save; Submit forces the signature cache on instead.
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const std::string path = TempPath("implies");
  PlanRequest request;
  request.axes = {8, 4};
  request.reduction_axes = {0};
  request.cache_synthesis = false;
  {
    PlannerService service(engine, PersistentOptions(path));
    service.Plan(request);
    ASSERT_TRUE(service.SaveCache());
  }
  PlannerService service(engine, PersistentOptions(path));
  EXPECT_GT(service.cache_entries_loaded(), 0);  // the run was persisted
  const auto result = service.Plan(request);
  EXPECT_EQ(result.pipeline.cache_misses, 0);
  EXPECT_GT(result.pipeline.cache_disk_hits, 0);  // and the entries served
  std::filesystem::remove(path);
}

TEST(PipelinePersistence, SingleClusterFileWarmsAMultiTenantService) {
  // ISSUE 5: the persisted cache is keyed by hierarchy signature, which is
  // cluster-independent — so a file written by a classic single-cluster run
  // warms EVERY tenant of a multi-tenant service whose placements pose the
  // same synthesis problems.
  const std::string path = TempPath("multi_tenant_warm");
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<int> reduce = {0};

  // Writer: a dedicated single-cluster service on the A100 system.
  {
    const Engine engine(topology::MakeA100Cluster(2), FastOptions());
    PlannerService writer(engine, PersistentOptions(path));
    writer.Plan(axes, reduce);
    ASSERT_TRUE(writer.SaveCache());
  }

  // Reader: a multi-tenant service serving the A100 *and* a V100 cluster.
  // The V100 tenant's (8, 4) placements factor the reduction axis the same
  // way over an equally-deep hierarchy, so even the tenant the writer never
  // saw is served from disk.
  PlannerServiceOptions options = PersistentOptions(path, /*readonly=*/true);
  options.engine = FastOptions();
  PlannerService service(options);
  EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kOk);
  EXPECT_GT(service.cache_entries_loaded(), 0);

  PlanRequest on_a100;
  on_a100.axes = axes;
  on_a100.reduction_axes = reduce;
  on_a100.cluster = topology::MakeA100Cluster(2);
  PlanRequest on_v100 = on_a100;
  on_v100.cluster = topology::MakeV100Cluster(4);

  const auto a100_result = service.Plan(std::move(on_a100));
  EXPECT_EQ(a100_result.pipeline.cache_misses, 0);
  EXPECT_GT(a100_result.pipeline.cache_disk_hits, 0);

  const auto v100_result = service.Plan(std::move(on_v100));
  EXPECT_GT(v100_result.pipeline.cache_disk_hits, 0)
      << "the V100 tenant must reuse hierarchies the A100 run persisted";
  // Disk-warmed results still match a cold dedicated service bit for bit.
  const Engine v100_engine(topology::MakeV100Cluster(4), FastOptions());
  PlannerService cold(v100_engine, PlannerServiceOptions{.threads = 1});
  EXPECT_EQ(ToJson(WithoutTimings(v100_result)),
            ToJson(WithoutTimings(cold.Plan(axes, reduce))));
  std::filesystem::remove(path);
}

TEST(PipelinePersistence, TtlExpiresStaleEntriesAndSparesStamplessOnes) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<int> reduce = {0};
  const std::string fresh_path = TempPath("ttl_fresh");
  {
    PlannerService writer(engine, PersistentOptions(fresh_path));
    writer.Plan(axes, reduce);
    ASSERT_TRUE(writer.SaveCache());
  }

  // Every persisted entry carries a save stamp (format v2); the injected
  // clock then probes both sides of the TTL boundary deterministically.
  std::uint64_t stamp = 0;
  {
    CacheStore probe(fresh_path);
    const CacheFileContents contents = probe.Load();
    ASSERT_EQ(contents.status, CacheLoadStatus::kOk);
    ASSERT_FALSE(contents.entries.empty());
    for (const CacheFileEntry& entry : contents.entries) {
      EXPECT_GT(entry.saved_unix_seconds, 0u);
      stamp = std::max(stamp, entry.saved_unix_seconds);
    }
  }
  {
    CacheStore store(fresh_path);
    store.set_ttl_seconds(100);
    store.set_clock_for_test([stamp] { return stamp + 99; });  // within TTL
    SynthesisCache cache;
    EXPECT_EQ(store.LoadInto(&cache), CacheLoadStatus::kOk);
    EXPECT_EQ(store.entries_expired(), 0);
    EXPECT_GT(store.entries_loaded(), 0);
  }
  {
    CacheStore store(fresh_path);
    store.set_ttl_seconds(100);
    store.set_clock_for_test([stamp] { return stamp + 101; });  // past TTL
    SynthesisCache cache;
    EXPECT_EQ(store.LoadInto(&cache), CacheLoadStatus::kOk);
    EXPECT_EQ(store.entries_loaded(), 0);
    EXPECT_GT(store.entries_expired(), 0);
  }

  // Service level (the --cache-ttl-seconds path): a file whose stamps are
  // ancient runs cold, counts the expiry in the stats and the report, and
  // re-synthesizes instead of serving stale entries.
  const std::string stale_path = TempPath("ttl_stale");
  {
    CacheStore reader(fresh_path);
    SynthesisCache cache;
    ASSERT_EQ(reader.LoadInto(&cache), CacheLoadStatus::kOk);
    CacheStore stale(stale_path);
    stale.set_clock_for_test([] { return std::uint64_t{100}; });  // in 1970
    ASSERT_TRUE(stale.Save(cache));
  }
  {
    PlannerServiceOptions options = PersistentOptions(stale_path);
    options.cache_ttl_seconds = 3600;
    PlannerService service(engine, options);
    EXPECT_EQ(service.cache_load_status(), CacheLoadStatus::kOk);
    EXPECT_EQ(service.cache_entries_loaded(), 0);
    EXPECT_GT(service.stats().cache_entries_expired, 0);
    const auto result = service.Plan(axes, reduce);
    EXPECT_GT(result.pipeline.cache_misses, 0);
    EXPECT_EQ(result.pipeline.cache_disk_hits, 0);
    EXPECT_NE(RenderServiceStats(service.stats()).find("expired"),
              std::string::npos);
  }

  // Stampless (v1-era) entries have unknown age: never expired.
  const std::string stampless_path = TempPath("ttl_stampless");
  {
    CacheStore reader(fresh_path);
    SynthesisCache cache;
    ASSERT_EQ(reader.LoadInto(&cache), CacheLoadStatus::kOk);
    CacheStore stampless(stampless_path);
    stampless.set_clock_for_test([] { return std::uint64_t{0}; });
    ASSERT_TRUE(stampless.Save(cache));
  }
  {
    PlannerServiceOptions options = PersistentOptions(stampless_path);
    options.cache_ttl_seconds = 1;
    PlannerService service(engine, options);
    EXPECT_GT(service.cache_entries_loaded(), 0);
    EXPECT_EQ(service.stats().cache_entries_expired, 0);
    const auto result = service.Plan(axes, reduce);
    EXPECT_EQ(result.pipeline.cache_misses, 0);
    EXPECT_GT(result.pipeline.cache_disk_hits, 0);
  }
  std::filesystem::remove(fresh_path);
  std::filesystem::remove(stale_path);
  std::filesystem::remove(stampless_path);
}

TEST(PipelinePersistence, SecondsSavedAccumulateAcrossRuns) {
  const Engine engine(topology::MakeA100Cluster(2), FastOptions());
  const std::string path = TempPath("accounting");
  const std::vector<std::int64_t> axes = {8, 2, 2};
  const std::vector<int> reduce = {0};

  // Serial, so the savings accumulate in a deterministic order.
  PlannerServiceOptions options = PersistentOptions(path);
  options.threads = 1;

  double cold_counterfactual = 0.0;
  {
    PlannerService service(engine, options);
    const auto result = service.Plan(axes, reduce);
    cold_counterfactual = result.TotalSynthesisSeconds();
    ASSERT_TRUE(service.SaveCache());
  }
  PlannerService service(engine, options);
  const auto result = service.Plan(axes, reduce);
  // The warm run's cross-run savings equal the cold run's counterfactual
  // synthesis cost: each placement's hit re-credits its persisted seconds.
  // NEAR, not DOUBLE_EQ, out of caution: both sides sum the same doubles,
  // but via differently-ordered accumulations they could reassociate.
  EXPECT_NEAR(result.pipeline.disk_seconds_saved, cold_counterfactual, 1e-9);
  // These two accumulate in the same statements, so they are bitwise equal.
  EXPECT_DOUBLE_EQ(result.pipeline.synthesis_seconds_saved,
                   result.pipeline.disk_seconds_saved);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace p2::engine
