// Empirical validation of Theorem 3.2: the expressiveness order of the
// synthesis hierarchies (d) >= (c) >= (b) >= (a). A lowered program is
// identified by its observable behaviour — the sequence of
// (collective, device-group-set) steps on the full system — and every
// behaviour synthesizable from a weaker hierarchy must also be synthesizable
// from a stronger one.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "core/lowering.h"
#include "core/placement.h"
#include "core/synthesizer.h"

namespace p2::core {
namespace {

// Canonical form of a lowered program: per step, the op and the sorted set
// of sorted groups.
using Behavior = std::vector<std::pair<Collective, std::set<std::vector<std::int64_t>>>>;

Behavior CanonicalBehavior(const LoweredProgram& lowered) {
  Behavior b;
  for (const auto& step : lowered.steps) {
    std::set<std::vector<std::int64_t>> groups;
    for (auto g : step.groups) {
      std::sort(g.begin(), g.end());
      groups.insert(std::move(g));
    }
    b.emplace_back(step.op, std::move(groups));
  }
  return b;
}

std::set<Behavior> Behaviors(const ParallelismMatrix& m,
                             const std::vector<int>& reduction_axes,
                             SynthesisHierarchyKind kind, int max_size) {
  const auto sh = SynthesisHierarchy::Build(m, reduction_axes, kind,
                                            /*collapse=*/false);
  SynthesisOptions opts;
  opts.max_program_size = max_size;
  const auto result = SynthesizePrograms(sh, opts);
  std::set<Behavior> behaviors;
  for (const auto& p : result.programs) {
    behaviors.insert(CanonicalBehavior(LowerProgram(sh, p)));
  }
  return behaviors;
}

struct TheoremCase {
  ParallelismMatrix matrix;
  std::vector<int> reduction_axes;
  int max_size;
};

class ExpressivenessOrder : public testing::TestWithParam<TheoremCase> {};

std::string TheoremCaseName(const testing::TestParamInfo<TheoremCase>& info) {
  std::ostringstream os;
  os << "case" << info.index;
  return os.str();
}

TEST_P(ExpressivenessOrder, DStrongerThanCStrongerThanBStrongerThanA) {
  const auto& c = GetParam();
  const auto a =
      Behaviors(c.matrix, c.reduction_axes, SynthesisHierarchyKind::kSystem,
                c.max_size);
  const auto b = Behaviors(c.matrix, c.reduction_axes,
                           SynthesisHierarchyKind::kColumnMajor, c.max_size);
  const auto cc = Behaviors(c.matrix, c.reduction_axes,
                            SynthesisHierarchyKind::kRowMajor, c.max_size);
  const auto d = Behaviors(c.matrix, c.reduction_axes,
                           SynthesisHierarchyKind::kReductionAxes, c.max_size);
  auto subset = [](const std::set<Behavior>& lo, const std::set<Behavior>& hi,
                   const char* what) {
    for (const auto& beh : lo) {
      EXPECT_TRUE(hi.count(beh) > 0) << what;
    }
  };
  subset(a, b, "(b) must express every (a) behaviour");
  subset(b, cc, "(c) must express every (b) behaviour");
  subset(cc, d, "(d) must express every (c) behaviour");
  // (d) always expresses the requested reduction; (a) may find nothing at
  // all when reduction groups do not align with hardware levels — exactly
  // why the paper rejects the raw system hierarchy.
  EXPECT_FALSE(d.empty());
  EXPECT_GE(d.size(), cc.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExpressivenessOrder,
    testing::Values(
        // Table 1's running example, both reduction axes.
        TheoremCase{ParallelismMatrix({{1, 1, 2, 2}, {1, 2, 1, 2}}), {1}, 3},
        TheoremCase{ParallelismMatrix({{1, 1, 2, 2}, {1, 2, 1, 2}}), {0}, 3},
        // Two-level cluster shapes.
        TheoremCase{ParallelismMatrix({{2, 2}, {1, 4}}), {0}, 3},
        TheoremCase{ParallelismMatrix({{2, 2}, {1, 4}}), {1}, 3},
        TheoremCase{ParallelismMatrix({{2, 4}, {1, 2}}), {0}, 3},
        // Multi-axis reduction.
        TheoremCase{ParallelismMatrix({{2, 1}, {1, 2}, {1, 2}}), {0, 2}, 3}),
    TheoremCaseName);

TEST(ExpressivenessStrict, DFindsBehavioursCMisses) {
  // The paper's appendix shows (d) > (c) strictly: the collapsed root level
  // lets (d) reduce across a whole axis in one slice where (c) cannot.
  // With max_size 2, hierarchical programs over [2 2] exist in (d) for this
  // placement but (c)'s extra non-reduction levels block some groupings.
  const ParallelismMatrix m({{2, 2}, {2, 2}});
  const std::vector<int> axes = {0};
  const auto c =
      Behaviors(m, axes, SynthesisHierarchyKind::kRowMajor, 3);
  const auto d =
      Behaviors(m, axes, SynthesisHierarchyKind::kReductionAxes, 3);
  EXPECT_GE(d.size(), c.size());
}

TEST(ExpressivenessStrict, SystemHierarchyMissesAxisAlignedReductions) {
  // On Fig. 2d, reduction along axis 1 needs groups {A0,A1},{A2,A3}, which
  // the raw system hierarchy [1 2 2 4] cannot slice (it can only form
  // {A0..A3}); so (a) synthesizes fewer behaviours than (d).
  const ParallelismMatrix m({{1, 1, 2, 2}, {1, 2, 1, 2}});
  const std::vector<int> axes = {1};
  const auto a = Behaviors(m, axes, SynthesisHierarchyKind::kSystem, 3);
  const auto d = Behaviors(m, axes, SynthesisHierarchyKind::kReductionAxes, 3);
  EXPECT_LT(a.size(), d.size());
}

TEST(CollapseOptimization, CollapsedBehavioursAreValid) {
  // Collapsing same-hardware-level factors (Table 1 step 3) must preserve
  // soundness: everything synthesized from the collapsed hierarchy is valid.
  const ParallelismMatrix m({{2, 1}, {1, 2}, {1, 2}});
  const std::vector<int> axes = {0, 2};
  const auto sh = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes, /*collapse=*/true);
  SynthesisOptions opts;
  opts.max_program_size = 3;
  const auto result = SynthesizePrograms(sh, opts);
  EXPECT_FALSE(result.programs.empty());
  for (const auto& p : result.programs) {
    std::string err;
    EXPECT_TRUE(CheckLoweredOnFullSystem(sh, LowerProgram(sh, p), &err))
        << ToString(p) << ": " << err;
  }
}

TEST(CollapseOptimization, ShrinksTheSearchSpace) {
  // Result 2's mechanism: the collapsed hierarchy has fewer levels, hence a
  // smaller instruction alphabet and faster synthesis.
  const ParallelismMatrix m({{2, 2}, {1, 1}, {2, 2}});
  const std::vector<int> axes = {0, 2};
  SynthesisOptions opts;
  opts.max_program_size = 3;
  const auto collapsed = SynthesizePrograms(
      SynthesisHierarchy::Build(m, axes,
                                SynthesisHierarchyKind::kReductionAxes, true),
      opts);
  const auto expanded = SynthesizePrograms(
      SynthesisHierarchy::Build(m, axes,
                                SynthesisHierarchyKind::kReductionAxes, false),
      opts);
  EXPECT_LE(collapsed.stats.alphabet_size, expanded.stats.alphabet_size);
}

}  // namespace
}  // namespace p2::core
