// Property-based sweeps: for a grid of (system, parallelism axes, reduction
// axes) combinations, every placement P2 enumerates and every program the
// synthesizer emits must (1) lower, (2) be semantically valid on the full
// system, and (3) compute the exact per-group sums when executed on real
// float buffers. These are the paper's end-to-end soundness claims.
#include <gtest/gtest.h>

#include <sstream>

#include "core/lowering.h"
#include "core/placement.h"
#include "core/synthesizer.h"
#include "runtime/data_executor.h"
#include "topology/system.h"

namespace p2::core {
namespace {

struct Case {
  std::vector<std::int64_t> hierarchy;
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

std::string CaseName(const testing::TestParamInfo<Case>& info) {
  std::ostringstream os;
  os << "h";
  for (auto c : info.param.hierarchy) os << c << '_';
  os << "p";
  for (auto a : info.param.axes) os << a << '_';
  os << "r";
  for (auto r : info.param.reduction_axes) os << r;
  return os.str();
}

class SynthesisSoundness : public testing::TestWithParam<Case> {};

TEST_P(SynthesisSoundness, AllProgramsValidAndCorrect) {
  const Case& c = GetParam();
  const auto h = topology::SystemHierarchy::FromCardinalities(c.hierarchy);
  const auto placements = EnumeratePlacements(h, c.axes);
  ASSERT_FALSE(placements.empty());

  SynthesisOptions opts;
  opts.max_program_size = 4;

  std::int64_t programs_checked = 0;
  for (const auto& m : placements) {
    const auto sh = SynthesisHierarchy::Build(
        m, c.reduction_axes, SynthesisHierarchyKind::kReductionAxes);
    const auto result = SynthesizePrograms(sh, opts);
    ASSERT_FALSE(result.programs.empty()) << m.ToString();
    for (const auto& p : result.programs) {
      const auto lowered = LowerProgram(sh, p);
      std::string err;
      ASSERT_TRUE(CheckLoweredOnFullSystem(sh, lowered, &err))
          << m.ToString() << " / " << ToString(p) << ": " << err;
      ASSERT_TRUE(
          runtime::DataExecutor::ExecuteAndVerify(sh, lowered, 2, &err))
          << m.ToString() << " / " << ToString(p) << ": " << err;
      ++programs_checked;
    }
  }
  RecordProperty("programs_checked", static_cast<int>(programs_checked));
  EXPECT_GT(programs_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SynthesisSoundness,
    testing::Values(
        // Running example (Fig. 2): data parallelism x parameter shards.
        Case{{1, 2, 2, 4}, {4, 4}, {0}},
        Case{{1, 2, 2, 4}, {4, 4}, {1}},
        Case{{1, 2, 2, 4}, {4, 4}, {0, 1}},
        Case{{1, 2, 2, 4}, {2, 8}, {0}},
        Case{{1, 2, 2, 4}, {8, 2}, {1}},
        Case{{1, 2, 2, 4}, {16}, {0}},
        // Paper's A100 two-node shape.
        Case{{2, 16}, {8, 4}, {0}},
        Case{{2, 16}, {8, 4}, {1}},
        Case{{2, 16}, {2, 16}, {1}},
        Case{{2, 16}, {32}, {0}},
        // Paper's V100 shapes.
        Case{{2, 8}, {4, 4}, {0}},
        Case{{2, 8}, {4, 4}, {1}},
        Case{{2, 8}, {2, 2, 4}, {0, 2}},
        Case{{2, 8}, {8, 2}, {0}},
        Case{{4, 8}, {8, 2, 2}, {0, 2}},
        // Deeper hierarchies and odd radices.
        Case{{1, 3, 4}, {6, 2}, {0}},
        Case{{1, 3, 4}, {6, 2}, {1}},
        Case{{2, 2, 2, 2}, {4, 4}, {0}},
        Case{{2, 2, 2, 2}, {2, 2, 4}, {0, 2}},
        Case{{1, 2, 3, 2}, {12}, {0}},
        // Racked three-level clusters (rack x node x gpu).
        Case{{2, 2, 4}, {8, 2}, {0}},
        Case{{2, 2, 4}, {4, 4}, {0}},
        Case{{2, 2, 4}, {4, 4}, {1}},
        Case{{2, 2, 4}, {2, 2, 4}, {0, 2}},
        // Reduction over all axes at once (full-system reduction).
        Case{{2, 8}, {4, 4}, {0, 1}},
        Case{{2, 2, 4}, {4, 4}, {0, 1}},
        // Prime-sized axes exercise non-power-of-two scatter divisibility.
        Case{{1, 5, 2}, {5, 2}, {0}},
        Case{{1, 5, 2}, {10}, {0}},
        Case{{3, 3}, {9}, {0}},
        Case{{3, 3}, {3, 3}, {1}}),
    CaseName);

class PlacementProperties : public testing::TestWithParam<Case> {};

TEST_P(PlacementProperties, MatricesSatisfyRowAndColumnConstraints) {
  const Case& c = GetParam();
  const auto h = topology::SystemHierarchy::FromCardinalities(c.hierarchy);
  for (const auto& m : EnumeratePlacements(h, c.axes)) {
    EXPECT_TRUE(m.IsValidFor(h, c.axes)) << m.ToString();
    // Reduction groups partition the devices and have the right size.
    const PlacementLayout layout(m);
    std::int64_t group_size = 1;
    for (int a : c.reduction_axes) group_size *= m.RowProduct(a);
    std::vector<int> seen(static_cast<std::size_t>(layout.num_devices()), 0);
    for (const auto& g : layout.ReductionGroups(c.reduction_axes)) {
      EXPECT_EQ(static_cast<std::int64_t>(g.size()), group_size);
      for (auto d : g) ++seen[static_cast<std::size_t>(d)];
    }
    for (int s : seen) EXPECT_EQ(s, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlacementProperties,
    testing::Values(Case{{1, 2, 2, 4}, {4, 4}, {0}},
                    Case{{1, 2, 2, 4}, {4, 4}, {1}},
                    Case{{2, 16}, {8, 4}, {0}},
                    Case{{4, 16}, {8, 8}, {1}},
                    Case{{2, 8}, {2, 2, 4}, {0, 2}},
                    Case{{4, 8}, {4, 2, 4}, {0, 2}},
                    Case{{1, 3, 4}, {6, 2}, {0}},
                    Case{{2, 2, 2, 2}, {4, 4}, {1}}),
    CaseName);

}  // namespace
}  // namespace p2::core
