#include "engine/cli.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include "test_temp_path.h"

#include <cctype>
#include <filesystem>
#include <fstream>

namespace p2::engine {
namespace {

std::string TempPath(const std::string& tag) {
  return p2::test::TempPath("p2_cli_test", tag);
}

std::optional<CliOptions> Parse(std::initializer_list<const char*> args,
                                std::string* error) {
  std::vector<std::string> v;
  for (const char* a : args) v.emplace_back(a);
  return ParseCliOptions(v, error);
}

TEST(Cli, ParsesFullCommandLine) {
  std::string error;
  const auto opts = Parse({"--system=v100", "--nodes=4", "--axes=8,2,2",
                           "--reduce=0,2", "--algo=tree", "--payload-mb=512",
                           "--top-k=5", "--fuse"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->system, "v100");
  EXPECT_EQ(opts->nodes, 4);
  EXPECT_EQ(opts->axes, (std::vector<std::int64_t>{8, 2, 2}));
  EXPECT_EQ(opts->reduction_axes, (std::vector<int>{0, 2}));
  EXPECT_EQ(opts->algo, core::NcclAlgo::kTree);
  EXPECT_DOUBLE_EQ(opts->payload_mb, 512.0);
  EXPECT_EQ(opts->top_k, 5);
  EXPECT_TRUE(opts->fuse);
}

TEST(Cli, DefaultsAreSane) {
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->system, "a100");
  EXPECT_EQ(opts->nodes, 2);
  EXPECT_EQ(opts->algo, core::NcclAlgo::kRing);
  EXPECT_EQ(opts->top_k, 0);
  EXPECT_FALSE(opts->fuse);
}

TEST(Cli, HelpProducesUsage) {
  std::string error;
  EXPECT_FALSE(Parse({"--help"}, &error).has_value());
  EXPECT_NE(error.find("usage:"), std::string::npos);
}

TEST(Cli, RejectsMissingAxes) {
  std::string error;
  EXPECT_FALSE(Parse({"--reduce=0"}, &error).has_value());
  EXPECT_NE(error.find("--axes"), std::string::npos);
}

TEST(Cli, RejectsMissingReduce) {
  std::string error;
  EXPECT_FALSE(Parse({"--axes=8,4"}, &error).has_value());
  EXPECT_NE(error.find("--reduce"), std::string::npos);
}

TEST(Cli, RejectsBadValues) {
  std::string error;
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--system=h100"}, &error)
                   .has_value());
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--algo=mesh"}, &error)
                   .has_value());
  EXPECT_FALSE(Parse({"--axes=8,x", "--reduce=0"}, &error).has_value());
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=5"}, &error).has_value());
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--nodes=0"}, &error)
                   .has_value());
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "bogus"}, &error)
                   .has_value());
  EXPECT_FALSE(Parse({"--axes=-8,4", "--reduce=0"}, &error).has_value());
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--threads=0"}, &error)
                   .has_value());
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--threads=100000"}, &error)
                   .has_value());
}

TEST(Cli, ParsesThreads) {
  std::string error;
  const auto opts =
      Parse({"--axes=8,4", "--reduce=0", "--threads=8"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->threads, 8);
}

TEST(Cli, ParsesServiceThreads) {
  std::string error;
  const auto opts = Parse(
      {"--axes=8,4", "--reduce=0", "--service-threads=6"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->service_threads, 6);
  EXPECT_EQ(opts->EffectiveServiceThreads(), 6);
  // --threads stays accepted as the legacy alias...
  const auto legacy = Parse({"--axes=8,4", "--reduce=0", "--threads=3"},
                            &error);
  ASSERT_TRUE(legacy.has_value()) << error;
  EXPECT_EQ(legacy->EffectiveServiceThreads(), 3);
  // ...and --service-threads wins when both are given.
  const auto both = Parse({"--axes=8,4", "--reduce=0", "--threads=3",
                           "--service-threads=6"},
                          &error);
  ASSERT_TRUE(both.has_value()) << error;
  EXPECT_EQ(both->EffectiveServiceThreads(), 6);
  EXPECT_FALSE(
      Parse({"--axes=8,4", "--reduce=0", "--service-threads=0"}, &error)
          .has_value());
}

TEST(Cli, ParsesRobustnessFlags) {
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0", "--deadline-ms=250",
                           "--max-in-flight=4", "--drain-grace-ms=100"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->deadline_ms, 250);
  EXPECT_EQ(opts->max_in_flight, 4);
  EXPECT_EQ(opts->drain_grace_ms, 100);
}

TEST(Cli, RobustnessFlagDefaultsAreOff) {
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->deadline_ms, 0);      // no deadline
  EXPECT_EQ(opts->max_in_flight, 0);    // unbounded admission
  EXPECT_EQ(opts->drain_grace_ms, -1);  // drain waits indefinitely
}

TEST(Cli, DrainGraceZeroIsValid) {
  // 0 is meaningful — cancel in-flight work the moment the drain starts —
  // and must not be folded into "unset".
  std::string error;
  const auto opts =
      Parse({"--axes=8,4", "--reduce=0", "--drain-grace-ms=0"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->drain_grace_ms, 0);
}

TEST(Cli, RejectsBadRobustnessValues) {
  std::string error;
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--deadline-ms=0"}, &error)
                   .has_value());
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--deadline-ms=x"}, &error)
                   .has_value());
  EXPECT_FALSE(
      Parse({"--axes=8,4", "--reduce=0", "--max-in-flight=-1"}, &error)
          .has_value());
  EXPECT_FALSE(
      Parse({"--axes=8,4", "--reduce=0", "--drain-grace-ms=-1"}, &error)
          .has_value());
  // A mistyped flag hits the generic unrecognized-flag path, not a silent
  // accept.
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--deadline=250"}, &error)
                   .has_value());
  EXPECT_NE(error.find("unrecognized"), std::string::npos) << error;
}

TEST(Cli, GridExcludesExplicitConfig) {
  std::string error;
  const auto opts = Parse({"--grid", "--nodes=1"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;  // --grid needs no --axes/--reduce
  EXPECT_TRUE(opts->grid);
  EXPECT_FALSE(Parse({"--grid", "--axes=8,4", "--reduce=0"}, &error)
                   .has_value());
  EXPECT_NE(error.find("--grid"), std::string::npos);
  // --fuse has no effect on the grid summary; silently accepting it would
  // mislead.
  EXPECT_FALSE(Parse({"--grid", "--fuse"}, &error).has_value());
  EXPECT_NE(error.find("--fuse"), std::string::npos);
}

TEST(Cli, GridRunPlansEveryConfigThroughOneService) {
  std::string error;
  const auto opts = Parse({"--grid", "--nodes=1", "--payload-mb=100",
                           "--top-k=2", "--service-threads=4"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  std::string output;
  EXPECT_EQ(RunCli(*opts, &output), 0);
  EXPECT_NE(output.find("Config"), std::string::npos);
  // Single-axis, two-axis and three-axis configs all present.
  EXPECT_NE(output.find("[16] reduce 0"), std::string::npos);
  EXPECT_NE(output.find("[2 8] reduce 1"), std::string::npos);
  EXPECT_NE(output.find("[2 2 4] reduce 0 2"), std::string::npos);
  // The service footer renders exactly once, with the cross-query totals.
  const auto first = output.find("\nservice:");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(output.find("\nservice:", first + 1), std::string::npos);
}

TEST(Cli, ParsesTopologyPresets) {
  std::string error;
  // Comma-separated and repeated flags both append.
  const auto opts = Parse({"--grid", "--topology=a100:2,v100:2",
                           "--topology=v100:4"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  ASSERT_EQ(opts->topologies.size(), 3u);
  EXPECT_EQ(opts->topologies[0], (TopologyPreset{"a100", 2}));
  EXPECT_EQ(opts->topologies[1], (TopologyPreset{"v100", 2}));
  EXPECT_EQ(opts->topologies[2], (TopologyPreset{"v100", 4}));
  EXPECT_EQ(ClusterFromPreset(opts->topologies[0]).num_devices(), 32);
  EXPECT_EQ(ClusterFromPreset(opts->topologies[1]).num_devices(), 16);
}

TEST(Cli, SingleTopologyPresetIsSystemNodesShorthand) {
  std::string error;
  const auto opts = Parse({"--topology=v100:4", "--axes=8,4", "--reduce=0"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->system, "v100");
  EXPECT_EQ(opts->nodes, 4);
}

TEST(Cli, RejectsBadTopologySpecs) {
  std::string error;
  EXPECT_FALSE(Parse({"--grid", "--topology=a100"}, &error).has_value());
  EXPECT_NE(error.find("SYS:NODES"), std::string::npos);
  EXPECT_FALSE(Parse({"--grid", "--topology=h100:2"}, &error).has_value());
  EXPECT_FALSE(Parse({"--grid", "--topology=a100:0"}, &error).has_value());
  EXPECT_FALSE(Parse({"--grid", "--topology="}, &error).has_value());
  // Duplicates would double-report one tenant's grid.
  EXPECT_FALSE(
      Parse({"--grid", "--topology=a100:2,a100:2"}, &error).has_value());
  EXPECT_NE(error.find("twice"), std::string::npos);
  // Mixing the two cluster-selection forms is ambiguous.
  EXPECT_FALSE(
      Parse({"--grid", "--topology=a100:2", "--nodes=4"}, &error).has_value());
  EXPECT_NE(error.find("--system/--nodes"), std::string::npos);
  // Several presets mean several device counts: only --grid fits.
  EXPECT_FALSE(Parse({"--topology=a100:2,v100:2", "--axes=8,4", "--reduce=0"},
                     &error)
                   .has_value());
  EXPECT_NE(error.find("--grid"), std::string::npos);
}

TEST(Cli, ParsesCacheMaxEntries) {
  std::string error;
  const auto opts = Parse(
      {"--axes=8,4", "--reduce=0", "--cache-max-entries=64"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->cache_max_entries, 64);
  const auto defaults = Parse({"--axes=8,4", "--reduce=0"}, &error);
  ASSERT_TRUE(defaults.has_value()) << error;
  EXPECT_EQ(defaults->cache_max_entries, 0);  // unbounded
  EXPECT_FALSE(
      Parse({"--axes=8,4", "--reduce=0", "--cache-max-entries=0"}, &error)
          .has_value());
  EXPECT_FALSE(
      Parse({"--axes=8,4", "--reduce=0", "--cache-max-entries=x"}, &error)
          .has_value());
}

TEST(Cli, MultiTopologyGridPlansEveryClusterThroughOneService) {
  std::string error;
  // a100:1 (16 GPUs, [1 16]) and v100:2 (16 GPUs, [2 8]): their grids both
  // contain 8-wide reduction axes whose factorizations coincide, so the
  // shared multi-tenant service must report cross-tenant cache hits.
  const auto opts = Parse({"--grid", "--topology=a100:1,v100:2",
                           "--payload-mb=100", "--top-k=1",
                           "--service-threads=4"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  std::string output;
  EXPECT_EQ(RunCli(*opts, &output), 0);
  // One per-tenant section per preset...
  EXPECT_NE(output.find("1 nodes, each with 16 A100"), std::string::npos);
  EXPECT_NE(output.find("2 nodes, each with 8 V100"), std::string::npos);
  // ...with each tenant's own grid table.
  EXPECT_NE(output.find("[16] reduce 0"), std::string::npos);  // a100:1
  EXPECT_NE(output.find("[2 8] reduce 1"), std::string::npos);
  // The service footer renders exactly once, with per-tenant rows and the
  // cross-tenant sharing the single shared cache produced.
  const auto first = output.find("\nservice:");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(output.find("\nservice:", first + 1), std::string::npos);
  EXPECT_NE(output.find("cross-tenant hits"), std::string::npos);
  EXPECT_NE(output.find("tenant 0 ["), std::string::npos);
  EXPECT_NE(output.find("tenant 1 ["), std::string::npos);
}

TEST(Cli, ParsesSynthThreads) {
  std::string error;
  const auto opts = Parse(
      {"--axes=8,4", "--reduce=0", "--synth-threads=4"}, &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->synth_threads, 4);
  EXPECT_EQ(opts->threads, 1);
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--synth-threads=0"}, &error)
                   .has_value());
}

TEST(Cli, ParsesCacheFlags) {
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0",
                           "--cache-file=/tmp/p2.cache", "--cache-readonly"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  EXPECT_EQ(opts->cache_file, "/tmp/p2.cache");
  EXPECT_TRUE(opts->cache_readonly);

  const auto defaults = Parse({"--axes=8,4", "--reduce=0"}, &error);
  ASSERT_TRUE(defaults.has_value()) << error;
  EXPECT_TRUE(defaults->cache_file.empty());
  EXPECT_FALSE(defaults->cache_readonly);
}

TEST(Cli, CacheReadonlyRequiresCacheFile) {
  std::string error;
  EXPECT_FALSE(
      Parse({"--axes=8,4", "--reduce=0", "--cache-readonly"}, &error)
          .has_value());
  EXPECT_NE(error.find("--cache-file"), std::string::npos);
}

TEST(Cli, RejectsEmptyCacheFilePath) {
  std::string error;
  EXPECT_FALSE(
      Parse({"--axes=8,4", "--reduce=0", "--cache-file="}, &error)
          .has_value());
  EXPECT_NE(error.find("--cache-file"), std::string::npos);
}

TEST(Cli, UnknownFlagsErrorInsteadOfBeingIgnored) {
  std::string error;
  // Keyed form.
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--bogus=1"}, &error)
                   .has_value());
  EXPECT_NE(error.find("unrecognized flag: --bogus"), std::string::npos);
  // Bare form — a mistyped boolean flag must not silently change the plan.
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "--fusee"}, &error)
                   .has_value());
  EXPECT_NE(error.find("unrecognized flag: --fusee"), std::string::npos);
  // Non-flag junk keeps its own message.
  EXPECT_FALSE(Parse({"--axes=8,4", "--reduce=0", "fuse"}, &error)
                   .has_value());
  EXPECT_NE(error.find("unrecognized argument: fuse"), std::string::npos);
}

TEST(Cli, ClusterFromOptions) {
  std::string error;
  const auto a100 = Parse({"--axes=8,4", "--reduce=0", "--nodes=2"}, &error);
  ASSERT_TRUE(a100.has_value());
  EXPECT_EQ(ClusterFromOptions(*a100).num_devices(), 32);
  const auto v100 = Parse({"--system=v100", "--nodes=4", "--axes=8,4",
                           "--reduce=0"},
                          &error);
  ASSERT_TRUE(v100.has_value());
  EXPECT_EQ(ClusterFromOptions(*v100).num_devices(), 32);
}

TEST(Cli, RunReportsAxisMismatch) {
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0", "--nodes=4"}, &error);
  ASSERT_TRUE(opts.has_value());
  std::string output;
  EXPECT_EQ(RunCli(*opts, &output), 1);
  EXPECT_NE(output.find("error"), std::string::npos);
}

TEST(Cli, RunProducesRankedTable) {
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0", "--nodes=2",
                           "--payload-mb=100", "--top-k=5"},
                          &error);
  ASSERT_TRUE(opts.has_value());
  std::string output;
  EXPECT_EQ(RunCli(*opts, &output), 0);
  EXPECT_NE(output.find("Placement"), std::string::npos);
  EXPECT_NE(output.find("[[1 8] [2 2]]"), std::string::npos);
  EXPECT_NE(output.find("Speedup"), std::string::npos);
}

TEST(Cli, RunWarmStartsFromACacheFile) {
  const std::string path = TempPath("warm");
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0", "--nodes=2",
                           "--payload-mb=100", "--top-k=3",
                           ("--cache-file=" + path).c_str()},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;

  std::string cold_output;
  ASSERT_EQ(RunCli(*opts, &cold_output), 0);
  EXPECT_EQ(cold_output.find("disk hits"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(path));

  std::string warm_output;
  ASSERT_EQ(RunCli(*opts, &warm_output), 0);
  EXPECT_NE(warm_output.find("entries loaded"), std::string::npos);
  // The reported disk-hit count must be a nonzero integer (parsed, not a
  // substring check — "10 disk hits" contains "0 disk hits").
  const auto marker = warm_output.find(" disk hits");
  ASSERT_NE(marker, std::string::npos);
  auto digits_begin = marker;
  while (digits_begin > 0 &&
         std::isdigit(static_cast<unsigned char>(warm_output[digits_begin - 1]))) {
    --digits_begin;
  }
  ASSERT_LT(digits_begin, marker);
  EXPECT_GT(std::stoll(warm_output.substr(digits_begin, marker - digits_begin)),
            0);
  std::filesystem::remove(path);
}

TEST(Cli, RunReadonlyNeverCreatesTheCacheFile) {
  const std::string path = TempPath("readonly");
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0", "--nodes=2",
                           "--payload-mb=100", "--top-k=3",
                           ("--cache-file=" + path).c_str(),
                           "--cache-readonly"},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  std::string output;
  EXPECT_EQ(RunCli(*opts, &output), 0);  // cold but successful
  EXPECT_FALSE(std::filesystem::exists(path));
  // Readonly names a file the user expects to exist: running cold must not
  // be silent.
  EXPECT_NE(output.find("warning"), std::string::npos);
  EXPECT_NE(output.find("runs cold"), std::string::npos);
}

TEST(Cli, RunWarnsOnCorruptCacheFileAndStillPlans) {
  const std::string path = TempPath("corrupt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a cache file";
  }
  std::string error;
  const auto opts = Parse({"--axes=8,4", "--reduce=0", "--nodes=2",
                           "--payload-mb=100", "--top-k=3",
                           ("--cache-file=" + path).c_str()},
                          &error);
  ASSERT_TRUE(opts.has_value()) << error;
  std::string output;
  EXPECT_EQ(RunCli(*opts, &output), 0);
  EXPECT_NE(output.find("warning"), std::string::npos);
  EXPECT_NE(output.find("starting cold"), std::string::npos);
  EXPECT_NE(output.find("Placement"), std::string::npos);  // still planned

  // The save-over-corrupt rewrite left a loadable file behind.
  std::string warm_output;
  EXPECT_EQ(RunCli(*opts, &warm_output), 0);
  EXPECT_EQ(warm_output.find("warning"), std::string::npos);
  EXPECT_NE(warm_output.find("disk hits"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Cli, FuseAnnotatesFusiblePrograms) {
  std::string error;
  const auto opts = Parse({"--axes=4,4", "--reduce=0", "--nodes=2",
                           "--system=v100", "--payload-mb=100", "--fuse"},
                          &error);
  ASSERT_TRUE(opts.has_value());
  std::string output;
  EXPECT_EQ(RunCli(*opts, &output), 0);
}

}  // namespace
}  // namespace p2::engine
