// Tests the simulator-guided evaluation workflow (paper Section 5's point):
// predict everything, measure only the top-k candidates.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "runtime/executor.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

Engine MakeEngine() {
  EngineOptions opts;
  opts.payload_bytes = 1e9;
  return Engine(topology::MakeA100Cluster(2), opts);
}

TEST(GuidedEvaluation, MeasuresOnlyTopKPlusBaseline) {
  const auto eng = MakeEngine();
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const int k = 5;
  const auto eval = eng.EvaluatePlacementGuided(m, axes, k);
  int measured = 0;
  for (const auto& p : eval.programs) {
    if (p.measured) ++measured;
    EXPECT_GT(p.predicted_seconds, 0.0);  // everything predicted
  }
  // Every top-k candidate is either measured or skipped by early stopping
  // (provably behind the incumbent); the baseline may or may not sit inside
  // the top-k, hence the +1.
  EXPECT_GE(measured + eval.guided_skipped, k);
  EXPECT_LE(measured + eval.guided_skipped, k + 1);
  EXPECT_TRUE(eval.programs.front().measured);  // baseline always measured
  EXPECT_GT(static_cast<int>(eval.programs.size()), measured);
}

TEST(GuidedEvaluation, EarlyStoppingSkipsProvablySlowCandidates) {
  // With k covering every program, each one is either measured or skipped —
  // and on this placement the prediction spread guarantees skips: once a
  // cheap candidate is measured, the expensive tail cannot catch up under
  // the observed overprediction bound.
  const auto eng = MakeEngine();
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const int k = 1000;  // >= the program count: the whole list is "top-k"
  const auto eval = eng.EvaluatePlacementGuided(m, axes, k);
  ASSERT_LT(static_cast<int>(eval.programs.size()), k);

  int measured = 0;
  for (const auto& p : eval.programs) {
    if (p.measured) ++measured;
  }
  EXPECT_GT(eval.guided_skipped, 0);
  EXPECT_EQ(measured + eval.guided_skipped,
            static_cast<int>(eval.programs.size()));

  // Safety: the incumbent only improves, so anything skipped had a
  // prediction strictly worse than the final best measurement — the skip
  // can only drop programs the measured winner already beats on prediction.
  const auto& best =
      eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
  for (const auto& p : eval.programs) {
    if (!p.measured) {
      EXPECT_GT(p.predicted_seconds, best.measured_seconds);
    }
  }

  // Determinism: the skip rule is a pure function of the (deterministic)
  // predictions and measurements.
  const auto again = eng.EvaluatePlacementGuided(m, axes, k);
  EXPECT_EQ(again.guided_skipped, eval.guided_skipped);
  for (std::size_t i = 0; i < eval.programs.size(); ++i) {
    EXPECT_EQ(again.programs[i].measured, eval.programs[i].measured) << i;
  }
}

TEST(GuidedEvaluation, FindsTheSameWinnerAsFullEvaluation) {
  // Table 5's conclusion: top-k accuracy is high enough that measuring only
  // the predicted top-10 recovers the true optimum.
  const auto eng = MakeEngine();
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto full = eng.EvaluatePlacement(m, axes);
  const auto guided = eng.EvaluatePlacementGuided(m, axes, 10);
  const auto& full_best =
      full.programs[static_cast<std::size_t>(full.BestMeasuredIndex())];
  const auto& guided_best =
      guided.programs[static_cast<std::size_t>(guided.BestMeasuredIndex())];
  EXPECT_NEAR(guided_best.measured_seconds, full_best.measured_seconds,
              full_best.measured_seconds * 0.02);
}

TEST(GuidedEvaluation, BestMeasuredIndexIgnoresUnmeasured) {
  const auto eng = MakeEngine();
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacementGuided(m, axes, 3);
  const int best = eval.BestMeasuredIndex();
  EXPECT_TRUE(eval.programs[static_cast<std::size_t>(best)].measured);
}

TEST(GuidedEvaluation, KZeroMeasuresOnlyBaseline) {
  const auto eng = MakeEngine();
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto eval = eng.EvaluatePlacementGuided(m, axes, 0);
  int measured = 0;
  for (const auto& p : eval.programs) {
    if (p.measured) ++measured;
  }
  EXPECT_EQ(measured, 1);
  EXPECT_EQ(eval.BestMeasuredIndex(), 0);
}

TEST(ExecutorTrace, TracesEveryStep) {
  const runtime::Executor exec(topology::MakeA100Cluster(2));
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto sh = core::SynthesisHierarchy::Build(
      m, axes, core::SynthesisHierarchyKind::kReductionAxes);
  // Hierarchy levels are [root 2 4]: local groups slice at level 1.
  const core::Program program = {
      core::Instruction{1, core::Form::InsideGroup(),
                        core::Collective::kReduceScatter},
      core::Instruction{1, core::Form::Parallel(0),
                        core::Collective::kAllReduce},
      core::Instruction{1, core::Form::InsideGroup(),
                        core::Collective::kAllGather}};
  const auto lowered = core::LowerProgram(sh, program);
  std::vector<runtime::StepTrace> trace;
  const double total =
      exec.MeasureProgram(lowered, 1e9, core::NcclAlgo::kRing, &trace);
  ASSERT_EQ(trace.size(), 3u);
  double sum = 0.0;
  for (const auto& t : trace) {
    EXPECT_GT(t.seconds, 0.0);
    EXPECT_GT(t.num_groups, 0);
    EXPECT_GT(t.flows_completed, 0);
    sum += t.seconds;
  }
  EXPECT_NEAR(sum, total, 1e-12);
  EXPECT_EQ(trace[0].op, core::Collective::kReduceScatter);
  EXPECT_EQ(trace[1].op, core::Collective::kAllReduce);
  // The cross-node AllReduce dominates.
  EXPECT_GT(trace[1].seconds, trace[0].seconds);
}

}  // namespace
}  // namespace p2::engine
