#include "core/placement.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/presets.h"

namespace p2::core {
namespace {

using topology::MakeRunningExampleHierarchy;
using topology::SystemHierarchy;

TEST(EnumeratePlacements, RunningExampleContainsFig2) {
  const auto h = MakeRunningExampleHierarchy();
  const std::vector<std::int64_t> axes = {4, 4};
  const auto ms = EnumeratePlacements(h, axes);
  ASSERT_FALSE(ms.empty());
  const ParallelismMatrix fig2b({{1, 2, 2, 1}, {1, 1, 1, 4}});
  const ParallelismMatrix fig2c({{1, 2, 1, 2}, {1, 1, 2, 2}});
  const ParallelismMatrix fig2d({{1, 1, 2, 2}, {1, 2, 1, 2}});
  auto contains = [&](const ParallelismMatrix& m) {
    return std::find(ms.begin(), ms.end(), m) != ms.end();
  };
  EXPECT_TRUE(contains(fig2b));
  EXPECT_TRUE(contains(fig2c));
  EXPECT_TRUE(contains(fig2d));
}

TEST(EnumeratePlacements, AllResultsValid) {
  const auto h = MakeRunningExampleHierarchy();
  const std::vector<std::int64_t> axes = {4, 4};
  for (const auto& m : EnumeratePlacements(h, axes)) {
    EXPECT_TRUE(m.IsValidFor(h, axes)) << m.ToString();
  }
}

TEST(EnumeratePlacements, NoDuplicates) {
  const auto h = MakeRunningExampleHierarchy();
  const std::vector<std::int64_t> axes = {4, 4};
  const auto ms = EnumeratePlacements(h, axes);
  std::set<std::string> keys;
  for (const auto& m : ms) keys.insert(m.ToString());
  EXPECT_EQ(keys.size(), ms.size());
}

TEST(EnumeratePlacements, PaperTwoNodeA100Example) {
  // 2 nodes x 16 A100 => hierarchy [2 16]; axes [8 4] has exactly the two
  // placements shown in Table 4 rows F1/F2.
  const std::vector<std::int64_t> cards = {2, 16};
  const auto h = SystemHierarchy::FromCardinalities(cards);
  const std::vector<std::int64_t> axes = {8, 4};
  const auto ms = EnumeratePlacements(h, axes);
  ASSERT_EQ(ms.size(), 2u);
  const ParallelismMatrix f1({{1, 8}, {2, 2}});
  const ParallelismMatrix f2({{2, 4}, {1, 4}});
  EXPECT_NE(std::find(ms.begin(), ms.end(), f1), ms.end());
  EXPECT_NE(std::find(ms.begin(), ms.end(), f2), ms.end());
}

TEST(EnumeratePlacements, SingleAxisIsUnique) {
  // One axis covering the whole system factorizes uniquely.
  const std::vector<std::int64_t> cards = {4, 16};
  const auto h = SystemHierarchy::FromCardinalities(cards);
  const std::vector<std::int64_t> axes = {64};
  const auto ms = EnumeratePlacements(h, axes);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0], ParallelismMatrix({{4, 16}}));
}

TEST(EnumeratePlacements, SizeMismatchYieldsNone) {
  const std::vector<std::int64_t> cards = {2, 16};
  const auto h = SystemHierarchy::FromCardinalities(cards);
  const std::vector<std::int64_t> axes = {8, 8};  // 64 != 32
  EXPECT_TRUE(EnumeratePlacements(h, axes).empty());
}

TEST(CountPlacements, MatchesEnumeration) {
  const auto h = MakeRunningExampleHierarchy();
  for (const std::vector<std::int64_t>& axes :
       {std::vector<std::int64_t>{4, 4}, {2, 8}, {16}, {2, 2, 4}}) {
    EXPECT_EQ(CountPlacements(h, axes),
              static_cast<std::int64_t>(EnumeratePlacements(h, axes).size()));
  }
}

TEST(PlacementLayout, AxisCoordinatesPartitionDevices) {
  const ParallelismMatrix fig2d({{1, 1, 2, 2}, {1, 2, 1, 2}});
  const PlacementLayout layout(fig2d);
  ASSERT_EQ(layout.num_devices(), 16);
  // Each (axis0, axis1) coordinate pair occurs exactly once.
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (std::int64_t d = 0; d < 16; ++d) {
    const auto a0 = layout.AxisCoordinate(d, 0);
    const auto a1 = layout.AxisCoordinate(d, 1);
    EXPECT_GE(a0, 0);
    EXPECT_LT(a0, 4);
    EXPECT_GE(a1, 0);
    EXPECT_LT(a1, 4);
    EXPECT_TRUE(seen.emplace(a0, a1).second);
  }
}

TEST(PlacementLayout, DigitsRoundTrip) {
  const ParallelismMatrix m({{1, 2, 2, 1}, {1, 1, 1, 4}});
  const PlacementLayout layout(m);
  for (std::int64_t d = 0; d < layout.num_devices(); ++d) {
    std::vector<std::vector<std::int64_t>> digits(
        2, std::vector<std::int64_t>(4));
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 4; ++j) digits[i][j] = layout.Digit(d, i, j);
    }
    EXPECT_EQ(layout.DeviceFromDigits(digits), d);
  }
}

TEST(PlacementLayout, Fig2bReductionGroupsAlongSharding) {
  // Fig 2b: each CPU owns one full replica; its 4 GPUs hold the 4 shards.
  // Reduction along parameter sharding (axis 1) groups the 4 GPUs of a CPU.
  const ParallelismMatrix fig2b({{1, 2, 2, 1}, {1, 1, 1, 4}});
  const PlacementLayout layout(fig2b);
  const std::vector<int> axes = {1};
  const auto groups = layout.ReductionGroups(axes);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<std::int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(groups[1], (std::vector<std::int64_t>{4, 5, 6, 7}));
  EXPECT_EQ(groups[2], (std::vector<std::int64_t>{8, 9, 10, 11}));
  EXPECT_EQ(groups[3], (std::vector<std::int64_t>{12, 13, 14, 15}));
}

TEST(PlacementLayout, Fig2bReductionGroupsAlongData) {
  // Reduction along data parallelism (axis 0) groups same-shard GPUs of the
  // 4 CPUs: {0,4,8,12}, {1,5,9,13}, ...
  const ParallelismMatrix fig2b({{1, 2, 2, 1}, {1, 1, 1, 4}});
  const PlacementLayout layout(fig2b);
  const std::vector<int> axes = {0};
  const auto groups = layout.ReductionGroups(axes);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<std::int64_t>{0, 4, 8, 12}));
  EXPECT_EQ(groups[1], (std::vector<std::int64_t>{1, 5, 9, 13}));
}

TEST(PlacementLayout, MultiAxisReduction) {
  // Reducing over both axes groups everything together.
  const ParallelismMatrix fig2b({{1, 2, 2, 1}, {1, 1, 1, 4}});
  const PlacementLayout layout(fig2b);
  const std::vector<int> axes = {0, 1};
  const auto groups = layout.ReductionGroups(axes);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 16u);
}

TEST(PlacementLayout, ThreeAxes) {
  const ParallelismMatrix m({{2, 1}, {1, 2}, {1, 8}});
  const PlacementLayout layout(m);
  EXPECT_EQ(layout.num_devices(), 32);
  const std::vector<int> axes = {0, 2};
  const auto groups = layout.ReductionGroups(axes);
  ASSERT_EQ(groups.size(), 2u);  // one group per axis-1 coordinate
  EXPECT_EQ(groups[0].size(), 16u);
}

TEST(PlacementLayout, RejectsBadAxis) {
  const PlacementLayout layout(ParallelismMatrix({{2, 2}}));
  const std::vector<int> axes = {1};
  EXPECT_THROW(layout.ReductionGroups(axes), std::out_of_range);
}

}  // namespace
}  // namespace p2::core
