#include "engine/baselines.h"

#include <gtest/gtest.h>

#include "core/lowering.h"

namespace p2::engine {
namespace {

using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

SynthesisHierarchy TwoLevelHierarchy() {
  // Reduction axis split 2 (nodes) x 4 (gpus).
  const ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  return SynthesisHierarchy::Build(m, axes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

SynthesisHierarchy FlatHierarchy() {
  // Reduction axis entirely inside one level: [root 1 8].
  const ParallelismMatrix m({{1, 8}, {2, 2}});
  const std::vector<int> axes = {0};
  return SynthesisHierarchy::Build(m, axes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

TEST(Baselines, DefaultAllReduceIsOneRootStep) {
  const auto p = DefaultAllReduceProgram();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].op, core::Collective::kAllReduce);
  EXPECT_EQ(p[0].slice_level, 0);
  const auto sh = TwoLevelHierarchy();
  std::string err;
  EXPECT_TRUE(
      core::CheckLoweredOnFullSystem(sh, core::LowerProgram(sh, p), &err))
      << err;
}

TEST(Baselines, LocalSliceLevelFindsStructure) {
  EXPECT_TRUE(LocalSliceLevel(TwoLevelHierarchy()).has_value());
  EXPECT_FALSE(LocalSliceLevel(FlatHierarchy()).has_value());
}

TEST(Baselines, ReduceAllReduceBroadcastValid) {
  const auto sh = TwoLevelHierarchy();
  const auto p = ReduceAllReduceBroadcast(sh);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->size(), 3u);
  EXPECT_EQ((*p)[0].op, core::Collective::kReduce);
  EXPECT_EQ((*p)[1].op, core::Collective::kAllReduce);
  EXPECT_EQ((*p)[2].op, core::Collective::kBroadcast);
  std::string err;
  EXPECT_TRUE(
      core::CheckLoweredOnFullSystem(sh, core::LowerProgram(sh, *p), &err))
      << err;
}

TEST(Baselines, BlueConnectValid) {
  const auto sh = TwoLevelHierarchy();
  const auto p = ReduceScatterAllReduceAllGather(sh);
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->size(), 3u);
  EXPECT_EQ((*p)[0].op, core::Collective::kReduceScatter);
  std::string err;
  EXPECT_TRUE(
      core::CheckLoweredOnFullSystem(sh, core::LowerProgram(sh, *p), &err))
      << err;
}

TEST(Baselines, FlatHierarchyHasNoHierarchicalBaselines) {
  const auto sh = FlatHierarchy();
  EXPECT_FALSE(ReduceAllReduceBroadcast(sh).has_value());
  EXPECT_FALSE(ReduceScatterAllReduceAllGather(sh).has_value());
}

TEST(Baselines, ThreeLevelHierarchyUsesDeepestSplit) {
  // Reduction axis split 2 x 2 x 2: the local slice is the deepest level
  // that still groups more than one device.
  const ParallelismMatrix m({{2, 2, 2}, {1, 1, 1}});
  const std::vector<int> axes = {0};
  const auto sh = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes);
  const auto slice = LocalSliceLevel(sh);
  ASSERT_TRUE(slice.has_value());
  const auto p = ReduceAllReduceBroadcast(sh);
  ASSERT_TRUE(p.has_value());
  std::string err;
  EXPECT_TRUE(
      core::CheckLoweredOnFullSystem(sh, core::LowerProgram(sh, *p), &err))
      << err;
}

}  // namespace
}  // namespace p2::engine
