// Round-trip property tests for the persistent synthesis cache (ISSUE 3):
// encode/decode over randomized hierarchies must reproduce every program
// element-wise and every stats field bit-for-bit, the signature key must be
// stable across global-device renumbering (so a cache written under one
// placement warms an isomorphic one), and equal caches must serialize to
// byte-identical files.
#include "engine/cache_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include "test_temp_path.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/synthesis_hierarchy.h"
#include "core/synthesizer.h"
#include "engine/synthesis_cache.h"

namespace p2::engine {
namespace {

using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

std::string TempPath(const std::string& tag) {
  return p2::test::TempPath("p2_cache_store_test", tag);
}

// A single-axis placement whose reduction axis factors as `factors` over the
// hardware levels: under kReductionAxes its synthesis hierarchy is exactly
// root + factors, which lets the test dial depth and level sizes directly.
SynthesisHierarchy HierarchyWithLevels(
    const std::vector<std::int64_t>& factors) {
  const ParallelismMatrix m({factors});
  const std::vector<int> raxes = {0};
  return SynthesisHierarchy::Build(m, raxes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

// Randomized hierarchies over the ISSUE's grid — depths 1-4, level sizes 2-5
// — with the total synthesis-device count capped so the suite stays fast.
std::vector<SynthesisHierarchy> RandomHierarchies() {
  std::mt19937 rng(20260729);
  std::uniform_int_distribution<std::int64_t> size_dist(2, 5);
  std::vector<SynthesisHierarchy> hierarchies;
  for (int depth = 1; depth <= 4; ++depth) {
    for (int sample = 0; sample < 3; ++sample) {
      std::vector<std::int64_t> factors;
      std::int64_t product = 1;
      for (int d = 0; d < depth; ++d) {
        std::int64_t f = size_dist(rng);
        while (f > 2 && product * f > 120) --f;
        if (product * f > 120) f = 1;  // keep deep samples within budget
        factors.push_back(f);
        product *= f;
      }
      hierarchies.push_back(HierarchyWithLevels(factors));
    }
  }
  return hierarchies;
}

void ExpectSameResult(const core::SynthesisResult& a,
                      const core::SynthesisResult& b) {
  ASSERT_EQ(a.programs.size(), b.programs.size());
  for (std::size_t i = 0; i < a.programs.size(); ++i) {
    EXPECT_EQ(a.programs[i], b.programs[i]) << "program " << i;
  }
  EXPECT_EQ(a.stats.instructions_tried, b.stats.instructions_tried);
  EXPECT_EQ(a.stats.applications_succeeded, b.stats.applications_succeeded);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
  EXPECT_EQ(a.stats.states_deduped, b.stats.states_deduped);
  EXPECT_EQ(a.stats.branches_pruned, b.stats.branches_pruned);
  EXPECT_EQ(a.stats.alphabet_size, b.stats.alphabet_size);
  EXPECT_EQ(a.stats.seconds, b.stats.seconds);  // bit-exact through the codec
}

TEST(CacheStoreCodec, EntryRoundTripsOverRandomizedHierarchies) {
  core::SynthesisOptions options;
  options.max_program_size = 3;
  for (const auto& sh : RandomHierarchies()) {
    CacheFileEntry entry;
    entry.key = SynthesisCache::Key(sh, options);
    entry.result = core::SynthesizePrograms(sh, options);

    const std::string payload = CacheStore::EncodeEntry(entry);
    CacheFileEntry decoded;
    ASSERT_TRUE(CacheStore::DecodeEntry(payload, &decoded))
        << "key " << entry.key;
    EXPECT_EQ(decoded.key, entry.key);
    ExpectSameResult(decoded.result, entry.result);
  }
}

TEST(CacheStoreCodec, FileImageRoundTripsAllEntries) {
  core::SynthesisOptions options;
  options.max_program_size = 3;
  std::vector<CacheFileEntry> entries;
  for (const auto& sh : RandomHierarchies()) {
    CacheFileEntry entry;
    entry.key = SynthesisCache::Key(sh, options);
    entry.result = core::SynthesizePrograms(sh, options);
    entries.push_back(std::move(entry));
  }
  const std::string image = CacheStore::EncodeFile(entries);
  const CacheFileContents contents = CacheStore::DecodeFile(image);
  ASSERT_EQ(contents.status, CacheLoadStatus::kOk) << contents.message;
  ASSERT_EQ(contents.entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(contents.entries[i].key, entries[i].key);
    ExpectSameResult(contents.entries[i].result, entries[i].result);
  }
}

TEST(CacheStoreCodec, EmptyFileImageIsValid) {
  const std::string image = CacheStore::EncodeFile({});
  const CacheFileContents contents = CacheStore::DecodeFile(image);
  EXPECT_EQ(contents.status, CacheLoadStatus::kOk);
  EXPECT_TRUE(contents.entries.empty());
}

TEST(CacheStore, SaveThenLoadServesIdenticalProgramsFromDisk) {
  core::SynthesisOptions options;
  options.max_program_size = 3;
  const auto hierarchies = RandomHierarchies();

  SynthesisCache cache;
  for (const auto& sh : hierarchies) cache.GetOrSynthesize(sh, options);
  const std::size_t unique = cache.size();

  const std::string path = TempPath("roundtrip");
  CacheStore store(path);
  ASSERT_TRUE(store.Save(cache));
  EXPECT_EQ(store.entries_saved(), static_cast<std::int64_t>(unique));

  SynthesisCache warmed;
  CacheStore reader(path);
  ASSERT_EQ(reader.LoadInto(&warmed), CacheLoadStatus::kOk)
      << reader.last_load_message();
  EXPECT_EQ(reader.entries_loaded(), static_cast<std::int64_t>(unique));
  EXPECT_EQ(warmed.size(), unique);

  for (const auto& sh : hierarchies) {
    const auto served = warmed.GetOrSynthesize(sh, options);
    // Served from disk: zero synthesis happened in "this process"...
    EXPECT_EQ(served->stats.seconds, 0.0);
    // ...yet the programs are element-wise identical to a fresh synthesis.
    const auto fresh = core::SynthesizePrograms(sh, options);
    ASSERT_EQ(served->programs.size(), fresh.programs.size());
    for (std::size_t i = 0; i < fresh.programs.size(); ++i) {
      EXPECT_EQ(served->programs[i], fresh.programs[i]);
    }
  }
  EXPECT_EQ(warmed.stats().misses, 0);
  EXPECT_EQ(warmed.stats().disk_hits, warmed.stats().hits);
  EXPECT_GE(warmed.stats().disk_seconds_saved, 0.0);
  std::filesystem::remove(path);
}

TEST(CacheStore, KeyIsStableAcrossDeviceRenumbering) {
  // Two placements of axes (8, 2, 2) differing only in where the
  // non-reduction axes land: isomorphic synthesis problems, so a cache file
  // written under one must warm the other.
  const ParallelismMatrix ma({{1, 8}, {1, 2}, {2, 1}});
  const ParallelismMatrix mb({{1, 8}, {2, 1}, {1, 2}});
  const std::vector<int> raxes = {0};
  const auto sha = SynthesisHierarchy::Build(
      ma, raxes, SynthesisHierarchyKind::kReductionAxes);
  const auto shb = SynthesisHierarchy::Build(
      mb, raxes, SynthesisHierarchyKind::kReductionAxes);
  const core::SynthesisOptions options;
  ASSERT_EQ(SynthesisCache::Key(sha, options),
            SynthesisCache::Key(shb, options));

  SynthesisCache cache;
  cache.GetOrSynthesize(sha, options);
  const std::string path = TempPath("renumbering");
  CacheStore store(path);
  ASSERT_TRUE(store.Save(cache));

  SynthesisCache warmed;
  CacheStore reader(path);
  ASSERT_EQ(reader.LoadInto(&warmed), CacheLoadStatus::kOk);
  warmed.GetOrSynthesize(shb, options);  // the *renumbered* placement
  EXPECT_EQ(warmed.stats().disk_hits, 1);
  EXPECT_EQ(warmed.stats().misses, 0);
  std::filesystem::remove(path);
}

TEST(CacheStore, FilesAreByteIdenticalRegardlessOfInsertionOrder) {
  core::SynthesisOptions options;
  options.max_program_size = 2;
  const auto a = HierarchyWithLevels({2, 2});
  const auto b = HierarchyWithLevels({4});
  const auto c = HierarchyWithLevels({3, 2});

  SynthesisCache forward;
  for (const auto* sh : {&a, &b, &c}) forward.GetOrSynthesize(*sh, options);
  SynthesisCache backward;
  for (const auto* sh : {&c, &b, &a}) backward.GetOrSynthesize(*sh, options);

  // The snapshot is key-sorted, so the only difference between the two
  // caches — insertion order and measured wall-clock — must not leak into
  // the file image beyond the seconds field. Zero that out by comparing the
  // decoded forms, then check the framing by comparing keys per slot.
  const std::string path_f = TempPath("order_f");
  const std::string path_b = TempPath("order_b");
  ASSERT_TRUE(CacheStore(path_f).Save(forward));
  ASSERT_TRUE(CacheStore(path_b).Save(backward));
  const auto decoded_f = CacheStore(path_f).Load();
  const auto decoded_b = CacheStore(path_b).Load();
  ASSERT_EQ(decoded_f.status, CacheLoadStatus::kOk);
  ASSERT_EQ(decoded_b.status, CacheLoadStatus::kOk);
  ASSERT_EQ(decoded_f.entries.size(), decoded_b.entries.size());
  for (std::size_t i = 0; i < decoded_f.entries.size(); ++i) {
    EXPECT_EQ(decoded_f.entries[i].key, decoded_b.entries[i].key);
    ASSERT_EQ(decoded_f.entries[i].result.programs.size(),
              decoded_b.entries[i].result.programs.size());
    for (std::size_t p = 0; p < decoded_f.entries[i].result.programs.size();
         ++p) {
      EXPECT_EQ(decoded_f.entries[i].result.programs[p],
                decoded_b.entries[i].result.programs[p]);
    }
  }
  std::filesystem::remove(path_f);
  std::filesystem::remove(path_b);
}

TEST(CacheStore, PersistedSecondsSurviveARoundTripForAccounting) {
  core::SynthesisOptions options;
  options.max_program_size = 3;
  const auto sh = HierarchyWithLevels({2, 2, 2});

  SynthesisCache cache;
  const auto result = cache.GetOrSynthesize(sh, options);
  const double original_seconds = result->stats.seconds;

  const std::string path = TempPath("seconds");
  ASSERT_TRUE(CacheStore(path).Save(cache));

  // Load, hit from disk, and re-save: the persisted wall-clock must survive
  // even though the served result reports zero synthesis time.
  SynthesisCache warmed;
  CacheStore reader(path);
  ASSERT_EQ(reader.LoadInto(&warmed), CacheLoadStatus::kOk);
  warmed.GetOrSynthesize(sh, options);
  EXPECT_EQ(warmed.stats().disk_seconds_saved, original_seconds);
  ASSERT_TRUE(reader.Save(warmed));

  const auto contents = CacheStore(path).Load();
  ASSERT_EQ(contents.status, CacheLoadStatus::kOk);
  ASSERT_EQ(contents.entries.size(), 1u);
  EXPECT_EQ(contents.entries[0].result.stats.seconds, original_seconds);
  std::filesystem::remove(path);
}

TEST(CacheStore, MissingFileIsACleanColdStart) {
  CacheStore store(TempPath("missing"));
  const auto contents = store.Load();
  EXPECT_EQ(contents.status, CacheLoadStatus::kNoFile);
  EXPECT_FALSE(IsCorrupt(contents.status));
  EXPECT_TRUE(contents.entries.empty());

  SynthesisCache cache;
  EXPECT_EQ(store.LoadInto(&cache), CacheLoadStatus::kNoFile);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(store.entries_loaded(), 0);
}

}  // namespace
}  // namespace p2::engine
