#include "core/parallelism_matrix.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::core {
namespace {

using topology::MakeRunningExampleHierarchy;

// The three placements of Figure 2 (data parallelism 4 x 4 parameter shards
// over [(rack,1),(server,2),(cpu,2),(gpu,4)]).
ParallelismMatrix Fig2b() {
  return ParallelismMatrix({{1, 2, 2, 1}, {1, 1, 1, 4}});
}
ParallelismMatrix Fig2c() {
  return ParallelismMatrix({{1, 2, 1, 2}, {1, 1, 2, 2}});
}
ParallelismMatrix Fig2d() {
  return ParallelismMatrix({{1, 1, 2, 2}, {1, 2, 1, 2}});
}

TEST(ParallelismMatrix, Shape) {
  const auto m = Fig2b();
  EXPECT_EQ(m.num_axes(), 2);
  EXPECT_EQ(m.num_levels(), 4);
  EXPECT_EQ(m.factor(0, 1), 2);
  EXPECT_EQ(m.factor(1, 3), 4);
}

TEST(ParallelismMatrix, RowAndColumnProducts) {
  const auto m = Fig2c();
  EXPECT_EQ(m.RowProduct(0), 4);
  EXPECT_EQ(m.RowProduct(1), 4);
  EXPECT_EQ(m.ColumnProduct(0), 1);
  EXPECT_EQ(m.ColumnProduct(1), 2);
  EXPECT_EQ(m.ColumnProduct(2), 2);
  EXPECT_EQ(m.ColumnProduct(3), 4);
}

TEST(ParallelismMatrix, AxisSizesAndCardinalities) {
  const auto m = Fig2d();
  EXPECT_EQ(m.AxisSizes(), (std::vector<std::int64_t>{4, 4}));
  EXPECT_EQ(m.LevelCardinalities(), (std::vector<std::int64_t>{1, 2, 2, 4}));
}

TEST(ParallelismMatrix, IsValidForRunningExample) {
  const auto h = MakeRunningExampleHierarchy();
  const std::vector<std::int64_t> axes = {4, 4};
  EXPECT_TRUE(Fig2b().IsValidFor(h, axes));
  EXPECT_TRUE(Fig2c().IsValidFor(h, axes));
  EXPECT_TRUE(Fig2d().IsValidFor(h, axes));
}

TEST(ParallelismMatrix, InvalidWhenProductsMismatch) {
  const auto h = MakeRunningExampleHierarchy();
  const std::vector<std::int64_t> axes = {4, 4};
  // Column product of level 1 is 4 != 2.
  const ParallelismMatrix bad({{1, 4, 1, 1}, {1, 1, 2, 2}});
  EXPECT_FALSE(bad.IsValidFor(h, axes));
  // Wrong axis sizes.
  const std::vector<std::int64_t> other_axes = {8, 2};
  EXPECT_FALSE(Fig2b().IsValidFor(h, other_axes));
}

TEST(ParallelismMatrix, NumDevices) {
  EXPECT_EQ(Fig2b().num_devices(), 16);
}

TEST(ParallelismMatrix, ToString) {
  const ParallelismMatrix m({{1, 2}, {4, 8}});
  EXPECT_EQ(m.ToString(), "[[1 2] [4 8]]");
}

TEST(ParallelismMatrix, RejectsBadInput) {
  EXPECT_THROW(
      ParallelismMatrix(std::vector<std::vector<std::int64_t>>{}),
      std::invalid_argument);
  EXPECT_THROW(ParallelismMatrix({{1, 2}, {1}}), std::invalid_argument);
  EXPECT_THROW(ParallelismMatrix({{1, 0}}), std::invalid_argument);
}

TEST(ParallelismMatrix, Equality) {
  EXPECT_EQ(Fig2b(), Fig2b());
  EXPECT_NE(Fig2b(), Fig2c());
}

}  // namespace
}  // namespace p2::core
