// Integration tests that codify the paper's headline results as regression
// checks (the acceptance criteria of DESIGN.md §8). These are the properties
// the reproduction must preserve regardless of cost-model tuning.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/experiment_grid.h"
#include "engine/report.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

EngineOptions Opts(core::NcclAlgo algo = core::NcclAlgo::kRing) {
  EngineOptions o;
  o.algo = algo;
  return o;
}

// Result 1: the performance of AllReduce differs by orders of magnitude
// across parallelism matrices (paper: up to 448x).
TEST(PaperResults, Result1PlacementImpact) {
  const Engine eng(topology::MakeA100Cluster(4), Opts());
  const std::vector<std::int64_t> axes = {4, 16};
  double lo = 1e30, hi = 0.0;
  for (const auto& m : eng.SynthesizePlacements(axes)) {
    const std::vector<int> raxes = {0};
    const double t =
        eng.EvaluatePlacement(m, raxes).DefaultAllReduce().measured_seconds;
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(hi / lo, 100.0);
  EXPECT_LT(hi / lo, 5000.0);  // and not absurdly beyond the paper's regime
}

// Result 3: if the reduction axis fits within one node, the single
// AllReduce is the most performant reduction.
TEST(PaperResults, Result3LocalAllReduceOptimal) {
  const Engine eng(topology::MakeA100Cluster(2), Opts());
  // F1: [[1 8] [2 2]] — reduction axis 0 entirely on the GPU level.
  const core::ParallelismMatrix f1({{1, 8}, {2, 2}});
  const std::vector<int> raxes = {0};
  const auto eval = eng.EvaluatePlacement(f1, raxes);
  EXPECT_EQ(eval.NumOutperforming(), 0);
}

// Result 4: synthesized programs mitigate (but do not erase) the impact of
// a bad placement.
TEST(PaperResults, Result4SynthesisMitigatesBadPlacements) {
  const Engine eng(topology::MakeA100Cluster(4), Opts(core::NcclAlgo::kTree));
  const core::ParallelismMatrix g1({{1, 4}, {4, 4}});
  const core::ParallelismMatrix g2({{4, 1}, {1, 16}});
  const std::vector<int> raxes = {0};
  const auto e1 = eng.EvaluatePlacement(g1, raxes);
  const auto e2 = eng.EvaluatePlacement(g2, raxes);
  const double ar_gap = e2.DefaultAllReduce().measured_seconds /
                        e1.DefaultAllReduce().measured_seconds;
  const double best1 =
      e1.programs[static_cast<std::size_t>(e1.BestMeasuredIndex())]
          .measured_seconds;
  const double best2 =
      e2.programs[static_cast<std::size_t>(e2.BestMeasuredIndex())]
          .measured_seconds;
  const double best_gap = best2 / best1;
  EXPECT_LT(best_gap, ar_gap);  // synthesis narrowed the gap
  EXPECT_GT(best_gap, 10.0);    // ... but placement still dominates
}

// Result 5: for cross-node reductions, synthesized topology-aware programs
// outperform AllReduce, with speedups in the paper's band.
TEST(PaperResults, Result5CrossNodeSpeedups) {
  struct Case {
    topology::Cluster cluster;
    core::ParallelismMatrix matrix;
    std::vector<int> raxes;
  };
  const std::vector<Case> cases = {
      {topology::MakeA100Cluster(2), core::ParallelismMatrix({{2, 4}, {1, 4}}),
       {0}},
      {topology::MakeA100Cluster(4), core::ParallelismMatrix({{2, 2}, {2, 8}}),
       {0}},
      {topology::MakeV100Cluster(4), core::ParallelismMatrix({{2, 4}, {2, 2}}),
       {1}},
  };
  for (const auto& c : cases) {
    const Engine eng(c.cluster, Opts());
    const auto eval = eng.EvaluatePlacement(c.matrix, c.raxes);
    EXPECT_GT(eval.NumOutperforming(), 0) << c.matrix.ToString();
    const double speedup =
        eval.DefaultAllReduce().measured_seconds /
        eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())]
            .measured_seconds;
    EXPECT_GT(speedup, 1.1) << c.matrix.ToString();
    EXPECT_LT(speedup, 3.0) << c.matrix.ToString();
  }
}

// Table 5's shape: top-k accuracy is monotone in k and >= 90% by top-10.
TEST(PaperResults, Table5AccuracyShape) {
  AccuracyCounter counter;
  for (const auto algo : {core::NcclAlgo::kRing, core::NcclAlgo::kTree}) {
    for (const auto& cluster :
         {topology::MakeA100Cluster(2), topology::MakeV100Cluster(2)}) {
      const Engine eng(cluster, Opts(algo));
      for (const auto& cfg : FullGrid(cluster)) {
        counter.AddExperiment(eng.RunExperiment(cfg.axes, cfg.reduction_axes));
      }
    }
  }
  ASSERT_GT(counter.total(), 20);
  for (std::size_t i = 1; i < counter.ks().size(); ++i) {
    EXPECT_GE(counter.Rate(i), counter.Rate(i - 1));
  }
  // counter.ks() = {1,2,3,5,6,10}; index 5 is top-10.
  EXPECT_GE(counter.Rate(5), 0.9);
  EXPECT_GE(counter.Rate(0), 0.4);  // top-1 at least the paper's ballpark
}

// Result 2: synthesis stays fast — the full grid of a 2-node system
// synthesizes in well under the paper's 2-second ceiling per config.
TEST(PaperResults, Result2SynthesisTime) {
  const Engine eng(topology::MakeA100Cluster(2), Opts());
  for (const auto& cfg : FullGrid(eng.cluster())) {
    const auto result = eng.RunExperiment(cfg.axes, cfg.reduction_axes);
    EXPECT_LT(result.TotalSynthesisSeconds(), 2.0) << cfg.ToString();
    EXPECT_GT(result.TotalPrograms(), 0) << cfg.ToString();
  }
}

// Fig. 10: when a hierarchical program wins, it is one of the two canonical
// local-first shapes (or a close variant starting local and ending local).
TEST(PaperResults, Fig10WinnersAreLocalFirst) {
  const Engine eng(topology::MakeA100Cluster(2), Opts());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> raxes = {0};
  const auto eval = eng.EvaluatePlacement(m, raxes);
  const auto& best =
      eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
  ASSERT_GT(best.num_steps, 1);
  // First step must be a local (intra-node) collective: all of its lowered
  // groups stay within one node.
  const auto sh = core::SynthesisHierarchy::Build(
      m, raxes, core::SynthesisHierarchyKind::kReductionAxes);
  const auto lowered = core::LowerProgram(sh, best.program);
  for (const auto& group : lowered.steps.front().groups) {
    const int node = eng.cluster().NodeOf(static_cast<int>(group.front()));
    for (std::int64_t d : group) {
      EXPECT_EQ(eng.cluster().NodeOf(static_cast<int>(d)), node);
    }
  }
}

}  // namespace
}  // namespace p2::engine
