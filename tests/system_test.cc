#include "topology/system.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::topology {
namespace {

SystemHierarchy RunningExample() { return MakeRunningExampleHierarchy(); }

TEST(SystemHierarchy, RunningExampleShape) {
  const auto h = RunningExample();
  EXPECT_EQ(h.depth(), 4);
  EXPECT_EQ(h.num_devices(), 16);
  EXPECT_EQ(h.cardinality(0), 1);
  EXPECT_EQ(h.cardinality(1), 2);
  EXPECT_EQ(h.cardinality(2), 2);
  EXPECT_EQ(h.cardinality(3), 4);
  EXPECT_EQ(h.name(3), "gpu");
}

TEST(SystemHierarchy, ToString) {
  const auto h = RunningExample();
  EXPECT_EQ(h.ToShortString(), "[1 2 2 4]");
  EXPECT_EQ(h.ToString(), "[(rack, 1), (server, 2), (cpu, 2), (gpu, 4)]");
}

TEST(SystemHierarchy, SubtreeSizes) {
  const auto h = RunningExample();
  EXPECT_EQ(h.subtree_size(0), 16);  // a rack holds all 16 GPUs
  EXPECT_EQ(h.subtree_size(1), 8);   // a server holds 8
  EXPECT_EQ(h.subtree_size(2), 4);   // a cpu holds 4
  EXPECT_EQ(h.subtree_size(3), 1);
}

TEST(SystemHierarchy, CoordinatesRoundTrip) {
  const auto h = RunningExample();
  for (std::int64_t d = 0; d < h.num_devices(); ++d) {
    const auto coords = h.coordinates(d);
    EXPECT_EQ(h.device_of(coords), d);
  }
}

TEST(SystemHierarchy, CoordinatesAreHierarchical) {
  const auto h = RunningExample();
  // Device 5 = server 0, cpu 1, gpu 1 (A=cpu0 gpus 0-3, B=cpu1 gpus 4-7, ...).
  const auto coords = h.coordinates(5);
  EXPECT_EQ(coords, (std::vector<std::int64_t>{0, 0, 1, 1}));
}

TEST(SystemHierarchy, FromCardinalities) {
  const std::vector<std::int64_t> cards = {2, 8};
  const auto h = SystemHierarchy::FromCardinalities(cards);
  EXPECT_EQ(h.num_devices(), 16);
  EXPECT_EQ(h.name(0), "L0");
}

TEST(SystemHierarchy, RejectsBadInput) {
  EXPECT_THROW(SystemHierarchy(std::vector<Level>{}), std::invalid_argument);
  EXPECT_THROW(SystemHierarchy({Level{"x", 0}}), std::invalid_argument);
}

}  // namespace
}  // namespace p2::topology
