#include "runtime/executor.h"

#include <gtest/gtest.h>

#include "core/synthesizer.h"
#include "engine/baselines.h"
#include "topology/presets.h"

namespace p2::runtime {
namespace {

using core::NcclAlgo;
using core::ParallelismMatrix;
using core::SynthesisHierarchy;
using core::SynthesisHierarchyKind;

core::LoweredProgram LowerOn(const ParallelismMatrix& m,
                             const std::vector<int>& axes,
                             const core::Program& program) {
  const auto sh = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes);
  return core::LowerProgram(sh, program);
}

TEST(Executor, IntraNodeAllReduceIsFast) {
  const Executor exec(topology::MakeA100Cluster(4));
  // [[1 4] [4 4]] reduce axis 0: groups of 4 inside nodes.
  const auto lowered =
      LowerOn(ParallelismMatrix({{1, 4}, {4, 4}}), {0},
              engine::DefaultAllReduceProgram());
  const double t = exec.MeasureProgram(lowered, 8e9, NcclAlgo::kRing);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 0.2);
}

TEST(Executor, CrossNodeAllReduceIsOrdersOfMagnitudeSlower) {
  const Executor exec(topology::MakeA100Cluster(4));
  const auto local = LowerOn(ParallelismMatrix({{1, 4}, {4, 4}}), {0},
                             engine::DefaultAllReduceProgram());
  const auto cross = LowerOn(ParallelismMatrix({{4, 1}, {1, 16}}), {0},
                             engine::DefaultAllReduceProgram());
  const double t_local = exec.MeasureProgram(local, 8e9, NcclAlgo::kRing);
  const double t_cross = exec.MeasureProgram(cross, 8e9, NcclAlgo::kRing);
  // The paper's Result 1: up to 448x. Ours is the same order of magnitude.
  EXPECT_GT(t_cross / t_local, 100.0);
}

TEST(Executor, TimeScalesLinearlyWithPayload) {
  const Executor exec(topology::MakeA100Cluster(2));
  const auto lowered = LowerOn(ParallelismMatrix({{2, 1}, {1, 16}}), {0},
                               engine::DefaultAllReduceProgram());
  const double t1 = exec.MeasureProgram(lowered, 1e9, NcclAlgo::kRing);
  const double t4 = exec.MeasureProgram(lowered, 4e9, NcclAlgo::kRing);
  EXPECT_NEAR(t4 / t1, 4.0, 0.1);
}

TEST(Executor, TreeSlowerThanRingForFullyCrossNodeGroups) {
  // Paper Table 3, B3: fully cross-node reduction is faster with Ring.
  const Executor exec(topology::MakeA100Cluster(4));
  const auto lowered = LowerOn(ParallelismMatrix({{4, 1}, {1, 16}}), {0},
                               engine::DefaultAllReduceProgram());
  const double ring = exec.MeasureProgram(lowered, 8e9, NcclAlgo::kRing);
  const double tree = exec.MeasureProgram(lowered, 8e9, NcclAlgo::kTree);
  EXPECT_GT(tree, ring * 1.2);
}

TEST(Executor, StepsAreSequential) {
  const Executor exec(topology::MakeA100Cluster(2));
  const ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> axes = {0};
  const auto sh = SynthesisHierarchy::Build(
      m, axes, SynthesisHierarchyKind::kReductionAxes);
  const auto rab = engine::ReduceAllReduceBroadcast(sh);
  ASSERT_TRUE(rab.has_value());
  const auto lowered = core::LowerProgram(sh, *rab);
  double sum = 0.0;
  for (const auto& step : lowered.steps) {
    sum += exec.MeasureStep(step, 8e9, NcclAlgo::kRing);
  }
  EXPECT_NEAR(exec.MeasureProgram(lowered, 8e9, NcclAlgo::kRing), sum, 1e-9);
}

TEST(Executor, DeterministicMeasurements) {
  const Executor exec(topology::MakeV100Cluster(2));
  const auto lowered = LowerOn(ParallelismMatrix({{2, 4}, {1, 2}}), {0},
                               engine::DefaultAllReduceProgram());
  EXPECT_DOUBLE_EQ(exec.MeasureProgram(lowered, 8e9, NcclAlgo::kRing),
                   exec.MeasureProgram(lowered, 8e9, NcclAlgo::kRing));
}

}  // namespace
}  // namespace p2::runtime
