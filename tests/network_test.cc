#include "topology/network.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/presets.h"

namespace p2::topology {
namespace {

TEST(Network, A100VertexAndLinkStructure) {
  const auto net = Network::Build(MakeA100Cluster(2));
  // 1 DC + per node: 16 GPUs + NIC + NVSwitch.
  EXPECT_EQ(net.num_vertices(), 1 + 2 * 18);
  EXPECT_EQ(net.num_devices(), 32);
  // Per node: 16 gpu<->sw duplex + sw<->nic + nic<->dc = 18 duplex pairs.
  EXPECT_EQ(net.links().size(), 2u * 2u * 18u);
}

TEST(Network, V100VertexAndLinkStructure) {
  const auto net = Network::Build(MakeV100Cluster(2));
  // 1 DC + per node: 8 GPUs + NIC + 2 PCIe switches.
  EXPECT_EQ(net.num_vertices(), 1 + 2 * 11);
  // Per node duplex pairs: 8 nvlink + 8 gpu<->pcie + 2 pcie<->nic + 1 nic<->dc.
  EXPECT_EQ(net.links().size(), 2u * 2u * 19u);
}

TEST(Network, IntraNodeRouteUsesNvSwitch) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  const auto& path = net.PathLinks(0, 5);
  ASSERT_EQ(path.size(), 2u);  // gpu -> switch -> gpu
  for (int l : path) {
    EXPECT_DOUBLE_EQ(net.links()[static_cast<std::size_t>(l)].bandwidth,
                     c.node.local_bandwidth * 1e9);
  }
}

TEST(Network, CrossNodeRouteCrossesNicAndDcn) {
  const auto c = MakeA100Cluster(2);
  const auto net = Network::Build(c);
  const auto& path = net.PathLinks(3, 20);
  // gpu -> sw -> nic -> dc -> nic -> sw -> gpu.
  ASSERT_EQ(path.size(), 6u);
  int nic_speed_links = 0;
  for (int l : path) {
    if (net.links()[static_cast<std::size_t>(l)].bandwidth ==
        c.node.nic_bandwidth * 1e9) {
      ++nic_speed_links;
    }
  }
  EXPECT_EQ(nic_speed_links, 4);  // sw->nic, nic->dc, dc->nic, nic->sw
}

TEST(Network, V100AdjacentGpusUseNvLinkDirectly) {
  const auto c = MakeV100Cluster(1);
  const auto net = Network::Build(c);
  EXPECT_EQ(net.PathLinks(0, 1).size(), 1u);
  EXPECT_EQ(net.PathLinks(7, 0).size(), 1u);  // ring wrap-around
  const int l = net.PathLinks(0, 1)[0];
  EXPECT_DOUBLE_EQ(net.links()[static_cast<std::size_t>(l)].bandwidth,
                   c.node.local_bandwidth * 1e9);
}

TEST(Network, V100NonAdjacentGpusFallBackToPcie) {
  const auto c = MakeV100Cluster(1);
  const auto net = Network::Build(c);
  // GPU 0 -> GPU 2: NVLink would transit GPU 1, which is forbidden.
  const auto& path = net.PathLinks(0, 2);
  ASSERT_EQ(path.size(), 2u);  // gpu -> pcie switch -> gpu
  for (int l : path) {
    EXPECT_DOUBLE_EQ(net.links()[static_cast<std::size_t>(l)].bandwidth,
                     c.node.pcie_bandwidth * 1e9);
  }
}

TEST(Network, V100CrossDomainGoesThroughSharedNic) {
  const auto c = MakeV100Cluster(1);
  const auto net = Network::Build(c);
  // GPU 1 (domain 0) -> GPU 5 (domain 1), non-adjacent on the ring.
  const auto& path = net.PathLinks(1, 5);
  ASSERT_EQ(path.size(), 4u);  // gpu -> pcie0 -> nic -> pcie1 -> gpu
  int nic_speed_links = 0;
  for (int l : path) {
    if (net.links()[static_cast<std::size_t>(l)].bandwidth ==
        c.node.nic_bandwidth * 1e9) {
      ++nic_speed_links;
    }
  }
  EXPECT_EQ(nic_speed_links, 2);
}

TEST(Network, NoTransitThroughGpus) {
  const auto c = MakeV100Cluster(2);
  const auto net = Network::Build(c);
  std::set<int> gpu_vertices;
  for (int d = 0; d < net.num_devices(); ++d) {
    gpu_vertices.insert(net.DeviceVertex(d));
  }
  for (int s = 0; s < net.num_devices(); ++s) {
    for (int t = 0; t < net.num_devices(); ++t) {
      if (s == t) continue;
      const auto& path = net.PathLinks(s, t);
      ASSERT_FALSE(path.empty());
      // Interior vertices must not be GPUs.
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const int v = net.links()[static_cast<std::size_t>(path[i])].dst;
        EXPECT_FALSE(gpu_vertices.count(v) > 0)
            << s << "->" << t << " transits GPU vertex " << v;
      }
      // Path is connected and ends at the right endpoints.
      EXPECT_EQ(net.links()[static_cast<std::size_t>(path.front())].src,
                net.DeviceVertex(s));
      EXPECT_EQ(net.links()[static_cast<std::size_t>(path.back())].dst,
                net.DeviceVertex(t));
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_EQ(net.links()[static_cast<std::size_t>(path[i])].dst,
                  net.links()[static_cast<std::size_t>(path[i + 1])].src);
      }
    }
  }
}

TEST(Network, MeasuredFidelityDegradesNics) {
  const auto c = MakeA100Cluster(2);
  const auto nominal = Network::Build(c, NetworkFidelity::kNominal);
  const auto measured = Network::Build(c, NetworkFidelity::kMeasured);
  ASSERT_EQ(nominal.links().size(), measured.links().size());
  bool any_congested = false;
  bool any_slower = false;
  for (std::size_t l = 0; l < nominal.links().size(); ++l) {
    EXPECT_DOUBLE_EQ(nominal.links()[l].congestion, 0.0);
    EXPECT_LE(measured.links()[l].bandwidth, nominal.links()[l].bandwidth);
    if (measured.links()[l].congestion > 0) any_congested = true;
    if (measured.links()[l].bandwidth < nominal.links()[l].bandwidth) {
      any_slower = true;
    }
  }
  EXPECT_TRUE(any_congested);
  EXPECT_TRUE(any_slower);
}

TEST(Network, MeasuredFidelityIsDeterministic) {
  const auto c = MakeV100Cluster(4);
  const auto a = Network::Build(c, NetworkFidelity::kMeasured);
  const auto b = Network::Build(c, NetworkFidelity::kMeasured);
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t l = 0; l < a.links().size(); ++l) {
    EXPECT_DOUBLE_EQ(a.links()[l].bandwidth, b.links()[l].bandwidth);
  }
}

TEST(Network, PathLinksRejectsSelf) {
  const auto net = Network::Build(MakeA100Cluster(2));
  EXPECT_THROW(net.PathLinks(0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace p2::topology
