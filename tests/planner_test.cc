#include "engine/planner.h"

#include <gtest/gtest.h>

#include "topology/presets.h"

namespace p2::engine {
namespace {

Engine MakeEngine() {
  EngineOptions opts;
  opts.payload_bytes = 1e9;
  return Engine(topology::MakeA100Cluster(2), opts);
}

TEST(Planner, SingleDemandMatchesDirectEvaluation) {
  const auto eng = MakeEngine();
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<ReductionDemand> demands = {
      ReductionDemand{{0}, 1e9, 1.0}};
  const auto plans = PlanPlacements(eng, axes, demands);
  ASSERT_EQ(plans.size(), 2u);
  // Best plan's time equals the best measured program of that placement.
  const auto eval = eng.EvaluatePlacement(plans[0].matrix, demands[0].reduction_axes);
  const auto& best =
      eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
  EXPECT_NEAR(plans[0].total_seconds_per_step, best.measured_seconds, 1e-9);
}

TEST(Planner, PlansAreSorted) {
  const auto eng = MakeEngine();
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<ReductionDemand> demands = {
      ReductionDemand{{0}, 1e9, 1.0}, ReductionDemand{{1}, 4e8, 8.0}};
  const auto plans = PlanPlacements(eng, axes, demands);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].total_seconds_per_step,
              plans[i].total_seconds_per_step);
  }
}

TEST(Planner, TotalsAreWeightedSums) {
  const auto eng = MakeEngine();
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<ReductionDemand> demands = {
      ReductionDemand{{0}, 1e9, 2.0}, ReductionDemand{{1}, 5e8, 3.0}};
  const auto plans = PlanPlacements(eng, axes, demands);
  for (const auto& plan : plans) {
    ASSERT_EQ(plan.demands.size(), 2u);
    double sum = 0.0;
    for (const auto& d : plan.demands) sum += d.seconds_per_step;
    EXPECT_NEAR(plan.total_seconds_per_step, sum, 1e-12);
  }
}

TEST(Planner, MultiAxisDemandsChangeTheWinner) {
  // The paper's B1-vs-B3 story: reducing only axis 0 prefers the placement
  // that keeps axis 0 local; weighting axis 1 heavily flips the choice.
  const auto eng = MakeEngine();
  const std::vector<std::int64_t> axes = {8, 4};

  const std::vector<ReductionDemand> axis0_only = {
      ReductionDemand{{0}, 1e9, 1.0}};
  const std::vector<ReductionDemand> axis1_heavy = {
      ReductionDemand{{0}, 1e9, 1.0}, ReductionDemand{{1}, 1e9, 50.0}};

  const auto best0 = PlanPlacements(eng, axes, axis0_only)[0].matrix;
  const auto best1 = PlanPlacements(eng, axes, axis1_heavy)[0].matrix;
  EXPECT_NE(best0, best1);
}

TEST(Planner, RejectsEmptyDemands) {
  const auto eng = MakeEngine();
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<ReductionDemand> none;
  EXPECT_THROW(PlanPlacements(eng, axes, none), std::invalid_argument);
}

TEST(Planner, DemandPlansCarryPrograms) {
  const auto eng = MakeEngine();
  const std::vector<std::int64_t> axes = {8, 4};
  const std::vector<ReductionDemand> demands = {
      ReductionDemand{{0}, 1e9, 1.0}};
  const auto plans = PlanPlacements(eng, axes, demands);
  for (const auto& plan : plans) {
    for (const auto& d : plan.demands) {
      EXPECT_FALSE(d.program.empty());
      EXPECT_FALSE(d.program_text.empty());
      EXPECT_GT(d.seconds_per_step, 0.0);
    }
  }
}

}  // namespace
}  // namespace p2::engine
