// The staged evaluation pipeline (ISSUE 1, re-homed under the planning
// service in ISSUE 4): dedup-by-signature synthesis reuse, parallel
// placement evaluation with deterministic merge, and the unmeasured-program
// safety fixes in PlacementEvaluation.
#include "engine/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/json_export.h"
#include "engine/service.h"
#include "topology/presets.h"

namespace p2::engine {
namespace {

EngineOptions FastOptions() {
  EngineOptions opts;
  opts.payload_bytes = 1e8;
  return opts;
}

// Axes (8, 2, 2) on 2 A100 nodes: 3 placements, of which the two spreading
// the reduction axis as (1, 8) are isomorphic — 2 unique signatures.
const std::vector<std::int64_t> kAxes = {8, 2, 2};
const std::vector<int> kReduce = {0};

// Strips the wall-clock fields (the only run-to-run nondeterminism) so runs
// can be compared byte for byte via their JSON form.
ExperimentResult WithoutTimings(ExperimentResult result) {
  for (auto& p : result.placements) {
    p.synthesis_seconds = 0.0;
    p.synthesis_stats.seconds = 0.0;
  }
  result.pipeline = PipelineStats{};
  return result;
}

TEST(Pipeline, ResultIsIdenticalAtAnyThreadCount) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  PlannerService serial(eng, PlannerServiceOptions{.threads = 1});
  const std::string reference =
      ToJson(WithoutTimings(serial.Plan(kAxes, kReduce)));
  EXPECT_NE(reference.find("\"placements\":["), std::string::npos);
  for (int threads : {4, 8}) {
    PlannerService parallel(eng, PlannerServiceOptions{.threads = threads});
    EXPECT_EQ(ToJson(WithoutTimings(parallel.Plan(kAxes, kReduce))),
              reference)
        << "threads=" << threads;
  }
}

TEST(Pipeline, MatchesTheCachelessSerialPath) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  PlannerService cached_service(eng, PlannerServiceOptions{.threads = 4});
  PlannerService monolith_service(eng, PlannerServiceOptions{.threads = 1});
  PlanRequest cached;
  cached.axes = kAxes;
  cached.reduction_axes = kReduce;
  cached.cache_synthesis = true;
  PlanRequest monolith = cached;
  monolith.cache_synthesis = false;
  EXPECT_EQ(
      ToJson(WithoutTimings(cached_service.Plan(std::move(cached)))),
      ToJson(WithoutTimings(monolith_service.Plan(std::move(monolith)))));
}

TEST(Pipeline, DedupsIsomorphicHierarchies) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(eng, PlannerServiceOptions{.threads = 2});
  const auto result = service.Plan(kAxes, kReduce);
  ASSERT_EQ(result.placements.size(), 3u);
  EXPECT_EQ(result.pipeline.num_placements, 3);
  EXPECT_EQ(result.pipeline.unique_hierarchies, 2);
  EXPECT_EQ(result.pipeline.cache_misses, 2);
  EXPECT_EQ(result.pipeline.cache_hits, 1);
  EXPECT_GE(result.pipeline.synthesis_seconds_saved, 0.0);
  EXPECT_EQ(result.pipeline.threads, 2);
  // The deduped placements carry the full program set nevertheless.
  for (const auto& p : result.placements) {
    EXPECT_GE(p.programs.size(), 2u);
    EXPECT_TRUE(p.programs.front().is_default_allreduce);
  }
}

TEST(Pipeline, CachePersistsAcrossRequestsOfOneService) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  PlannerService service(eng, PlannerServiceOptions{.threads = 1});
  const auto first = service.Plan(kAxes, kReduce);
  EXPECT_EQ(first.pipeline.cache_misses, 2);
  const auto second = service.Plan(kAxes, kReduce);
  EXPECT_EQ(second.pipeline.cache_misses, 0);  // everything served from cache
  EXPECT_EQ(second.pipeline.cache_hits, 3);
  EXPECT_EQ(ToJson(WithoutTimings(first)), ToJson(WithoutTimings(second)));
  // The service-wide totals aggregate both requests.
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.cache.misses, 2);
  EXPECT_EQ(stats.cache.hits, 4);
}

TEST(Pipeline, EngineRunExperimentHonoursThreadOption) {
  EngineOptions opts = FastOptions();
  const Engine serial_eng(topology::MakeA100Cluster(2), opts);
  opts.threads = 4;
  const Engine parallel_eng(topology::MakeA100Cluster(2), opts);
  EXPECT_EQ(
      ToJson(WithoutTimings(parallel_eng.RunExperiment(kAxes, kReduce))),
      ToJson(WithoutTimings(serial_eng.RunExperiment(kAxes, kReduce))));
}

TEST(Pipeline, ExperimentResultCarriesPipelineStatsInJson) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const auto result = eng.RunExperiment(kAxes, kReduce);
  const std::string json = ToJson(result);
  EXPECT_NE(json.find("\"pipeline\":{"), std::string::npos);
  EXPECT_NE(json.find("\"unique_hierarchies\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\":1"), std::string::npos);
}

TEST(PlacementEvaluation, BestMeasuredIndexFallsBackWhenNothingMeasured) {
  EngineOptions opts = FastOptions();
  opts.measure = false;
  const Engine eng(topology::MakeA100Cluster(2), opts);
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> raxes = {0};
  const auto eval = eng.EvaluatePlacement(m, raxes);
  for (const auto& p : eval.programs) EXPECT_FALSE(p.measured);
  EXPECT_EQ(eval.BestMeasuredIndex(), eval.BestPredictedIndex());
  EXPECT_EQ(eval.NumOutperforming(), 0);  // baseline was never measured
}

TEST(PlacementEvaluation, GuidedTopKZeroIsSafe) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> raxes = {0};
  const auto eval = eng.EvaluatePlacementGuided(m, raxes, 0);
  // Only the default AllReduce is measured; nothing can outperform it and
  // the best measured program is the baseline itself.
  EXPECT_EQ(eval.BestMeasuredIndex(), 0);
  EXPECT_EQ(eval.NumOutperforming(), 0);
  const int measured =
      static_cast<int>(std::count_if(eval.programs.begin(), eval.programs.end(),
                                     [](const auto& p) { return p.measured; }));
  EXPECT_EQ(measured, 1);
}

TEST(PlacementEvaluation, GuidedNegativeTopKMeasuresOnlyBaseline) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> raxes = {0};
  const auto eval = eng.EvaluatePlacementGuided(m, raxes, -1);
  const int measured =
      static_cast<int>(std::count_if(eval.programs.begin(), eval.programs.end(),
                                     [](const auto& p) { return p.measured; }));
  EXPECT_EQ(measured, 1);  // not "measure everything"
}

TEST(PlacementEvaluation, GuidedMeasuredBestIsAlwaysMeasured) {
  const Engine eng(topology::MakeA100Cluster(2), FastOptions());
  const core::ParallelismMatrix m({{2, 4}, {1, 4}});
  const std::vector<int> raxes = {0};
  const auto eval = eng.EvaluatePlacementGuided(m, raxes, 3);
  const auto& best =
      eval.programs[static_cast<std::size_t>(eval.BestMeasuredIndex())];
  EXPECT_TRUE(best.measured);
  for (const auto& p : eval.programs) {
    if (p.measured) EXPECT_GE(p.measured_seconds, best.measured_seconds);
  }
}

}  // namespace
}  // namespace p2::engine
