// The wire front end (ISSUE 8): the framed protocol round-trips and rejects
// every corruption as a status (never a crash), the service's abort taxonomy
// maps 1:1 onto wire statuses, malformed frames close the connection with an
// Error frame while malformed payloads inside valid frames keep it alive,
// and the concurrency oracle holds — bodies served over N concurrent
// connections are byte-identical to a serial in-process reference, including
// while neighbouring requests abort mid-flight.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "engine/report.h"
#include "engine/service.h"
#include "server/planner_client.h"
#include "server/planner_server.h"
#include "server/remote_cache_client.h"
#include "server/wire_protocol.h"
#include "topology/presets.h"

namespace p2::server {
namespace {

using namespace std::chrono_literals;

engine::EngineOptions FastOptions() {
  engine::EngineOptions opts;
  opts.payload_bytes = 1e8;
  return opts;
}

struct Config {
  std::vector<std::int64_t> axes;
  std::vector<int> reduction_axes;
};

std::vector<Config> Configs() {
  return {
      {{8, 2, 2}, {0}},
      {{8, 4}, {0}},
      {{4, 8}, {1}},
      {{16, 2}, {0}},
  };
}

PlanWireRequest WireRequestFor(const Config& config) {
  PlanWireRequest request;
  request.preset_system = "a100";
  request.preset_nodes = 2;
  request.axes = config.axes;
  request.reduction_axes = config.reduction_axes;
  return request;
}

/// A service + server pair on an ephemeral port, engine knobs tuned for
/// test speed. The service outlives the server (the server borrows it).
struct ServerFixture {
  explicit ServerFixture(int threads = 2) {
    engine::PlannerServiceOptions options;
    options.threads = threads;
    options.engine = FastOptions();
    service = std::make_unique<engine::PlannerService>(options);
    server = std::make_unique<PlannerServer>(*service);
  }
  std::unique_ptr<engine::PlannerService> service;
  std::unique_ptr<PlannerServer> server;
};

/// Same idiom as tests/service_faults_test.cc: parks the first
/// `pipeline.synthesize` checkpoint until released, so a wire request is
/// provably in flight when the test aborts it.
class StallGate {
 public:
  FaultInjector::Hook Hook() {
    return [this](std::string_view point) {
      if (point != "pipeline.synthesize") return;
      if (armed_.exchange(false)) {
        entered_.store(true);
        while (!release_.load()) std::this_thread::sleep_for(1ms);
      }
    };
  }
  void AwaitEntered() const {
    while (!entered_.load()) std::this_thread::sleep_for(1ms);
  }
  void Release() { release_.store(true); }

 private:
  std::atomic<bool> armed_{true};
  std::atomic<bool> entered_{false};
  std::atomic<bool> release_{false};
};

void ExpectBalancedJson(const std::string& json) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

// ---- frame codec ----------------------------------------------------------

TEST(WireFrame, RoundTripsEveryTypeAndStreamsBackToBack) {
  std::string buffer;
  const std::vector<FrameType> types = {
      FrameType::kPlanRequest,         FrameType::kPlanResponse,
      FrameType::kStatsRequest,        FrameType::kStatsResponse,
      FrameType::kError,               FrameType::kShutdownRequest,
      FrameType::kShutdownResponse,    FrameType::kCacheLookupRequest,
      FrameType::kCacheLookupResponse, FrameType::kCachePublishRequest,
      FrameType::kCachePublishResponse,
  };
  for (std::size_t i = 0; i < types.size(); ++i) {
    Frame frame;
    frame.type = types[i];
    frame.payload = std::string(i, static_cast<char>('a' + i));
    buffer += EncodeFrame(frame);
  }
  // One contiguous byte stream decodes back into the same frame sequence —
  // the consumed count is exactly what separates adjacent frames.
  for (std::size_t i = 0; i < types.size(); ++i) {
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(buffer, &frame, &consumed), FrameDecodeStatus::kOk)
        << "frame " << i;
    EXPECT_EQ(frame.type, types[i]);
    EXPECT_EQ(frame.payload, std::string(i, static_cast<char>('a' + i)));
    EXPECT_EQ(consumed, kFrameHeaderBytes + i);
    buffer.erase(0, consumed);
  }
  EXPECT_TRUE(buffer.empty());
}

TEST(WireFrame, EveryTruncationIsNeedMoreNeverAnError) {
  Frame frame;
  frame.type = FrameType::kPlanRequest;
  frame.payload = "payload bytes";
  const std::string encoded = EncodeFrame(frame);
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    Frame out;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(std::string_view(encoded).substr(0, len), &out,
                          &consumed),
              FrameDecodeStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(WireFrame, CorruptionsMapToTheirStatuses) {
  Frame frame;
  frame.type = FrameType::kStatsRequest;
  frame.payload = "abcdef";
  const std::string good = EncodeFrame(frame);
  Frame out;
  std::size_t consumed = 0;

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeFrame(bad_magic, &out, &consumed),
            FrameDecodeStatus::kBadMagic);

  std::string bad_version = good;
  bad_version[4] = static_cast<char>(0xFF);  // version u32 at offset 4, LE
  EXPECT_EQ(DecodeFrame(bad_version, &out, &consumed),
            FrameDecodeStatus::kBadVersion);

  std::string bad_type = good;
  bad_type[8] = 0;  // type u8 at offset 8; 0 is not a FrameType
  EXPECT_EQ(DecodeFrame(bad_type, &out, &consumed),
            FrameDecodeStatus::kBadType);
  bad_type[8] = 99;
  EXPECT_EQ(DecodeFrame(bad_type, &out, &consumed),
            FrameDecodeStatus::kBadType);

  // A lying length prefix must be rejected before it becomes an allocation:
  // claim kMaxFramePayload + 1 bytes (offset 9, u32 LE).
  std::string oversized = good;
  const std::uint32_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    oversized[9 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  }
  EXPECT_EQ(DecodeFrame(oversized, &out, &consumed),
            FrameDecodeStatus::kOversized);

  // A single payload bit-flip fails the FNV-1a-64 checksum.
  std::string bit_flip = good;
  bit_flip[kFrameHeaderBytes + 2] ^= 0x01;
  EXPECT_EQ(DecodeFrame(bit_flip, &out, &consumed),
            FrameDecodeStatus::kBadChecksum);

  // The pristine copy still decodes — the corruptions above were local.
  EXPECT_EQ(DecodeFrame(good, &out, &consumed), FrameDecodeStatus::kOk);
}

// ---- payload codecs -------------------------------------------------------

TEST(WirePayload, PlanRequestRoundTripsPresetForm) {
  PlanWireRequest request;
  request.preset_system = "v100";
  request.preset_nodes = 4;
  request.axes = {8, 2, 2};
  request.reduction_axes = {0, 2};
  request.max_programs = 40;
  request.measure_top_k = 3;
  request.deadline_ms = 1500;

  PlanWireRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodePlanRequest(EncodePlanRequest(request), &decoded, &error))
      << error;
  EXPECT_FALSE(decoded.has_cluster);
  EXPECT_EQ(decoded.preset_system, "v100");
  EXPECT_EQ(decoded.preset_nodes, 4);
  EXPECT_EQ(decoded.axes, request.axes);
  EXPECT_EQ(decoded.reduction_axes, request.reduction_axes);
  EXPECT_EQ(decoded.max_programs, 40);
  EXPECT_EQ(decoded.measure_top_k, 3);
  EXPECT_EQ(decoded.deadline_ms, 1500);
}

TEST(WirePayload, PlanRequestRoundTripsAnInlineCluster) {
  PlanWireRequest request;
  request.has_cluster = true;
  request.cluster = topology::MakeA100Cluster(2);
  request.axes = {8, 4};
  request.reduction_axes = {0};

  PlanWireRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodePlanRequest(EncodePlanRequest(request), &decoded, &error))
      << error;
  ASSERT_TRUE(decoded.has_cluster);
  // Fingerprint covers every field the planner reads, so equal fingerprints
  // mean the cluster survived the wire intact.
  EXPECT_EQ(decoded.cluster.Fingerprint(),
            topology::MakeA100Cluster(2).Fingerprint());
  EXPECT_EQ(decoded.axes, request.axes);
}

TEST(WirePayload, PlanRequestValidationRejectsNonsense) {
  const auto expect_rejected = [](PlanWireRequest request) {
    PlanWireRequest decoded;
    std::string error;
    EXPECT_FALSE(
        DecodePlanRequest(EncodePlanRequest(request), &decoded, &error));
    EXPECT_FALSE(error.empty());
  };
  PlanWireRequest base = WireRequestFor(Configs()[0]);

  PlanWireRequest unknown_preset = base;
  unknown_preset.preset_system = "h100";
  expect_rejected(unknown_preset);

  PlanWireRequest no_axes = base;
  no_axes.axes.clear();
  expect_rejected(no_axes);

  PlanWireRequest non_positive_axis = base;
  non_positive_axis.axes = {8, 0};
  expect_rejected(non_positive_axis);

  PlanWireRequest reduction_out_of_range = base;
  reduction_out_of_range.reduction_axes = {7};
  expect_rejected(reduction_out_of_range);

  // A checksum-valid frame with trailing junk after a well-formed payload is
  // still a malformed payload: every byte must be accounted for.
  PlanWireRequest decoded;
  std::string error;
  EXPECT_FALSE(DecodePlanRequest(EncodePlanRequest(base) + "x", &decoded,
                                 &error));
  EXPECT_FALSE(error.empty());
}

TEST(WirePayload, PlanResponseAndStatusPayloadsRoundTrip) {
  PlanWireResponse response;
  response.status = WireStatus::kOk;
  response.body = "placement 0\nplacement 1\n";
  response.stats.num_placements = 12;
  response.stats.cache_hits = 7;
  response.stats.synthesis_seconds = 0.25;
  response.stats.threads = 4;

  PlanWireResponse decoded;
  std::string error;
  ASSERT_TRUE(
      DecodePlanResponse(EncodePlanResponse(response), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.status, WireStatus::kOk);
  EXPECT_EQ(decoded.body, response.body);
  EXPECT_EQ(decoded.stats.num_placements, 12);
  EXPECT_EQ(decoded.stats.cache_hits, 7);
  EXPECT_DOUBLE_EQ(decoded.stats.synthesis_seconds, 0.25);
  EXPECT_EQ(decoded.stats.threads, 4);

  WireStatus status = WireStatus::kOk;
  std::string text;
  ASSERT_TRUE(DecodeStatusPayload(
      EncodeStatusPayload(WireStatus::kResourceExhausted, "draining"),
      &status, &text));
  EXPECT_EQ(status, WireStatus::kResourceExhausted);
  EXPECT_EQ(text, "draining");
}

// ---- abort taxonomy -> wire status ----------------------------------------

TEST(WireStatusMapping, AbortTaxonomyMapsOneToOne) {
  const auto status_for = [](std::exception_ptr error) {
    return WireStatusFor(engine::ClassifyPlanError(std::move(error)));
  };
  EXPECT_EQ(status_for(nullptr), WireStatus::kOk);
  EXPECT_EQ(status_for(std::make_exception_ptr(engine::PlanRejected("cap"))),
            WireStatus::kResourceExhausted);
  EXPECT_EQ(status_for(std::make_exception_ptr(engine::PlanCancelled("c"))),
            WireStatus::kCancelled);
  EXPECT_EQ(
      status_for(std::make_exception_ptr(engine::PlanDeadlineExceeded("d"))),
      WireStatus::kDeadlineExceeded);
  EXPECT_EQ(status_for(std::make_exception_ptr(std::invalid_argument("bad"))),
            WireStatus::kInvalidArgument);
  EXPECT_EQ(status_for(std::make_exception_ptr(std::runtime_error("boom"))),
            WireStatus::kInternal);
}

// ---- end-to-end -----------------------------------------------------------

TEST(PlannerServerTest, ServesAPlanByteIdenticalToInProcess) {
  ServerFixture fixture;
  // The reference: the same request planned in-process, serially.
  engine::PlanRequest reference;
  reference.axes = Configs()[1].axes;
  reference.reduction_axes = Configs()[1].reduction_axes;
  reference.cluster = topology::MakeA100Cluster(2);
  const std::string expected =
      engine::CanonicalResultText(fixture.service->Plan(std::move(reference)));

  PlannerClient client(fixture.server->port());
  const PlanWireResponse response = client.Plan(WireRequestFor(Configs()[1]));
  ASSERT_EQ(response.status, WireStatus::kOk) << response.message;
  EXPECT_EQ(response.body, expected);
  EXPECT_GT(response.stats.num_placements, 0);

  const PlannerServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.plan_ok, 1);
  EXPECT_EQ(stats.plan_errors, 0);
}

TEST(PlannerServerTest, MalformedFrameGetsAnErrorFrameThenTheConnectionDies) {
  ServerFixture fixture;
  PlannerClient client(fixture.server->port());
  // 32 bytes that are not a frame: the decoder loses framing at the magic.
  ASSERT_TRUE(client.SendRaw(std::string(32, 'X')));
  Frame reply;
  ASSERT_TRUE(client.ReceiveFrame(&reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  WireStatus status = WireStatus::kOk;
  std::string detail;
  ASSERT_TRUE(DecodeStatusPayload(reply.payload, &status, &detail));
  EXPECT_EQ(status, WireStatus::kInvalidArgument);
  EXPECT_FALSE(detail.empty());
  // Nothing after the bad bytes can be trusted: the connection is closed.
  Frame next;
  EXPECT_FALSE(client.ReceiveFrame(&next));
  EXPECT_GE(fixture.server->stats().malformed_frames, 1);
}

TEST(PlannerServerTest, InvalidPayloadInAValidFrameKeepsTheConnection) {
  ServerFixture fixture;
  PlannerClient client(fixture.server->port());
  // The frame is pristine — magic, checksum, type all valid — but the
  // payload names a preset the server does not know.
  PlanWireRequest bogus = WireRequestFor(Configs()[0]);
  bogus.preset_system = "h100";
  const PlanWireResponse rejected = client.Plan(bogus);
  EXPECT_EQ(rejected.status, WireStatus::kInvalidArgument);
  EXPECT_FALSE(rejected.message.empty());
  // Framing was never lost, so the same connection still serves.
  const PlanWireResponse ok = client.Plan(WireRequestFor(Configs()[0]));
  EXPECT_EQ(ok.status, WireStatus::kOk) << ok.message;
}

TEST(PlannerServerTest, ClientSentResponseFramesCloseTheConnection) {
  ServerFixture fixture;
  PlannerClient client(fixture.server->port());
  Frame frame;
  frame.type = FrameType::kPlanResponse;  // only servers send these
  ASSERT_TRUE(client.SendRaw(EncodeFrame(frame)));
  Frame reply;
  ASSERT_TRUE(client.ReceiveFrame(&reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  Frame next;
  EXPECT_FALSE(client.ReceiveFrame(&next));
}

TEST(PlannerServerTest, DeadlineExpiringMidFlightIsDeadlineExceeded) {
  ServerFixture fixture;
  // Every synthesis stage dawdles past the wire deadline.
  FaultScope scope([](std::string_view point) {
    if (point == "pipeline.synthesize") std::this_thread::sleep_for(50ms);
  });
  PlannerClient client(fixture.server->port());
  PlanWireRequest request = WireRequestFor(Configs()[0]);
  request.deadline_ms = 5;
  const PlanWireResponse response = client.Plan(request);
  EXPECT_EQ(response.status, WireStatus::kDeadlineExceeded)
      << response.message;
  EXPECT_EQ(fixture.server->stats().plan_errors, 1);
  EXPECT_EQ(fixture.service->stats().deadline_exceeded, 1);
}

TEST(PlannerServerTest, DrainingServiceRejectsWithResourceExhausted) {
  ServerFixture fixture;
  fixture.service->BeginDrain();
  PlannerClient client(fixture.server->port());
  const PlanWireResponse response = client.Plan(WireRequestFor(Configs()[0]));
  EXPECT_EQ(response.status, WireStatus::kResourceExhausted)
      << response.message;
  EXPECT_EQ(fixture.service->stats().rejected, 1);
}

TEST(PlannerServerTest, DrainGraceCancellationIsCancelledOnTheWire) {
  ServerFixture fixture;
  StallGate gate;
  FaultScope scope(gate.Hook());

  // One wire request parks mid-synthesis...
  PlanWireResponse response;
  std::thread requester([&] {
    PlannerClient client(fixture.server->port());
    response = client.Plan(WireRequestFor(Configs()[0]));
  });
  gate.AwaitEntered();
  // ...while a zero-grace drain cancels everything in flight. BeginDrain
  // blocks until the request settles, so it runs beside the release.
  std::thread drainer([&] { fixture.service->BeginDrain(0ms); });
  // Give the grace deadline time to fire its cancels before un-parking the
  // request; its next checkpoint then observes the cancellation.
  std::this_thread::sleep_for(100ms);
  gate.Release();
  drainer.join();
  requester.join();

  EXPECT_EQ(response.status, WireStatus::kCancelled) << response.message;
  EXPECT_EQ(fixture.service->stats().cancelled, 1);
}

TEST(PlannerServerTest, ConcurrentClientsGetByteIdenticalBodies) {
  // The oracle: expected bodies from a dedicated serial service...
  std::vector<std::string> expected;
  {
    engine::PlannerServiceOptions options;
    options.engine = FastOptions();
    engine::PlannerService reference(options);
    for (const Config& config : Configs()) {
      engine::PlanRequest request;
      request.axes = config.axes;
      request.reduction_axes = config.reduction_axes;
      request.cluster = topology::MakeA100Cluster(2);
      expected.push_back(
          engine::CanonicalResultText(reference.Plan(std::move(request))));
    }
  }

  // ...must match every body served over concurrent connections, whose
  // requests interleave arbitrarily in the shared cache and pool.
  ServerFixture fixture(/*threads=*/4);
  constexpr int kClients = 4;
  std::vector<std::vector<std::string>> bodies(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        PlannerClient client(fixture.server->port());
        for (const Config& config : Configs()) {
          const PlanWireResponse response =
              client.Plan(WireRequestFor(config));
          if (response.status != WireStatus::kOk) {
            ++failures;
            return;
          }
          bodies[t].push_back(response.body);
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (std::thread& c : clients) c.join();

  ASSERT_EQ(failures.load(), 0);
  for (int t = 0; t < kClients; ++t) {
    ASSERT_EQ(bodies[t].size(), expected.size()) << "client " << t;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(bodies[t][i], expected[i])
          << "client " << t << " config " << i;
    }
  }
  const PlannerServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.plan_ok, kClients * static_cast<int>(Configs().size()));
  EXPECT_EQ(stats.plan_errors, 0);
}

TEST(PlannerServerTest, StatsEndpointServesWellFormedCounters) {
  ServerFixture fixture;
  PlannerClient client(fixture.server->port());
  ASSERT_EQ(client.Plan(WireRequestFor(Configs()[0])).status, WireStatus::kOk);

  const PlannerClient::StatsResult stats = client.Stats();
  ASSERT_EQ(stats.status, WireStatus::kOk) << stats.json;
  ExpectBalancedJson(stats.json);
  // The server's own counters and the service's robustness/save counters
  // travel in one document — what the CI smoke greps.
  for (const char* field :
       {"\"server\":{", "\"connections\":", "\"requests\":",
        "\"stats_requests\":", "\"malformed_frames\":", "\"service\":",
        "\"rejected\":", "\"cancelled\":", "\"deadline_exceeded\":",
        "\"save_errors\":", "\"last_save_error\":"}) {
    EXPECT_NE(stats.json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(stats.json.find("\"requests\":1"), std::string::npos)
      << stats.json;
  EXPECT_GE(fixture.server->stats().stats_requests, 1);
}

// ---- cache-server plane ---------------------------------------------------

/// A fixture whose server also serves the cache plane (frames 8-11).
struct CacheServerFixture {
  CacheServerFixture() {
    engine::PlannerServiceOptions options;
    options.threads = 2;
    options.engine = FastOptions();
    service = std::make_unique<engine::PlannerService>(options);
    PlannerServerOptions server_options;
    server_options.cache_server = true;
    server = std::make_unique<PlannerServer>(*service, server_options);
  }
  std::unique_ptr<engine::PlannerService> service;
  std::unique_ptr<PlannerServer> server;
};

/// A publishable entry that passes the disk codec's semantic validation
/// (same key idiom as tests/cache_store_corruption_test.cc).
engine::CacheFileEntry ValidCacheEntry() {
  engine::CacheFileEntry entry;
  entry.key = "levels:1,2;goal:[0,1];size<=5;cap=1048576";
  entry.result.stats.seconds = 0.25;
  entry.result.programs.push_back(
      core::Program{core::Instruction{0, core::Form::InsideGroup(),
                                      core::Collective::kAllReduce}});
  return entry;
}

constexpr const char* kBaseKey = "levels:1,2;goal:[0,1];size<=5";

TEST(WirePayload, CacheLookupAndPublishPayloadsRoundTrip) {
  CacheLookupWireRequest request;
  request.base_key = kBaseKey;
  request.cap = 1048576;
  CacheLookupWireRequest decoded_request;
  std::string error;
  ASSERT_TRUE(DecodeCacheLookupRequest(EncodeCacheLookupRequest(request),
                                       &decoded_request, &error))
      << error;
  EXPECT_EQ(decoded_request.base_key, request.base_key);
  EXPECT_EQ(decoded_request.cap, request.cap);

  // Every response kind survives the wire; the hit carries its entry.
  CacheLookupWireResponse hit;
  hit.kind = CacheLookupWireResponse::Kind::kHit;
  hit.entry = ValidCacheEntry();
  CacheLookupWireResponse decoded;
  ASSERT_TRUE(DecodeCacheLookupResponse(EncodeCacheLookupResponse(hit),
                                        &decoded, &error))
      << error;
  EXPECT_EQ(decoded.kind, CacheLookupWireResponse::Kind::kHit);
  EXPECT_EQ(decoded.entry.key, hit.entry.key);
  ASSERT_EQ(decoded.entry.result.programs.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.entry.result.stats.seconds, 0.25);

  CacheLookupWireResponse retry;
  retry.kind = CacheLookupWireResponse::Kind::kRetryAfter;
  retry.retry_after_ms = 40;
  ASSERT_TRUE(DecodeCacheLookupResponse(EncodeCacheLookupResponse(retry),
                                        &decoded, &error))
      << error;
  EXPECT_EQ(decoded.kind, CacheLookupWireResponse::Kind::kRetryAfter);
  EXPECT_EQ(decoded.retry_after_ms, 40);

  engine::CacheFileEntry published;
  ASSERT_TRUE(DecodeCachePublishRequest(
      EncodeCachePublishRequest(ValidCacheEntry()), &published, &error))
      << error;
  EXPECT_EQ(published.key, ValidCacheEntry().key);

  // Validation: an empty base key and a forged program are both statuses,
  // never crashes.
  CacheLookupWireRequest empty_key;
  empty_key.cap = 1;
  EXPECT_FALSE(DecodeCacheLookupRequest(EncodeCacheLookupRequest(empty_key),
                                        &decoded_request, &error));
  engine::CacheFileEntry forged = ValidCacheEntry();
  forged.result.programs[0][0].slice_level = 7;  // beyond the key's depth
  EXPECT_FALSE(DecodeCachePublishRequest(EncodeCachePublishRequest(forged),
                                         &published, &error));
  EXPECT_FALSE(error.empty());
}

TEST(CacheServerTest, GrantRetryPublishHitCycle) {
  CacheServerFixture fixture;
  RemoteCacheClient worker_a(fixture.server->port());
  RemoteCacheClient worker_b(fixture.server->port());

  // First asker on an unseen base is granted the synthesis...
  engine::RemoteLookupResult first = worker_a.Lookup(kBaseKey, 1048576);
  EXPECT_EQ(first.kind, engine::RemoteLookupResult::Kind::kOwned);
  // ...and the grant shields the base from the second asker.
  engine::RemoteLookupResult second = worker_b.Lookup(kBaseKey, 1048576);
  ASSERT_EQ(second.kind, engine::RemoteLookupResult::Kind::kRetryAfter);
  EXPECT_GE(second.retry_after_ms, 1);
  EXPECT_LE(second.retry_after_ms, 1000);

  // The owner publishes its completion; the next lookup is a hit that
  // round-trips the synthesis result.
  const engine::CacheFileEntry entry = ValidCacheEntry();
  EXPECT_TRUE(worker_a.Publish(entry.key, entry.result));
  engine::RemoteLookupResult third = worker_b.Lookup(kBaseKey, 1048576);
  ASSERT_EQ(third.kind, engine::RemoteLookupResult::Kind::kHit);
  EXPECT_EQ(third.key, entry.key);
  ASSERT_EQ(third.result.programs.size(), 1u);
  EXPECT_DOUBLE_EQ(third.result.stats.seconds, 0.25);

  const PlannerServerStats stats = fixture.server->stats();
  EXPECT_EQ(stats.cache_lookups, 3);
  EXPECT_EQ(stats.cache_grants, 1);
  EXPECT_EQ(stats.cache_retries, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_publishes, 1);
}

TEST(CacheServerTest, CacheFramesOnANonCacheServerKeepTheConnection) {
  ServerFixture fixture;  // cache_server off
  PlannerClient client(fixture.server->port());
  CacheLookupWireRequest request;
  request.base_key = kBaseKey;
  request.cap = 1;
  Frame frame;
  frame.type = FrameType::kCacheLookupRequest;
  frame.payload = EncodeCacheLookupRequest(request);
  ASSERT_TRUE(client.SendRaw(EncodeFrame(frame)));
  Frame reply;
  ASSERT_TRUE(client.ReceiveFrame(&reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  WireStatus status = WireStatus::kOk;
  std::string detail;
  ASSERT_TRUE(DecodeStatusPayload(reply.payload, &status, &detail));
  EXPECT_EQ(status, WireStatus::kInvalidArgument);
  // The frame itself was valid, so the connection still serves plans.
  EXPECT_EQ(client.Plan(WireRequestFor(Configs()[0])).status, WireStatus::kOk);
}

TEST(CacheServerTest, MalformedCachePayloadsKeepTheConnection) {
  CacheServerFixture fixture;
  PlannerClient client(fixture.server->port());

  const auto expect_invalid_argument = [&client](Frame frame) {
    ASSERT_TRUE(client.SendRaw(EncodeFrame(frame)));
    Frame reply;
    ASSERT_TRUE(client.ReceiveFrame(&reply));
    EXPECT_EQ(reply.type, FrameType::kError);
    WireStatus status = WireStatus::kOk;
    std::string detail;
    ASSERT_TRUE(DecodeStatusPayload(reply.payload, &status, &detail));
    EXPECT_EQ(status, WireStatus::kInvalidArgument);
    EXPECT_FALSE(detail.empty());
  };

  // A truncated lookup payload inside a checksum-valid frame.
  CacheLookupWireRequest request;
  request.base_key = kBaseKey;
  request.cap = 1;
  Frame truncated;
  truncated.type = FrameType::kCacheLookupRequest;
  truncated.payload = EncodeCacheLookupRequest(request);
  truncated.payload.resize(truncated.payload.size() / 2);
  expect_invalid_argument(std::move(truncated));

  // A publish whose entry fails the disk codec's semantic validation.
  engine::CacheFileEntry forged = ValidCacheEntry();
  forged.result.programs[0][0].slice_level = 7;
  Frame bad_publish;
  bad_publish.type = FrameType::kCachePublishRequest;
  bad_publish.payload = EncodeCachePublishRequest(forged);
  expect_invalid_argument(std::move(bad_publish));

  // Both malformations kept framing intact: the same connection still
  // completes the full grant cycle.
  Frame lookup;
  lookup.type = FrameType::kCacheLookupRequest;
  lookup.payload = EncodeCacheLookupRequest(request);
  ASSERT_TRUE(client.SendRaw(EncodeFrame(lookup)));
  Frame reply;
  ASSERT_TRUE(client.ReceiveFrame(&reply));
  EXPECT_EQ(reply.type, FrameType::kCacheLookupResponse);
}

TEST(CacheServerTest, CorruptCacheFrameClosesTheConnection) {
  CacheServerFixture fixture;
  PlannerClient client(fixture.server->port());
  CacheLookupWireRequest request;
  request.base_key = kBaseKey;
  request.cap = 1;
  Frame frame;
  frame.type = FrameType::kCacheLookupRequest;
  frame.payload = EncodeCacheLookupRequest(request);
  std::string bytes = EncodeFrame(frame);
  bytes[kFrameHeaderBytes + 2] ^= 0x01;  // payload bit-flip: checksum fails
  ASSERT_TRUE(client.SendRaw(bytes));
  Frame reply;
  ASSERT_TRUE(client.ReceiveFrame(&reply));
  EXPECT_EQ(reply.type, FrameType::kError);
  // Framing is lost: the connection is done.
  Frame next;
  EXPECT_FALSE(client.ReceiveFrame(&next));
  EXPECT_GE(fixture.server->stats().malformed_frames, 1);
}

TEST(CacheServerTest, RacingWorkersSynthesizeStrictlyLessThanIndependent) {
  // The scale-out gate, in-process: what one worker synthesizes alone...
  std::vector<std::string> expected;
  std::int64_t independent_misses = 0;
  {
    engine::PlannerServiceOptions options;
    options.threads = 2;
    options.engine = FastOptions();
    engine::PlannerService reference(options);
    for (const Config& config : Configs()) {
      engine::PlanRequest request;
      request.axes = config.axes;
      request.reduction_axes = config.reduction_axes;
      request.cluster = topology::MakeA100Cluster(2);
      expected.push_back(
          engine::CanonicalResultText(reference.Plan(std::move(request))));
    }
    independent_misses = reference.stats().cache.misses;
  }
  ASSERT_GT(independent_misses, 0);

  // ...two workers racing the same grid through the shared plane must
  // synthesize strictly less than twice between them, with at least one
  // signature served off the plane — and identical bytes throughout.
  CacheServerFixture fixture;
  constexpr int kWorkers = 2;
  std::vector<std::unique_ptr<engine::PlannerService>> workers;
  for (int w = 0; w < kWorkers; ++w) {
    engine::PlannerServiceOptions options;
    options.threads = 2;
    options.engine = FastOptions();
    options.remote_cache =
        std::make_shared<RemoteCacheClient>(fixture.server->port());
    workers.push_back(std::make_unique<engine::PlannerService>(options));
  }
  std::vector<std::vector<std::string>> bodies(kWorkers);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      try {
        for (const Config& config : Configs()) {
          engine::PlanRequest request;
          request.axes = config.axes;
          request.reduction_axes = config.reduction_axes;
          request.cluster = topology::MakeA100Cluster(2);
          bodies[w].push_back(engine::CanonicalResultText(
              workers[w]->Plan(std::move(request))));
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  std::int64_t total_misses = 0;
  std::int64_t total_remote_hits = 0;
  std::int64_t total_remote_errors = 0;
  for (int w = 0; w < kWorkers; ++w) {
    ASSERT_EQ(bodies[w].size(), expected.size()) << "worker " << w;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(bodies[w][i], expected[i]) << "worker " << w << " config "
                                           << i;
    }
    const engine::PlannerServiceStats stats = workers[w]->stats();
    total_misses += stats.cache.misses;
    total_remote_hits += stats.cache.remote_hits;
    total_remote_errors += stats.cache.remote_errors;
  }
  EXPECT_LT(total_misses, kWorkers * independent_misses);
  EXPECT_GT(total_remote_hits, 0);
  EXPECT_EQ(total_remote_errors, 0);
}

TEST(CacheServerTest, UnreachablePlaneDegradesToLocalSynthesis) {
  // A worker pointed at a dead port must still plan — local-only, counting
  // remote errors, never throwing.
  engine::PlannerServiceOptions options;
  options.threads = 2;
  options.engine = FastOptions();
  options.remote_cache = std::make_shared<RemoteCacheClient>(1);  // nothing
  engine::PlannerService worker(options);
  engine::PlanRequest request;
  request.axes = Configs()[0].axes;
  request.reduction_axes = Configs()[0].reduction_axes;
  request.cluster = topology::MakeA100Cluster(2);
  const engine::ExperimentResult result = worker.Plan(std::move(request));
  EXPECT_GT(result.pipeline.num_placements, 0);
  const engine::PlannerServiceStats stats = worker.stats();
  EXPECT_GT(stats.cache.misses, 0);
  EXPECT_GT(stats.cache.remote_errors, 0);
  EXPECT_EQ(stats.cache.remote_hits, 0);
}

TEST(PlannerServerTest, ShutdownFrameAcksOnlyAfterTheDrain) {
  ServerFixture fixture;
  PlannerClient client(fixture.server->port());
  ASSERT_EQ(client.Plan(WireRequestFor(Configs()[0])).status, WireStatus::kOk);
  EXPECT_TRUE(client.Shutdown());
  // The ack implies the service drained: new submissions are rejected.
  EXPECT_TRUE(fixture.service->draining());
  fixture.server->Wait();  // returns immediately — shutdown was requested
  fixture.server->Shutdown();
  // The listener is gone: connecting again fails.
  EXPECT_THROW(PlannerClient{fixture.server->port()}, std::runtime_error);
}

}  // namespace
}  // namespace p2::server
