// Tests of the synthesizer's instruction alphabet (BuildGroupingAlphabet):
// deduplication, singleton filtering, and the exact pattern set of the
// running example — the machinery behind the paper's Result 2 search-space
// numbers.
#include <gtest/gtest.h>

#include <set>

#include "core/grouping.h"
#include "core/synthesizer.h"

namespace p2::core {
namespace {

SynthesisHierarchy Fig2dHierarchy() {
  const ParallelismMatrix m({{1, 1, 2, 2}, {1, 2, 1, 2}});
  const std::vector<int> axes = {1};
  return SynthesisHierarchy::Build(m, axes,
                                   SynthesisHierarchyKind::kReductionAxes);
}

TEST(Alphabet, RunningExampleHasExactlyFourPatterns) {
  // Levels [1 1 2 1 2], 4 synthesis devices: the distinct group sets are
  // {all}, {local pairs}, {cross pairs}, {first cross pair (Master)}.
  const auto alphabet = BuildGroupingAlphabet(Fig2dHierarchy());
  ASSERT_EQ(alphabet.size(), 4u);
  std::set<std::vector<std::vector<std::int64_t>>> group_sets;
  for (const auto& p : alphabet) group_sets.insert(p.groups);
  EXPECT_TRUE(group_sets.count({{0, 1, 2, 3}}));
  EXPECT_TRUE(group_sets.count({{0, 1}, {2, 3}}));
  EXPECT_TRUE(group_sets.count({{0, 2}, {1, 3}}));
  EXPECT_TRUE(group_sets.count({{0, 2}}));
}

TEST(Alphabet, NoSingletonGroups) {
  const auto alphabet = BuildGroupingAlphabet(Fig2dHierarchy());
  for (const auto& p : alphabet) {
    for (const auto& g : p.groups) EXPECT_GE(g.size(), 2u);
  }
}

TEST(Alphabet, NoDuplicateGroupSets) {
  const ParallelismMatrix m({{2, 2, 2}, {1, 1, 1}});
  const std::vector<int> axes = {0};
  const auto sh =
      SynthesisHierarchy::Build(m, axes, SynthesisHierarchyKind::kReductionAxes);
  const auto alphabet = BuildGroupingAlphabet(sh);
  std::set<std::vector<std::vector<std::int64_t>>> seen;
  for (const auto& p : alphabet) {
    EXPECT_TRUE(seen.insert(p.groups).second);
  }
  // Deeper hierarchy => strictly richer alphabet than the flat one.
  EXPECT_GT(alphabet.size(), 4u);
}

TEST(Alphabet, FlatHierarchyHasOnlyTheFullGroup) {
  const ParallelismMatrix m({{1, 8}, {2, 2}});
  const std::vector<int> axes = {0};
  const auto sh =
      SynthesisHierarchy::Build(m, axes, SynthesisHierarchyKind::kReductionAxes);
  const auto alphabet = BuildGroupingAlphabet(sh);
  ASSERT_EQ(alphabet.size(), 1u);
  EXPECT_EQ(alphabet[0].groups.size(), 1u);
  EXPECT_EQ(alphabet[0].groups[0].size(), 8u);
}

TEST(Alphabet, PatternsRecordUsableSliceAndForm) {
  // Every recorded (slice, form) must re-derive exactly its stored groups
  // (after singleton filtering) — the synthesizer and the lowering rely on
  // this agreement.
  const auto sh = Fig2dHierarchy();
  for (const auto& p : BuildGroupingAlphabet(sh)) {
    auto groups = DeriveGroups(sh.levels(), p.slice_level, p.form);
    std::erase_if(groups, [](const auto& g) { return g.size() < 2; });
    EXPECT_EQ(groups, p.groups);
  }
}

TEST(Alphabet, AlphabetSizeDrivesSynthesisStats) {
  const auto sh = Fig2dHierarchy();
  const auto alphabet = BuildGroupingAlphabet(sh);
  const auto result = SynthesizePrograms(sh);
  EXPECT_EQ(result.stats.alphabet_size,
            static_cast<int>(alphabet.size() * kAllCollectives.size()));
}

}  // namespace
}  // namespace p2::core
